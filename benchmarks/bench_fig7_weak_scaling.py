"""FIG7 — Figure 7, "Weak Scaling Across MPI".

Paper: efficiency vs node count (1..8 nodes x 24 cores), problem sizes
scaled so the locations per node stay about the same, time normalized by
the actual number of locations; 2-arm bandit ~90 % at 8 nodes (~84 %
combined with the intra-node OpenMP efficiency at 192 cores).

Reproduction: same protocol on the simulated cluster with the
dimension-cut load balancer and Figure 5 priority.  Shape target:
gently decaying efficiency staying well above the naive block pipeline.
"""

import pytest

from repro.simulate import MachineModel, format_scaling_table, weak_scaling

from _common import bandit2_program, bandit3_program, write_report

NODE_COUNTS = [1, 2, 4, 8]


def _factory(program, base_n, dims):
    def factory(nodes: int):
        # locations ~ N^dims / dims!; hold locations/node constant.
        n = int(round(base_n * nodes ** (1.0 / dims)))
        return program, {"N": n}

    return factory


CASES = [
    ("bandit2", bandit2_program, 150, 4),
    ("bandit3", bandit3_program, 38, 6),
]


@pytest.mark.parametrize(
    "name, builder, base_n, dims", CASES, ids=[c[0] for c in CASES]
)
def test_fig7_weak_scaling(benchmark, name, builder, base_n, dims):
    program = builder()

    def run():
        return weak_scaling(
            _factory(program, base_n, dims),
            NODE_COUNTS,
            machine=MachineModel(cores_per_node=24),
            lb_method="dimension-cut",
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_scaling_table(points, f"FIG7 {name} weak scaling")
    last = points[-1]
    combined = last.efficiency  # vs the 24-core single node baseline
    table += (
        f"\npaper reference: ~90% at 8 nodes vs 1 node (2-arm bandit)\n"
        f"measured: {combined:.1%} at {last.nodes} nodes"
    )
    write_report(f"fig7_{name}", table)
    effs = [p.efficiency for p in points]
    assert effs[0] == pytest.approx(1.0)
    # Shape: the pipeline holds most of its efficiency out to 8 nodes.
    assert effs[-1] > 0.6
    assert all(e > 0.5 for e in effs)
