"""FIG6 — Figure 6, "Shared Memory Scaling".

Paper: speedup vs core count on one 24-core node for the problem suite;
the 2-arm bandit reaches 22.35x on 24 cores and "most of the problems
tested achieve speedup >= 22 on 24 cores".

Reproduction: the generated schedule of each problem is executed on the
simulated single node sweeping 1..24 cores; speedup is against the same
machine's one-core run.  Shape target: near-linear up to ~8 cores,
>= 22x at 24 cores for the large bandit instances.
"""

import pytest

from repro.simulate import format_scaling_table, shared_memory_scaling

from _common import (
    bandit2_program,
    bandit3_program,
    delayed_program,
    lcs3_program,
    graph_for,
    write_report,
)

CORE_COUNTS = [1, 2, 4, 8, 12, 16, 20, 24]

CASES = [
    ("bandit2", 170),
    ("bandit3", 42),
    ("delayed", 40),
    ("lcs3", 999),  # clamped to the embedded string lengths
]


@pytest.mark.parametrize("kind, n", CASES, ids=[c[0] for c in CASES])
def test_fig6_shared_memory_scaling(benchmark, kind, n):
    program, params, graph = graph_for(kind, n)

    def run():
        return shared_memory_scaling(
            program, params, CORE_COUNTS, priority_scheme="lb-first"
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_scaling_table(points, f"FIG6 {kind} {params}")
    p24 = points[-1]
    table += (
        f"\npaper reference: 2-arm bandit speedup 22.35 @ 24 cores; "
        f"suite >= 22\nmeasured: {p24.speedup:.2f} @ {p24.cores} cores "
        f"({p24.efficiency:.1%})"
    )
    write_report(f"fig6_{kind}", table)
    # Shape assertions: monotone speedup, near-linear at low counts.
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    assert points[1].efficiency > 0.95
    assert p24.speedup > 15.0
