"""VIIC — Section VII-C: work-queue contention and grouped queues.

Paper (future work): "For systems with large numbers of cores,
contention for the shared data structures may become a bottleneck ...
This could be addressed by using separate shared data structures for
groups of closely connected cores."

Reproduction: a fine-grained tiling (many small tiles per second) makes
the single per-node dequeue lock the bottleneck on 24 cores; splitting
it into per-group locks recovers the lost throughput.  The effect is
shown on the 3-string LCS with small tiles — the configuration the FIG6
calibration found to be lock-bound.
"""

import pytest

from repro.generator import generate
from repro.problems import lcs_spec, random_sequence
from repro.runtime import TileGraph
from repro.simulate import MachineModel, simulate

from _common import write_report

GROUPS = [1, 2, 4, 8]


def test_viic_queue_groups(benchmark):
    strings = [random_sequence(220 + 8 * k, seed=900 + k) for k in range(3)]
    program = generate(lcs_spec(strings, tile_width=8))
    params = {f"L{k+1}": len(s) for k, s in enumerate(strings)}
    graph = TileGraph.build(program, params)

    def run():
        out = {}
        for groups in GROUPS:
            m = MachineModel(
                nodes=1, cores_per_node=24, queue_groups=groups
            )
            out[groups] = simulate(graph, m)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"VIIC 3-string LCS (small tiles, {len(graph.tiles)} tiles), "
        "24 cores, 1 node:",
        f"{'queue groups':>13} {'makespan(ms)':>13} {'speedup vs 1 core':>18}",
    ]
    serial = results[1].serial_time_s
    for groups, res in results.items():
        lines.append(
            f"{groups:>13} {res.makespan_s * 1e3:>13.3f} "
            f"{serial / res.makespan_s:>18.2f}"
        )
    lines.append(
        "paper reference (Sec. VII-C): per-group queues relieve shared "
        "data-structure contention on many cores"
    )
    write_report("viic_queue_groups", "\n".join(lines))

    # Grouped queues must not hurt (beyond scheduling noise from the
    # slightly different lock timings), and must measurably help the
    # lock-bound configuration.
    spans = [results[g].makespan_s for g in GROUPS]
    assert all(b <= a * 1.01 for a, b in zip(spans, spans[1:]))
    assert results[8].makespan_s < 0.95 * results[1].makespan_s
