"""FIG45 — Figures 4 and 5: execution priority vs buffered-edge memory.

Paper analysis (Section V-B): in a 2-D n x n tiling, column-major order
peaks at ~n+1 buffered edges while level-set order peaks at 2(n-1); in
d dimensions level-set can buffer nearly d times more.  The generated
code's priority (Figure 5) puts the load-balancing dimensions first.

Reproduction: the real runtime executes a 2-D grid and the 4-D bandit
under each scheme and reports the peak buffered edges/cells measured by
the edge-memory tracker.
"""

import pytest

from repro.generator import generate
from repro.runtime import execute
from repro.spec import ProblemSpec

from _common import write_report

SCHEMES = ("column-major", "level-set", "lb-first", "lb-last")


def grid2d_spec(w: int = 2) -> ProblemSpec:
    return ProblemSpec.create(
        name="grid2d",
        loop_vars=["x", "y"],
        params=["M"],
        constraints=["x >= 0", "y >= 0", "x <= M", "y <= M"],
        templates={"rx": [1, 0], "ry": [0, 1]},
        tile_widths=w,
        lb_dims=("x",),
        kernel=lambda point, deps, params: 1.0,
    )


def test_fig45_2d_grid(benchmark):
    n = 12  # tiles per side
    program = generate(grid2d_spec(w=2))
    params = {"M": n * 2 - 1}

    def run():
        return {
            scheme: execute(program, params, priority_scheme=scheme).memory
            for scheme in SCHEMES
        }

    memory = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"FIG45 2-D {n}x{n} tiling: peak buffered edges by priority",
        f"{'scheme':>14} {'peak edges':>10} {'peak cells':>10}",
    ]
    for scheme in SCHEMES:
        m = memory[scheme]
        lines.append(
            f"{scheme:>14} {m['peak_edges']:>10} {m['peak_cells']:>10}"
        )
    lines.append(
        f"paper analysis: column-major n+1 = {n + 1}, "
        f"level-set 2(n-1) = {2 * (n - 1)}"
    )
    write_report("fig45_grid2d", "\n".join(lines))
    assert memory["column-major"]["peak_edges"] == n + 1
    assert memory["level-set"]["peak_edges"] == 2 * (n - 1)


def test_fig45_bandit_4d(benchmark):
    from _common import bandit2_program

    program = generate(
        ProblemSpec.create(
            name="bandit2-small",
            loop_vars=["s1", "f1", "s2", "f2"],
            params=["N"],
            constraints=[
                "s1 >= 0", "f1 >= 0", "s2 >= 0", "f2 >= 0",
                "s1 + f1 + s2 + f2 <= N",
            ],
            templates={
                "a": [1, 0, 0, 0], "b": [0, 1, 0, 0],
                "c": [0, 0, 1, 0], "d": [0, 0, 0, 1],
            },
            tile_widths=3,
            lb_dims=("s1", "f1"),
            kernel=lambda point, deps, params: 1.0,
        )
    )
    params = {"N": 20}

    def run():
        return {
            scheme: execute(program, params, priority_scheme=scheme).memory
            for scheme in SCHEMES
        }

    memory = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "FIG45 4-D bandit N=20 w=3: peak buffered cells by priority",
        f"{'scheme':>14} {'peak edges':>10} {'peak cells':>10}",
    ]
    for scheme in SCHEMES:
        m = memory[scheme]
        lines.append(
            f"{scheme:>14} {m['peak_edges']:>10} {m['peak_cells']:>10}"
        )
    ratio = (
        memory["level-set"]["peak_cells"]
        / memory["column-major"]["peak_cells"]
    )
    lines.append(
        f"level-set / column-major peak-cell ratio: {ratio:.2f} "
        "(paper: approaches d in d dimensions)"
    )
    write_report("fig45_bandit4d", "\n".join(lines))
    # Level-set must buffer strictly more than column-major in 4-D.
    assert (
        memory["level-set"]["peak_cells"]
        > memory["column-major"]["peak_cells"]
    )
