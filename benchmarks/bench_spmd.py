"""SPMD — process-backend wall clock vs the single-rank wavefront path.

Measures 2-D LCS (N = 2048, 32-wide tiles — the WAVE benchmark's dense
shape) three ways:

* ``ranks=1, mode="wavefront"`` — the fastest single-core path;
* ``ranks=4, backend="inline"``  — the cooperative oracle, which pays
  the full SPMD protocol on one core (a slowdown by construction);
* ``ranks=4, backend="process"`` — four real workers over shared-memory
  ghost arrays (:mod:`repro.runtime.parallel`).

Parity (objective and cell counts) is asserted on the benchmark
instances themselves.  The process rows only translate into wall-clock
wins when real cores back the workers, so ``cpu_count`` is recorded in
every row and the speedup acceptance test gates on it: on a >= 4-core
machine the 4-worker run must beat single-rank wavefront by > 1.5x; on
smaller machines the benchmark still runs and reports honest numbers
but asserts parity only.  Full runs write ``BENCH_spmd.json`` at the
repository root; ``--quick`` uses a small instance and writes only the
textual report under ``benchmarks/out/``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.generator import generate
from repro.problems import lcs_spec, random_sequence
from repro.runtime import TileGraph, execute

from _common import write_bench_json, write_report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_spmd.json"

LCS_N = 2048
LCS_TILE = 32
QUICK_LCS_N = 256
RANKS = 4


def _measure(program, params, graph, repeats, **kwargs):
    execute(program, params, graph=graph, **kwargs)  # warm-up
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = execute(program, params, graph=graph, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return result, best


def run_bench(repeats=2, quick=False, ranks=RANKS):
    n = QUICK_LCS_N if quick else LCS_N
    a = random_sequence(n, seed=81)
    b = random_sequence(n, seed=82)
    program = generate(lcs_spec([a, b], tile_width=min(LCS_TILE, n)))
    params = {"L1": n, "L2": n}
    graph = TileGraph.build(program, params)

    single, t_single = _measure(
        program, params, graph, repeats, mode="wavefront"
    )
    inline, t_inline = _measure(
        program, params, graph, repeats, mode="wavefront", ranks=ranks
    )
    proc, t_proc = _measure(
        program, params, graph, repeats, mode="wavefront", ranks=ranks,
        backend="process",
    )
    assert proc.objective_value == single.objective_value
    assert proc.objective_value == inline.objective_value
    assert proc.cells_computed == single.cells_computed
    assert proc.cross_rank_messages == inline.cross_rank_messages

    cells = single.cells_computed
    row = {
        "case": f"lcs2-n{n}",
        "params": dict(params),
        "ranks": ranks,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "objective": proc.objective_value,
        "cross_rank_messages": proc.cross_rank_messages,
        "single_rank_wavefront_s": t_single,
        "inline_4rank_s": t_inline,
        "process_4rank_s": t_proc,
        "single_cells_per_s": cells / t_single,
        "process_cells_per_s": cells / t_proc,
        "speedup_vs_single": t_single / t_proc,
        "speedup_vs_inline": t_inline / t_proc,
    }
    rows = [row]
    if not quick:
        write_bench_json(BENCH_JSON, rows)
    write_report(
        "spmd",
        f"SPMD {row['case']}: {cells} cells on {os.cpu_count()} cpus | "
        f"1-rank wavefront {t_single * 1e3:.0f}ms | "
        f"{ranks}-rank inline {t_inline * 1e3:.0f}ms | "
        f"{ranks}-rank process {t_proc * 1e3:.0f}ms | "
        f"vs single {row['speedup_vs_single']:.2f}x | "
        f"vs inline {row['speedup_vs_inline']:.2f}x",
    )
    return rows


def test_process_backend_speedup():
    rows = run_bench()
    row = rows[0]
    # Wall-clock wins need real cores under the workers: on one CPU the
    # four processes time-slice the same compute plus fork/IPC overhead
    # and are honestly slower, so the speedup bars gate on cpu_count
    # and parity (asserted inside run_bench) is the single-core
    # acceptance bar.
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        # Real workers beat the cooperative harness at equal rank count
        # (it serializes the same protocol on one core).
        assert row["speedup_vs_inline"] > 1.0
    if cpus >= 4:
        assert row["speedup_vs_single"] > 1.5


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instance, no JSON update (CI smoke mode)",
    )
    args = parser.parse_args()
    run_bench(repeats=1 if args.quick else 2, quick=args.quick)
