"""WAVE — per-tile vector engine vs wavefront-fused batch execution.

Measures end-to-end ``execute(mode="vector")`` against
``execute(mode="wavefront")`` on the two shapes that bracket the fused
path's regimes:

* 2-D LCS at N = 2048 with 32-wide tiles — 65-tile-long fronts of dense
  full tiles, where batch draining amortizes the per-tile Python cost
  (ghost allocation, pack/unpack round-trips, per-tile validity) over
  whole fronts; and
* the 4-D 2-arm bandit at N = 60 — thousands of tiny ragged tiles where
  the per-tile path is pure scheduling overhead and fronts are huge.

The same two shapes also time the dynamic heap against the static
wavefront-level schedule policy (``execute(schedule=...)``), asserting
bit-identical objectives and recording the timings as
``BENCH_schedule.json`` — the executed-side companion to the simulated
tradeoff ``repro-tune`` sweeps.  No speedup gate is placed on the
policy rows: in-process Python timing is too noisy to stake a
dynamic-vs-static verdict on, the rows exist to track the trajectory.

Bit-identity is asserted on the benchmark instances themselves
(objective and cell counts).  Full runs write ``BENCH_wavefront.json``
and ``BENCH_schedule.json`` at the repository root so later PRs can
track the trajectory; ``--quick`` uses small instances and writes only
the textual report under ``benchmarks/out/`` (it never touches the
committed JSON).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.generator import generate
from repro.problems import lcs_spec, random_sequence, two_arm_spec
from repro.runtime import TileGraph, execute

from _common import write_bench_json, write_report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_wavefront.json"
BENCH_SCHEDULE_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_schedule.json"
)

LCS_N = 2048
LCS_TILE = 32
BANDIT_N = 60
BANDIT_TILE = 8

QUICK_LCS_N = 256
QUICK_BANDIT_N = 16


def _measure(program, params, mode, repeats, schedule="dynamic"):
    graph = TileGraph.build(program, params)
    # Warm-up triggers the one-time per-program compilation (scanner,
    # vector engine, wavefront geometry, static levels).
    execute(program, params, graph=graph, mode=mode, schedule=schedule)
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = execute(
            program, params, graph=graph, mode=mode, schedule=schedule
        )
        best = min(best, time.perf_counter() - t0)
    return result, best


def _bench_case(name, program, params, repeats):
    vector, t_v = _measure(program, params, "vector", repeats)
    wave, t_w = _measure(program, params, "wavefront", repeats)
    assert wave.objective_value == vector.objective_value
    assert wave.cells_computed == vector.cells_computed
    cells = vector.cells_computed
    return {
        "case": name,
        "params": dict(params),
        "tile_widths": dict(program.spec.tile_widths),
        "cells": cells,
        "objective": wave.objective_value,
        "vector_s": t_v,
        "wavefront_s": t_w,
        "vector_cells_per_s": cells / t_v,
        "wavefront_cells_per_s": cells / t_w,
        "speedup": t_v / t_w,
    }


def _bench_schedule_case(name, program, params, repeats):
    dyn, t_d = _measure(program, params, "wavefront", repeats)
    stat, t_s = _measure(
        program, params, "wavefront", repeats, schedule="static"
    )
    assert stat.objective_value == dyn.objective_value
    assert stat.cells_computed == dyn.cells_computed
    cells = dyn.cells_computed
    return {
        "case": name,
        "params": dict(params),
        "tile_widths": dict(program.spec.tile_widths),
        "cells": cells,
        "objective": stat.objective_value,
        "dynamic_s": t_d,
        "static_s": t_s,
        "dynamic_cells_per_s": cells / t_d,
        "static_cells_per_s": cells / t_s,
        "static_over_dynamic": t_d / t_s,
    }


def run_bench(repeats=2, quick=False):
    lcs_n = QUICK_LCS_N if quick else LCS_N
    bandit_n = QUICK_BANDIT_N if quick else BANDIT_N
    a = random_sequence(lcs_n, seed=71)
    b = random_sequence(lcs_n, seed=72)
    lcs_program = generate(lcs_spec([a, b], tile_width=min(LCS_TILE, lcs_n)))
    bandit_program = generate(two_arm_spec(tile_width=BANDIT_TILE))
    rows = [
        _bench_case(
            "lcs2", lcs_program, {"L1": lcs_n, "L2": lcs_n}, repeats
        ),
        _bench_case("bandit2", bandit_program, {"N": bandit_n}, repeats),
    ]
    schedule_rows = [
        _bench_schedule_case(
            "lcs2", lcs_program, {"L1": lcs_n, "L2": lcs_n}, repeats
        ),
        _bench_schedule_case(
            "bandit2", bandit_program, {"N": bandit_n}, repeats
        ),
    ]
    if not quick:
        write_bench_json(BENCH_JSON, rows)
        write_bench_json(BENCH_SCHEDULE_JSON, schedule_rows)
    lines = []
    for r in rows:
        lines.append(
            f"WAVE {r['case']}: {r['cells']} cells | "
            f"vector {r['vector_cells_per_s'] / 1e6:.2f}M cells/s | "
            f"wavefront {r['wavefront_cells_per_s'] / 1e6:.2f}M cells/s | "
            f"speedup {r['speedup']:.1f}x"
        )
    for r in schedule_rows:
        lines.append(
            f"SCHED {r['case']}: {r['cells']} cells | "
            f"dynamic {r['dynamic_cells_per_s'] / 1e6:.2f}M cells/s | "
            f"static {r['static_cells_per_s'] / 1e6:.2f}M cells/s | "
            f"static/dynamic {r['static_over_dynamic']:.2f}x"
        )
    write_report("wavefront", "\n".join(lines))
    return rows


def test_wavefront_fusion():
    rows = run_bench()
    lcs_row = next(r for r in rows if r["case"] == "lcs2")
    bandit_row = next(r for r in rows if r["case"] == "bandit2")
    # The acceptance bar: batch draining must beat tile-at-a-time by a
    # wide margin on both dense-front and many-tiny-tile shapes.
    assert lcs_row["speedup"] >= 5.0
    assert bandit_row["speedup"] >= 5.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances, no JSON update (CI smoke mode)",
    )
    args = parser.parse_args()
    run_bench(repeats=1 if args.quick else 2, quick=args.quick)
