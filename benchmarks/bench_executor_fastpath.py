"""EXEC — interpreter vs vectorized fast-path throughput.

Measures cells/second of ``execute(mode="interpret")`` against
``execute(mode="vector")`` on the two shapes the fast path targets:

* 2-D LCS at N = 512 (large dense wavefronts, the best case), and
* the 4-D 2-arm bandit (simplex space: ragged tiles, masked lanes).

Results go to ``BENCH_executor.json`` at the repository root so later
PRs can track the trajectory, plus the usual textual report in
``benchmarks/out/``.  The vector results are asserted equal to the
interpreter's here, on the benchmark instances themselves.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.generator import generate
from repro.problems import lcs_spec, random_sequence, two_arm_spec
from repro.runtime import TileGraph, execute

from _common import write_bench_json, write_report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_executor.json"

LCS_N = 512
LCS_TILE = 128
BANDIT_N = 40
BANDIT_TILE = 10

QUICK_LCS_N = 128
QUICK_BANDIT_N = 16


def _measure(program, params, mode, repeats=1):
    graph = TileGraph.build(program, params)
    # Warm-up triggers the one-time per-program compilation (scanner,
    # checks, vector engine) so the steady-state loop is what's timed.
    execute(program, params, graph=graph, mode=mode)
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = execute(program, params, graph=graph, mode=mode)
        best = min(best, time.perf_counter() - t0)
    return result, best


def _bench_case(name, program, params, repeats):
    interp, t_i = _measure(program, params, "interpret", repeats)
    vector, t_v = _measure(program, params, "vector", repeats)
    assert vector.objective_value == interp.objective_value
    assert vector.cells_computed == interp.cells_computed
    cells = interp.cells_computed
    return {
        "case": name,
        "params": dict(params),
        "tile_widths": dict(program.spec.tile_widths),
        "cells": cells,
        "interpret_s": t_i,
        "vector_s": t_v,
        "interpret_cells_per_s": cells / t_i,
        "vector_cells_per_s": cells / t_v,
        "speedup": t_i / t_v,
    }


def run_bench(repeats=2, quick=False):
    lcs_n = QUICK_LCS_N if quick else LCS_N
    bandit_n = QUICK_BANDIT_N if quick else BANDIT_N
    a = random_sequence(lcs_n, seed=71)
    b = random_sequence(lcs_n, seed=72)
    lcs_program = generate(lcs_spec([a, b], tile_width=min(LCS_TILE, lcs_n)))
    bandit_program = generate(two_arm_spec(tile_width=BANDIT_TILE))
    rows = [
        _bench_case(
            "lcs2", lcs_program, {"L1": lcs_n, "L2": lcs_n}, repeats
        ),
        _bench_case("bandit2", bandit_program, {"N": bandit_n}, repeats),
    ]
    if not quick:
        write_bench_json(BENCH_JSON, rows)
    lines = []
    for r in rows:
        lines.append(
            f"EXEC {r['case']}: {r['cells']} cells | "
            f"interpret {r['interpret_cells_per_s'] / 1e3:.0f}k cells/s | "
            f"vector {r['vector_cells_per_s'] / 1e3:.0f}k cells/s | "
            f"speedup {r['speedup']:.1f}x"
        )
    write_report("exec_fastpath", "\n".join(lines))
    return rows


def test_exec_fastpath():
    rows = run_bench()
    lcs_row = next(r for r in rows if r["case"] == "lcs2")
    # The acceptance bar: the fast path must be worth its complexity.
    assert lcs_row["speedup"] >= 5.0
    for r in rows:
        assert r["speedup"] > 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances, no JSON update (CI smoke mode)",
    )
    args = parser.parse_args()
    run_bench(repeats=1 if args.quick else 2, quick=args.quick)
