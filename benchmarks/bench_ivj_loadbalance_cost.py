"""IVJ — Section IV-J's claim: load balancing costs O(n^j), small constant.

Paper: "In general, the load balancing used by the generated code takes
O(n^j) time.  However, the actual constant is small because the number
of tiles is a small fraction of the total number of locations."

Reproduction: time the dimension-cut balancer (slab-work counting plus
the cut) over a sweep of problem sizes with j = 2 lb dimensions, and
compare against the total location count: the balancer touches ~n^2
slabs while the problem holds ~n^4/24 locations.
"""

import time

import pytest

from repro.generator import balance_dimension_cut, compute_slab_work

from _common import bandit2_program, write_report

SIZES = [60, 100, 140, 180]


def test_ivj_loadbalance_cost(benchmark):
    program = bandit2_program()
    spaces = program.spaces

    rows = []
    for n in SIZES:
        params = {"N": n}
        t0 = time.perf_counter()
        works = compute_slab_work(spaces, params)
        lb = balance_dimension_cut(spaces, params, 8, slab_work=works)
        elapsed = time.perf_counter() - t0
        rows.append((n, len(works), lb.total_work, elapsed))

    benchmark.pedantic(
        lambda: balance_dimension_cut(spaces, {"N": SIZES[-1]}, 8),
        rounds=1,
        iterations=1,
    )

    lines = [
        "IVJ 2-arm bandit: load-balancing cost vs problem size (j = 2)",
        f"{'N':>5} {'slabs':>7} {'locations':>12} {'lb time(ms)':>12} "
        f"{'slabs/locations':>16}",
    ]
    for n, slabs, total, elapsed in rows:
        lines.append(
            f"{n:>5} {slabs:>7} {total:>12} {elapsed * 1e3:>12.2f} "
            f"{slabs / total:>16.2e}"
        )
    lines.append(
        "paper reference: O(n^j) with a small constant — slabs are a "
        "small fraction of locations"
    )
    write_report("ivj_loadbalance", "\n".join(lines))

    # Slab count grows ~quadratically while locations grow ~quartically,
    # so the slab/location ratio must shrink.
    ratios = [slabs / total for _, slabs, total, _ in rows]
    assert ratios == sorted(ratios, reverse=True)
    # And the balancer stays fast in absolute terms.
    assert rows[-1][3] < 5.0
