"""VIC-TILE — Section VI-C: the tile-size sweep.

Paper: "For some problems the tile size can have a huge effect on the
performance, especially if the tile size is very large.  This is due to
the pipelined nature of the load balancing algorithm used.  A large tile
can cause starvation while neighboring nodes wait for data ... For the
3-arm bandit a large tile width of 15 allowed better throughput for 4
nodes or less" (but compounds delays on more nodes).

Reproduction: sweep the 3-arm bandit tile width at fixed N on 1 and 8
simulated nodes.  Shape target: on one node, larger tiles help (less
per-tile overhead) until parallelism runs out; on 8 nodes the largest
width loses to a mid-size width — the crossover the paper describes.
"""

import pytest

from repro.generator import generate
from repro.problems import three_arm_spec
from repro.runtime import TileGraph
from repro.simulate import MachineModel, simulate_program

from _common import write_report

WIDTHS = [3, 5, 8, 15]
N = 45


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for w in WIDTHS:
        program = generate(three_arm_spec(tile_width=w))
        graph = TileGraph.build(program, {"N": N})
        row = {}
        for nodes in (1, 4, 8):
            m = MachineModel(nodes=nodes, cores_per_node=24)
            res = simulate_program(program, {"N": N}, m, graph=graph)
            row[nodes] = res
        out[w] = (len(graph.tiles), row)
    return out


def test_vic_tile_sweep(benchmark, sweep_results):
    benchmark.pedantic(lambda: sweep_results, rounds=1, iterations=1)
    lines = [
        f"VIC-TILE 3-arm bandit N={N}: makespan (ms) by tile width",
        f"{'width':>6} {'tiles':>7} {'1 node':>10} {'4 nodes':>10} "
        f"{'8 nodes':>10} {'eff@8':>7}",
    ]
    for w, (ntiles, row) in sweep_results.items():
        lines.append(
            f"{w:>6} {ntiles:>7} "
            f"{row[1].makespan_s * 1e3:>10.3f} "
            f"{row[4].makespan_s * 1e3:>10.3f} "
            f"{row[8].makespan_s * 1e3:>10.3f} "
            f"{row[8].efficiency:>7.1%}"
        )
    lines.append(
        "paper reference: width 15 good for <= 4 nodes, starves the "
        "8-node pipeline"
    )
    write_report("vic_tile_sweep", "\n".join(lines))

    # Shape: the best width at 8 nodes is not the largest width.
    best_width_8 = min(
        sweep_results, key=lambda w: sweep_results[w][1][8].makespan_s
    )
    assert best_width_8 != WIDTHS[-1]
    # The largest width pays a bigger relative penalty on 8 nodes than a
    # mid-size width does (the compounding-starvation effect).
    mid, big = WIDTHS[1], WIDTHS[-1]
    rel_mid = (
        sweep_results[mid][1][8].makespan_s
        / sweep_results[mid][1][1].makespan_s
    )
    rel_big = (
        sweep_results[big][1][8].makespan_s
        / sweep_results[big][1][1].makespan_s
    )
    assert rel_big > rel_mid
