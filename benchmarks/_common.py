"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts and
writes the reproduced rows/series to ``benchmarks/out/<exp>.txt`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed by
re-running ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import datetime
import functools
import json
import os
from pathlib import Path

from repro.generator import generate
from repro.problems import (
    delayed_two_arm_spec,
    lcs_spec,
    msa_spec,
    random_sequence,
    three_arm_spec,
    two_arm_spec,
)
from repro.runtime import TileGraph

OUT_DIR = Path(__file__).resolve().parent / "out"

#: Schema of the committed ``BENCH_*.json`` snapshots (see
#: :func:`write_bench_json`); bump when the envelope changes shape.
BENCH_SCHEMA_VERSION = 1


def write_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def write_bench_json(path: Path, rows: list, **extra) -> None:
    """Write a ``BENCH_*.json`` snapshot in the shared envelope.

    Every committed benchmark snapshot carries the same four top-level
    keys — ``schema_version``, ``cpu_count`` (the host that produced
    it), ``timestamp`` (UTC, ISO-8601) and ``rows`` — so trajectory
    tooling can diff any pair of files without per-benchmark parsing.
    Benchmark-specific scalars (e.g. a cached-lookup timing) ride along
    as *extra* keys after the common ones.
    """
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "cpu_count": os.cpu_count(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "rows": rows,
    }
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2) + "\n")


@functools.lru_cache(maxsize=None)
def bandit2_program(tile_width: int = 10):
    return generate(two_arm_spec(tile_width=tile_width))


@functools.lru_cache(maxsize=None)
def bandit3_program(tile_width: int = 5):
    return generate(three_arm_spec(tile_width=tile_width))


@functools.lru_cache(maxsize=None)
def delayed_program(tile_width: int = 4):
    return generate(delayed_two_arm_spec(tile_width=tile_width))


@functools.lru_cache(maxsize=None)
def lcs3_program(length: int = 220, tile_width: int = 16):
    strings = [random_sequence(length + 8 * k, seed=900 + k) for k in range(3)]
    return generate(lcs_spec(strings, tile_width=tile_width))


@functools.lru_cache(maxsize=None)
def msa3_program(length: int = 60, tile_width: int = 10):
    strings = [random_sequence(length + 4 * k, seed=900 + k) for k in range(3)]
    return generate(msa_spec(strings, tile_width=tile_width))


@functools.lru_cache(maxsize=None)
def graph_for(kind: str, n: int):
    """Cached tile graphs keyed by problem kind and size."""
    if kind == "bandit2":
        program = bandit2_program()
        params = {"N": n}
    elif kind == "bandit3":
        program = bandit3_program()
        params = {"N": n}
    elif kind == "delayed":
        program = delayed_program()
        params = {"N": n}
    elif kind == "lcs3":
        program = lcs3_program()
        params = {
            p: min(n, v)
            for p, v in zip(
                program.spec.params,
                (len(s) for s in _lcs_strings(program)),
            )
        }
    else:
        raise ValueError(kind)
    return program, params, TileGraph.build(program, params)


def _lcs_strings(program):
    # lengths recorded in the objective point
    return [
        "x" * program.spec.objective_point[v] for v in program.spec.loop_vars
    ]
