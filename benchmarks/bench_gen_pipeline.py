"""GEN — generator throughput (the "quickly and easily" claim).

Not a table in the paper, but the premise of the tool: turning the
high-level description into a full program must be fast.  This bench
times the Section IV pipeline and both backends for every problem in
the suite, and measures the Fourier–Motzkin redundancy-pruning ablation
(DESIGN.md: syntactic vs LP-backed pruning).
"""

import time

import pytest

from repro.generator import generate
from repro.generator.cgen import emit_c_program
from repro.generator.pygen import emit_python_program
from repro.problems import (
    delayed_two_arm_spec,
    edit_distance_spec,
    lcs_spec,
    msa_spec,
    random_sequence,
    three_arm_spec,
    two_arm_spec,
)

from _common import write_report

SPECS = {
    "bandit2": lambda: two_arm_spec(tile_width=8),
    "bandit3": lambda: three_arm_spec(tile_width=5),
    "delayed": lambda: delayed_two_arm_spec(tile_width=4),
    "edit": lambda: edit_distance_spec(
        random_sequence(40, 1), random_sequence(36, 2), tile_width=8
    ),
    "lcs3": lambda: lcs_spec(
        [random_sequence(30 + k, 10 + k) for k in range(3)], tile_width=8
    ),
    "msa3": lambda: msa_spec(
        [random_sequence(30 + k, 10 + k) for k in range(3)], tile_width=8
    ),
}


@pytest.mark.parametrize("name", list(SPECS), ids=list(SPECS))
def test_gen_pipeline(benchmark, name):
    spec = SPECS[name]()
    program = benchmark.pedantic(
        lambda: generate(spec), rounds=3, iterations=1
    )
    t0 = time.perf_counter()
    c_src = emit_c_program(program)
    c_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    py_src = emit_python_program(program)
    py_s = time.perf_counter() - t0
    lines = [
        f"GEN {name}: pipeline {program.stats.total_s * 1e3:.1f} ms "
        f"(spaces {program.stats.spaces_s * 1e3:.1f}, "
        f"packing {program.stats.packing_s * 1e3:.1f}), "
        f"C emit {c_s * 1e3:.1f} ms ({len(c_src.splitlines())} lines), "
        f"Py emit {py_s * 1e3:.1f} ms ({len(py_src.splitlines())} lines)",
    ]
    write_report(f"gen_{name}", "\n".join(lines))
    assert program.stats.total_s < 10.0


def test_gen_prune_ablation(benchmark):
    spec = three_arm_spec(tile_width=5)

    def run():
        out = {}
        for prune in ("syntactic", "lp"):
            t0 = time.perf_counter()
            program = generate(spec, prune=prune)
            out[prune] = (
                time.perf_counter() - t0,
                len(program.spaces.tile_space),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "GEN prune ablation (3-arm bandit, 6-D):",
        f"{'prune':>10} {'time(ms)':>10} {'tile-space constraints':>24}",
    ]
    for prune, (elapsed, n_cons) in results.items():
        lines.append(f"{prune:>10} {elapsed * 1e3:>10.1f} {n_cons:>24}")
    write_report("gen_prune_ablation", "\n".join(lines))
    # LP pruning yields no more constraints than syntactic pruning.
    assert results["lp"][1] <= results["syntactic"][1]
