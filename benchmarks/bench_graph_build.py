"""GRAPH — array-native tile-graph construction vs the dict-based builder.

Times :meth:`TileGraph.build` (vectorized tile enumeration, batched
point counting, CSR edge assembly) against
:func:`repro.runtime.graph.build_tile_graph_dicts` (the legacy per-tile
loop kept as the reference oracle) on the two shapes the issue pins:

* 2-D LCS at N = 2048 with 32-wide tiles (4k tiles, dense wavefronts),
* the 4-D 2-arm bandit at N = 60 (simplex space, ragged boundary).

Also measures end-to-end ``execute(mode="auto")`` wall time including
graph construction down each path, asserting the array path never
loses.  Results go to ``BENCH_graph.json`` at the repository root plus
the usual textual report in ``benchmarks/out/``.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.generator import generate
from repro.problems import lcs_spec, random_sequence, two_arm_spec
from repro.runtime import TileGraph, build_tile_graph_dicts, execute
from repro.runtime.graph import tile_graph

from _common import write_bench_json, write_report

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_graph.json"

LCS_N = 2048
LCS_TILE = 32
BANDIT_N = 60
BANDIT_TILE = 8

QUICK_LCS_N = 256
QUICK_BANDIT_N = 24


def _best(fn, repeats):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _bench_case(name, program, params, repeats):
    # Warm-up: trigger the one-time nest compilations both builders
    # share, so the timed region is graph assembly, not codegen.
    TileGraph.build(program, params)
    dicts, t_dict = _best(
        lambda: build_tile_graph_dicts(program, params), repeats
    )
    graph, t_array = _best(
        lambda: TileGraph.build(program, params), repeats
    )
    tiles, producers, _, work, edge_cells = dicts
    legacy = TileGraph.from_dicts(
        program, params, tiles, producers, work, edge_cells
    )
    assert graph.tiles == legacy.tiles
    assert graph.edge_cells == legacy.edge_cells

    # End to end: graph construction + execute(mode="auto"), one result
    # per path, solutions asserted identical.
    def run_legacy():
        t, p, _, w, e = build_tile_graph_dicts(program, params)
        g = TileGraph.from_dicts(program, params, t, p, w, e)
        return execute(program, params, graph=g, mode="auto")

    def run_array():
        return execute(
            program, params, graph=TileGraph.build(program, params),
            mode="auto",
        )

    # Graph construction is a small slice of a full solve, so the
    # end-to-end comparison interleaves the two paths and takes the
    # best of several runs — machine-load drift hits both equally
    # instead of whichever block ran second.
    exec_repeats = max(repeats, 4) if repeats > 1 else 1
    t_exec_legacy = t_exec_array = float("inf")
    res_legacy = res_array = None
    for i in range(exec_repeats):
        pair = [("legacy", run_legacy), ("array", run_array)]
        if i % 2:
            pair.reverse()
        for which, fn in pair:
            t0 = time.perf_counter()
            out = fn()
            dt = time.perf_counter() - t0
            if which == "legacy":
                res_legacy = out
                t_exec_legacy = min(t_exec_legacy, dt)
            else:
                res_array = out
                t_exec_array = min(t_exec_array, dt)
    assert res_array.objective_value == res_legacy.objective_value
    assert res_array.tile_order == res_legacy.tile_order

    return {
        "case": name,
        "params": dict(params),
        "tile_widths": dict(program.spec.tile_widths),
        "tiles": len(graph.tile_tuples),
        "edges": graph.num_edges(),
        "cells": graph.total_work(),
        "dict_build_s": t_dict,
        "array_build_s": t_array,
        "build_speedup": t_dict / t_array,
        "exec_legacy_s": t_exec_legacy,
        "exec_array_s": t_exec_array,
        "exec_speedup": t_exec_legacy / t_exec_array,
    }


def run_bench(repeats=2, quick=False):
    lcs_n = QUICK_LCS_N if quick else LCS_N
    bandit_n = QUICK_BANDIT_N if quick else BANDIT_N
    a = random_sequence(lcs_n, seed=81)
    b = random_sequence(lcs_n, seed=82)
    lcs_program = generate(lcs_spec([a, b], tile_width=LCS_TILE))
    bandit_program = generate(two_arm_spec(tile_width=BANDIT_TILE))
    rows = [
        _bench_case(
            "lcs2", lcs_program, {"L1": lcs_n, "L2": lcs_n}, repeats
        ),
        _bench_case("bandit2", bandit_program, {"N": bandit_n}, repeats),
    ]
    # The shared per-program cache answers repeat calls without any
    # rebuild at all — report the amortized lookup as well.
    _, t_cached = _best(
        lambda: tile_graph(lcs_program, {"L1": lcs_n, "L2": lcs_n}), 3
    )
    if not quick:
        write_bench_json(BENCH_JSON, rows, cached_lookup_s=t_cached)
    lines = []
    for r in rows:
        lines.append(
            f"GRAPH {r['case']}: {r['tiles']} tiles, {r['edges']} edges | "
            f"dict {r['dict_build_s'] * 1e3:.1f}ms | "
            f"array {r['array_build_s'] * 1e3:.1f}ms | "
            f"build speedup {r['build_speedup']:.1f}x | "
            f"exec auto {r['exec_legacy_s']:.2f}s -> {r['exec_array_s']:.2f}s"
        )
    lines.append(f"GRAPH cached lookup: {t_cached * 1e6:.1f}us")
    write_report("graph_build", "\n".join(lines))
    return rows


def test_graph_build():
    rows = run_bench()
    for r in rows:
        # The acceptance bar: array-native construction must be worth
        # its complexity on both shapes, and end-to-end must not lose
        # (the build advantage is ~1% of a full solve, so the exec gate
        # allows kernel-time measurement noise).
        assert r["build_speedup"] >= 5.0, r
        assert r["exec_speedup"] >= 0.95, r


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small instances, no JSON update (CI smoke mode)",
    )
    args = parser.parse_args()
    run_bench(repeats=1 if args.quick else 2, quick=args.quick)
