"""IVK — Section IV-K's claim: initial tile generation is cheap.

Paper: "Currently, this initial tile generation is executed in serial
because it is a small fraction of total run time, typically < 0.5%, for
even the largest runs."

Reproduction: the *generated C program* times its own face-scan seeding
(``init_scan``) against its worker-loop time; we compile and run it at a
size large enough for the ratio to be meaningful.  The Python face scan
is additionally checked against the exhaustive oracle for the same
instance (correctness, and the fact that it inspects only boundary
regions).
"""

import shutil
import subprocess

import pytest

from repro.generator import (
    generate,
    initial_tiles_exhaustive,
    initial_tiles_face_scan,
)
from repro.generator.cgen import emit_c_program
from repro.problems import two_arm_spec

from _common import write_report

N = 220


def test_ivk_initial_tile_cost(benchmark, tmp_path):
    if shutil.which("gcc") is None:
        pytest.skip("gcc not available")
    program = generate(two_arm_spec(tile_width=10))
    src = emit_c_program(program)
    cpath = tmp_path / "bandit2.c"
    binpath = tmp_path / "bandit2"
    cpath.write_text(src)
    build = subprocess.run(
        ["gcc", "-O2", "-std=c99", "-fopenmp", str(cpath), "-o", str(binpath), "-lm"],
        capture_output=True,
        text=True,
    )
    assert build.returncode == 0, build.stderr

    def run():
        out = subprocess.run(
            [str(binpath), str(N)],
            capture_output=True,
            text=True,
            env={"OMP_NUM_THREADS": "1"},
        )
        assert out.returncode == 0, out.stderr
        return out.stdout

    stdout = benchmark.pedantic(run, rounds=1, iterations=1)
    fields = {}
    for line in stdout.splitlines():
        toks = line.split()
        for key, value in zip(toks[::2], toks[1::2]):
            fields[key] = value
    total_s = float(fields["time"])
    scan_s = float(fields["init_scan"])
    fraction = scan_s / total_s

    # Cross-check the Python implementation on a smaller instance.
    small = {"N": 60}
    face = initial_tiles_face_scan(program.spaces, small)
    exhaustive = initial_tiles_exhaustive(program.spaces, small)
    assert face == exhaustive

    lines = [
        f"IVK generated C program, 2-arm bandit N={N} (1 thread):",
        f"worker loop time    : {total_s * 1e3:.1f} ms "
        f"({fields['cells']} cells)",
        f"initial tile scan   : {scan_s * 1e3:.3f} ms",
        f"fraction of runtime : {fraction:.3%}",
        f"load balance time   : {float(fields['lb_time']) * 1e3:.3f} ms",
        "paper reference: typically < 0.5% of total run time",
    ]
    write_report("ivk_initial_tiles", "\n".join(lines))
    assert fraction < 0.005, f"scan is {fraction:.2%} of runtime"
