"""FIG8 — Section VII-B / Figure 8: hyperplane load balancing.

Paper: the dimension-cut balancer "has a tendency to create long
critical paths"; the future-work balancer divides the work with
hyperplanes aligned to the wavefront, and "when using this load
balancing on the 2-arm bandit problem idle times were reduced when
scaling across nodes".

Reproduction: both balancers run on the same tile graph across 2..8
simulated nodes; we report idle fraction and makespan.  Shape target:
hyperplane idle < dimension-cut idle at every node count, with the gap
growing with nodes.  (Both use the same Figure 5 priority, isolating
the balancing method itself — the effect is clearest with the plain
column-major priority, which is also reported.)
"""

import pytest

from repro.runtime import TileGraph
from repro.simulate import MachineModel, simulate

from _common import bandit2_program, write_report

N = 170


@pytest.fixture(scope="module")
def setup():
    program = bandit2_program()
    graph = TileGraph.build(program, {"N": N})
    return program, graph


def test_fig8_hyperplane_vs_dimension_cut(benchmark, setup):
    program, graph = setup

    def run():
        out = {}
        for nodes in (2, 4, 8):
            m = MachineModel(nodes=nodes, cores_per_node=24)
            for method in ("dimension-cut", "hyperplane"):
                lb = program.load_balance({"N": N}, nodes, method=method)
                assign = {
                    t: lb.node_of_tile(t, program.spaces)
                    for t in graph.tiles
                }
                # column-major priority exposes the raw critical path of
                # the cut itself (no downstream-first rescue).
                out[(nodes, method)] = simulate(
                    graph, m, assignment=assign,
                    priority_scheme="column-major",
                    trace=(nodes == 4),
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"FIG8 2-arm bandit N={N}: dimension-cut vs hyperplane balancing",
        f"{'nodes':>6} {'method':>15} {'makespan(ms)':>13} {'idle':>7}",
    ]
    for (nodes, method), res in sorted(results.items()):
        lines.append(
            f"{nodes:>6} {method:>15} {res.makespan_s * 1e3:>13.3f} "
            f"{res.idle_fraction:>7.1%}"
        )
    lines.append(
        "paper reference: hyperplane balancing reduced idle times when "
        "scaling across nodes"
    )
    # Per-node utilization timelines at 4 nodes make the critical-path
    # difference visible: staggered ramps (dimension-cut) vs aligned
    # wavefront bands (hyperplane).
    from repro.simulate import render_timeline

    for method in ("dimension-cut", "hyperplane"):
        res = results[(4, method)]
        lines.append("")
        lines.append(f"4-node utilization timeline, {method}:")
        lines.append(
            render_timeline(
                res.spans, 4, 24, bins=60, makespan_s=res.makespan_s
            )
        )
    write_report("fig8_hyperplane", "\n".join(lines))

    for nodes in (2, 4, 8):
        dim = results[(nodes, "dimension-cut")]
        hyp = results[(nodes, "hyperplane")]
        assert hyp.idle_fraction < dim.idle_fraction
        assert hyp.makespan_s < dim.makespan_s
