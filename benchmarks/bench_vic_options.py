"""VIC-OPT — Section VI-C: send/receive buffers and lb-dimension choice.

Paper: "The options that most effected performance were the tile size,
the number of send and receive buffers, and the dimensions chosen for
load balancing."

Reproduction: (a) sweep the number of concurrent send buffers on a
bandwidth-constrained 4-node cluster; (b) compare load balancing over
one vs two dimensions (the paper's Figure 2 point that too few lb
dimensions balance poorly).
"""

import pytest

from repro.generator import generate
from repro.problems import two_arm_spec
from repro.runtime import TileGraph
from repro.simulate import MachineModel, simulate_program

from _common import write_report

N = 140


def test_vic_send_buffers(benchmark):
    program = generate(two_arm_spec(tile_width=10))
    graph = TileGraph.build(program, {"N": N})
    # A slow link makes buffer counts matter, as on the 2011 testbed.
    base = MachineModel(
        nodes=4, cores_per_node=24, bandwidth_bps=2e8, latency_s=2e-5
    )

    def run():
        return {
            buffers: simulate_program(
                program,
                {"N": N},
                base.with_(send_buffers=buffers),
                graph=graph,
            )
            for buffers in (1, 2, 4, 8)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"VIC-OPT 2-arm bandit N={N}, 4 nodes, constrained link:",
        f"{'buffers':>8} {'makespan(ms)':>13} {'max queue wait(us)':>19}",
    ]
    for buffers, res in results.items():
        lines.append(
            f"{buffers:>8} {res.makespan_s * 1e3:>13.3f} "
            f"{res.max_send_queue_wait_s * 1e6:>19.1f}"
        )
    write_report("vic_send_buffers", "\n".join(lines))
    # More buffers cannot hurt, and queueing delay shrinks.
    assert results[8].makespan_s <= results[1].makespan_s + 1e-12
    assert (
        results[8].max_send_queue_wait_s <= results[1].max_send_queue_wait_s
    )


def test_vic_lb_dimension_choice(benchmark):
    params = {"N": N}
    machine = MachineModel(nodes=8, cores_per_node=24)

    def run():
        out = {}
        for lb_dims in (("s1",), ("s1", "f1")):
            program = generate(two_arm_spec(tile_width=10, lb_dims=lb_dims))
            graph = TileGraph.build(program, params)
            lb = program.load_balance(params, machine.nodes)
            out[lb_dims] = (
                lb.imbalance(),
                simulate_program(program, params, machine, graph=graph),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"VIC-OPT lb-dimension choice, 2-arm bandit N={N}, 8 nodes:",
        f"{'lb dims':>12} {'imbalance':>10} {'makespan(ms)':>13} {'eff':>7}",
    ]
    for lb_dims, (imbalance, res) in results.items():
        lines.append(
            f"{'+'.join(lb_dims):>12} {imbalance:>10.3f} "
            f"{res.makespan_s * 1e3:>13.3f} {res.efficiency:>7.1%}"
        )
    lines.append(
        "paper reference: balancing fewer dimensions than needed "
        "balances work poorly (Figure 2 discussion)"
    )
    write_report("vic_lb_dims", "\n".join(lines))
    one, two = results[("s1",)], results[("s1", "f1")]
    # Refining the cut with a second dimension improves the balance.
    assert two[0] <= one[0] + 1e-9
