"""Command-line interface.

Four entry points (also installed as console scripts):

* ``repro-generate spec.txt -o prog.c``      — spec file to C (or Python)
  program, the paper's main workflow;
* ``repro-run --problem bandit2 N=12``       — solve a built-in problem
  with the in-process tiled runtime and check it against the oracle;
* ``repro-simulate --problem bandit2 N=60 --nodes 4 --cores 24`` —
  scaling study on the simulated cluster;
* ``repro-tune --problem lcs``              — simulator-driven sweep of
  schedule policy x tile widths, cached on disk (see
  :mod:`repro.runtime.tuner`);
* ``repro-lint --all``                        — static analysis of specs,
  kernels, schedules and emitted C (see :mod:`repro.analysis`);
* ``repro-racecheck --all --ranks 2``         — concurrency correctness:
  the static protocol audit (``RPR05x``) plus the dynamic trace
  sanitizer (``RPR06x``) over real executions of every requested
  problem x rank count x backend.

All entry points share one exit-code convention: 0 on success (for the
linter: no error-severity diagnostics), 1 on any :class:`ReproError`
or error-severity finding, 2 on usage errors (argparse).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from .errors import ReproError
from .generator import generate
from .generator.cgen import emit_c_program
from .generator.pygen import emit_python_program
from .problems import REGISTRY, random_sequence
from .runtime import execute
from .spec import ensure_kernel
from .simulate import (
    MachineModel,
    format_scaling_table,
    shared_memory_scaling,
    simulate_program,
)
from .spec import parse_spec_file


def _parse_params(tokens: List[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for tok in tokens:
        if "=" not in tok:
            raise SystemExit(f"parameter {tok!r} must look like NAME=VALUE")
        name, _, value = tok.partition("=")
        try:
            out[name] = int(value)
        except ValueError:
            raise SystemExit(f"parameter value in {tok!r} must be an integer")
    return out


def _builtin_spec(name: str, tile_width: int):
    """Instantiate a built-in problem with demo-sized inputs."""
    if name in ("bandit2", "bandit3", "bandit2-delayed"):
        return REGISTRY[name](tile_width=tile_width)
    if name in ("edit-distance", "damerau", "smith-waterman"):
        return REGISTRY[name](
            random_sequence(40, 1), random_sequence(36, 2), tile_width=tile_width
        )
    if name == "lcs":
        return REGISTRY[name](
            [random_sequence(24, 3), random_sequence(22, 4), random_sequence(20, 5)],
            tile_width=tile_width,
        )
    if name == "msa":
        return REGISTRY[name](
            [random_sequence(20, 6), random_sequence(18, 7), random_sequence(16, 8)],
            tile_width=tile_width,
        )
    if name == "viterbi":
        from .problems import random_hmm

        prior, trans, emit, obs = random_hmm(4, 6, 64, seed=9)
        return REGISTRY[name](prior, trans, emit, obs, tile_width_t=tile_width)
    raise SystemExit(
        f"unknown problem {name!r}; choose one of {sorted(REGISTRY)}"
    )


def _heuristic_widths(program, params):
    """Heuristic tile widths for *program*, or None to keep the spec's.

    Guarded: a width vector that satisfies the per-dimension reach can
    still yield a *cyclic* tile graph (e.g. splitting viterbi's
    bidirectional state dimension), so the candidate is probed by
    building its graph and validating acyclicity before it is adopted.
    """
    from .runtime import tile_graph
    from .runtime.tuner import heuristic_tile_widths, retile_program

    try:
        widths = heuristic_tile_widths(program.spec, params)
        if widths == dict(program.spec.tile_widths):
            return None
        probe = retile_program(program, widths)
        tile_graph(probe, params).validate_acyclic()
        return widths
    except ReproError:
        return None


def _default_params(spec) -> Dict[str, int]:
    """Demo defaults: bandits get N=12; alignment problems take the
    lengths of their embedded strings.

    The logic lives in :func:`repro.analysis.probe.default_params` so
    the linter's probe instantiation and the CLI stay in agreement.
    """
    from .analysis.probe import default_params

    return default_params(spec)


def main_generate(argv=None) -> int:
    """spec file -> generated program (C by default, Python with --target py)."""
    ap = argparse.ArgumentParser(
        prog="repro-generate",
        description="Generate a hybrid OpenMP+MPI program from a problem spec.",
    )
    ap.add_argument("spec", help="problem description file (see docs/spec format)")
    ap.add_argument("-o", "--output", help="output file (default: stdout)")
    ap.add_argument(
        "--target",
        choices=("c", "py", "cuda"),
        default="c",
        help="backend to emit",
    )
    ap.add_argument(
        "--prune",
        choices=("none", "syntactic", "lp"),
        default="syntactic",
        help="Fourier-Motzkin redundancy elimination level",
    )
    ap.add_argument(
        "--describe", action="store_true", help="print the analysis summary"
    )
    args = ap.parse_args(argv)
    try:
        spec = parse_spec_file(args.spec)
        program = generate(spec, prune=args.prune)
        if args.describe:
            print(program.describe(), file=sys.stderr)
        if args.target == "c":
            source = emit_c_program(program)
        elif args.target == "py":
            source = emit_python_program(program)
        else:
            from .generator.cugen import emit_cuda_program

            source = emit_cuda_program(program)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    else:
        sys.stdout.write(source)
    return 0


def main_run(argv=None) -> int:
    """Solve a built-in problem with the in-process tiled runtime."""
    ap = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Run a built-in problem or a problem-description file "
            "through the tiled runtime."
        ),
    )
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--problem", help=f"one of {sorted(REGISTRY)}")
    group.add_argument(
        "--spec",
        help="problem-description file; its center_code_py is compiled "
        "into the runtime kernel",
    )
    ap.add_argument(
        "--tile-width",
        type=int,
        default=None,
        help="tile width for every dimension (default: a heuristic "
        "sized from the problem extents toward O(10^2-10^3) tiles)",
    )
    ap.add_argument(
        "--priority",
        choices=("column-major", "level-set", "lb-first", "lb-last"),
        default="lb-first",
    )
    ap.add_argument(
        "--schedule",
        choices=("dynamic", "static", "auto"),
        default="dynamic",
        help="ready-set policy: 'dynamic' (default) is the priority "
        "heap, 'static' precomputes per-rank wavefront-level buckets, "
        "'auto' asks the simulator-driven tuner (repro-tune) and may "
        "also retile",
    )
    ap.add_argument(
        "--ranks",
        type=int,
        default=1,
        help="SPMD rank count; > 1 partitions tiles with the load "
        "balancer and routes cross-rank edges through in-memory message "
        "queues (and cross-checks the result against a single-rank run)",
    )
    ap.add_argument(
        "--mode",
        choices=("auto", "interpret", "vector", "wavefront"),
        default="auto",
        help="execution engine: 'wavefront' drains whole ready-fronts "
        "through one fused numpy evaluation, 'vector' runs tile-at-a-"
        "time numpy wavefronts, 'interpret' evaluates cell by cell; "
        "'auto' (default) picks the fastest engine the problem supports "
        "and degrades gracefully",
    )
    ap.add_argument(
        "--backend",
        choices=("inline", "process"),
        default="inline",
        help="multi-rank transport: 'inline' (default) interleaves the "
        "ranks cooperatively in this thread (the deterministic oracle); "
        "'process' runs one OS worker per rank over shared-memory ghost "
        "arrays for real multi-core parallelism (requires --ranks >= 2)",
    )
    ap.add_argument("params", nargs="*", help="NAME=VALUE parameter overrides")
    args = ap.parse_args(argv)
    if args.ranks < 1:
        ap.error(f"--ranks must be >= 1, got {args.ranks}")
    if args.backend == "process" and args.ranks < 2:
        ap.error("--backend process needs --ranks >= 2 (a single-rank "
                 "run has no ranks to parallelize)")
    try:
        if args.spec:
            spec = parse_spec_file(args.spec)
            kernel = ensure_kernel(spec)
        else:
            spec = _builtin_spec(args.problem, args.tile_width or 4)
            kernel = spec.kernel
        params = _default_params(spec)
        params.update(_parse_params(args.params))
        program = generate(spec)
        tile_widths = None
        if args.problem and args.tile_width is None:
            tile_widths = _heuristic_widths(program, params)
        result = execute(
            program, params, kernel=kernel,
            priority_scheme=args.priority, ranks=args.ranks,
            mode=args.mode, backend=args.backend,
            schedule=args.schedule, tile_widths=tile_widths,
        )
        single = None
        if args.ranks > 1:
            # The cross-check reuses the schedule/widths the first run
            # resolved (under --schedule auto the tuner already chose).
            single = execute(
                program, params, kernel=kernel,
                priority_scheme=args.priority, mode=args.mode,
                schedule=result.schedule, tile_widths=result.tile_widths,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(spec.describe())
    print()
    print(f"parameters        : {params}")
    print(f"engine mode       : {result.mode}"
          + (f" ({result.backend} backend)" if args.ranks > 1 else ""))
    print(f"schedule          : {result.schedule}")
    print(f"tile widths       : {result.tile_widths}")
    print(f"tiles executed    : {result.tiles_executed}")
    print(f"cells computed    : {result.cells_computed}")
    print(f"peak edge buffer  : {result.memory['peak_cells']} cells "
          f"({result.memory['peak_edges']} edges)")
    if args.ranks > 1:
        print(f"ranks             : {result.ranks}")
        print(f"tiles per rank    : {result.tiles_per_rank}")
        print(f"peak edges / rank : {result.peak_edge_cells_per_rank} cells")
        print(f"cross-rank msgs   : {result.cross_rank_messages} "
              f"({result.cross_rank_cells} cells)")
        identical = single.objective_value == result.objective_value
        print(f"vs single rank    : objective "
              f"{'bit-identical' if identical else 'MISMATCH'}")
        if not identical:
            print(
                f"error: ranks={args.ranks} objective "
                f"{result.objective_value!r} != ranks=1 objective "
                f"{single.objective_value!r}",
                file=sys.stderr,
            )
            return 1
    if result.objective_value is not None:
        print(f"objective {result.objective_point} = {result.objective_value!r}")
    return 0


def main_simulate(argv=None) -> int:
    """Scaling study on the simulated cluster."""
    ap = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Simulate the generated program on a cluster model.",
    )
    ap.add_argument("--problem", default="bandit2")
    ap.add_argument("--tile-width", type=int, default=8)
    ap.add_argument("--nodes", type=int, default=1)
    ap.add_argument("--cores", type=int, default=24)
    ap.add_argument(
        "--sweep-cores",
        action="store_true",
        help="sweep core counts on one node (Figure 6 style)",
    )
    ap.add_argument(
        "--lb", choices=("dimension-cut", "hyperplane"), default="dimension-cut"
    )
    ap.add_argument(
        "--timeline",
        action="store_true",
        help="print a per-node utilization timeline",
    )
    ap.add_argument("params", nargs="*", help="NAME=VALUE parameters")
    args = ap.parse_args(argv)
    machine = MachineModel(nodes=args.nodes, cores_per_node=args.cores)
    try:
        spec = _builtin_spec(args.problem, args.tile_width)
        params = _default_params(spec)
        if set(spec.params) == {"N"}:
            params = {"N": 40}
        params.update(_parse_params(args.params))
        program = generate(spec)
        if args.sweep_cores:
            pts = shared_memory_scaling(
                program, params, [1, 2, 4, 8, 12, 16, 20, 24]
            )
            print(format_scaling_table(pts, f"{spec.name} {params}"))
        else:
            from .runtime import tile_graph
            from .simulate import render_timeline, simulate

            graph = tile_graph(program, params)
            if machine.nodes == 1:
                assignment = {t: 0 for t in graph.tiles}
            else:
                lb = program.load_balance(params, machine.nodes, method=args.lb)
                assignment = {
                    t: lb.node_of_tile(t, program.spaces) for t in graph.tiles
                }
            res = simulate(
                graph, machine, assignment=assignment, trace=args.timeline
            )
            print(f"problem        : {spec.name} {params}")
            print(f"machine        : {machine.nodes} nodes x "
                  f"{machine.cores_per_node} cores")
            print(f"load balancing : {args.lb}")
            print(f"makespan       : {res.makespan_s:.6f} s")
            print(f"speedup        : {res.speedup:.2f}")
            print(f"efficiency     : {res.efficiency:.1%}")
            print(f"messages       : {res.messages} ({res.bytes_sent} bytes)")
            print(f"idle fraction  : {res.idle_fraction:.1%}")
            if args.timeline:
                print()
                print(
                    render_timeline(
                        res.spans,
                        machine.nodes,
                        machine.cores_per_node,
                        makespan_s=res.makespan_s,
                    )
                )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main_tune(argv=None) -> int:
    """Simulator-driven tuning of schedule policy and tile widths."""
    ap = argparse.ArgumentParser(
        prog="repro-tune",
        description=(
            "Sweep schedule policies (dynamic heap vs static wavefront "
            "levels) and candidate tile widths through the cluster "
            "simulator; print the winning configuration and cache it "
            "on disk for execute(schedule='auto')."
        ),
    )
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--problem", help=f"one of {sorted(REGISTRY)}")
    group.add_argument("--spec", help="problem-description file to tune")
    ap.add_argument(
        "--tile-width",
        type=int,
        default=4,
        help="starting tile width (the sweep's untuned baseline)",
    )
    ap.add_argument(
        "--quick",
        action="store_true",
        help="sweep only the current and heuristic widths (CI-sized)",
    )
    ap.add_argument("--nodes", type=int, default=None, metavar="N",
                    help="machine model nodes (default: 1)")
    ap.add_argument("--cores", type=int, default=None, metavar="C",
                    help="cores per node (default: this host's cpu count)")
    ap.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="tuning-registry file (default: $REPRO_TUNE_CACHE or "
        "~/.cache/repro/tuning.json)",
    )
    ap.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk registry",
    )
    ap.add_argument("params", nargs="*", help="NAME=VALUE parameter overrides")
    args = ap.parse_args(argv)

    from .runtime.tuner import default_tuning_machine, tune

    try:
        if args.spec:
            spec = parse_spec_file(args.spec)
        else:
            spec = _builtin_spec(args.problem, args.tile_width)
        params = _default_params(spec)
        params.update(_parse_params(args.params))
        program = generate(spec)
        machine = default_tuning_machine()
        if args.nodes is not None or args.cores is not None:
            machine = MachineModel(
                nodes=args.nodes or 1,
                cores_per_node=args.cores or machine.cores_per_node,
            )
        decision = tune(
            program,
            params,
            machine=machine,
            quick=args.quick,
            use_cache=not args.no_cache,
            cache_path=args.cache,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"problem            : {spec.name} {params}")
    print(f"machine            : {machine.nodes} nodes x "
          f"{machine.cores_per_node} cores")
    print(f"schedule           : {decision.schedule}")
    print(f"tile widths        : {decision.tile_widths}")
    print(f"predicted makespan : {decision.predicted_makespan_s:.6f} s")
    print(f"untuned default    : {decision.default_makespan_s:.6f} s "
          f"(speedup {decision.predicted_speedup:.2f}x)")
    print(f"candidates         : {decision.candidates}")
    print(f"cache              : {'hit' if decision.cache_hit else 'miss'}")
    if decision.predicted_makespan_s > decision.default_makespan_s:
        print(
            "error: tuned configuration is predicted slower than the "
            "untuned default",
            file=sys.stderr,
        )
        return 1
    return 0


def main_lint(argv=None) -> int:
    """Static analysis over built-in problems and/or spec files."""
    ap = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Statically analyze problem specs, kernel fragments, tile "
            "schedules and emitted C; report RPR0xx diagnostics."
        ),
    )
    ap.add_argument(
        "--problem",
        action="append",
        default=[],
        metavar="NAME",
        help=f"built-in problem to lint (repeatable); one of {sorted(REGISTRY)}",
    )
    ap.add_argument(
        "--spec",
        action="append",
        default=[],
        metavar="FILE",
        help="problem-description file to lint (repeatable)",
    )
    ap.add_argument(
        "--all", action="store_true", help="lint every built-in problem"
    )
    ap.add_argument("--tile-width", type=int, default=4)
    ap.add_argument(
        "--pass",
        dest="only_pass",
        choices=("all", "concurrency"),
        default="all",
        help="run every pass (default) or only the static concurrency-"
        "protocol audit (RPR05x)",
    )
    ap.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    args = ap.parse_args(argv)
    if not (args.all or args.problem or args.spec):
        ap.error("nothing to lint: pass --all, --problem or --spec")

    from .analysis import (
        analyze_spec,
        analyze_spec_file,
        check_concurrency,
        has_errors,
        make_diagnostic,
        render,
    )

    def concurrency_only(spec):
        try:
            return check_concurrency(generate(spec))
        except ReproError as exc:
            return [
                make_diagnostic(
                    "RPR002",
                    f"code generation failed: {exc}",
                    problem=spec.name,
                    source="spec",
                )
            ]

    problems = sorted(REGISTRY) if args.all else list(args.problem)
    diags = []
    try:
        for name in problems:
            spec = _builtin_spec(name, args.tile_width)
            if args.only_pass == "concurrency":
                diags.extend(concurrency_only(spec))
            else:
                diags.extend(analyze_spec(spec))
        for path in args.spec:
            if args.only_pass == "concurrency":
                diags.extend(concurrency_only(parse_spec_file(path)))
            else:
                diags.extend(analyze_spec_file(path))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render(diags, args.fmt))
    return 1 if has_errors(diags) else 0


def main_racecheck(argv=None) -> int:
    """Concurrency correctness: static protocol audit + trace sanitizer."""
    ap = argparse.ArgumentParser(
        prog="repro-racecheck",
        description=(
            "Audit the SPMD communication protocol statically (RPR05x) "
            "and sanitize transition traces from real executions "
            "(RPR06x) for races, lifetime violations and FIFO "
            "inversions."
        ),
    )
    ap.add_argument(
        "--problem",
        action="append",
        default=[],
        metavar="NAME",
        help=f"built-in problem to check (repeatable); one of {sorted(REGISTRY)}",
    )
    ap.add_argument(
        "--spec",
        action="append",
        default=[],
        metavar="FILE",
        help="problem-description file to check (repeatable)",
    )
    ap.add_argument(
        "--all", action="store_true", help="check every built-in problem"
    )
    ap.add_argument("--tile-width", type=int, default=4)
    ap.add_argument(
        "--ranks",
        type=int,
        action="append",
        default=[],
        metavar="P",
        help="rank count to execute at (repeatable; default: 1 2 4)",
    )
    ap.add_argument(
        "--backend",
        action="append",
        default=[],
        choices=("inline", "process"),
        help="transport to execute with (repeatable; default: both); "
        "the process backend is skipped at --ranks 1",
    )
    ap.add_argument(
        "--mode",
        choices=("auto", "interpret", "vector", "wavefront"),
        default="auto",
    )
    ap.add_argument(
        "--schedule",
        choices=("dynamic", "static"),
        default="dynamic",
        help="ready-set policy to execute (and sanitize) the traces "
        "under; 'static' skips the FIFO check RPR062, whose premise "
        "only holds for the dynamic heap",
    )
    ap.add_argument(
        "--static-only",
        action="store_true",
        help="run only the static RPR05x audit (no executions)",
    )
    ap.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    ap.add_argument("params", nargs="*", help="NAME=VALUE parameter overrides")
    args = ap.parse_args(argv)
    if not (args.all or args.problem or args.spec):
        ap.error("nothing to check: pass --all, --problem or --spec")
    ranks_list = args.ranks or [1, 2, 4]
    backends = args.backend or ["inline", "process"]

    from .analysis import (
        check_concurrency,
        has_errors,
        racecheck_execution,
        render,
    )

    specs = []
    problems = sorted(REGISTRY) if args.all else list(args.problem)
    diags = []
    try:
        for name in problems:
            specs.append(_builtin_spec(name, args.tile_width))
        for path in args.spec:
            specs.append(parse_spec_file(path))
        for spec in specs:
            params = _default_params(spec)
            params.update(_parse_params(args.params))
            program = generate(spec)
            diags.extend(
                check_concurrency(program, params=params, ranks=ranks_list)
            )
            if args.static_only:
                continue
            for ranks in ranks_list:
                for backend in backends:
                    if backend == "process" and ranks == 1:
                        continue
                    diags.extend(
                        racecheck_execution(
                            program,
                            params,
                            ranks=ranks,
                            backend=backend,
                            mode=args.mode,
                            kernel=ensure_kernel(spec),
                            schedule=args.schedule,
                        )
                    )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render(diags, args.fmt))
    return 1 if has_errors(diags) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_generate())
