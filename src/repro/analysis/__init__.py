"""Static analysis of specs, kernels, schedules, and emitted C.

The correctness gate behind ``repro-lint``: multi-pass analysis with a
ruff-style diagnostics framework (stable ``RPR0xx`` codes, severities,
source spans, text + JSON renderers).  See :mod:`.diagnostics` for the
rule registry and the individual pass modules for what each code means.
"""

from .diagnostics import (
    ERROR,
    INFO,
    RULES,
    SEVERITIES,
    WARNING,
    Diagnostic,
    Rule,
    count_by_severity,
    has_errors,
    make_diagnostic,
    render,
    render_json,
    render_text,
    sort_diagnostics,
)
from .dependence import check_dependence
from .kernel_lint import lint_kernel
from .schedule_audit import audit_schedule
from .c_audit import audit_emitted_c
from .concurrency import (
    audit_pending_counters,
    audit_protocol,
    check_concurrency,
)
from .tracecheck import check_trace, racecheck_execution
from .probe import default_params, probe_params
from .runner import (
    analyze_program,
    analyze_spec,
    analyze_spec_file,
    analyze_spec_text,
)

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "make_diagnostic",
    "count_by_severity",
    "has_errors",
    "sort_diagnostics",
    "render",
    "render_text",
    "render_json",
    "check_dependence",
    "lint_kernel",
    "audit_schedule",
    "audit_emitted_c",
    "audit_pending_counters",
    "audit_protocol",
    "check_concurrency",
    "check_trace",
    "racecheck_execution",
    "default_params",
    "probe_params",
    "analyze_program",
    "analyze_spec",
    "analyze_spec_file",
    "analyze_spec_text",
]
