"""Probe instantiation: concrete parameter values for graph-level passes.

The dependence and schedule passes need one *concrete* tile graph to
audit — the CSR arrays only exist for fixed parameter values.  The probe
uses the same defaults the CLI runs with: every parameter starts at 12,
and a parameter that is the sole upper bound of one loop variable
(``x <= P``) takes that variable's objective coordinate (the embedded
string lengths of the alignment problems).  Values are capped so a
gigantic objective point cannot turn a lint into a full-size run.
"""

from __future__ import annotations

from typing import Dict

from ..spec import ProblemSpec

#: Probe cap per parameter: large enough for several tiles per
#: dimension, small enough that graph construction stays trivial.
PROBE_CAP = 64


def default_params(spec: ProblemSpec) -> Dict[str, int]:
    """Demo-sized defaults (the CLI's convention, uncapped).

    Bandit-style parameters get 12; a parameter appearing as the sole
    upper bound of one loop variable defaults to that variable's
    objective coordinate.
    """
    out = {p: 12 for p in spec.params}
    if spec.objective_point:
        for c in spec.constraints:
            for p in spec.params:
                if c.coeff(p) != 1 or c.expr.constant != 0:
                    continue
                loop_terms = [v for v in spec.loop_vars if c.coeff(v) != 0]
                if len(loop_terms) == 1 and c.coeff(loop_terms[0]) == -1:
                    out[p] = spec.objective_point[loop_terms[0]]
    return out


def probe_params(spec: ProblemSpec, cap: int = PROBE_CAP) -> Dict[str, int]:
    """Capped defaults for the analyzer's probe instantiation."""
    return {p: min(v, cap) for p, v in default_params(spec).items()}
