"""Guard-coverage reasoning shared by the kernel lint and the C audit.

A dependency read ``V[loc_r]`` is safe when every validity check of
template ``r`` (:class:`~repro.generator.validity.ValiditySet`) is known
to hold at the access.  The guards in scope contribute knowledge in two
forms:

* ``is_valid_q`` flags — all of template *q*'s checks hold, so a guard
  on *q* covers *r* whenever ``checks(q) ⊇ checks(r)`` (the paper's
  shared-check deduplication makes this common: the bandit kernels
  guard ``V[loc_fail1]`` with ``is_valid_succ1`` because both templates
  share the single budget check);
* linear comparisons over loop variables and parameters — the LCS
  kernels guard the diagonal read with ``x1 >= 1 and x2 >= 1``, which
  *is* the diagonal template's check set spelled out directly.

Coverage is decided in two steps: a syntactic membership test (the
normalized :class:`~repro.polyhedra.Constraint` of ``x1 >= 1`` is equal
to the shifted constraint the validity pass derived), then an exact LP
implication test (``x1 >= 2`` implies ``x1 >= 1`` under the iteration
space) when scipy is available.  Without scipy the analyzer degrades to
the membership test only — sound, but it may flag semantically-guarded
reads whose guards are strictly stronger than the checks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from ..generator.validity import ValiditySet
from ..polyhedra import Constraint, parse_constraint
from ..spec import ProblemSpec


def parse_comparison(text: str, allowed_vars: Set[str]) -> List[Constraint]:
    """Parse one guard conjunct into linear constraints, or ``[]``.

    Non-affine conjuncts (subscripts, calls, ``is None`` tests, float
    literals) and comparisons mentioning names outside *allowed_vars*
    contribute no knowledge and are dropped — conjunction only ever
    strengthens a guard, so ignoring a conjunct is sound.
    """
    text = text.strip()
    if not text:
        return []
    # Cheap rejection of anything the affine grammar cannot mean:
    # brackets, calls, floats, strings, attribute access.
    if any(ch in text for ch in "[]{}\"'.?!|&%"):
        return []
    try:
        constraints = parse_constraint(text)
    except Exception:
        return []
    for c in constraints:
        if not (set(c.variables()) <= allowed_vars):
            return []
    return constraints


class GuardAnalyzer:
    """Decides whether in-scope guards cover a template's checks."""

    def __init__(self, spec: ProblemSpec, validity: ValiditySet):
        self.spec = spec
        self.validity = validity
        self.base: List[Constraint] = list(spec.constraints)
        self.allowed_vars: Set[str] = set(spec.loop_vars) | set(spec.params)

    def covers(
        self,
        template: str,
        valid_names: Iterable[str],
        guard_constraints: Iterable[Constraint],
    ) -> bool:
        """True iff the guards guarantee ``is_valid_<template>``.

        *valid_names* are templates whose ``is_valid`` flag is known
        true; *guard_constraints* are linear facts from comparisons in
        the enclosing conditions.
        """
        needed_ids = self.validity.per_template.get(template, ())
        if not needed_ids:
            return True
        known: List[Constraint] = list(self.base)
        known.extend(guard_constraints)
        for q in valid_names:
            for idx in self.validity.per_template.get(q, ()):
                known.append(self.validity.checks[idx])
        known_set = set(known)
        for idx in needed_ids:
            check = self.validity.checks[idx]
            if check in known_set:
                continue
            if not implies(known, check):
                return False
        return True


def implies(constraints: Sequence[Constraint], target: Constraint) -> bool:
    """Exact implication test: does *constraints* entail ``target >= 0``?

    Minimizes ``target.expr`` over the (rational relaxation of the)
    system; a minimum ``>= 0`` — or an empty system — certifies the
    implication.  Returns False conservatively when scipy is absent or
    the LP does not resolve.
    """
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is a normal dependency
        return False

    names = sorted(
        set().union(*(c.variables() for c in constraints), target.variables())
    )
    if not names:
        return target.satisfied({})
    index = {n: i for i, n in enumerate(names)}

    def row(c: Constraint) -> Tuple[List[float], float]:
        coeffs = [0.0] * len(names)
        for n, v in c.expr.coeffs.items():
            coeffs[index[n]] = float(v)
        return coeffs, float(c.expr.constant)

    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for c in constraints:
        coeffs, const = row(c)
        if c.is_equality():
            a_eq.append(coeffs)
            b_eq.append(-const)
        else:
            # c.expr >= 0  <=>  -coeffs . x <= const
            a_ub.append([-x for x in coeffs])
            b_ub.append(const)
    obj, obj_const = row(target)
    res = linprog(
        obj,
        A_ub=a_ub or None,
        b_ub=b_ub or None,
        A_eq=a_eq or None,
        b_eq=b_eq or None,
        bounds=[(None, None)] * len(names),
        method="highs",
    )
    if res.status == 2:  # infeasible guard set: implication holds vacuously
        return True
    if res.status == 0 and res.fun is not None:
        # Integral constraints: true minima sit at least 1 away from
        # -epsilon, so a small tolerance absorbs LP float noise.
        return (res.fun + obj_const) >= -1e-9
    return False
