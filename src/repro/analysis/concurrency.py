"""Static concurrency-protocol audit (the ``RPR05x`` pass).

The SPMD runtime realizes one communication protocol: each cross-rank
edge is packed into a statically assigned shared-memory slab slot and
announced through a per-``(src, dst)`` FIFO descriptor channel, ghost
arrays live in per-rank arenas sized for the rank's widest wavefront
level, and every tile's pending counter counts exactly its producers.
This pass audits that protocol *before anything runs*, from the same
inputs the process backend derives it from — the CSR tile graph, the
rank assignment, and the slot/arena layout of
:func:`repro.runtime.parallel.cross_edge_slots` /
:func:`repro.runtime.parallel.arena_capacities`:

``RPR050``
    The cross-rank sends of one wavefront level form a cyclic wait
    between ranks.  The implemented transports buffer sends, but the
    generated MPI program's sends may rendezvous (synchronous mode for
    large messages), and a cyclic same-level channel dependence then
    deadlocks.  Monotone assignments (dimension-cut: producer rank <=
    consumer rank) are acyclic by construction.
``RPR051``
    Two slab slots of one channel intersect, or a slot escapes its
    channel's bounds, or a slot is smaller than the edge packed into it
    — concurrent producers would overwrite each other's payloads.
``RPR052``
    A rank's ghost arena holds fewer planes than its widest wavefront
    level: two tiles of one fused batch would be evaluated into the
    same plane (a write-write race on shared memory).
``RPR053``
    A cross-rank edge has no slot (its descriptor would be dropped and
    the consumer starves), a slot names a non-edge (a spurious
    descriptor underflows the consumer's pending counter), or a slot's
    channel disagrees with the ranks that own its endpoints (the
    payload lands in the wrong channel slab).
``RPR054``
    The producer-indexed and consumer-indexed CSR views disagree on the
    edge multiset, so the pending counters (derived from the producer
    view) cannot match the deliveries (driven by the consumer view):
    an edge only the consumer view knows underflows the counter, an
    edge only the producer view knows leaves it forever positive, and a
    duplicate delivers twice.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` values —
never exceptions — capped at :data:`_MAX_PER_CODE` per code, with
``source="protocol"``.
"""

from __future__ import annotations

from typing import Counter as CounterType
from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..generator.pipeline import GeneratedProgram
from ..runtime.graph import TileGraph, tile_graph
from ..runtime.parallel import arena_capacities, cross_edge_slots
from ..runtime.spmd import spmd_rank_assignment
from .diagnostics import Diagnostic, make_diagnostic
from .probe import probe_params

__all__ = [
    "audit_protocol",
    "audit_pending_counters",
    "check_concurrency",
    "DEFAULT_RANK_COUNTS",
]

#: Per-code cap: enough instances to localize a systematic bug without
#: drowning the report (same convention as the schedule audit).
DEFAULT_RANK_COUNTS: Tuple[int, ...] = (1, 2, 4)
_MAX_PER_CODE = 5

ChannelCells = Mapping[Tuple[int, int], int]
Slots = Mapping[Tuple[int, int], Tuple[int, int, int, int]]


class _Capped:
    """Append diagnostics, at most :data:`_MAX_PER_CODE` per code."""

    def __init__(self, diags: List[Diagnostic], problem: str):
        self._diags = diags
        self._problem = problem
        self._counts: CounterType[str] = Counter()

    def add(self, code: str, message: str) -> None:
        self._counts[code] += 1
        if self._counts[code] <= _MAX_PER_CODE:
            self._diags.append(
                make_diagnostic(
                    code, message, problem=self._problem, source="protocol"
                )
            )


def _find_rank_cycle(edges: Mapping[int, set]) -> Optional[List[int]]:
    """One cycle of the rank digraph as ``[r0, r1, ..., r0]``, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {r: WHITE for r in edges}
    for root in sorted(edges):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, List[int]]] = [(root, sorted(edges[root]))]
        path = [root]
        color[root] = GRAY
        while stack:
            node, succs = stack[-1]
            if succs:
                nxt = succs.pop(0)
                if nxt not in color:
                    continue
                if color[nxt] == GRAY:
                    return path[path.index(nxt):] + [nxt]
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, sorted(edges[nxt])))
            else:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def _audit_channel_cycles(
    graph: TileGraph, rank_arr: np.ndarray, out: _Capped
) -> None:
    """RPR050: per-level rank digraph of cross-rank sends must be a DAG."""
    counts = np.diff(graph.cons_ptr)
    owner = np.repeat(np.arange(counts.size), counts)
    src = rank_arr[owner]
    dst = rank_arr[graph.cons_rows]
    cross = np.flatnonzero(src != dst)
    if cross.size == 0:
        return
    levels = graph.wavefront_levels()
    send_level = levels[owner[cross]]
    for level in np.unique(send_level).tolist():
        sel = cross[send_level == level]
        digraph: Dict[int, set] = {}
        for s, d in zip(src[sel].tolist(), dst[sel].tolist()):
            digraph.setdefault(s, set()).add(d)
            digraph.setdefault(d, set())
        cycle = _find_rank_cycle(digraph)
        if cycle is not None:
            out.add(
                "RPR050",
                f"wavefront level {level}: cross-rank sends form the "
                f"channel-wait cycle {' -> '.join(f'r{r}' for r in cycle)}; "
                "a rendezvous send on any channel of the cycle deadlocks "
                "the level",
            )


def _audit_slots(
    graph: TileGraph,
    rank_arr: np.ndarray,
    channel_cells: ChannelCells,
    slots: Slots,
    out: _Capped,
) -> None:
    """RPR051 slot aliasing/bounds + RPR053 matching/misrouting."""
    tt = graph.tile_tuples
    # Ground truth: the cross-rank edges of the graph under rank_arr.
    counts = np.diff(graph.cons_ptr)
    owner = np.repeat(np.arange(counts.size), counts)
    src = rank_arr[owner]
    dst = rank_arr[graph.cons_rows]
    cross = np.flatnonzero(src != dst)
    cross_edges: Dict[Tuple[int, int], int] = {
        (int(owner[e]), int(graph.cons_rows[e])): int(graph.cons_cells[e])
        for e in cross.tolist()
    }

    per_channel: Dict[Tuple[int, int], List[Tuple[int, int, Tuple[int, int]]]] = {}
    for edge, (s, d, offset, capacity) in sorted(slots.items()):
        p, c = edge
        cells = cross_edges.get(edge)
        if cells is None:
            out.add(
                "RPR053",
                f"slot for {tt[p]} -> {tt[c]} on channel r{s}->r{d} matches "
                "no cross-rank edge of the graph; its descriptor would "
                "underflow the consumer's pending counter",
            )
        else:
            want = (int(rank_arr[p]), int(rank_arr[c]))
            if (s, d) != want:
                out.add(
                    "RPR053",
                    f"edge {tt[p]} -> {tt[c]} is owned by channel "
                    f"r{want[0]}->r{want[1]} but its slot lives on "
                    f"r{s}->r{d}; the payload would land in the wrong slab",
                )
            if capacity < cells:
                out.add(
                    "RPR051",
                    f"slot for {tt[p]} -> {tt[c]} holds {capacity} cells "
                    f"but the edge packs {cells}; the producer would write "
                    "past the slot",
                )
        total = channel_cells.get((s, d))
        if offset < 0 or (total is not None and offset + capacity > total):
            out.add(
                "RPR051",
                f"slot for {tt[p]} -> {tt[c]} spans "
                f"[{offset}, {offset + capacity}) outside its channel "
                f"r{s}->r{d} of {total} cells",
            )
        per_channel.setdefault((s, d), []).append((offset, capacity, edge))

    for edge in sorted(cross_edges):
        if edge not in slots:
            p, c = edge
            out.add(
                "RPR053",
                f"cross-rank edge {tt[p]} -> {tt[c]} "
                f"(r{int(rank_arr[p])}->r{int(rank_arr[c])}) has no slab "
                "slot; its descriptor would be dropped and the consumer "
                "starves",
            )

    for (s, d), entries in sorted(per_channel.items()):
        entries.sort()
        for (o1, c1, e1), (o2, _, e2) in zip(entries, entries[1:]):
            if o2 < o1 + c1:
                out.add(
                    "RPR051",
                    f"channel r{s}->r{d}: slot of {tt[e1[0]]} -> {tt[e1[1]]} "
                    f"[{o1}, {o1 + c1}) overlaps slot of "
                    f"{tt[e2[0]]} -> {tt[e2[1]]} starting at {o2}; "
                    "concurrent packs would corrupt each other",
                )


def _audit_arenas(
    graph: TileGraph,
    rank_arr: np.ndarray,
    ranks: int,
    arena_caps: Sequence[int],
    resolved: str,
    out: _Capped,
) -> None:
    """RPR052: every rank's arena must hold its widest fused batch."""
    required = arena_capacities(graph, rank_arr, ranks, resolved)
    for r in range(min(ranks, len(arena_caps))):
        if arena_caps[r] < required[r]:
            out.add(
                "RPR052",
                f"rank {r}'s ghost arena holds {arena_caps[r]} planes but "
                f"its widest wavefront level has {required[r]} tiles; a "
                "fused batch would write-write overlap arena planes",
            )


def audit_pending_counters(
    graph: TileGraph, problem: str = ""
) -> List[Diagnostic]:
    """RPR054: producer-CSR and consumer-CSR must agree on every edge.

    Pending counters are per-consumer producer counts (the producer
    view); deliveries walk the consumer lists of finishing producers
    (the consumer view).  Any disagreement between the two multisets is
    a counter that cannot drain to exactly zero.  Rank-independent, so
    callers run it once per graph.
    """
    diags: List[Diagnostic] = []
    out = _Capped(diags, problem)
    tt = graph.tile_tuples
    T = len(tt)
    prod_view: CounterType[Tuple[int, int]] = Counter()
    for c in range(T):
        for e in range(int(graph.prod_ptr[c]), int(graph.prod_ptr[c + 1])):
            prod_view[(int(graph.prod_rows[e]), c)] += 1
    cons_view: CounterType[Tuple[int, int]] = Counter()
    for p in range(T):
        for e in range(int(graph.cons_ptr[p]), int(graph.cons_ptr[p + 1])):
            cons_view[(p, int(graph.cons_rows[e]))] += 1
    for edge in sorted(set(prod_view) | set(cons_view)):
        p, c = edge
        np_, nc = prod_view.get(edge, 0), cons_view.get(edge, 0)
        if np_ == nc == 1:
            continue
        if nc > np_:
            out.add(
                "RPR054",
                f"edge {tt[p]} -> {tt[c]} appears {nc}x in the consumer "
                f"view but {np_}x in the pending count; delivery would "
                "underflow the consumer's pending counter",
            )
        else:
            out.add(
                "RPR054",
                f"edge {tt[p]} -> {tt[c]} is counted {np_}x in the pending "
                f"count but sent {nc}x; the counter never drains and the "
                "consumer deadlocks",
            )
    return diags


def audit_protocol(
    graph: TileGraph,
    rank_of: Sequence[int],
    ranks: int,
    problem: str = "",
    channel_cells: Optional[ChannelCells] = None,
    slots: Optional[Slots] = None,
    arena_caps: Optional[Sequence[int]] = None,
    resolved: str = "wavefront",
) -> List[Diagnostic]:
    """Audit one rank assignment's communication protocol (RPR050-053).

    *channel_cells*/*slots*/*arena_caps* default to the layout the
    process backend would derive; tests inject mutated layouts here to
    prove each defect class trips its code.  Add
    :func:`audit_pending_counters` (rank-independent) for the full
    RPR05x set.
    """
    rank_arr = np.asarray(list(rank_of), dtype=np.int64)
    if slots is None or channel_cells is None:
        channel_cells, slots = cross_edge_slots(graph, rank_arr)
    if arena_caps is None:
        arena_caps = arena_capacities(graph, rank_arr, ranks, resolved)
    diags: List[Diagnostic] = []
    out = _Capped(diags, problem)
    _audit_channel_cycles(graph, rank_arr, out)
    _audit_slots(graph, rank_arr, channel_cells, slots, out)
    _audit_arenas(graph, rank_arr, ranks, arena_caps, resolved, out)
    return diags


def check_concurrency(
    program: GeneratedProgram,
    params: Optional[Mapping[str, int]] = None,
    ranks: Sequence[int] = DEFAULT_RANK_COUNTS,
    lb_method: str = "dimension-cut",
) -> List[Diagnostic]:
    """The full static pass over a generated program (pass 5 of lint).

    Builds the probe tile graph, audits the pending counters once, then
    audits the protocol under the load balancer's assignment for every
    rank count in *ranks*.  A rank count the balancer cannot cut the
    instance into is skipped — that is a capacity limit, not a
    concurrency bug.  Duplicate findings across rank counts collapse.
    """
    spec = program.spec
    if params is None:
        params = probe_params(spec)
    try:
        graph = tile_graph(program, dict(params))
    except ReproError as exc:
        return [
            make_diagnostic(
                "RPR002",
                f"probe graph construction failed: {exc}",
                problem=spec.name,
                source="protocol",
            )
        ]
    diags = audit_pending_counters(graph, problem=spec.name)
    seen = {(d.code, d.message) for d in diags}
    for count in ranks:
        try:
            rank_arr = spmd_rank_assignment(
                program, params, graph, count, lb_method=lb_method
            )
        except ReproError:
            continue
        for d in audit_protocol(graph, rank_arr, count, problem=spec.name):
            key = (d.code, d.message)
            if key not in seen:
                seen.add(key)
                diags.append(d)
    return diags
