"""Pass 4 — audit of the emitted C program.

Two checks over the :func:`repro.generator.cgen.emit_c_program` output
(plain text — the audit never compiles anything):

* ``RPR041`` — inside ``repro_execute_tile``, a dependency read
  ``V[loc_r]`` whose template is not always valid and whose enclosing
  guards (``if`` conditions, ``?:`` conditions, ``&&`` short-circuit
  prefixes) do not establish ``is_valid_r`` — decided by the same
  :class:`~repro.analysis.guards.GuardAnalyzer` the Python lint uses,
  so an ``is_valid_q`` guard covers every template sharing *q*'s
  checks, and linear comparisons (``x1 >= 1``) count via constraint
  normalization / LP implication;
* ``RPR040`` — a variable declared in a function *before* one of its
  ``#pragma omp parallel`` regions is used inside the region without a
  data-sharing classification (``shared``/``private``/``firstprivate``
  /``reduction``/``default``) and without a shadowing declaration
  inside the region.  Implicit sharing of a mutable local is how
  hybrid-generation bugs become heisenbugs, so the emitted runtime
  declares all of its parallel-region locals inside the region.

The scanner is a pragmatic single-pass bracket tracker, not a C parser:
it understands the shapes ``cgen`` emits plus the user-fragment idioms
of the bundled problems (braced/unbraced ``if``, ``else``, ternaries,
``&&`` chains).  Guard extraction only ever *adds* knowledge it can
prove it saw, so unparseable conjuncts degrade to diagnostics, never to
silence.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set, Tuple

from ..generator.validity import ValiditySet
from ..spec import ProblemSpec
from .diagnostics import Diagnostic, make_diagnostic
from .guards import GuardAnalyzer, parse_comparison

_IDENT = r"[A-Za-z_]\w*"
_READ_RE = re.compile(r"\bV\[(loc_(%s))\]" % _IDENT)
_VALID_RE = re.compile(r"(!?)\bis_valid_(%s)\b" % _IDENT)
_DECL_RE = re.compile(
    r"^\s*(?:static\s+|const\s+|unsigned\s+|signed\s+)*"
    r"(?:long|int|double|float|char|short|size_t|int64_t|uint64_t)\b"
    r"(?:\s+long)?([^;(){}]*);",
    re.M,
)
_CLAUSE_RE = re.compile(
    r"(shared|private|firstprivate|lastprivate|reduction|copyin)\s*\(([^)]*)\)"
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)), text, flags=re.S)
    text = re.sub(r"//[^\n]*", lambda m: " " * len(m.group(0)), text)
    return re.sub(r'"(?:[^"\\]|\\.)*"', lambda m: " " * len(m.group(0)), text)


def _match_paren(text: str, open_pos: int) -> int:
    """Index just past the ``)`` matching ``text[open_pos] == '('``."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _match_brace(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _split_conjuncts(cond: str) -> List[str]:
    """Top-level ``&&`` split, recursing through redundant parentheses."""
    parts: List[str] = []
    depth = 0
    start = 0
    i = 0
    while i < len(cond):
        ch = cond[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and cond.startswith("&&", i):
            parts.append(cond[start:i])
            i += 2
            start = i
            continue
        i += 1
    parts.append(cond[start:])
    out: List[str] = []
    for part in parts:
        part = part.strip()
        while part.startswith("(") and _match_paren(part, 0) == len(part):
            part = part[1:-1].strip()
        if "&&" in part and part not in (cond.strip(),):
            out.extend(_split_conjuncts(part))
        else:
            out.append(part)
    return out


def _function_body(source: str, name: str) -> Optional[Tuple[str, int]]:
    """The brace-enclosed body of *name* plus its start offset."""
    m = re.search(r"\b%s\s*\([^;{)]*\)\s*\{" % re.escape(name), source)
    if m is None:
        return None
    open_pos = m.end() - 1
    end = _match_brace(source, open_pos)
    return source[open_pos + 1 : end - 1], open_pos + 1


class _CGuardScanner:
    """Per-position guard conditions inside one function body."""

    def __init__(self, body: str):
        self.body = body
        # Spans of (start, end, condition-text) for every guarded region.
        self.regions: List[Tuple[int, int, str]] = []
        self._scan()

    def _scan(self) -> None:
        body = self.body
        for m in re.finditer(r"\b(if|while)\s*\(", body):
            cond_open = m.end() - 1
            cond_close = _match_paren(body, cond_open)
            cond = body[cond_open + 1 : cond_close - 1]
            i = cond_close
            while i < len(body) and body[i] in " \t\r\n":
                i += 1
            if i < len(body) and body[i] == "{":
                end = _match_brace(body, i)
            else:
                end = body.find(";", i)
                end = len(body) if end < 0 else end + 1
            self.regions.append((cond_close, end, cond))

    def conditions_at(self, pos: int) -> List[str]:
        return [c for (s, e, c) in self.regions if s <= pos < e]


def _statement_prefix(body: str, pos: int) -> str:
    """Text of the current statement strictly before *pos*."""
    start = max(body.rfind(";", 0, pos), body.rfind("{", 0, pos),
                body.rfind("}", 0, pos))
    return body[start + 1 : pos]


def _prefix_knowledge(prefix: str) -> Tuple[Set[str], List[str]]:
    """Guard facts established by short-circuit/ternary before a read.

    Inside ``cond ? a : b`` the condition only guards the true arm, so
    when a ``:`` separates the last ``?`` from the read, the text before
    the ``?`` is discarded.
    """
    q = prefix.rfind("?")
    if q >= 0:
        colon = prefix.find(":", q)
        if colon >= 0:
            prefix = prefix[colon + 1 :]
    valid = {
        m.group(2) for m in _VALID_RE.finditer(prefix) if not m.group(1)
    }
    return valid, []


def audit_emitted_c(
    spec: ProblemSpec, validity: ValiditySet, source: str
) -> List[Diagnostic]:
    """RPR040/RPR041 diagnostics for the emitted C *source*."""
    diags: List[Diagnostic] = []
    text = _strip_comments(source)
    analyzer = GuardAnalyzer(spec, validity)
    templates = set(spec.templates.names())

    found = _function_body(text, "repro_execute_tile")
    if found is not None:
        body, body_off = found
        scanner = _CGuardScanner(body)
        for m in _READ_RE.finditer(body):
            template = m.group(2)
            if template not in templates or validity.always_valid(template):
                continue
            # A write V[loc_x] = ... is not a read; skip direct stores.
            after = body[m.end():].lstrip()
            if after.startswith("=") and not after.startswith("=="):
                continue
            valid_names: Set[str] = set()
            facts = []
            for cond in scanner.conditions_at(m.start()):
                for conj in _split_conjuncts(cond):
                    vm = _VALID_RE.fullmatch(conj.strip())
                    if vm and not vm.group(1):
                        valid_names.add(vm.group(2))
                    else:
                        facts.extend(
                            parse_comparison(conj, analyzer.allowed_vars)
                        )
            pv, _ = _prefix_knowledge(_statement_prefix(body, m.start()))
            valid_names |= pv
            if not analyzer.covers(template, valid_names, facts):
                line = text.count("\n", 0, body_off + m.start()) + 1
                diags.append(
                    make_diagnostic(
                        "RPR041",
                        f"emitted C reads V[loc_{template}] without a "
                        f"guard establishing is_valid_{template}",
                        problem=spec.name,
                        source="emitted-c",
                        line=line,
                    )
                )

    diags.extend(_audit_openmp(spec, text))
    return diags


def _audit_openmp(spec: ProblemSpec, text: str) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    reported: Set[Tuple[int, str]] = set()
    for m in re.finditer(r"#pragma\s+omp\s+parallel\b([^\n]*)", text):
        directive = m.group(1)
        if re.match(r"\s*(for|sections)\b", directive):
            pass  # worksharing variants take the same clause audit
        classified: Set[str] = set()
        for cm in _CLAUSE_RE.finditer(directive):
            classified |= {
                v.strip().split(":")[-1].strip()
                for v in cm.group(2).split(",")
                if v.strip()
            }
        has_default = "default" in directive
        # The structured block: first '{' after the pragma, skipping
        # preprocessor lines (#ifdef/#endif wrap every pragma we emit).
        i = m.end()
        while i < len(text):
            if text[i] == "{":
                break
            if text[i] == "\n":
                nxt = text[i + 1 : i + 2]
                if nxt and nxt not in " \t#{\n":
                    i = -1  # a plain statement follows; no block to audit
                    break
            i += 1
        if i < 0 or i >= len(text):
            continue
        region_end = _match_brace(text, i)
        region = text[i:region_end]
        # Locals declared earlier in the enclosing function: scan from
        # the nearest function opener (a column-0 signature ending in
        # ``) {``) up to the pragma.
        opens = [
            fm.end()
            for fm in re.finditer(r"(?m)^\w[^\n;]*\)\s*\{", text[: m.start()])
        ]
        before = text[opens[-1] : m.start()] if opens else ""
        declared_before: Set[str] = set()
        for dm in _DECL_RE.finditer(before):
            for piece in dm.group(1).split(","):
                idm = re.search(_IDENT, piece.replace("*", " "))
                if idm:
                    declared_before.add(idm.group(0))
        declared_inside: Set[str] = set()
        for dm in _DECL_RE.finditer(region):
            for piece in dm.group(1).split(","):
                idm = re.search(_IDENT, piece.replace("*", " "))
                if idm:
                    declared_inside.add(idm.group(0))
        used = set(re.findall(_IDENT, region))
        line = text.count("\n", 0, m.start()) + 1
        for name in sorted(
            (declared_before & used) - declared_inside - classified
        ):
            if has_default:
                continue
            key = (line, name)
            if key in reported:
                continue
            reported.add(key)
            diags.append(
                make_diagnostic(
                    "RPR040",
                    f"variable {name!r} is used inside the omp parallel "
                    "region without a shared/private classification",
                    problem=spec.name,
                    source="emitted-c",
                    line=line,
                )
            )
    return diags
