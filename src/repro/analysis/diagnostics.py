"""The diagnostics framework behind ``repro-lint``.

Every finding the static analyzer can produce is a :class:`Diagnostic`
carrying a *stable* rule code (``RPR0xx``), a severity, a human-readable
message, and a source span (which artifact the finding is about —
``spec``, ``center_code_py``, ``emitted-c``, ``schedule`` — plus an
optional line/column inside it).  Codes never change meaning between
releases, so CI configurations and suppressions can key on them.

The registry :data:`RULES` is the single source of truth: a pass creates
diagnostics through :func:`make_diagnostic`, which looks up the rule's
severity and title, so a code typo is an :class:`AnalysisError` at
analysis time rather than a silently-new code in the output.

Two renderers are provided: :func:`render_text` (one ``ruff``-style line
per finding) and :func:`render_json` (a machine-readable document with
per-severity counts).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import AnalysisError

#: Severity levels, most severe first.  ``error`` findings fail the lint
#: (exit code 1); ``warning``/``info`` findings are reported but clean.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Rule:
    """One stable lint rule: its code, default severity, and title."""

    code: str
    severity: str
    title: str


#: The stable rule set.  Codes are grouped by pass:
#: ``RPR00x`` parsing/construction, ``RPR01x`` dependence legality,
#: ``RPR02x`` kernel-fragment lint, ``RPR03x`` schedule race/coverage,
#: ``RPR04x`` emitted-C audit, ``RPR05x`` static concurrency-protocol
#: audit (:mod:`.concurrency`), ``RPR06x`` dynamic trace sanitizer
#: (:mod:`.tracecheck`, behind ``repro-racecheck``).
RULES: Dict[str, Rule] = {
    r.code: r
    for r in (
        Rule("RPR001", ERROR, "spec file could not be parsed"),
        Rule("RPR002", ERROR, "problem specification is inconsistent"),
        Rule("RPR010", ERROR, "templates conflict on a scan direction (illegal loop ordering)"),
        Rule("RPR011", ERROR, "template vectors admit no linear schedule (cyclic recurrence)"),
        Rule("RPR012", ERROR, "tile width is smaller than the template reach"),
        Rule("RPR013", ERROR, "tile-level dependence graph is cyclic on the probe instance"),
        Rule("RPR020", ERROR, "code fragment does not parse"),
        Rule("RPR021", ERROR, "undefined name in center_code_py"),
        Rule("RPR022", ERROR, "read of a location for an undeclared template"),
        Rule("RPR023", WARNING, "declared template is never read"),
        Rule("RPR024", ERROR, "V[loc] is read before it is written"),
        Rule("RPR025", ERROR, "unguarded dependency read for a non-always-valid template"),
        Rule("RPR026", ERROR, "assignment to a dependency location"),
        Rule("RPR027", ERROR, "center_code_py never assigns V[loc]"),
        Rule("RPR030", ERROR, "tile dependency has no pack region (uncovered cross-tile edge)"),
        Rule("RPR031", ERROR, "cross-tile edge is missing from the tile graph"),
        Rule("RPR032", ERROR, "priority schedule orders a consumer before a producer"),
        Rule("RPR033", ERROR, "static wavefront level disagrees with the recomputed longest-path level"),
        Rule("RPR040", ERROR, "OpenMP parallel region uses a variable with no data-sharing classification"),
        Rule("RPR041", ERROR, "emitted C reads a dependency without its is_valid guard"),
        Rule("RPR050", ERROR, "cross-rank sends form a channel-wait cycle (rendezvous deadlock)"),
        Rule("RPR051", ERROR, "shared-memory slab slots alias or escape their channel"),
        Rule("RPR052", ERROR, "ghost-arena planes admit a write-write overlap"),
        Rule("RPR053", ERROR, "cross-rank edge has no matching send/recv slot (or is misrouted)"),
        Rule("RPR054", ERROR, "pending counter can underflow or overflow"),
        Rule("RPR060", ERROR, "consumer not happens-after its producer (data race)"),
        Rule("RPR061", ERROR, "edge buffer used outside its tracked lifetime"),
        Rule("RPR062", ERROR, "FIFO channel delivery order inverted"),
        Rule("RPR063", WARNING, "transition trace is truncated but race-free"),
        Rule("RPR064", ERROR, "transition trace is malformed"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message, and source span.

    ``source`` names the artifact the finding is about (``spec``,
    ``center_code_py``, ``center_code_c``, ``emitted-c``, ``schedule``,
    ``templates``); ``line``/``col`` are 1-based positions inside that
    artifact when known.  ``problem`` is the problem name (empty when
    the spec could not be parsed far enough to know it).
    """

    code: str
    severity: str
    message: str
    problem: str = ""
    source: str = ""
    line: Optional[int] = None
    col: Optional[int] = None

    def is_error(self) -> bool:
        return self.severity == ERROR

    def location(self) -> str:
        """The ``problem:source:line:col`` prefix, empty parts omitted."""
        parts = [p for p in (self.problem, self.source) if p]
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        return ":".join(parts)


def make_diagnostic(
    code: str,
    message: str,
    problem: str = "",
    source: str = "",
    line: Optional[int] = None,
    col: Optional[int] = None,
) -> Diagnostic:
    """A :class:`Diagnostic` for *code*, with the rule's severity."""
    rule = RULES.get(code)
    if rule is None:
        raise AnalysisError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        severity=rule.severity,
        message=message,
        problem=problem,
        source=source,
        line=line,
        col=col,
    )


def count_by_severity(diags: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {s: 0 for s in SEVERITIES}
    for d in diags:
        counts[d.severity] = counts.get(d.severity, 0) + 1
    return counts


def has_errors(diags: Iterable[Diagnostic]) -> bool:
    return any(d.is_error() for d in diags)


def sort_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable presentation order: problem, source, line, then code."""
    return sorted(
        diags,
        key=lambda d: (d.problem, d.source, d.line or 0, d.col or 0, d.code),
    )


def render_text(diags: Sequence[Diagnostic]) -> str:
    """One line per finding plus a summary line (ruff-style)."""
    lines = []
    for d in sort_diagnostics(diags):
        loc = d.location()
        prefix = f"{loc}: " if loc else ""
        lines.append(f"{prefix}{d.code} {d.severity}: {d.message}")
    counts = count_by_severity(diags)
    if any(counts.values()):
        summary = ", ".join(
            f"{counts[s]} {s}{'s' if counts[s] != 1 else ''}"
            for s in SEVERITIES
            if counts[s]
        )
        lines.append(f"found {summary}")
    else:
        lines.append("all checks passed")
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic]) -> str:
    """A machine-readable document: findings plus per-severity counts."""
    doc = {
        "diagnostics": [asdict(d) for d in sort_diagnostics(diags)],
        "counts": count_by_severity(diags),
        "clean": not has_errors(diags),
    }
    return json.dumps(doc, indent=2)


def render(diags: Sequence[Diagnostic], fmt: str = "text") -> str:
    """Render with the named format (``text`` or ``json``)."""
    if fmt == "text":
        return render_text(diags)
    if fmt == "json":
        return render_json(diags)
    raise AnalysisError(f"unknown diagnostics format {fmt!r}")
