"""Dynamic trace sanitizer (the ``RPR06x`` pass behind ``repro-racecheck``).

A ThreadSanitizer-style checker over the scheduler's transition traces
(:func:`repro.runtime.scheduler.encode_events`, schema version
:data:`repro.runtime.scheduler.TRACE_SCHEMA_VERSION`).  The trace is
split into per-rank streams; within one stream, order is program order,
and across streams the only happens-before edges are the send/recv
events of cross-rank edges — exactly the vector-clock model of the MPI
protocol.  Against that relation the sanitizer flags:

``RPR060``
    A consumer ``tile_start`` that is not happens-after every
    producer's pack/recv (a data race on the ghost cells), a tile that
    starts without ever becoming ready, a completed run with tiles
    that never ran (lost delivery), or a trace whose happens-before
    constraints are cyclic (no consistent interleaving exists).
``RPR061``
    Edge-buffer lifetime violations, replayed through a real
    :class:`~repro.runtime.memory.EdgeMemoryTracker`: an edge packed
    twice, packed before its producer started or after it released its
    state array (use-after-release), packed along a non-edge of the
    graph, or left unconsumed by a run that claims completion.
``RPR062``
    A FIFO inversion: two consumers fed entirely by one channel became
    ready in the opposite order of their final messages — impossible
    under the ascending-source FIFO recv discipline.
``RPR063`` (warning)
    The trace is truncated (dead ranks, an aborted run) but every
    event that *was* recorded satisfies the happens-before relation —
    the classification for a worker killed mid-protocol, as opposed to
    a false-positive race.
``RPR064``
    The trace itself is malformed: undecodable bytes, unknown tiles,
    events on the wrong rank, or duplicate lifecycle transitions.

Two trace dialects exist (*transport*): ``inline`` traces record a
cross-rank ``edge_sent`` at pack time in the **producer**'s stream;
``process`` traces record it at recv time in the **consumer**'s stream
(the producer posts through the shared-memory slab without touching its
scheduler).  Per-tile engines pack every edge (*packing* ``"full"``),
wavefront-fused engines pack only cross-rank edges (``"boundary"`` —
same-rank edges travel as array slices); ``"auto"`` infers the dialect
from the trace.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` values
with ``source="trace"``; nothing raises.  This pass *consumes* traces —
producing one requires executing the program, so it runs behind
``repro-racecheck`` (and :func:`racecheck_execution`), never inside
``repro-lint``'s static pipeline.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Counter as CounterType,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import ReproError, RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..runtime.graph import TileGraph, tile_graph
from ..runtime.memory import EdgeMemoryTracker
from ..runtime.scheduler import (
    EVENT_KINDS,
    TransitionEvent,
    decode_events,
)
from ..runtime.spmd import spmd_rank_assignment
from ..spec import Kernel
from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["check_trace", "racecheck_execution"]

_MAX_PER_CODE = 5

Trace = Union[bytes, Sequence[TransitionEvent]]


class _Capped:
    """Append diagnostics, at most :data:`_MAX_PER_CODE` per code."""

    def __init__(self, diags: List[Diagnostic], problem: str):
        self._diags = diags
        self._problem = problem
        self._counts: CounterType[str] = Counter()

    def add(self, code: str, message: str) -> None:
        self._counts[code] += 1
        if self._counts[code] <= _MAX_PER_CODE:
            self._diags.append(
                make_diagnostic(
                    code, message, problem=self._problem, source="trace"
                )
            )

    def has(self, code: str) -> bool:
        return self._counts[code] > 0


class _TraceModel:
    """The decoded trace, indexed for happens-before queries.

    Every event gets a global id; ``pos[i] = (stream, index)`` places it
    in its rank stream (cross-rank sends of ``process`` traces stream
    with the *consumer*, everything else with ``event.rank``).
    """

    def __init__(self) -> None:
        self.events: List[TransitionEvent] = []
        self.rows: List[int] = []
        self.pos: List[Tuple[int, int]] = []
        self.streams: Dict[int, List[int]] = {}
        #: row -> kind -> global event id, for ready/start/done.
        self.lifecycle: Dict[int, Dict[str, int]] = {}
        #: (producer_row, consumer_row) -> global ids of its edge events.
        self.edge_events: Dict[Tuple[int, int], List[int]] = {}

    def place(self, event: TransitionEvent, row: int, stream: int) -> int:
        gid = len(self.events)
        self.events.append(event)
        self.rows.append(row)
        lane = self.streams.setdefault(stream, [])
        self.pos.append((stream, len(lane)))
        lane.append(gid)
        return gid

    def before(self, a: int, b: int) -> Optional[bool]:
        """Program-order comparison; None when in different streams."""
        sa, ia = self.pos[a]
        sb, ib = self.pos[b]
        if sa != sb:
            return None
        return ia < ib


def _build_model(
    events: Sequence[TransitionEvent],
    graph: TileGraph,
    rank_list: List[int],
    transport: str,
    out: _Capped,
) -> _TraceModel:
    """Validate events structurally (RPR064) and index the good ones."""
    model = _TraceModel()
    tt = graph.tile_tuples
    for event in events:
        if event.kind not in EVENT_KINDS:
            out.add("RPR064", f"unknown event kind {event.kind!r}")
            continue
        try:
            row = graph.row_of(event.tile)
        except RuntimeExecutionError:
            out.add(
                "RPR064",
                f"{event.kind} names {event.tile}, which is not a tile of "
                "the graph",
            )
            continue
        if event.rank != rank_list[row]:
            out.add(
                "RPR064",
                f"{event.kind} for {tt[row]} claims rank {event.rank} but "
                f"the assignment owns it on rank {rank_list[row]}",
            )
            continue
        if event.kind == "edge_sent":
            if event.dest is None:
                out.add(
                    "RPR064", f"edge_sent from {tt[row]} names no destination"
                )
                continue
            try:
                dest_row = graph.row_of(event.dest)
            except RuntimeExecutionError:
                out.add(
                    "RPR064",
                    f"edge_sent from {tt[row]} names {event.dest}, which is "
                    "not a tile of the graph",
                )
                continue
            if event.dest_rank != rank_list[dest_row]:
                out.add(
                    "RPR064",
                    f"edge_sent {tt[row]} -> {tt[dest_row]} claims "
                    f"destination rank {event.dest_rank} but the assignment "
                    f"owns it on rank {rank_list[dest_row]}",
                )
                continue
            stream = event.rank
            if transport == "process" and event.dest_rank != event.rank:
                stream = rank_list[dest_row]
            gid = model.place(event, row, stream)
            model.edge_events.setdefault((row, dest_row), []).append(gid)
        else:
            life = model.lifecycle.setdefault(row, {})
            if event.kind in life:
                out.add(
                    "RPR064",
                    f"duplicate {event.kind} for tile {tt[row]}",
                )
                continue
            gid = model.place(event, row, event.rank)
            life[event.kind] = gid
    return model


def _infer_packing(model: _TraceModel) -> str:
    for gid_list in model.edge_events.values():
        for gid in gid_list:
            e = model.events[gid]
            if e.dest_rank == e.rank:
                return "full"
    return "boundary"


def _graph_edge_set(graph: TileGraph) -> FrozenSet[Tuple[int, int]]:
    edges = set()
    for c in range(len(graph.tile_tuples)):
        for p, _delta in graph.producer_edges(c):
            edges.add((p, c))
    return frozenset(edges)


def _check_lifecycle_order(
    model: _TraceModel, tt: Sequence[Tuple[int, ...]], out: _Capped
) -> None:
    """ready < start < done within every tile's own stream (RPR060)."""
    for row, life in sorted(model.lifecycle.items()):
        start = life.get("tile_start")
        if start is None:
            continue
        ready = life.get("tile_ready")
        if ready is None:
            out.add(
                "RPR060",
                f"tile {tt[row]} started without ever becoming ready",
            )
        elif model.before(ready, start) is False:
            out.add(
                "RPR060",
                f"tile {tt[row]} started before its tile_ready transition",
            )
        done = life.get("tile_done")
        if done is not None and model.before(start, done) is False:
            out.add(
                "RPR060",
                f"tile {tt[row]} finished before it started",
            )


def _check_producer_ordering(
    model: _TraceModel,
    graph: TileGraph,
    rank_list: List[int],
    packing: str,
    transport: str,
    dead_ranks: FrozenSet[int],
    out: _Capped,
) -> None:
    """Every started consumer happens-after each producer (RPR060)."""
    tt = graph.tile_tuples
    for row, life in sorted(model.lifecycle.items()):
        start = life.get("tile_start")
        if start is None:
            continue
        for p, _delta in graph.producer_edges(row):
            cross = rank_list[p] != rank_list[row]
            packed = cross or packing == "full"
            if packed:
                sends = model.edge_events.get((p, row), ())
                if sends:
                    # Comparable when the edge event streams with the
                    # consumer (same-rank sends; process-transport
                    # recvs); inline cross sends are ordered by the
                    # global constraint graph instead.
                    if any(model.before(g, start) is False for g in sends):
                        out.add(
                            "RPR060",
                            f"tile {tt[row]} started before the edge from "
                            f"its producer {tt[p]} was packed/received "
                            "(data race on its ghost cells)",
                        )
                elif cross and transport == "inline" and (
                    rank_list[p] in dead_ranks
                ):
                    pass  # the send was recorded by a rank that died
                else:
                    what = "received" if transport == "process" and cross \
                        else "sent"
                    out.add(
                        "RPR060",
                        f"tile {tt[row]} started but the edge from its "
                        f"producer {tt[p]} was never {what} (lost "
                        "delivery / race on uninitialized ghost cells)",
                    )
            else:
                pstart = model.lifecycle.get(p, {}).get("tile_start")
                if pstart is None or model.before(pstart, start) is False:
                    out.add(
                        "RPR060",
                        f"tile {tt[row]} started before its same-rank "
                        f"producer {tt[p]} (race on the shared ghost "
                        "arrays)",
                    )


def _check_hb_acyclic(model: _TraceModel, out: _Capped) -> None:
    """Kahn over program order + send->ready edges (RPR060 on a cycle)."""
    n = len(model.events)
    succs: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for lane in model.streams.values():
        for a, b in zip(lane, lane[1:]):
            succs[a].append(b)
            indeg[b] += 1
    for (_p, c), gids in model.edge_events.items():
        ready = model.lifecycle.get(c, {}).get("tile_ready")
        if ready is None:
            continue
        for g in gids:
            if model.pos[g][0] != model.pos[ready][0]:
                succs[g].append(ready)
                indeg[ready] += 1
    frontier = [i for i in range(n) if indeg[i] == 0]
    seen = 0
    while frontier:
        node = frontier.pop()
        seen += 1
        for s in succs[node]:
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    if seen != n:
        out.add(
            "RPR060",
            "the trace's happens-before constraints are cyclic: no "
            "interleaving can realize the recorded send/ready order",
        )


def _check_lifetimes(
    model: _TraceModel,
    graph: TileGraph,
    rank_list: List[int],
    packing: str,
    transport: str,
    expect_complete: bool,
    edges: FrozenSet[Tuple[int, int]],
    out: _Capped,
) -> None:
    """Edge-buffer lifetime replay against EdgeMemoryTracker (RPR061)."""
    tt = graph.tile_tuples
    tracker = EdgeMemoryTracker()
    for (p, c), gids in sorted(model.edge_events.items()):
        if (p, c) not in edges:
            out.add(
                "RPR061",
                f"edge_sent {tt[p]} -> {tt[c]} packs a phantom edge the "
                "tile graph does not contain",
            )
            continue
        for gid in gids:
            try:
                tracker.add_edge((p, c), model.events[gid].cells)
            except RuntimeExecutionError as exc:
                out.add("RPR061", str(exc))
            event = model.events[gid]
            producer_recorded = not (
                transport == "process" and event.dest_rank != event.rank
            )
            if not producer_recorded:
                continue
            life = model.lifecycle.get(p, {})
            pstart = life.get("tile_start")
            pdone = life.get("tile_done")
            if pstart is None or model.before(pstart, gid) is False:
                out.add(
                    "RPR061",
                    f"edge {tt[p]} -> {tt[c]} was packed before its "
                    f"producer {tt[p]} started computing",
                )
            elif pdone is not None and model.before(pdone, gid) is True:
                out.add(
                    "RPR061",
                    f"edge {tt[p]} -> {tt[c]} was packed after its producer "
                    f"{tt[p]} released its state array (use-after-release)",
                )
    # Consumption: a started consumer releases every packed edge it saw.
    for row, life in sorted(model.lifecycle.items()):
        if "tile_start" not in life:
            continue
        for p, _delta in graph.producer_edges(row):
            if (p, row) in model.edge_events and (p, row) in edges:
                try:
                    tracker.remove_edge((p, row))
                except RuntimeExecutionError as exc:
                    out.add("RPR061", str(exc))
    if expect_complete:
        for p, c in tracker.live_edge_keys():
            out.add(
                "RPR061",
                f"edge {tt[p]} -> {tt[c]} was packed but never consumed in "
                "a run that claims completion",
            )
    # Producers that released without packing a required edge.
    if expect_complete:
        for row, life in sorted(model.lifecycle.items()):
            if "tile_done" not in life:
                continue
            for c in range(int(graph.cons_ptr[row]),
                           int(graph.cons_ptr[row + 1])):
                consumer = int(graph.cons_rows[c])
                cross = rank_list[consumer] != rank_list[row]
                if (cross or packing == "full") and (
                    (row, consumer) not in model.edge_events
                ):
                    out.add(
                        "RPR061",
                        f"tile {tt[row]} released its state array without "
                        f"packing its edge to {tt[consumer]}",
                    )


def _check_fifo(
    model: _TraceModel,
    graph: TileGraph,
    rank_list: List[int],
    out: _Capped,
) -> None:
    """Per-channel FIFO inversions (RPR062).

    A consumer fed *entirely* by one channel becomes ready exactly when
    its final message is received, and the channel delivers in send
    order — so across two such consumers, ready order must match the
    order of their final edge events.  Sound for both transports: the
    completion positions live in one stream (the producer rank's for
    inline sends, the consumer rank's for process recvs) and the ready
    positions in the consumer rank's stream.
    """
    tt = graph.tile_tuples
    by_channel: Dict[Tuple[int, int], List[Tuple[Tuple[int, int], int]]] = {}
    for row, life in sorted(model.lifecycle.items()):
        ready = life.get("tile_ready")
        if ready is None:
            continue
        producers = graph.producer_edges(row)
        if not producers:
            continue
        srcs = {rank_list[p] for p, _ in producers}
        if len(srcs) != 1:
            continue
        src = srcs.pop()
        dst = rank_list[row]
        if src == dst:
            continue
        positions = []
        for p, _ in producers:
            gids = model.edge_events.get((p, row))
            if not gids:
                break
            positions.extend(model.pos[g] for g in gids)
        else:
            completion = max(positions)
            by_channel.setdefault((src, dst), []).append(
                (completion, row)
            )
    for (src, dst), entries in sorted(by_channel.items()):
        entries.sort()
        ready_pos = [
            (model.pos[model.lifecycle[row]["tile_ready"]], row)
            for _, row in entries
        ]
        for (pos1, r1), (pos2, r2) in zip(ready_pos, ready_pos[1:]):
            if pos2 < pos1:
                out.add(
                    "RPR062",
                    f"FIFO inversion on channel r{src}->r{dst}: "
                    f"{tt[r1]} completed its messages before {tt[r2]} "
                    f"but became ready after it",
                )


def _check_completion(
    model: _TraceModel,
    graph: TileGraph,
    rank_list: List[int],
    dead_ranks: FrozenSet[int],
    expect_complete: bool,
    out: _Capped,
) -> None:
    """RPR060 for completed runs with unrun tiles; RPR063 for truncation."""
    tt = graph.tile_tuples
    unfinished = [
        row
        for row in range(len(tt))
        if "tile_done" not in model.lifecycle.get(row, {})
    ]
    if not unfinished:
        return
    if expect_complete:
        for row in unfinished:
            life = model.lifecycle.get(row, {})
            if "tile_start" in life:
                what = "started but never finished"
            elif "tile_ready" in life:
                what = "became ready but never started"
            else:
                what = "never became ready"
            out.add(
                "RPR060",
                f"tile {tt[row]} {what} in a run that claims completion",
            )
    else:
        dead = sorted(dead_ranks)
        detail = (
            f" (dead ranks: {', '.join(f'r{r}' for r in dead)})"
            if dead
            else ""
        )
        races = out.has("RPR060") or out.has("RPR061") or out.has("RPR062")
        verdict = (
            "the recorded prefix violates happens-before (see errors)"
            if races
            else "the recorded prefix is race-free"
        )
        out.add(
            "RPR063",
            f"trace is truncated: {len(unfinished)} of {len(tt)} tiles "
            f"unfinished{detail}; {verdict}",
        )


def check_trace(
    graph: TileGraph,
    rank_of: Sequence[int],
    trace: Trace,
    problem: str = "",
    packing: str = "auto",
    transport: str = "inline",
    dead_ranks: Iterable[int] = (),
    expect_complete: Optional[bool] = None,
    schedule: str = "dynamic",
) -> List[Diagnostic]:
    """Sanitize one transition trace against its graph and assignment.

    *trace* is either an :func:`~repro.runtime.scheduler.encode_events`
    byte string or the event sequence itself.  *dead_ranks* names ranks
    whose events were lost (killed workers) — their missing cross-rank
    sends are excused rather than reported as races.  *expect_complete*
    defaults to "no dead ranks": a completed run must account for every
    tile, a truncated one earns an ``RPR063`` classification instead.
    *schedule* names the policy that produced the trace: under
    ``"static"`` the per-channel FIFO check (RPR062) is skipped, since
    its premise — a single-channel consumer becomes ready exactly when
    its final message arrives — does not hold when readiness is a
    (rank, level) barrier releasing whole levels in row order.
    """
    diags: List[Diagnostic] = []
    out = _Capped(diags, problem)
    dead = frozenset(int(r) for r in dead_ranks)
    if expect_complete is None:
        expect_complete = not dead

    if isinstance(trace, (bytes, bytearray)):
        try:
            events: Sequence[TransitionEvent] = decode_events(bytes(trace))
        except RuntimeExecutionError as exc:
            out.add("RPR064", str(exc))
            return diags
    else:
        events = trace

    rank_list = [int(r) for r in rank_of]
    if len(rank_list) != len(graph.tile_tuples):
        out.add(
            "RPR064",
            f"rank assignment covers {len(rank_list)} rows but the graph "
            f"has {len(graph.tile_tuples)} tiles",
        )
        return diags

    model = _build_model(events, graph, rank_list, transport, out)
    if out.has("RPR064"):
        # A structurally broken trace makes every downstream ordering
        # judgement unreliable; report the malformation alone.
        return diags

    resolved_packing = (
        _infer_packing(model) if packing == "auto" else packing
    )
    edges = _graph_edge_set(graph)
    tt = graph.tile_tuples

    _check_lifecycle_order(model, tt, out)
    _check_producer_ordering(
        model, graph, rank_list, resolved_packing, transport, dead, out
    )
    _check_hb_acyclic(model, out)
    _check_lifetimes(
        model, graph, rank_list, resolved_packing, transport,
        expect_complete, edges, out,
    )
    if schedule != "static":
        _check_fifo(model, graph, rank_list, out)
    _check_completion(model, graph, rank_list, dead, expect_complete, out)
    return diags


def racecheck_execution(
    program: GeneratedProgram,
    params: Mapping[str, int],
    ranks: int = 1,
    backend: str = "inline",
    mode: str = "auto",
    kernel: Optional[Kernel] = None,
    lb_method: str = "dimension-cut",
    priority_scheme: str = "lb-first",
    schedule: str = "dynamic",
) -> List[Diagnostic]:
    """Execute with event recording, then sanitize the trace.

    The dynamic half of ``repro-racecheck``: runs the program through
    the requested backend with ``record_events=True`` and hands the
    trace (plus the rank assignment the run used) to
    :func:`check_trace`.  A failing run is *not* an analysis error —
    the partial traces the process backend attaches to its
    :class:`~repro.errors.RuntimeExecutionError` (``partial_events``)
    are sanitized with the non-reporting ranks marked dead, which is
    how a killed worker classifies as truncated-but-race-free.
    """
    from ..runtime.executor import execute

    problem = program.spec.name
    params = dict(params)
    graph = tile_graph(program, params)
    if ranks == 1:
        rank_arr = np.zeros(len(graph.tile_tuples), dtype=np.int64)
    else:
        rank_arr = spmd_rank_assignment(
            program, params, graph, ranks, lb_method=lb_method
        )
    transport = "process" if (backend == "process" and ranks > 1) else "inline"

    try:
        result = execute(
            program,
            params,
            kernel=kernel,
            ranks=ranks,
            backend=backend if ranks > 1 else "inline",
            mode=mode,
            priority_scheme=priority_scheme,
            record_events=True,
            schedule=schedule,
        )
    except ReproError as exc:
        partial = getattr(exc, "partial_events", None)
        if partial is None:
            return [
                make_diagnostic(
                    "RPR064",
                    f"execution failed without a trace: {exc}",
                    problem=problem,
                    source="trace",
                )
            ]
        events = []
        for r in sorted(partial):
            events.extend(partial[r])
        dead = sorted(set(range(ranks)) - set(partial))
        return check_trace(
            graph,
            rank_arr,
            events,
            problem=problem,
            transport=transport,
            dead_ranks=dead,
            expect_complete=False,
            schedule=schedule,
        )
    return check_trace(
        graph,
        rank_arr,
        result.events or [],
        problem=problem,
        transport=transport,
        schedule=schedule,
    )
