"""Pass 3 — schedule race/coverage audit on a probe instantiation.

An uncovered cross-tile edge is a data race in the generated MPI
program: the consumer tile would read ghost cells no pack/unpack pair
ever ships.  This pass recomputes the ground truth *independently* of
the generator's own bookkeeping — the tile-dependency deltas come from
:func:`repro.generator.tile_deps.tile_dependency_map` applied afresh to
the spec, and the expected edges from shifting every probe tile by every
delta — and compares:

* ``RPR030`` — a recomputed delta has no pack region in
  ``program.pack_plans`` (nothing would ever be packed across it);
* ``RPR031`` — an expected concrete edge is absent from the CSR tile
  graph (the runtime would never exchange, nor even order, the pair);
* ``RPR013`` — the probe tile graph is cyclic (no topological order);
* ``RPR032`` — executing the graph through a priority ready-queue (the
  runtime's actual mechanism, :func:`make_priority_array` keys in a
  heap) pops some consumer before one of its *true* producers finished.

* ``RPR033`` — the graph's cached ``wavefront_levels()`` (the static
  schedule policy's barrier structure) disagrees with the longest-path
  levels recomputed here from the independent ``dep_map`` edges.

``RPR032`` deliberately validates the simulated pop order against the
independently recomputed producers, not against the graph's own edges:
a consumer can only overtake a producer the graph does not know about,
which is exactly the race being hunted.  ``RPR033`` plays the same
trick for the static policy: its level barriers are only safe if every
true producer sits on a strictly lower level, so the levels are
re-derived from the recomputed edges and compared entry by entry.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..generator.priority import SCHEMES, make_priority_array
from ..generator.tile_deps import tile_dependency_map
from ..runtime.graph import TileGraph
from .diagnostics import Diagnostic, make_diagnostic

#: Cap on repeated findings of the same code so a single systematic
#: defect doesn't bury the report in thousands of concrete edges.
_MAX_PER_CODE = 5


def audit_schedule(
    program: GeneratedProgram,
    params: Mapping[str, int],
    schemes: Sequence[str] = ("lb-first",),
) -> List[Diagnostic]:
    """Coverage/race diagnostics for *program* on the probe *params*."""
    spec = program.spec
    diags: List[Diagnostic] = []

    def diag(code: str, message: str) -> None:
        diags.append(
            make_diagnostic(code, message, problem=spec.name, source="schedule")
        )

    # -- delta coverage (RPR030) --------------------------------------------
    dep_map = tile_dependency_map(spec)
    for delta, templates in dep_map.items():
        if delta not in program.pack_plans:
            diag(
                "RPR030",
                f"tile dependency delta {delta} (templates "
                f"{', '.join(templates)}) has no pack region; the "
                "generated MPI program would never ship these ghost cells",
            )

    # -- concrete graph (RPR031 / RPR013) -----------------------------------
    graph = _try_build(program, params)
    if graph is None:
        # Without a graph the edge/priority audits cannot run; RPR030
        # above already explains a missing-plan build failure.
        if not diags:
            diag(
                "RPR013",
                f"could not build the probe tile graph for params "
                f"{dict(params)}",
            )
        return diags

    tiles = graph.tiles
    row_of = {t: r for r, t in enumerate(graph.tile_tuples)}
    producers = graph.producers
    expected: Dict[tuple, List[tuple]] = {}
    missing_edges = 0
    for tile in graph.tile_tuples:
        expect = []
        for delta in dep_map:
            producer = tuple(t + d for t, d in zip(tile, delta))
            if producer in tiles:
                expect.append(producer)
                if producer not in producers[tile] and missing_edges < _MAX_PER_CODE:
                    missing_edges += 1
                    diag(
                        "RPR031",
                        f"edge {producer} -> {tile} (delta {delta}) is "
                        "missing from the tile graph; the consumer would "
                        "run without waiting for the producer",
                    )
        expected[tile] = expect

    try:
        graph.validate_acyclic()
    except RuntimeExecutionError as exc:
        diag("RPR013", f"probe tile graph is cyclic: {exc}")
        return diags

    # -- priority order (RPR032) --------------------------------------------
    for scheme in schemes:
        violation = _priority_violation(graph, row_of, expected, scheme)
        if violation is not None:
            diag("RPR032", violation)

    # -- static levels (RPR033) ---------------------------------------------
    for violation in _static_level_violations(graph, row_of, expected):
        diag("RPR033", violation)
    return diags


def _try_build(
    program: GeneratedProgram, params: Mapping[str, int]
) -> Optional[TileGraph]:
    try:
        return TileGraph.build(program, dict(params))
    except (RuntimeExecutionError, KeyError):
        return None


def _static_level_violations(
    graph: TileGraph,
    row_of: Dict[tuple, int],
    expected: Dict[tuple, List[tuple]],
) -> List[str]:
    """Mismatches between cached and recomputed wavefront levels.

    The static schedule policy releases tiles in (rank, level) barriers
    keyed by :meth:`TileGraph.wavefront_levels`; a level assignment
    that places any true producer on the same or a higher level than
    its consumer is a data race under that policy.  The ground truth is
    recomputed here as longest-path levels over the *independently*
    re-derived producer edges (the same ``expected`` set RPR031/RPR032
    audit), then compared entry by entry with the graph's cached array.
    """
    recomputed: Dict[tuple, int] = {}
    indeg = {tile: len(prods) for tile, prods in expected.items()}
    consumers: Dict[tuple, List[tuple]] = {t: [] for t in expected}
    for tile, prods in expected.items():
        for producer in prods:
            consumers[producer].append(tile)
    frontier = [t for t, n in indeg.items() if n == 0]
    for tile in frontier:
        recomputed[tile] = 0
    while frontier:
        nxt: List[tuple] = []
        for tile in frontier:
            for consumer in consumers[tile]:
                level = recomputed.get(consumer, 0)
                recomputed[consumer] = max(level, recomputed[tile] + 1)
                indeg[consumer] -= 1
                if indeg[consumer] == 0:
                    nxt.append(consumer)
        frontier = nxt
    if len(recomputed) != len(expected) or any(n for n in indeg.values()):
        return [
            "recomputed producer edges admit no level order (cyclic); "
            "the static schedule policy would deadlock or race"
        ]
    cached = graph.wavefront_levels().tolist()
    out: List[str] = []
    for tile, level in recomputed.items():
        if cached[row_of[tile]] != level:
            out.append(
                f"tile {tile} sits on cached wavefront level "
                f"{cached[row_of[tile]]} but its recomputed longest-path "
                f"level is {level}; the static policy's level barrier "
                "would release it against a same-or-later-level producer"
            )
            if len(out) >= _MAX_PER_CODE:
                break
    return out


def _priority_violation(
    graph: TileGraph,
    row_of: Dict[tuple, int],
    expected: Dict[tuple, List[tuple]],
    scheme: str,
) -> Optional[str]:
    """First consumer-before-producer pop of the ready-queue, or None.

    Replays the runtime's scheduling loop: a tile enters the heap when
    the *graph* says its producers finished, and pops by its
    :func:`make_priority_array` key.  The resulting pop order is then
    checked against the independently recomputed producers.
    """
    keys = [
        tuple(k)
        for k in make_priority_array(
            graph.program.spec, scheme, graph.tile_array
        ).tolist()
    ]
    indeg = graph.dependency_count_array()
    ptr = graph.cons_ptr
    rows = graph.cons_rows
    heap = [(keys[int(r)], int(r)) for r in range(len(indeg)) if indeg[r] == 0]
    heapq.heapify(heap)
    position: Dict[int, int] = {}
    while heap:
        _, r = heapq.heappop(heap)
        position[r] = len(position)
        for e in range(int(ptr[r]), int(ptr[r + 1])):
            c = int(rows[e])
            indeg[c] -= 1
            if indeg[c] == 0:
                heapq.heappush(heap, (keys[c], c))
    if len(position) != len(graph.tile_array):
        return None  # cyclic; RPR013 reports the cause
    for tile, producers in expected.items():
        cpos = position[row_of[tile]]
        for producer in producers:
            if position[row_of[producer]] >= cpos:
                return (
                    f"scheme {scheme!r} executes consumer tile {tile} "
                    f"before its producer {producer}"
                )
    return None
