"""Orchestration: run every analysis pass over a spec or program.

The entry points mirror how callers hold the problem:

* :func:`analyze_spec_text` / :func:`analyze_spec_file` — the full
  pipeline for textual specs: parse (``RPR001``), dependence legality on
  the raw fields (``RPR002/010/011/012`` — *before* construction, which
  would raise), then everything below;
* :func:`analyze_spec` — passes over a constructed
  :class:`~repro.spec.ProblemSpec`: kernel lint, program generation,
  schedule audit on a probe instantiation, emitted-C audit;
* :func:`analyze_program` — the program-level passes only, for callers
  that already generated (or mutated) a
  :class:`~repro.generator.pipeline.GeneratedProgram`.

Every pass appends :class:`Diagnostic` values; nothing raises for
findings.  :class:`~repro.errors.ReproError` surfaced by the generator
itself becomes an ``RPR002`` diagnostic so one bad spec cannot abort a
multi-spec lint run.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..errors import ParseError, ReproError
from ..generator.pipeline import GeneratedProgram
from ..generator.validity import ValiditySet, build_validity
from ..spec import ProblemSpec, build_spec, parse_spec_fields
from .c_audit import audit_emitted_c
from .concurrency import check_concurrency
from .dependence import check_dependence
from .diagnostics import Diagnostic, has_errors, make_diagnostic
from .kernel_lint import lint_kernel
from .probe import probe_params
from .schedule_audit import audit_schedule


def analyze_spec_text(text: str, source_name: str = "") -> List[Diagnostic]:
    """Full pipeline over a spec document."""
    try:
        fields = parse_spec_fields(text)
    except ParseError as exc:
        return [
            make_diagnostic(
                "RPR001", str(exc), problem=source_name, source="spec"
            )
        ]
    diags = check_dependence(fields)
    if has_errors(diags):
        return diags
    try:
        spec = build_spec(fields)
    except ReproError as exc:
        diags.append(
            make_diagnostic(
                "RPR002", str(exc), problem=fields.name, source="spec"
            )
        )
        return diags
    diags.extend(analyze_spec(spec))
    return diags


def analyze_spec_file(path: str) -> List[Diagnostic]:
    """Full pipeline over a spec file on disk."""
    import os

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return [
            make_diagnostic(
                "RPR001",
                f"cannot read spec file: {exc}",
                problem=os.path.basename(str(path)),
                source="spec",
            )
        ]
    return analyze_spec_text(text, source_name=os.path.basename(str(path)))


def analyze_spec(
    spec: ProblemSpec, params: Optional[Mapping[str, int]] = None
) -> List[Diagnostic]:
    """Kernel lint plus program-level passes for a constructed spec."""
    validity = build_validity(spec)
    diags = lint_kernel(spec, validity)
    try:
        from ..generator import generate

        program = generate(spec)
    except ReproError as exc:
        diags.append(
            make_diagnostic(
                "RPR002",
                f"code generation failed: {exc}",
                problem=spec.name,
                source="spec",
            )
        )
        return diags
    diags.extend(analyze_program(program, params=params, _validity=validity))
    return diags


def analyze_program(
    program: GeneratedProgram,
    params: Optional[Mapping[str, int]] = None,
    _validity: Optional[ValiditySet] = None,
) -> List[Diagnostic]:
    """Schedule, static-concurrency and emitted-C audits for a program.

    The static concurrency pass (``RPR05x``, :mod:`.concurrency`) runs
    on the same probe instantiation as the schedule audit; the dynamic
    trace sanitizer (``RPR06x``, :mod:`.tracecheck`) requires executing
    the program and therefore lives behind ``repro-racecheck`` only.
    """
    spec = program.spec
    validity = _validity if _validity is not None else build_validity(spec)
    if params is None:
        params = probe_params(spec)
    diags = audit_schedule(program, params)
    diags.extend(check_concurrency(program, params=params))
    try:
        from ..generator.cgen import emit_c_program

        source = emit_c_program(program)
    except ReproError as exc:
        diags.append(
            make_diagnostic(
                "RPR002",
                f"C emission failed: {exc}",
                problem=spec.name,
                source="emitted-c",
            )
        )
        return diags
    diags.extend(audit_emitted_c(spec, validity, source))
    return diags
