"""Pass 1 — dependence legality of the declared spec fields.

Checks the template vectors against the declared loop ordering and tile
widths *before* a :class:`~repro.spec.ProblemSpec` is constructed, so an
illegal ordering is a diagnostic rather than a raised :class:`SpecError`:

* ``RPR010`` — two templates force opposite scan directions on the same
  first-nonzero dimension (paper Section IV-L: the sequential scan order
  must run against every template's leading component);
* ``RPR011`` — no vector λ satisfies λ·r ≥ 1 for every template, i.e.
  the recurrence is cyclic for some problem size;
* ``RPR012`` — a tile width is smaller than the template reach in that
  dimension, so a dependency would skip over an entire tile;
* ``RPR002`` — structural inconsistencies (wrong vector arity, zero
  vectors, unknown tile-width dimensions, ...).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..spec.parser import SpecFields
from ..spec.templates import DESCENDING
from .diagnostics import Diagnostic, make_diagnostic


def check_dependence(fields: SpecFields) -> List[Diagnostic]:
    """Dependence-legality diagnostics for raw spec fields."""
    diags: List[Diagnostic] = []
    name = fields.name
    lv = list(fields.loop_vars)
    dims = len(lv)

    def diag(code: str, message: str, source: str = "spec") -> None:
        diags.append(make_diagnostic(code, message, problem=name, source=source))

    if not lv:
        diag("RPR002", "at least one loop variable is required")
        return diags
    if len(set(lv)) != len(lv):
        diag("RPR002", f"duplicate loop variables: {lv}")
        return diags

    vectors: List[Tuple[str, Tuple[int, ...]]] = []
    for tname, vec in fields.templates.items():
        if len(vec) != dims:
            diag(
                "RPR002",
                f"template {tname!r} has {len(vec)} components but there "
                f"are {dims} loop variables",
                source="templates",
            )
        elif all(c == 0 for c in vec):
            diag(
                "RPR002",
                f"template {tname!r} is the zero vector",
                source="templates",
            )
        else:
            vectors.append((tname, tuple(vec)))
    if not fields.templates:
        diag("RPR002", "at least one template vector is required", source="templates")
    if diags:
        return diags

    # Scan-direction legality: the first nonzero component of each
    # template (in loop order) forces a direction on that dimension; two
    # templates forcing opposite directions means no lexicographic order
    # over the declared loop_vars evaluates producers before consumers.
    forced: Dict[str, Tuple[int, str]] = {}
    for tname, vec in vectors:
        for var, comp in zip(lv, vec):
            if comp == 0:
                continue
            want = DESCENDING if comp > 0 else -DESCENDING
            prev = forced.get(var)
            if prev is not None and prev[0] != want:
                diag(
                    "RPR010",
                    f"templates {prev[1]!r} and {tname!r} force opposite "
                    f"scan directions on dimension {var!r}; reorder "
                    "loop_vars so an earlier dimension distinguishes them",
                    source="templates",
                )
            elif prev is None:
                forced[var] = (want, tname)
            break

    if _has_linear_schedule(vectors, dims) is False:
        diag(
            "RPR011",
            "the template vectors admit no linear schedule; the "
            "recurrence is cyclic and cannot be evaluated",
            source="templates",
        )

    # Tile widths: every dimension needs a width of at least the
    # farthest dependency reach, or a tile would depend on a non-adjacent
    # tile that the ghost-region exchange never ships.
    reach = {v: 0 for v in lv}
    for _, vec in vectors:
        for var, comp in zip(lv, vec):
            reach[var] = max(reach[var], abs(comp))
    widths = dict(fields.tile_widths)
    for extra in sorted(set(widths) - set(lv)):
        diag("RPR002", f"tile width given for unknown dimension {extra!r}")
    for v in lv:
        w = widths.get(v)
        if w is None:
            diag("RPR002", f"missing tile width for dimension {v!r}")
        elif w < 1:
            diag("RPR002", f"tile width for {v!r} must be positive, got {w}")
        elif w < reach[v]:
            diag(
                "RPR012",
                f"tile width {w} for {v!r} is smaller than the template "
                f"reach {reach[v]}; tiles must be at least as wide as the "
                "farthest dependency",
            )
    return diags


def _has_linear_schedule(
    vectors: List[Tuple[str, Tuple[int, ...]]], dims: int
) -> Optional[bool]:
    """LP feasibility of λ·r ≥ 1 for all templates; None without scipy."""
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is a normal dependency
        return None
    if not vectors:
        return True
    a_ub = [[-float(c) for c in vec] for _, vec in vectors]
    b_ub = [-1.0] * len(vectors)
    res = linprog(
        [0.0] * dims,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None)] * dims,
        method="highs",
    )
    return res.status == 0
