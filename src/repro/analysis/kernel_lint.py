"""Pass 2 — lint of the spec's Python center-loop fragment.

``center_code_py`` is user-written code against the Section IV-B cell
interface (``V[loc]``, ``V[loc_r]``, ``is_valid_r``).  This pass parses
it with :mod:`ast` and checks, without executing anything:

* ``RPR020`` — the fragment (or ``global_code_py``/``init_code_py``)
  does not parse;
* ``RPR021`` — a name is read that is neither a loop variable,
  parameter, interface token, builtin, fragment-local assignment, nor a
  name bound by the global/init code;
* ``RPR022`` — ``V[loc_r]`` is read for a template ``r`` that the spec
  never declared;
* ``RPR023`` (warning) — a declared template whose location the
  fragment never reads;
* ``RPR024`` — ``V[loc]`` is read before the fragment assigns it;
* ``RPR025`` — ``V[loc_r]`` is read where ``r`` is not always valid and
  no enclosing guard establishes its validity checks (via an
  ``is_valid`` flag whose checks cover ``r``'s, or linear comparisons
  implying them — see :mod:`repro.analysis.guards`);
* ``RPR026`` — the fragment assigns ``V[loc_r]``;
* ``RPR027`` — the fragment never assigns ``V[loc]``.

Guard tracking is flow-sensitive for ``if``/``elif``, conditional
expressions, ``while`` tests, and ``and`` short-circuiting (the right
operand of ``a and b`` is only evaluated when ``a`` held).  Negative
knowledge (``else`` of an ``is_valid`` test) is not tracked — absence of
a guarantee only ever yields a diagnostic, never suppresses one.
"""

from __future__ import annotations

import ast
import builtins
from typing import List, Optional, Set, Tuple

from ..generator.validity import ValiditySet
from ..polyhedra import Constraint
from ..spec import ProblemSpec
from .diagnostics import Diagnostic, make_diagnostic
from .guards import GuardAnalyzer, parse_comparison

_BUILTIN_NAMES = frozenset(dir(builtins))

#: (known-valid template names, known linear facts) at a program point.
Guards = Tuple[Set[str], List[Constraint]]


def _assigned_names(tree: ast.AST) -> Set[str]:
    """Every name the tree binds, in any scope (over-approximation)."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            out.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            out.add(node.name)
        elif isinstance(node, ast.arg):
            out.add(node.arg)
        elif isinstance(node, ast.alias):
            out.add((node.asname or node.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
    return out


class _FragmentLinter(ast.NodeVisitor):
    """Single walk over the fragment with guard-state threading.

    The default ``visit`` dispatch is not used for expressions — guard
    context must flow *down* into sub-expressions, so statements call
    :meth:`expr` explicitly with the guards in scope.
    """

    def __init__(self, spec: ProblemSpec, validity: ValiditySet, source: str):
        self.spec = spec
        self.validity = validity
        self.source = source
        self.analyzer = GuardAnalyzer(spec, validity)
        self.templates = set(spec.templates.names())
        self.state = spec.state_name
        self.diags: List[Diagnostic] = []
        self.read_templates: Set[str] = set()
        self.wrote_current = False
        self.reported_names: Set[str] = set()
        self.allowed: Set[str] = (
            set(spec.loop_vars)
            | set(spec.params)
            | {self.state, "loc"}
            | {f"loc_{t}" for t in self.templates}
            | {f"is_valid_{t}" for t in self.templates}
            | set(_BUILTIN_NAMES)
        )

    def diag(self, code: str, message: str, node: Optional[ast.AST] = None) -> None:
        line = getattr(node, "lineno", None)
        col = getattr(node, "col_offset", None)
        self.diags.append(
            make_diagnostic(
                code,
                message,
                problem=self.spec.name,
                source=self.source,
                line=line,
                col=None if col is None else col + 1,
            )
        )

    # -- knowledge extraction ------------------------------------------------

    def knowledge(self, test: ast.expr) -> Guards:
        """What holds inside a branch taken when *test* is true."""
        valid: Set[str] = set()
        facts: List[Constraint] = []
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                v, f = self.knowledge(value)
                valid |= v
                facts += f
        elif isinstance(test, ast.Name) and test.id.startswith("is_valid_"):
            t = test.id[len("is_valid_"):]
            if t in self.templates:
                valid.add(t)
        elif isinstance(test, ast.Compare):
            try:
                text = ast.unparse(test)
            except Exception:  # pragma: no cover - unparse is total on parses
                text = ""
            facts += parse_comparison(text, self.analyzer.allowed_vars)
        return valid, facts

    @staticmethod
    def merge(guards: Guards, extra: Guards) -> Guards:
        return (guards[0] | extra[0], guards[1] + extra[1])

    # -- expressions ---------------------------------------------------------

    def expr(self, node: Optional[ast.expr], guards: Guards) -> None:
        if node is None:
            return
        if isinstance(node, ast.Subscript) and self._is_state(node.value):
            self._state_access(node, guards, store=False)
            return
        if isinstance(node, ast.BoolOp):
            acc = guards
            for value in node.values:
                self.expr(value, acc)
                if isinstance(node.op, ast.And):
                    acc = self.merge(acc, self.knowledge(value))
            return
        if isinstance(node, ast.IfExp):
            self.expr(node.test, guards)
            self.expr(node.body, self.merge(guards, self.knowledge(node.test)))
            self.expr(node.orelse, guards)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._check_name(node)
            return
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            # Nested scopes: names were over-approximated in the prepass;
            # walk children without guard refinement.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child, guards)
                else:
                    for sub in ast.walk(child):
                        if isinstance(sub, ast.Name) and isinstance(
                            sub.ctx, ast.Load
                        ):
                            self._check_name(sub)
                        elif isinstance(sub, ast.Subscript) and self._is_state(
                            sub.value
                        ):
                            self._state_access(sub, guards, store=False)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, guards)

    def _is_state(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == self.state

    def _state_access(self, node: ast.Subscript, guards: Guards, store: bool) -> None:
        index = node.slice
        token = index.id if isinstance(index, ast.Name) else None
        state = self.state
        if token == "loc":
            if store:
                self.wrote_current = True
            elif not self.wrote_current:
                self.diag(
                    "RPR024",
                    f"{state}[loc] is read before the fragment assigns it",
                    node,
                )
            return
        if token is not None and token.startswith("loc_"):
            template = token[len("loc_"):]
            if template not in self.templates:
                self.diag(
                    "RPR022",
                    f"{state}[{token}] reads template {template!r}, which "
                    "the spec does not declare",
                    node,
                )
                return
            if store:
                self.diag(
                    "RPR026",
                    f"assignment to dependency location {state}[{token}]; "
                    "the fragment may only assign "
                    f"{state}[loc]",
                    node,
                )
                return
            self.read_templates.add(template)
            if not self.validity.always_valid(template) and not (
                self.analyzer.covers(template, guards[0], guards[1])
            ):
                self.diag(
                    "RPR025",
                    f"{state}[{token}] is read without a guard establishing "
                    f"is_valid_{template} (template {template!r} is not "
                    "always valid)",
                    node,
                )
            return
        # Computed index (V[something]): lint the index expression itself.
        if isinstance(index, ast.expr):
            self.expr(index, guards)
        if not store and token is not None:
            self.diag(
                "RPR022",
                f"{state}[{token}] does not use a loc/loc_<template> token",
                node,
            )

    def _check_name(self, node: ast.Name) -> None:
        if node.id in self.allowed or node.id in self.reported_names:
            return
        self.reported_names.add(node.id)
        self.diag("RPR021", f"undefined name {node.id!r}", node)

    # -- statements ----------------------------------------------------------

    def stmts(self, body: List[ast.stmt], guards: Guards) -> None:
        for stmt in body:
            self.stmt(stmt, guards)

    def stmt(self, node: ast.stmt, guards: Guards) -> None:
        if isinstance(node, ast.If):
            self.expr(node.test, guards)
            self.stmts(node.body, self.merge(guards, self.knowledge(node.test)))
            self.stmts(node.orelse, guards)
        elif isinstance(node, ast.While):
            self.expr(node.test, guards)
            self.stmts(node.body, self.merge(guards, self.knowledge(node.test)))
            self.stmts(node.orelse, guards)
        elif isinstance(node, ast.For):
            self.expr(node.iter, guards)
            self.stmts(node.body, guards)
            self.stmts(node.orelse, guards)
        elif isinstance(node, ast.Assign):
            self.expr(node.value, guards)
            for target in node.targets:
                self._target(target, guards)
        elif isinstance(node, ast.AnnAssign):
            self.expr(node.value, guards)
            self._target(node.target, guards)
        elif isinstance(node, ast.AugAssign):
            self.expr(node.value, guards)
            # An augmented target is read, then written.
            if isinstance(node.target, ast.Subscript) and self._is_state(
                node.target.value
            ):
                self._state_access(node.target, guards, store=False)
                self._state_access(node.target, guards, store=True)
        elif isinstance(node, ast.Assert):
            self.expr(node.test, guards)
        elif isinstance(node, ast.Expr):
            self.expr(node.value, guards)
        elif isinstance(node, (ast.Return, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child, guards)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.With, ast.Try)):
            for child in ast.walk(node):
                if isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Load
                ):
                    self._check_name(child)
                elif isinstance(child, ast.Subscript) and self._is_state(
                    child.value
                ):
                    self._state_access(
                        child, guards, store=isinstance(child.ctx, ast.Store)
                    )
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child, guards)

    def _target(self, target: ast.expr, guards: Guards) -> None:
        if isinstance(target, ast.Subscript) and self._is_state(target.value):
            self._state_access(target, guards, store=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, guards)
        elif isinstance(target, ast.Subscript):
            self.expr(target.value, guards)
            if isinstance(target.slice, ast.expr):
                self.expr(target.slice, guards)


def lint_kernel(spec: ProblemSpec, validity: ValiditySet) -> List[Diagnostic]:
    """Kernel-fragment diagnostics; empty when there is no fragment."""
    code = spec.center_code_py
    if not code.strip():
        return []
    diags: List[Diagnostic] = []

    defined: Set[str] = set()
    for source, text in (
        ("global_code_py", spec.global_code_py),
        ("init_code_py", spec.init_code_py),
    ):
        if not text.strip():
            continue
        try:
            defined |= _assigned_names(ast.parse(text))
        except SyntaxError as exc:
            diags.append(
                make_diagnostic(
                    "RPR020",
                    f"{source} does not parse: {exc.msg}",
                    problem=spec.name,
                    source=source,
                    line=exc.lineno,
                    col=exc.offset,
                )
            )
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        diags.append(
            make_diagnostic(
                "RPR020",
                f"center_code_py does not parse: {exc.msg}",
                problem=spec.name,
                source="center_code_py",
                line=exc.lineno,
                col=exc.offset,
            )
        )
        return diags

    linter = _FragmentLinter(spec, validity, "center_code_py")
    linter.allowed |= defined
    linter.allowed |= _assigned_names(tree)
    linter.stmts(tree.body, (set(), []))
    diags.extend(linter.diags)

    if not linter.wrote_current:
        diags.append(
            make_diagnostic(
                "RPR027",
                f"center_code_py never assigns {spec.state_name}[loc]; every "
                "cell must produce its value",
                problem=spec.name,
                source="center_code_py",
            )
        )
    for template in spec.templates.names():
        if template not in linter.read_templates:
            diags.append(
                make_diagnostic(
                    "RPR023",
                    f"template {template!r} is declared but "
                    f"{spec.state_name}[loc_{template}] is never read",
                    problem=spec.name,
                    source="center_code_py",
                )
            )
    return diags
