"""The program generator: the paper's primary contribution (Section IV)."""

from .spaces import IterationSpaces, TileIndex, build_iteration_spaces
from .tile_deps import (
    Delta,
    consumers_of,
    delta_between,
    dependency_deltas,
    producers_of,
    template_delta_box,
    tile_dependency_map,
)
from .validity import ValiditySet, build_validity
from .mapping import TileLayout, build_layout, template_offsets
from .packing import PackPlan, build_pack_plans
from .initial_tiles import (
    initial_tiles,
    initial_tiles_exhaustive,
    initial_tiles_face_scan,
)
from .loadbalance import (
    LoadBalance,
    balance_dimension_cut,
    balance_hyperplane,
    compute_slab_work,
    lb_slab_polynomial,
    total_work_polynomial,
)
from .priority import SCHEMES as PRIORITY_SCHEMES
from .priority import PriorityFn, make_priority
from .pipeline import GeneratedProgram, GenerationStats, generate

__all__ = [
    "IterationSpaces",
    "TileIndex",
    "build_iteration_spaces",
    "Delta",
    "template_delta_box",
    "tile_dependency_map",
    "dependency_deltas",
    "producers_of",
    "consumers_of",
    "delta_between",
    "ValiditySet",
    "build_validity",
    "TileLayout",
    "build_layout",
    "template_offsets",
    "PackPlan",
    "build_pack_plans",
    "initial_tiles",
    "initial_tiles_exhaustive",
    "initial_tiles_face_scan",
    "LoadBalance",
    "balance_dimension_cut",
    "balance_hyperplane",
    "compute_slab_work",
    "total_work_polynomial",
    "lb_slab_polynomial",
    "PRIORITY_SCHEMES",
    "PriorityFn",
    "make_priority",
    "GeneratedProgram",
    "GenerationStats",
    "generate",
]
