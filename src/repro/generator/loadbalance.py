"""Load balancing (paper Section IV-J) and the hyperplane variant (VII-B).

The paper's balancer divides the total work evenly among the nodes along
the user-selected dimensions ``lb1 > lb2 > ... > lbj``: slabs of tiles
(grouped by their lb-dimension indices) are ordered with ``lb1`` as the
major key and split into contiguous chunks of equal work.  Work is
measured in iteration-space points, obtained from two Ehrhart
polynomials at generation time — here from exact lattice counts (and the
Ehrhart quasi-polynomial is still constructed, both to reproduce the
paper's artifact and to embed in the generated C code).

The *future work* balancer (Section VII-B, Figure 8) orders the same
slabs by a hyperplane functional ``lambda . t`` aligned with the
wavefront instead of lexicographically, which shortens the pipeline
critical path; both are implemented so the FIG8 benchmark can compare
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import GenerationError
from ..polyhedra import (
    Constraint,
    ConstraintSystem,
    LinExpr,
    QuasiPolynomial,
    ehrhart_univariate,
    synthesize_loop_nest,
)
from ..spec import DESCENDING, ProblemSpec
from .spaces import IterationSpaces, TileIndex

LbIndex = Tuple[int, ...]


@dataclass
class LoadBalance:
    """A computed assignment of load-balancing slabs to nodes."""

    method: str
    nodes: int
    lb_dims: Tuple[str, ...]
    slab_order: List[LbIndex]            # execution order of slabs
    slab_work: Dict[LbIndex, int]        # points per slab
    slab_node: Dict[LbIndex, int]        # slab -> owning node
    total_work: int

    def node_of_tile(self, tile: TileIndex, spaces: IterationSpaces) -> int:
        key = self.lb_key_of_tile(tile, spaces)
        try:
            return self.slab_node[key]
        except KeyError:
            raise GenerationError(
                f"tile {tile} projects to unassigned lb slab {key}"
            ) from None

    def lb_key_of_tile(self, tile: TileIndex, spaces: IterationSpaces) -> LbIndex:
        spec = spaces.spec
        return tuple(
            tile[spec.loop_vars.index(x)] for x in self.lb_dims
        )

    def work_per_node(self) -> List[int]:
        out = [0] * self.nodes
        for slab, node in self.slab_node.items():
            out[node] += self.slab_work[slab]
        return out

    def imbalance(self) -> float:
        """max node work / ideal work (1.0 is perfect)."""
        per = self.work_per_node()
        ideal = self.total_work / self.nodes if self.nodes else 0
        return max(per) / ideal if ideal else 1.0


def _slab_system(
    spec: ProblemSpec, spaces: IterationSpaces, lb_tuple: LbIndex
) -> ConstraintSystem:
    """Original x-space constraints restricted to one lb slab."""
    extra: List[Constraint] = []
    for x, t_val in zip(spec.lb_dims, lb_tuple):
        w = spec.tile_widths[x]
        # w*t <= x <= w*t + w - 1
        extra.append(Constraint(LinExpr({x: 1}, -w * t_val)))
        extra.append(Constraint(LinExpr({x: -1}, w * t_val + w - 1)))
    return spec.constraints.and_also(extra)


def _symbolic_slab_nest(spaces: IterationSpaces):
    """Loop nest counting one slab's points, lb tile indices symbolic.

    Built (and cached) once per IterationSpaces; the compiled counter then
    makes per-slab work counting O(points in the slab's outer dims).
    """
    cached = getattr(spaces, "_slab_nest", None)
    if cached is not None:
        return cached
    spec = spaces.spec
    extra: List[Constraint] = []
    for x in spec.lb_dims:
        tv = spaces.tile_var(x)
        w = spec.tile_widths[x]
        # w*t <= x <= w*t + w - 1  with t symbolic
        extra.append(Constraint(LinExpr({x: 1, tv: -w})))
        extra.append(Constraint(LinExpr({x: -1, tv: w}, w - 1)))
    system = spec.constraints.and_also(extra)
    nest = synthesize_loop_nest(system, list(spec.loop_vars))
    object.__setattr__(spaces, "_slab_nest", nest)
    return nest


def compute_slab_work(
    spaces: IterationSpaces, params: Mapping[str, int]
) -> Dict[LbIndex, int]:
    """Iteration-space points per load-balancing slab (exact counts)."""
    from ..polyhedra.compile import compile_counter, compile_scanner

    nest = _symbolic_slab_nest(spaces)
    counter = compile_counter(nest)
    lb_scan = compile_scanner(spaces.lb_nest)
    out: Dict[LbIndex, int] = {}
    env = dict(params)
    for lb_tuple in lb_scan(env):
        env.update(zip(spaces.lb_tile_vars, lb_tuple))
        work = counter(env)
        if work > 0:
            out[lb_tuple] = work
    return out


def _split_contiguous(
    order: Sequence[LbIndex],
    work: Mapping[LbIndex, int],
    nodes: int,
) -> Dict[LbIndex, int]:
    """Greedy contiguous split of ordered slabs into *nodes* even chunks."""
    total = sum(work[s] for s in order)
    assignment: Dict[LbIndex, int] = {}
    cum = 0
    node = 0
    for slab in order:
        # Advance to the node whose quota the midpoint of this slab falls in.
        mid = cum + work[slab] / 2.0
        node = min(nodes - 1, max(node, int(mid * nodes / total))) if total else 0
        assignment[slab] = node
        cum += work[slab]
    return assignment


def balance_dimension_cut(
    spaces: IterationSpaces,
    params: Mapping[str, int],
    nodes: int,
    slab_work: Optional[Dict[LbIndex, int]] = None,
) -> LoadBalance:
    """The paper's balancer: lexicographic slab order, lb1 major.

    Slabs are ordered along each dimension's *scan direction*, so node 0
    owns the slabs that execute first and the pipeline flows node 0 ->
    node P-1 (this is what creates the critical path the paper discusses).
    """
    if nodes < 1:
        raise GenerationError(f"node count must be >= 1, got {nodes}")
    spec = spaces.spec
    if slab_work is None:
        slab_work = compute_slab_work(spaces, params)
    directions = spec.scan_directions()
    signs = [(-1 if directions[x] == DESCENDING else 1) for x in spec.lb_dims]

    def key(slab: LbIndex) -> tuple:
        return tuple(s * v for s, v in zip(signs, slab))

    order = sorted(slab_work, key=key)
    assignment = _split_contiguous(order, slab_work, nodes)
    return LoadBalance(
        method="dimension-cut",
        nodes=nodes,
        lb_dims=spec.lb_dims,
        slab_order=order,
        slab_work=dict(slab_work),
        slab_node=assignment,
        total_work=sum(slab_work.values()),
    )


def balance_hyperplane(
    spaces: IterationSpaces,
    params: Mapping[str, int],
    nodes: int,
    direction: Optional[Sequence[int]] = None,
    slab_work: Optional[Dict[LbIndex, int]] = None,
) -> LoadBalance:
    """Section VII-B's balancer: order slabs by a wavefront hyperplane.

    *direction* are integer weights over the lb dims; the default is the
    all-ones wavefront (adjusted to each dimension's scan direction), the
    diagonal banding of Figure 8.  Ties break lexicographically.
    """
    if nodes < 1:
        raise GenerationError(f"node count must be >= 1, got {nodes}")
    spec = spaces.spec
    if slab_work is None:
        slab_work = compute_slab_work(spaces, params)
    directions = spec.scan_directions()
    if direction is None:
        direction = [
            (-1 if directions[x] == DESCENDING else 1) for x in spec.lb_dims
        ]
    if len(direction) != len(spec.lb_dims):
        raise GenerationError(
            f"hyperplane direction needs {len(spec.lb_dims)} weights"
        )
    signs = [(-1 if directions[x] == DESCENDING else 1) for x in spec.lb_dims]

    def key(slab: LbIndex) -> tuple:
        level = sum(w * v for w, v in zip(direction, slab))
        lex = tuple(s * v for s, v in zip(signs, slab))
        return (level,) + lex

    order = sorted(slab_work, key=key)
    assignment = _split_contiguous(order, slab_work, nodes)
    return LoadBalance(
        method="hyperplane",
        nodes=nodes,
        lb_dims=spec.lb_dims,
        slab_order=order,
        slab_work=dict(slab_work),
        slab_node=assignment,
        total_work=sum(slab_work.values()),
    )


def total_work_polynomial(
    spec: ProblemSpec,
    param: Optional[str] = None,
    start: int = 0,
) -> QuasiPolynomial:
    """The paper's first Ehrhart polynomial: total work vs the parameter.

    Computed exactly by interpolation (see :mod:`repro.polyhedra.ehrhart`);
    embedded in the generated C program so the runtime can size its load
    balance when the parameters become known.
    """
    if param is None:
        if len(spec.params) != 1:
            raise GenerationError(
                "total_work_polynomial needs an explicit param when the "
                f"spec has {len(spec.params)} parameters"
            )
        param = spec.params[0]
    return ehrhart_univariate(
        spec.constraints, list(spec.loop_vars), param, start=start
    )


def lb_slab_polynomial(
    spaces: IterationSpaces,
    lb_tuple: LbIndex,
    param: Optional[str] = None,
    start: Optional[int] = None,
) -> QuasiPolynomial:
    """The paper's second Ehrhart polynomial: slab work at fixed lb indices.

    Quasi-polynomial in the parameter with period dividing the lcm of the
    tile widths (tiling introduces periodicity).  *start* defaults to a
    value large enough that the slab is non-degenerate.
    """
    from .._util import lcm_all

    spec = spaces.spec
    if param is None:
        if len(spec.params) != 1:
            raise GenerationError("lb_slab_polynomial needs an explicit param")
        param = spec.params[0]
    system = _slab_system(spec, spaces, lb_tuple)
    period = lcm_all(spec.tile_widths[x] for x in spec.lb_dims)
    if start is None:
        # The slab exists once the parameter clears its far corner.
        start = max(
            (abs(t) + 1) * spec.tile_widths[x] * len(spec.loop_vars)
            for x, t in zip(spec.lb_dims, lb_tuple)
        )
        start = max(start, period)
    return ehrhart_univariate(
        system, list(spec.loop_vars), param, period=period, start=start
    )
