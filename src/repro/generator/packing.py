"""Packing and unpacking functions (paper Section IV-I).

After a tile finishes, only the cells near its faces are needed by
neighbouring tiles.  For each tile-dependency offset ``delta`` the
*packing* function copies the face region into a condensed contiguous
buffer (cheap to keep around, and in the form MPI transfers); the
*unpacking* function scatters that buffer into the consumer tile's ghost
margins.  Both use the *same* iteration space and scan order — the paper
stresses this — so the plan is built once and shared.

Region, in producer-local coordinates ``i'`` (with global ghost margins
``g_lo``/``g_hi`` from the template reach):

* ``delta_k = +1`` — the low slab ``0 <= i'_k < g_hi_k`` (these cells sit
  just past the consumer's high face),
* ``delta_k = -1`` — the high slab ``w_k - g_lo_k <= i'_k < w_k``,
* ``delta_k = 0``  — the full extent ``0 <= i'_k < w_k``,

intersected with the producer's local space (boundary tiles are partial).
The consumer-local coordinate of a packed cell is ``i' + w * delta``,
which lands inside the consumer's ghost margin by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..errors import GenerationError
from ..polyhedra import Constraint, ConstraintSystem, LinExpr, LoopNest, synthesize_loop_nest
from ..spec import ProblemSpec
from .mapping import TileLayout
from .spaces import IterationSpaces
from .tile_deps import Delta, tile_dependency_map


@dataclass(frozen=True)
class PackPlan:
    """Everything needed to pack/unpack one edge (one delta)."""

    delta: Delta
    templates: Tuple[str, ...]
    region_nest: LoopNest           # over producer-local vars; producer t symbolic
    consumer_shift: Tuple[int, ...]  # w_k * delta_k per dimension
    full_checker: object = None      # env -> bool: region box fully inside?
    full_cells: int = 0              # region size when full
    #: The region's global-coordinate box, ``x_k in w_k*t_k + [lo, hi]``,
    #: in :func:`repro.generator.boxcheck.make_box_min_checker` form —
    #: kept so the tile graph can run the full-region test in batch.
    full_box: Mapping[str, Tuple[object, object]] = None

    def region_size(self, producer_env: Mapping[str, int]) -> int:
        """Number of cells this edge carries for a given producer tile.

        Fully-interior regions are answered in closed form; clipped
        regions fall back to the compiled scan.
        """
        from ..polyhedra.compile import compile_counter

        if self.full_checker is not None and self.full_checker(producer_env):
            return self.full_cells
        return compile_counter(self.region_nest)(producer_env)

    def full_region_batch(self, spec: ProblemSpec, tile_vars: Tuple[str, ...]):
        """Batched full-region test over producer-tile columns.

        Returns ``fn(env, tiles) -> bool[n]`` (True = the region is
        fully inside the space, size :attr:`full_cells`), or ``None``
        when no region can ever be full — the vectorized twin of
        :attr:`full_checker`, built once and cached.
        """
        cached = getattr(self, "_full_batch", None)
        if cached is not None:
            return cached[0]
        from .boxcheck import make_box_min_batch

        batch = None
        if self.full_box is not None:
            batch = make_box_min_batch(spec.constraints, self.full_box, tile_vars)
        object.__setattr__(self, "_full_batch", (batch,))
        return batch

    def pack(
        self,
        producer_env: Mapping[str, int],
        array: np.ndarray,
        layout: TileLayout,
        local_vars: Tuple[str, ...],
    ) -> np.ndarray:
        """Condense the face region of *array* into a flat buffer."""
        values: List[float] = []
        for env in self.region_nest.iterate(dict(producer_env)):
            local = tuple(env[v] for v in local_vars)
            values.append(array[layout.array_index(local)])
        return np.asarray(values, dtype=array.dtype)

    def unpack(
        self,
        producer_env: Mapping[str, int],
        buffer: np.ndarray,
        array: np.ndarray,
        layout: TileLayout,
        local_vars: Tuple[str, ...],
    ) -> None:
        """Scatter *buffer* into the consumer tile's ghost margin.

        *producer_env* is the same environment used by :meth:`pack` — the
        iteration spaces must match exactly for the order to agree.
        """
        pos = 0
        for env in self.region_nest.iterate(dict(producer_env)):
            local = tuple(env[v] for v in local_vars)
            ghost = tuple(i + s for i, s in zip(local, self.consumer_shift))
            array[layout.array_index(ghost)] = buffer[pos]
            pos += 1
        if pos != len(buffer):
            raise GenerationError(
                f"unpack consumed {pos} cells but the buffer holds "
                f"{len(buffer)}; pack/unpack iteration spaces diverged"
            )


def build_pack_plans(
    spec: ProblemSpec,
    spaces: IterationSpaces,
    layout: TileLayout,
    prune: str = "syntactic",
) -> Dict[Delta, PackPlan]:
    """One :class:`PackPlan` per tile-dependency offset."""
    dep_map = tile_dependency_map(spec)
    plans: Dict[Delta, PackPlan] = {}
    for delta, templates in dep_map.items():
        extra: List[Constraint] = []
        for k, x in enumerate(spec.loop_vars):
            iv = spaces.local_vars[k]
            w = spec.tile_widths[x]
            g_lo = layout.ghost_lo[k]
            g_hi = layout.ghost_hi[k]
            d = delta[k]
            if d > 0:
                if g_hi == 0:
                    raise GenerationError(
                        f"delta {delta} crosses the high face of {x!r} but no "
                        "template reaches past it"
                    )
                # 0 <= i' <= g_hi - 1
                extra.append(Constraint(LinExpr({iv: -1}, g_hi - 1)))
            elif d < 0:
                if g_lo == 0:
                    raise GenerationError(
                        f"delta {delta} crosses the low face of {x!r} but no "
                        "template reaches below it"
                    )
                # w - g_lo <= i'
                extra.append(Constraint(LinExpr({iv: 1}, -(w - g_lo))))
            # d == 0: the local space's own 0 <= i' <= w-1 suffices.
        region_system = spaces.local_system.and_also(extra)
        region_nest = synthesize_loop_nest(
            region_system, list(spaces.local_vars), prune=prune
        )
        shift = tuple(
            spec.tile_widths[x] * delta[k] for k, x in enumerate(spec.loop_vars)
        )
        # Closed-form fast path: when the region box lies entirely inside
        # the original space, its size is the product of the slab widths.
        from .boxcheck import make_box_min_checker

        box = {}
        full_cells = 1
        for k, x in enumerate(spec.loop_vars):
            w = spec.tile_widths[x]
            tv = spaces.tile_vars[k]
            d = delta[k]
            if d > 0:
                lo_off, hi_off = 0, layout.ghost_hi[k] - 1
            elif d < 0:
                lo_off, hi_off = w - layout.ghost_lo[k], w - 1
            else:
                lo_off, hi_off = 0, w - 1
            box[x] = (({tv: w}, lo_off), ({tv: w}, hi_off))
            full_cells *= hi_off - lo_off + 1
        checker = make_box_min_checker(spec.constraints, box)
        plans[delta] = PackPlan(
            delta=delta,
            templates=templates,
            region_nest=region_nest,
            consumer_shift=shift,
            full_checker=checker,
            full_cells=full_cells,
            full_box=box,
        )
    return plans
