"""Mapping functions: tile memory layout and constant offsets (Section IV-H).

Each in-flight tile owns a dense padded array: the ``w_k`` interior cells
per dimension plus ghost margins sized by the template reach (Figure 3
adjusts the widths "to account for the extra space used by the ghost cell
data").  The current location's linear index ``loc`` is an inner product
of local indices with the padded strides, and every template's
``loc_r*`` is ``loc`` plus a *constant* offset — the paper's point that
the mapping-function calculations are almost entirely reused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..spec import ProblemSpec


@dataclass(frozen=True)
class TileLayout:
    """Padded row-major layout of one tile's state array."""

    loop_vars: Tuple[str, ...]
    widths: Tuple[int, ...]
    ghost_lo: Tuple[int, ...]
    ghost_hi: Tuple[int, ...]

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        return tuple(
            lo + w + hi
            for lo, w, hi in zip(self.ghost_lo, self.widths, self.ghost_hi)
        )

    @property
    def strides(self) -> Tuple[int, ...]:
        """Row-major strides over the padded shape (innermost = last dim)."""
        shape = self.padded_shape
        strides = [1] * len(shape)
        for k in range(len(shape) - 2, -1, -1):
            strides[k] = strides[k + 1] * shape[k + 1]
        return tuple(strides)

    @property
    def cells(self) -> int:
        n = 1
        for s in self.padded_shape:
            n *= s
        return n

    # -- index computations -------------------------------------------------

    def array_index(self, local: Sequence[int]) -> Tuple[int, ...]:
        """Padded-array index tuple for interior local coordinates.

        Ghost coordinates (negative, or >= w_k) are also representable as
        long as they stay within the margins.
        """
        out = []
        for i, lo, w, hi in zip(local, self.ghost_lo, self.widths, self.ghost_hi):
            idx = i + lo
            if not (0 <= idx < lo + w + hi):
                raise IndexError(
                    f"local coordinate {i} outside padded range "
                    f"[-{lo}, {w + hi})"
                )
            out.append(idx)
        return tuple(out)

    def linear_index(self, local: Sequence[int]) -> int:
        """The scalar ``loc`` of the generated code."""
        idx = self.array_index(local)
        return sum(i * s for i, s in zip(idx, self.strides))

    def template_offset(self, vector: Sequence[int]) -> int:
        """The constant ``loc_r - loc`` for a template vector."""
        return sum(int(r) * s for r, s in zip(vector, self.strides))

    def base_offset(self) -> int:
        """Linear index of local origin (all-zeros interior cell)."""
        return sum(lo * s for lo, s in zip(self.ghost_lo, self.strides))


def build_layout(spec: ProblemSpec) -> TileLayout:
    """Padded layout for *spec*'s tiles, margins from the template reach."""
    lo_map, hi_map = spec.templates.ghost_widths()
    return TileLayout(
        loop_vars=spec.loop_vars,
        widths=spec.tile_width_vector(),
        ghost_lo=tuple(lo_map[v] for v in spec.loop_vars),
        ghost_hi=tuple(hi_map[v] for v in spec.loop_vars),
    )


def template_offsets(spec: ProblemSpec, layout: TileLayout) -> Dict[str, int]:
    """Constant ``loc_r*`` offsets for every template (emitter input)."""
    return {
        name: layout.template_offset(vec) for name, vec in spec.templates.items()
    }
