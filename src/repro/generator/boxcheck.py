"""Fast interior-tile detection.

Most tiles of a large problem lie entirely inside the iteration space,
where the point count is just the product of the box widths — no
scanning needed.  A tile (or pack region) is *full* iff every original
constraint is satisfied at its worst-case corner, which for an affine
constraint over a box is computed term-by-term: a positive coefficient
is minimized at the low corner, a negative one at the high corner.

The checker is compiled once per (constraints, box) pair into an integer
closure over the tile/parameter environment.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Sequence, Tuple

from ..errors import GenerationError
from ..polyhedra import ConstraintSystem


def make_box_min_checker(
    system: ConstraintSystem,
    box: Mapping[str, Tuple[object, object]],
) -> Callable[[Mapping[str, int]], bool]:
    """Build ``fn(env) -> bool``: is *system* satisfied on the whole box?

    *box* maps the box variables to ``(lo_expr, hi_expr)`` where each
    bound is either an int or a ``(coeff_by_var, const)`` affine pair over
    environment variables.  Variables not in *box* are read from the
    environment.  Equalities make a box never full (unless degenerate),
    so any equality yields an always-False checker.
    """
    if any(c.is_equality() for c in system):
        return lambda env: False

    compiled: List[Callable[[Mapping[str, int]], int]] = []
    for c in system:
        env_terms: List[Tuple[str, int]] = []
        box_terms: List[Tuple[object, int]] = []  # (bound_spec, coef)
        const = c.expr.constant
        if const.denominator != 1:
            raise GenerationError(f"non-integral constraint {c}")
        const_i = const.numerator
        for name, coef in c.expr.terms():
            if coef.denominator != 1:
                raise GenerationError(f"non-integral constraint {c}")
            ci = coef.numerator
            if name in box:
                lo, hi = box[name]
                # minimize ci * v over [lo, hi]
                bound = lo if ci >= 0 else hi
                box_terms.append((bound, ci))
            else:
                env_terms.append((name, ci))

        def min_value(
            env: Mapping[str, int],
            const_i=const_i,
            env_terms=tuple(env_terms),
            box_terms=tuple(box_terms),
        ) -> int:
            total = const_i
            for name, ci in env_terms:
                total += ci * env[name]
            for bound, ci in box_terms:
                total += ci * _eval_bound(bound, env)
            return total

        compiled.append(min_value)

    def checker(env: Mapping[str, int]) -> bool:
        return all(fn(env) >= 0 for fn in compiled)

    return checker


def _eval_bound(bound, env: Mapping[str, int]) -> int:
    """Evaluate a box bound: an int or ``(coeff_by_var, const)`` affine."""
    if isinstance(bound, int):
        return bound
    coeffs, const = bound
    total = const
    for name, c in coeffs.items():
        total += c * env[name]
    return total
