"""Fast interior-tile detection.

Most tiles of a large problem lie entirely inside the iteration space,
where the point count is just the product of the box widths — no
scanning needed.  A tile (or pack region) is *full* iff every original
constraint is satisfied at its worst-case corner, which for an affine
constraint over a box is computed term-by-term: a positive coefficient
is minimized at the low corner, a negative one at the high corner.

The checker is compiled once per (constraints, box) pair into an integer
closure over the tile/parameter environment.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import GenerationError
from ..polyhedra import ConstraintSystem


def make_box_min_checker(
    system: ConstraintSystem,
    box: Mapping[str, Tuple[object, object]],
) -> Callable[[Mapping[str, int]], bool]:
    """Build ``fn(env) -> bool``: is *system* satisfied on the whole box?

    *box* maps the box variables to ``(lo_expr, hi_expr)`` where each
    bound is either an int or a ``(coeff_by_var, const)`` affine pair over
    environment variables.  Variables not in *box* are read from the
    environment.  Equalities make a box never full (unless degenerate),
    so any equality yields an always-False checker.
    """
    if any(c.is_equality() for c in system):
        return lambda env: False

    compiled: List[Callable[[Mapping[str, int]], int]] = []
    for c in system:
        env_terms: List[Tuple[str, int]] = []
        box_terms: List[Tuple[object, int]] = []  # (bound_spec, coef)
        const = c.expr.constant
        if const.denominator != 1:
            raise GenerationError(f"non-integral constraint {c}")
        const_i = const.numerator
        for name, coef in c.expr.terms():
            if coef.denominator != 1:
                raise GenerationError(f"non-integral constraint {c}")
            ci = coef.numerator
            if name in box:
                lo, hi = box[name]
                # minimize ci * v over [lo, hi]
                bound = lo if ci >= 0 else hi
                box_terms.append((bound, ci))
            else:
                env_terms.append((name, ci))

        def min_value(
            env: Mapping[str, int],
            const_i=const_i,
            env_terms=tuple(env_terms),
            box_terms=tuple(box_terms),
        ) -> int:
            total = const_i
            for name, ci in env_terms:
                total += ci * env[name]
            for bound, ci in box_terms:
                total += ci * _eval_bound(bound, env)
            return total

        compiled.append(min_value)

    def checker(env: Mapping[str, int]) -> bool:
        return all(fn(env) >= 0 for fn in compiled)

    return checker


def make_box_min_batch(
    system: ConstraintSystem,
    box: Mapping[str, Tuple[object, object]],
    col_vars: Sequence[str],
) -> Optional[Callable[[Mapping[str, int], np.ndarray], np.ndarray]]:
    """Vectorized twin of :func:`make_box_min_checker` over many boxes.

    *col_vars* are the environment variables supplied as the columns of
    an ``(n, len(col_vars))`` int array (typically the tile indices);
    every other variable is a scalar read from the env.  Returns
    ``fn(env, cols) -> bool[n]`` (True = system satisfied on the whole
    box), or ``None`` when an equality makes the box never full —
    mirroring the always-False checker of the scalar version.

    The per-box min of each affine constraint is itself affine in the
    columns, so the whole batch reduces to one matrix product.
    """
    if any(c.is_equality() for c in system):
        return None
    col_pos = {v: k for k, v in enumerate(col_vars)}
    consts: List[int] = []
    env_items: List[Tuple[Tuple[str, int], ...]] = []
    coef_rows: List[List[int]] = []
    for c in system:
        const = c.expr.constant
        if const.denominator != 1:
            raise GenerationError(f"non-integral constraint {c}")
        const_i = const.numerator
        items: List[Tuple[str, int]] = []
        coefs = [0] * len(col_vars)

        def absorb(name: str, ci: int) -> None:
            k = col_pos.get(name)
            if k is None:
                items.append((name, ci))
            else:
                coefs[k] += ci

        for name, coef in c.expr.terms():
            if coef.denominator != 1:
                raise GenerationError(f"non-integral constraint {c}")
            ci = coef.numerator
            if name in box:
                lo, hi = box[name]
                bound = lo if ci >= 0 else hi  # minimize ci * v over the box
                if isinstance(bound, int):
                    const_i += ci * bound
                else:
                    bcoeffs, bconst = bound
                    const_i += ci * bconst
                    for v, bc in bcoeffs.items():
                        absorb(v, ci * bc)
            else:
                absorb(name, ci)
        consts.append(const_i)
        env_items.append(tuple(items))
        coef_rows.append(coefs)

    const_vec = np.asarray(consts, dtype=np.int64)
    coef_mat = np.asarray(coef_rows, dtype=np.int64)  # (m, ncols)

    def batch(env: Mapping[str, int], cols: np.ndarray) -> np.ndarray:
        base = const_vec.copy()
        for k, items in enumerate(env_items):
            for name, ci in items:
                base[k] += ci * env[name]
        vals = cols @ coef_mat.T + base  # (n, m)
        return (vals >= 0).all(axis=1)

    return batch


def _eval_bound(bound, env: Mapping[str, int]) -> int:
    """Evaluate a box bound: an int or ``(coeff_by_var, const)`` affine."""
    if isinstance(bound, int):
        return bound
    coeffs, const = bound
    total = const
    for name, c in coeffs.items():
        total += c * env[name]
    return total
