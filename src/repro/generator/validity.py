"""Template-recurrence validity functions (paper Section IV-G).

For a template ``r`` and an original constraint ``c: a.x + k >= 0``, the
access ``x + r`` can violate ``c`` only when ``a . r < 0`` (the current
location ``x`` is assumed valid, so ``c(x) >= 0`` and the shift is the
only way the value can drop below zero).  Each such pair yields a check
``c(x + r) >= 0``; a template's ``is_valid_r*`` is the conjunction of its
checks.

Checks shared between templates (the paper's example: <1,0> and <0,1>
both shifting ``x1 + x2 <= N`` to ``x1 + x2 + 1 <= N``) are deduplicated:
every distinct shifted constraint gets one id, and the emitters evaluate
each id once.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Tuple

from ..polyhedra import Constraint
from ..spec import ProblemSpec


@dataclass(frozen=True)
class ValiditySet:
    """Shared checks plus, per template, the check ids it needs."""

    checks: Tuple[Constraint, ...]                 # distinct shifted constraints
    per_template: Mapping[str, Tuple[int, ...]]    # template -> check indices

    def is_valid(self, template: str, point: Mapping[str, int]) -> bool:
        """Evaluate ``is_valid_<template>`` at a global point."""
        return all(
            self.checks[idx].satisfied(point) for idx in self.per_template[template]
        )

    def always_valid(self, template: str) -> bool:
        return not self.per_template[template]

    def shared_check_count(self) -> int:
        """How many checks serve more than one template (reuse metric)."""
        uses: Dict[int, int] = {}
        for ids in self.per_template.values():
            for idx in ids:
                uses[idx] = uses.get(idx, 0) + 1
        return sum(1 for n in uses.values() if n > 1)


def build_validity(spec: ProblemSpec) -> ValiditySet:
    """Derive the validity checks for every template of *spec*."""
    check_index: Dict[Constraint, int] = {}
    checks: List[Constraint] = []
    per_template: Dict[str, Tuple[int, ...]] = {}

    for name, _vec in spec.templates.items():
        offsets = spec.templates.as_offset_map(name)
        ids: List[int] = []
        for c in spec.constraints:
            if c.is_equality():
                # Equalities restrict the space to a lower-dimensional
                # set; any shift with a nonzero dot product leaves it.
                drop = _shift_amount(c, offsets)
                if drop == 0:
                    continue
                shifted = c.shifted(offsets)
            else:
                drop = _shift_amount(c, offsets)
                if drop >= 0:
                    continue  # the access can never violate this constraint
                shifted = c.shifted(offsets)
            idx = check_index.get(shifted)
            if idx is None:
                idx = len(checks)
                check_index[shifted] = idx
                checks.append(shifted)
            ids.append(idx)
        per_template[name] = tuple(sorted(set(ids)))

    return ValiditySet(checks=tuple(checks), per_template=per_template)


def _shift_amount(c: Constraint, offsets: Mapping[str, int]) -> Fraction:
    """``c(x + r) - c(x)`` — the constant change the shift applies."""
    total = Fraction(0)
    for var, off in offsets.items():
        total += c.coeff(var) * off
    return total
