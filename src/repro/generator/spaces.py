"""Construction of the generator's iteration spaces (paper Section IV-E).

From the user's original system over the loop variables ``x_k`` and the
parameters, we build the *extended system* by introducing

* tile iteration variables ``t_k`` identifying each tile, and
* local iteration variables ``i_k`` with ``0 <= i_k < w_k``,

linked by ``x_k = i_k + w_k * t_k``.  Fourier–Motzkin elimination then
derives the three spaces the paper names:

* the **tile space** (over ``t_k`` and the parameters) — which tile
  indices exist, and how to iterate over them;
* the **load-balancing space** (over the chosen ``t_lb`` and parameters);
* the **local space** (over ``i_k``, with ``t_k`` and parameters
  symbolic) — the loops that evaluate the recurrence inside one tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import GenerationError
from ..polyhedra import (
    Constraint,
    ConstraintSystem,
    LinExpr,
    LoopNest,
    eliminate,
    synthesize_loop_nest,
)
from ..spec import ProblemSpec

TileIndex = Tuple[int, ...]


def _safe_prefix(base: str, taken: set) -> str:
    """A prefix such that ``prefix + v`` collides with no taken name."""
    prefix = base
    while any((prefix + v) in taken for v in taken):
        prefix = "_" + prefix
    return prefix


@dataclass(frozen=True)
class IterationSpaces:
    """All derived spaces plus the naming scheme for tile/local variables."""

    spec: ProblemSpec
    tile_vars: Tuple[str, ...]      # in loop order
    local_vars: Tuple[str, ...]     # in loop order
    local_system: ConstraintSystem  # over i (t, params symbolic)
    tile_space: ConstraintSystem    # over t (params symbolic)
    lb_space: ConstraintSystem      # over lb t vars (params symbolic)
    original_nest: LoopNest         # scans x directly (untiled oracle)
    tile_nest: LoopNest             # scans t
    local_nest: LoopNest            # scans i for a fixed t
    lb_nest: LoopNest               # scans the lb projection of t

    # -- naming ---------------------------------------------------------------

    def tile_var(self, x: str) -> str:
        return self.tile_vars[self.spec.loop_vars.index(x)]

    def local_var(self, x: str) -> str:
        return self.local_vars[self.spec.loop_vars.index(x)]

    @property
    def lb_tile_vars(self) -> Tuple[str, ...]:
        return tuple(self.tile_var(x) for x in self.spec.lb_dims)

    # -- coordinate conversions ----------------------------------------------

    def point_to_tile(self, point: Mapping[str, int]) -> TileIndex:
        """The tile index containing a global point (floor division)."""
        return tuple(
            point[x] // self.spec.tile_widths[x] for x in self.spec.loop_vars
        )

    def tile_env(self, tile: TileIndex) -> Dict[str, int]:
        return dict(zip(self.tile_vars, tile))

    def local_coords(self, point: Mapping[str, int], tile: TileIndex) -> Tuple[int, ...]:
        return tuple(
            point[x] - self.spec.tile_widths[x] * tile[k]
            for k, x in enumerate(self.spec.loop_vars)
        )

    def global_point(self, tile: TileIndex, local: Sequence[int]) -> Dict[str, int]:
        return {
            x: self.spec.tile_widths[x] * tile[k] + local[k]
            for k, x in enumerate(self.spec.loop_vars)
        }

    # -- enumeration -----------------------------------------------------------

    def tiles(self, params: Mapping[str, int]) -> Iterator[TileIndex]:
        """All valid tile indices (tiles containing >= 1 integer point).

        The FM-projected tile space may include rational-shadow tiles with
        an empty local space, so each candidate is confirmed non-empty —
        this is what "valid tile" means everywhere downstream.  Yields in
        the tile nest's lexicographic scan order (array-native under the
        hood; see :meth:`valid_tile_array`).
        """
        tiles, _ = self.valid_tile_array(params)
        for row in tiles.tolist():
            yield tuple(row)

    def valid_tile_array(
        self, params: Mapping[str, int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All valid tiles and their point counts, array-native.

        Returns ``(tiles, work)``: an ``(T, d)`` int64 array in the tile
        nest's lexicographic order and the matching per-tile point
        counts.  Candidates come from one vectorized scan of the tile
        nest; *interior* tiles (the vast majority on large instances)
        are detected with one batched box-min evaluation and counted in
        closed form (product of the tile widths); only the boundary
        minority runs the compiled local-space counter, and
        rational-shadow candidates (zero points) are dropped.
        """
        from ..polyhedra.batch import nest_count_batch, nest_scan_array

        candidates = nest_scan_array(self.tile_nest, dict(params))
        d = len(self.tile_vars)
        if candidates.shape[0] == 0:
            return candidates, np.empty(0, dtype=np.int64)

        batch = self._full_tile_batch()
        if batch is None:
            interior = np.zeros(candidates.shape[0], dtype=bool)
        else:
            interior = batch(params, candidates)
        full = 1
        for x in self.spec.loop_vars:
            full *= self.spec.tile_widths[x]
        work = np.full(candidates.shape[0], full, dtype=np.int64)

        boundary = np.flatnonzero(~interior)
        if boundary.size:
            cols = {
                tv: candidates[boundary, k]
                for k, tv in enumerate(self.tile_vars)
            }
            work[boundary] = nest_count_batch(self.local_nest, params, cols)
            keep = work > 0
            if not keep.all():
                return candidates[keep], work[keep]
        return candidates, work

    def tile_is_valid(self, tile: TileIndex, params: Mapping[str, int]) -> bool:
        env = dict(params)
        env.update(self.tile_env(tile))
        if not self.tile_space.satisfied(env):
            return False
        return not self.tile_is_empty(tile, params)

    def tile_is_empty(self, tile: TileIndex, params: Mapping[str, int]) -> bool:
        return self.tile_point_count(tile, params) == 0

    def tile_point_count(self, tile: TileIndex, params: Mapping[str, int]) -> int:
        """Number of iteration-space points inside one tile.

        Interior tiles (every original constraint satisfied on the whole
        tile box) are counted in closed form; boundary tiles fall back to
        the compiled scan.
        """
        from ..polyhedra.compile import compile_counter

        env = dict(params)
        env.update(self.tile_env(tile))
        checker = self._full_tile_checker()
        if checker(env):
            full = 1
            for x in self.spec.loop_vars:
                full *= self.spec.tile_widths[x]
            return full
        return compile_counter(self.local_nest)(env)

    def _full_tile_checker(self):
        cached = getattr(self, "_full_checker", None)
        if cached is not None:
            return cached
        from .boxcheck import make_box_min_checker

        spec = self.spec
        box = {}
        for k, x in enumerate(spec.loop_vars):
            w = spec.tile_widths[x]
            tv = self.tile_vars[k]
            box[x] = (({tv: w}, 0), ({tv: w}, w - 1))
        checker = make_box_min_checker(spec.constraints, box)
        object.__setattr__(self, "_full_checker", checker)
        return checker

    def _full_tile_batch(self):
        """Batched twin of :meth:`_full_tile_checker` over tile columns."""
        cached = getattr(self, "_full_batch", None)
        if cached is not None:
            return cached[0]
        from .boxcheck import make_box_min_batch

        spec = self.spec
        box = {}
        for k, x in enumerate(spec.loop_vars):
            w = spec.tile_widths[x]
            tv = self.tile_vars[k]
            box[x] = (({tv: w}, 0), ({tv: w}, w - 1))
        batch = make_box_min_batch(spec.constraints, box, self.tile_vars)
        object.__setattr__(self, "_full_batch", (batch,))
        return batch

    def local_points(
        self, tile: TileIndex, params: Mapping[str, int]
    ) -> Iterator[Dict[str, int]]:
        env = dict(params)
        env.update(self.tile_env(tile))
        yield from self.local_nest.iterate(env)

    def total_points(self, params: Mapping[str, int]) -> int:
        return self.original_nest.count(dict(params))


def build_iteration_spaces(spec: ProblemSpec, prune: str = "syntactic") -> IterationSpaces:
    """Derive every iteration space for *spec* (paper Section IV-E)."""
    taken = set(spec.loop_vars) | set(spec.params) | {spec.state_name}
    t_prefix = _safe_prefix("t_", taken | set("t_" + v for v in ()))
    # Guard both prefixes against every declared name.
    def pick_prefix(base: str) -> str:
        prefix = base
        while any((prefix + v) in taken for v in spec.loop_vars):
            prefix = "_" + prefix
        return prefix

    t_prefix = pick_prefix("t_")
    i_prefix = pick_prefix("i_")
    tile_vars = tuple(t_prefix + v for v in spec.loop_vars)
    local_vars = tuple(i_prefix + v for v in spec.loop_vars)

    # Substitute x_k = i_k + w_k t_k into the original constraints and add
    # the intra-tile box 0 <= i_k <= w_k - 1.
    bindings = {
        x: LinExpr({local_vars[k]: 1, tile_vars[k]: spec.tile_widths[x]})
        for k, x in enumerate(spec.loop_vars)
    }
    substituted = spec.constraints.substitute(bindings)
    box: List[Constraint] = []
    for k, x in enumerate(spec.loop_vars):
        iv = local_vars[k]
        w = spec.tile_widths[x]
        box.append(Constraint(LinExpr.var(iv)))                      # i >= 0
        box.append(Constraint(LinExpr({iv: -1}, w - 1)))             # i <= w-1
    local_system = substituted.and_also(box)

    # Tile space: eliminate the local variables.
    tile_space = eliminate(local_system, list(local_vars), prune=prune)

    # Load-balancing space: eliminate the non-lb tile variables.
    lb_tile_vars = [t_prefix + v for v in spec.lb_dims]
    non_lb = [t for t in tile_vars if t not in set(lb_tile_vars)]
    lb_space = eliminate(tile_space, non_lb, prune=prune)

    try:
        original_nest = synthesize_loop_nest(
            spec.constraints, list(spec.loop_vars), prune=prune
        )
        tile_nest = synthesize_loop_nest(tile_space, list(tile_vars), prune=prune)
        local_nest = synthesize_loop_nest(local_system, list(local_vars), prune=prune)
        lb_nest = synthesize_loop_nest(lb_space, lb_tile_vars, prune=prune)
    except Exception as exc:
        raise GenerationError(
            f"failed to synthesize loop nests for {spec.name!r}: {exc}"
        ) from exc

    return IterationSpaces(
        spec=spec,
        tile_vars=tile_vars,
        local_vars=local_vars,
        local_system=local_system,
        tile_space=tile_space,
        lb_space=lb_space,
        original_nest=original_nest,
        tile_nest=tile_nest,
        local_nest=local_nest,
        lb_nest=lb_nest,
    )
