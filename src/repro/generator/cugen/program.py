"""CUDA program emission — the paper's GPGPU future-work direction.

The paper closes with "extending this basic idea to other architectures
such [as] automatic program generation for GPGPUs".  This backend is
that extension, prototyped: it emits a complete CUDA C source file with
the same generated ingredients as the CPU backend (Fourier–Motzkin
bounds, mapping functions, shared validity checks) arranged for the GPU
execution model:

* the host groups tiles into *wavefronts* by a linear schedule over the
  tile indices (every tile in a wavefront has all producers in earlier
  wavefronts — proven by the same template analysis the scheduler
  uses), and launches one kernel per wavefront;
* each thread block executes one tile: it stages the tile plus its
  ghost margins from the dense global state array into shared memory,
  sweeps the *local* wavefronts of the tile with ``__syncthreads()``
  between levels (threads cooperate within a level; dependencies only
  reach earlier levels), and writes the interior back;
* the state lives in one dense global array over the iteration-space
  bounding box — the GPU's high-bandwidth memory stands in for the
  CPU backend's packed edges, which is the standard trade on this
  architecture.

This host has no CUDA toolchain, so the backend is validated
structurally (tests assert the generated ingredients and the CUDA
scaffolding) and numerically only through its shared ingredients, which
the C/Python backends execute.  DESIGN.md records this limitation.
"""

from __future__ import annotations

from typing import List

from ...errors import GenerationError
from ...polyhedra import project
from ...polyhedra.bounds import bounds_for_variable
from ...spec import DESCENDING
from ..pipeline import GeneratedProgram
from ..cgen.emitter import CWriter
from ..cgen.nestc import MACROS, emit_scan_loops, lower_to_c, upper_to_c


def emit_cuda_program(program: GeneratedProgram) -> str:
    """Render *program* as a single-file CUDA C program."""
    spec = program.spec
    spaces = program.spaces
    layout = program.layout
    d = len(spec.loop_vars)
    if not spec.center_code_c.strip():
        raise GenerationError(
            f"problem {spec.name!r} has no center_code_c; the CUDA backend "
            "reuses the C center-loop fragment"
        )

    # The launch schedule is wavefronts of the direction-adjusted index
    # sum; it is legal only if every tile dependency strictly decreases
    # that level.  (True for all unit-ish template sets; degenerate
    # cross-dimension deltas would need a custom schedule vector.)
    directions = spec.scan_directions()
    signs = [
        (-1 if directions[x] == DESCENDING else 1) for x in spec.loop_vars
    ]
    for delta in program.deltas:
        # Producer tile = t + delta; its level is level(t) + diff, and
        # the launch order needs producers at strictly smaller levels.
        diff = sum(s * c for s, c in zip(signs, delta))
        if diff >= 0:
            raise GenerationError(
                f"tile dependency {delta} does not decrease the wavefront "
                "level; the CUDA backend's level schedule cannot order it"
            )
    for name, vec in spec.templates.items():
        # The in-tile sweep synchronizes between local wavefront levels;
        # every template must reach a strictly smaller local level too.
        diff = sum(s * c for s, c in zip(signs, vec))
        if diff >= 0:
            raise GenerationError(
                f"template {name!r} = {vec} lies inside a local wavefront; "
                "the CUDA backend's level-synchronized sweep cannot order it"
            )

    w = CWriter()
    w.line("/*")
    w.line(f" * Auto-generated CUDA program: {spec.name}")
    w.line(" * Prototype of the paper's GPGPU future-work direction.")
    w.line(" * Build: nvcc -O2 prog.cu -o prog")
    w.line(f" * Run:   ./prog {' '.join('<' + p + '>' for p in spec.params)}")
    w.line(" */")
    w.blank()
    w.lines(
        [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <cuda_runtime.h>",
        ]
    )
    w.blank()
    w.raw(MACROS.replace("static inline", "__host__ __device__ static inline"))
    w.blank()
    w.line(f"#define REPRO_D {d}")
    w.line(f"#define TILE_CELLS {layout.cells}")
    w.blank()
    for p in spec.params:
        w.line(f"static long {p};  /* host copy */")
    w.line("__constant__ long " + ", ".join(f"dev_{p}" for p in spec.params) + ";")
    w.blank()
    if spec.global_code_c:
        w.line("/* ---- user global code ---- */")
        w.raw(spec.global_code_c)
        w.blank()

    _emit_device_tile_kernel(w, program)
    _emit_host(w, program)
    return w.text()


def _emit_device_tile_kernel(w: CWriter, program: GeneratedProgram) -> None:
    spec = program.spec
    spaces = program.spaces
    layout = program.layout
    d = len(spec.loop_vars)
    directions = spec.scan_directions()

    # Local wavefront level: direction-adjusted sum of local coordinates;
    # dependencies always point to strictly smaller levels.
    level_terms = []
    for k, x in enumerate(spec.loop_vars):
        iv = spaces.local_vars[k]
        if directions[x] == DESCENDING:
            level_terms.append(f"({layout.widths[k] - 1} - {iv})")
        else:
            level_terms.append(f"({iv})")
    max_level = sum(wd - 1 for wd in layout.widths)

    w.line("/* ---- device: one block executes one tile ---- */")
    w.open(
        "__global__ void execute_wavefront(const long *tiles, int n_tiles, "
        "double *G, const long *g_lo, const long *g_stride)"
    )
    w.line("int tile_idx = blockIdx.x;")
    w.line("if (tile_idx >= n_tiles) return;")
    for p in spec.params:
        w.line(f"long {p} = dev_{p};  /* constant-memory parameter */")
    for k, tv in enumerate(spaces.tile_vars):
        w.line(f"long {tv} = tiles[tile_idx * REPRO_D + {k}];")
    w.line("__shared__ double V[TILE_CELLS];")
    w.blank()
    w.line("/* stage tile + ghost margins from the dense global array */")
    w.open("for (int c = threadIdx.x; c < TILE_CELLS; c += blockDim.x)")
    w.line("long rem = c;")
    for k in range(d):
        stride = layout.strides[k]
        w.line(f"long p{k} = rem / {stride}; rem %= {stride};")
    parts = []
    for k, x in enumerate(spec.loop_vars):
        tv = spaces.tile_vars[k]
        parts.append(
            f"g_stride[{k}] * ({layout.widths[k]} * {tv} + p{k} - "
            f"{layout.ghost_lo[k]} - g_lo[{k}])"
        )
    w.line("long gidx = " + " + ".join(parts) + ";")
    w.line("V[c] = G[gidx];")
    w.close()
    w.line("__syncthreads();")
    w.blank()
    w.line("/* sweep the tile's local wavefronts */")
    w.open(f"for (int level = 0; level <= {max_level}; level++)")
    w.open("for (int c = threadIdx.x; c < TILE_CELLS; c += blockDim.x)")
    w.line("long rem = c;")
    for k in range(d):
        stride = layout.strides[k]
        w.line(
            f"long {spaces.local_vars[k]} = rem / {stride} - "
            f"{layout.ghost_lo[k]}; rem %= {stride};"
        )
    in_range = " && ".join(
        f"{spaces.local_vars[k]} >= 0 && {spaces.local_vars[k]} < {layout.widths[k]}"
        for k in range(d)
    )
    w.line(f"if (!({in_range})) continue;")
    w.line(f"if (({' + '.join(level_terms)}) != level) continue;")
    # Local-space membership (boundary tiles are partial): original
    # constraints at the global point.
    for k, x in enumerate(spec.loop_vars):
        w.line(
            f"long {x} = {spaces.local_vars[k]} + {layout.widths[k]} * "
            f"{spaces.tile_vars[k]};"
        )
    member = " && ".join(
        _constraint_dev(c) for c in spec.constraints
    )
    w.line(f"if (!({member})) continue;")
    loc_terms = " + ".join(
        f"{layout.strides[k]} * ({spaces.local_vars[k]} + {layout.ghost_lo[k]})"
        for k in range(d)
    )
    w.line(f"long loc = {loc_terms};")
    for name, off in program.offsets.items():
        w.line(f"long loc_{name} = loc + ({off});")
    for idx, chk in enumerate(program.validity.checks):
        w.line(f"int _chk{idx} = {_constraint_dev(chk)};")
    for name, _vec in spec.templates.items():
        ids = program.validity.per_template[name]
        cond = " && ".join(f"_chk{i}" for i in ids) if ids else "1"
        w.line(f"int is_valid_{name} = {cond};")
    w.line(
        "(void)loc; "
        + " ".join(
            f"(void)loc_{n}; (void)is_valid_{n};"
            for n in spec.templates.names()
        )
    )
    w.line("/* ---- user center-loop code ---- */")
    w.raw(spec.center_code_c)
    w.close()  # cell loop
    w.line("__syncthreads();")
    w.close()  # level loop
    w.blank()
    w.line("/* write the interior back to the dense global array */")
    w.open("for (int c = threadIdx.x; c < TILE_CELLS; c += blockDim.x)")
    w.line("long rem = c;")
    for k in range(d):
        stride = layout.strides[k]
        w.line(
            f"long {spaces.local_vars[k]} = rem / {stride} - "
            f"{layout.ghost_lo[k]}; rem %= {stride};"
        )
    w.line(f"if (!({in_range})) continue;")
    parts = []
    for k, x in enumerate(spec.loop_vars):
        tv = spaces.tile_vars[k]
        parts.append(
            f"g_stride[{k}] * ({layout.widths[k]} * {tv} + "
            f"{spaces.local_vars[k]} - g_lo[{k}])"
        )
    w.line("long gidx = " + " + ".join(parts) + ";")
    loc_terms = " + ".join(
        f"{layout.strides[k]} * ({spaces.local_vars[k]} + {layout.ghost_lo[k]})"
        for k in range(d)
    )
    w.line(f"G[gidx] = V[{loc_terms}];")
    w.close()
    w.close()
    w.blank()


def _constraint_dev(c) -> str:
    # Parameters are staged into kernel locals (long N = dev_N;), so
    # plain names are correct in device code.
    parts = [str(c.expr.constant.numerator)]
    for name, coef in c.expr.terms():
        parts.append(f"+ ({coef.numerator})*{name}")
    op = "==" if c.is_equality() else ">="
    return f"(({' '.join(parts)}) {op} 0)"


def _emit_host(w: CWriter, program: GeneratedProgram) -> None:
    spec = program.spec
    spaces = program.spaces
    d = len(spec.loop_vars)
    directions = spec.scan_directions()

    # Tile wavefront level on the host: direction-adjusted sum of tile
    # indices.  Every producer of a tile sits at a strictly smaller
    # level, so launching level-by-level is a legal schedule.
    level_terms = []
    for k, x in enumerate(spec.loop_vars):
        tv = spaces.tile_vars[k]
        sign = "-" if directions[x] == DESCENDING else ""
        level_terms.append(f"({sign}{tv})")

    w.line("/* ---- host: group tiles into wavefronts, launch per level ---- */")
    w.open("int main(int argc, char **argv)")
    w.open(f"if (argc < {len(spec.params) + 1})")
    w.line(
        f'fprintf(stderr, "usage: %s {" ".join("<" + p + ">" for p in spec.params)}\\n", argv[0]);'
    )
    w.line("return 1;")
    w.close()
    for idx, p in enumerate(spec.params):
        w.line(f"{p} = atol(argv[{idx + 1}]);")
        w.line(
            f"cudaMemcpyToSymbol(dev_{p}, &{p}, sizeof(long));"
        )
    w.blank()
    # Dense global array over the iteration-space bounding box.
    w.line("long g_lo[REPRO_D], g_hi[REPRO_D], g_stride[REPRO_D];")
    for k, x in enumerate(spec.loop_vars):
        proj = project(spec.constraints, [x, *spec.params])
        b = bounds_for_variable(proj, x)
        if not b.is_bounded():
            raise GenerationError(f"dimension {x!r} unbounded")
        w.line(f"g_lo[{k}] = {lower_to_c(b)};")
        w.line(f"g_hi[{k}] = {upper_to_c(b)};")
    w.line("long g_cells = 1;")
    w.open("for (int k = REPRO_D - 1; k >= 0; k--)")
    w.line("g_stride[k] = g_cells;")
    w.line("g_cells *= g_hi[k] - g_lo[k] + 1;")
    w.close()
    w.line("double *G; cudaMalloc(&G, g_cells * sizeof(double));")
    w.line("long *d_lo, *d_stride;")
    w.line("cudaMalloc(&d_lo, REPRO_D * sizeof(long));")
    w.line("cudaMalloc(&d_stride, REPRO_D * sizeof(long));")
    w.line("cudaMemcpy(d_lo, g_lo, REPRO_D * sizeof(long), cudaMemcpyHostToDevice);")
    w.line("cudaMemcpy(d_stride, g_stride, REPRO_D * sizeof(long), cudaMemcpyHostToDevice);")
    w.blank()
    w.line("/* enumerate valid tiles and bucket them by wavefront level */")
    w.line("long cap = 1024, n = 0;")
    w.line("long *tiles = (long *)malloc(cap * REPRO_D * sizeof(long));")
    w.line("long *levels = (long *)malloc(cap * sizeof(long));")
    w.line("long min_level = 0, max_level = 0;")

    def body() -> None:
        w.open("if (n == cap)")
        w.line("cap *= 2;")
        w.line("tiles = (long *)realloc(tiles, cap * REPRO_D * sizeof(long));")
        w.line("levels = (long *)realloc(levels, cap * sizeof(long));")
        w.close()
        for k, tv in enumerate(spaces.tile_vars):
            w.line(f"tiles[n * REPRO_D + {k}] = {tv};")
        w.line(f"levels[n] = {' + '.join(level_terms)};")
        w.line("if (n == 0 || levels[n] < min_level) min_level = levels[n];")
        w.line("if (n == 0 || levels[n] > max_level) max_level = levels[n];")
        w.line("n++;")

    emit_scan_loops(w, spaces.tile_nest, body)
    w.blank()
    w.open("for (long level = min_level; level <= max_level; level++)")
    w.line("/* gather this wavefront */")
    w.line("long m = 0;")
    w.line("long *wave = (long *)malloc(n * REPRO_D * sizeof(long));")
    w.open("for (long i = 0; i < n; i++)")
    w.open("if (levels[i] == level)")
    w.line(
        "for (int k = 0; k < REPRO_D; k++) "
        "wave[m * REPRO_D + k] = tiles[i * REPRO_D + k];"
    )
    w.line("m++;")
    w.close()
    w.close()
    w.open("if (m > 0)")
    w.line("long *d_wave; cudaMalloc(&d_wave, m * REPRO_D * sizeof(long));")
    w.line(
        "cudaMemcpy(d_wave, wave, m * REPRO_D * sizeof(long), "
        "cudaMemcpyHostToDevice);"
    )
    w.line("execute_wavefront<<<(unsigned)m, 128>>>(d_wave, (int)m, G, d_lo, d_stride);")
    w.line("cudaDeviceSynchronize();")
    w.line("cudaFree(d_wave);")
    w.close()
    w.line("free(wave);")
    w.close()
    w.blank()
    objective = spec.objective({})
    obj_idx = " + ".join(
        f"g_stride[{k}] * ({objective[x]} - g_lo[{k}])"
        for k, x in enumerate(spec.loop_vars)
    )
    w.line("double result;")
    w.line(
        f"cudaMemcpy(&result, G + ({obj_idx}), sizeof(double), "
        "cudaMemcpyDeviceToHost);"
    )
    w.line('printf("objective %.12f\\n", result);')
    w.line("cudaFree(G); cudaFree(d_lo); cudaFree(d_stride);")
    w.line("free(tiles); free(levels);")
    w.line("return 0;")
    w.close()
