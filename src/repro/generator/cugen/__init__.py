"""CUDA backend prototype (paper Section VIII: GPGPU future work)."""

from .program import emit_cuda_program

__all__ = ["emit_cuda_program"]
