"""Render polyhedral loop nests as C code (Figure 3's loop structure).

Bounds become ``ceild``/``floord``/``MAX``/``MIN`` expressions over the
outer variables and parameters — the classic shape of polyhedral code
generators, and exactly what the paper's Fourier–Motzkin synthesis
produces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ...errors import GenerationError
from ...polyhedra.bounds import Bound, LoopBounds, LoopNest

#: Helper functions every generated program includes once.  These are
#: functions rather than macros deliberately: nested bound expressions
#: like MIN(MIN(a, b), c) would duplicate their arguments exponentially
#: under macro expansion, which explodes compile time/memory for
#: high-dimensional problems.
MACROS = """\
static inline long floord(long a, long b) {
    return (a < 0) ? -((-a + b - 1) / b) : a / b;
}
static inline long ceild(long a, long b) {
    return (a > 0) ? (a + b - 1) / b : -((-a) / b);
}
static inline long MAX2(long a, long b) { return a > b ? a : b; }
static inline long MIN2(long a, long b) { return a < b ? a : b; }
"""


def expr_to_c(bound: Bound, rename: Optional[Mapping[str, str]] = None) -> str:
    """Render one bound as a C integer expression."""
    rename = rename or {}
    expr = bound.expr
    const = expr.constant
    if const.denominator != 1:
        raise GenerationError(f"non-integral bound constant in {bound}")
    parts = [str(const.numerator)]
    for name, coef in expr.terms():
        if coef.denominator != 1:
            raise GenerationError(f"non-integral bound coefficient in {bound}")
        c = coef.numerator
        cname = rename.get(name, name)
        if c == 1:
            parts.append(f"+ {cname}")
        elif c == -1:
            parts.append(f"- {cname}")
        elif c >= 0:
            parts.append(f"+ {c}*{cname}")
        else:
            parts.append(f"- {-c}*{cname}")
    body = " ".join(parts)
    if bound.div == 1:
        return f"({body})"
    fn = "ceild" if bound.kind == "lower" else "floord"
    return f"{fn}({body}, {bound.div})"


def lower_to_c(b: LoopBounds, rename=None) -> str:
    parts = [expr_to_c(x, rename) for x in b.lowers]
    out = parts[0]
    for p in parts[1:]:
        out = f"MAX2({out}, {p})"
    return out


def upper_to_c(b: LoopBounds, rename=None) -> str:
    parts = [expr_to_c(x, rename) for x in b.uppers]
    out = parts[0]
    for p in parts[1:]:
        out = f"MIN2({out}, {p})"
    return out


def context_to_c(nest: LoopNest, rename=None) -> str:
    """The parameter-context guard as one boolean C expression."""
    rename = rename or {}
    conds: List[str] = []
    for c in nest.context:
        parts = [str(c.expr.constant.numerator)]
        for name, coef in c.expr.terms():
            cname = rename.get(name, name)
            parts.append(f"+ ({coef.numerator})*{cname}")
        op = "==" if c.is_equality() else ">="
        conds.append(f"(({' '.join(parts)}) {op} 0)")
    return " && ".join(conds) if conds else "1"


def emit_scan_loops(
    w,
    nest: LoopNest,
    body: Callable[[], None],
    directions: Optional[Mapping[str, int]] = None,
    rename: Optional[Mapping[str, str]] = None,
) -> None:
    """Emit nested for-loops scanning *nest*, calling *body* for the center.

    *w* is a :class:`~repro.generator.cgen.emitter.CWriter`.  Each loop
    variable is declared in its for-statement.  Descending dimensions
    iterate from the upper to the lower bound (Figure 3).
    """
    directions = directions or {}
    depth = 0
    for b in nest.per_var:
        lo = lower_to_c(b, rename)
        hi = upper_to_c(b, rename)
        var = (rename or {}).get(b.var, b.var)
        if directions.get(b.var, 1) >= 0:
            w.open(f"for (long {var} = {lo}; {var} <= {hi}; {var}++)")
        else:
            w.open(f"for (long {var} = {hi}; {var} >= {lo}; {var}--)")
        depth += 1
    body()
    for _ in range(depth):
        w.close()


def emit_count_function(
    w,
    name: str,
    nest: LoopNest,
    args: Sequence[str],
    rename: Optional[Mapping[str, str]] = None,
) -> None:
    """Emit ``static long name(args) { ... }`` counting the nest's points.

    The innermost dimension is counted in closed form, matching the
    Python compiled counters bit-for-bit.
    """
    w.open(f"static long {name}({', '.join('long ' + a for a in args)})")
    w.line(f"if (!({context_to_c(nest, rename)})) return 0;")
    w.line("long _total = 0;")
    inner = nest.per_var[-1]
    depth = 0
    for b in nest.per_var[:-1]:
        lo = lower_to_c(b, rename)
        hi = upper_to_c(b, rename)
        var = (rename or {}).get(b.var, b.var)
        w.open(f"for (long {var} = {lo}; {var} <= {hi}; {var}++)")
        depth += 1
    lo = lower_to_c(inner, rename)
    hi = upper_to_c(inner, rename)
    w.line(f"long _n = ({hi}) - ({lo}) + 1;")
    w.line("if (_n > 0) _total += _n;")
    for _ in range(depth):
        w.close()
    w.line("return _total;")
    w.close()
