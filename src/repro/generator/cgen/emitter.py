"""A small indented C source writer."""

from __future__ import annotations

from typing import Iterable, List


class CWriter:
    """Accumulates C source with indentation management."""

    def __init__(self, indent: str = "    "):
        self._lines: List[str] = []
        self._depth = 0
        self._indent = indent

    def line(self, text: str = "") -> "CWriter":
        if text:
            self._lines.append(self._indent * self._depth + text)
        else:
            self._lines.append("")
        return self

    def lines(self, texts: Iterable[str]) -> "CWriter":
        for t in texts:
            self.line(t)
        return self

    def raw(self, block: str) -> "CWriter":
        """Paste a preformatted block, re-indenting to the current depth."""
        for t in block.splitlines():
            if t.strip():
                self._lines.append(self._indent * self._depth + t)
            else:
                self._lines.append("")
        return self

    def open(self, header: str) -> "CWriter":
        self.line(header + " {")
        self._depth += 1
        return self

    def close(self, suffix: str = "") -> "CWriter":
        self._depth -= 1
        self.line("}" + suffix)
        return self

    def blank(self) -> "CWriter":
        self._lines.append("")
        return self

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"
