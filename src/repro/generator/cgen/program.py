"""Assembly of the complete generated C program (paper Section V).

``emit_c_program(program)`` pretty-prints a :class:`GeneratedProgram` as
one self-contained C source file:

* problem-specific generated code — parameter handling, tile/local loop
  nests with Fourier–Motzkin bounds (Figure 3), mapping functions with
  constant template offsets, shared validity checks, pack/unpack
  functions per tile-dependency edge, the Ehrhart work polynomial, the
  load-balancing cut, the face-scan initial-tile code, and the Figure 5
  priority function;
* the pre-written runtime library (:mod:`.runtime_c`): pending table,
  priority heap, OpenMP worker loop, MPI edge exchange under
  ``#ifdef REPRO_USE_MPI``.

Build lines (also emitted as a comment in the file header):

    gcc -O2 -std=c99 -fopenmp prog.c -o prog          # one node
    mpicc -O2 -std=c99 -fopenmp -DREPRO_USE_MPI prog.c -o prog   # cluster
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, List, Mapping, Sequence, Tuple

from ..._util import lcm_all
from ...errors import GenerationError
from ...polyhedra import Constraint, LinExpr, project, synthesize_loop_nest
from ...polyhedra.bounds import bounds_for_variable
from ...spec import DESCENDING
from ..loadbalance import total_work_polynomial
from ..pipeline import GeneratedProgram
from .emitter import CWriter
from .nestc import (
    MACROS,
    context_to_c,
    emit_count_function,
    emit_scan_loops,
    lower_to_c,
    upper_to_c,
)
from .runtime_c import RUNTIME_LIBRARY

#: Cap on emitted face-scan combinations before falling back to the
#: exhaustive initial-tile scan (mirrors initial_tiles.MAX_COMBINATIONS).
MAX_FACE_COMBOS = 64


def emit_c_program(program: GeneratedProgram, with_ehrhart: bool = True) -> str:
    """Render *program* as a complete hybrid OpenMP + MPI C source file."""
    spec = program.spec
    spaces = program.spaces
    layout = program.layout
    w = CWriter()

    d = len(spec.loop_vars)
    deltas = program.deltas

    w.line("/*")
    w.line(f" * Auto-generated hybrid OpenMP + MPI program: {spec.name}")
    w.line(" * Produced by the repro program generator (VandenBerg & Stout,")
    w.line(" * CLUSTER 2011 reproduction).  Do not edit by hand.")
    w.line(" *")
    w.line(" * Build (single node): gcc -O2 -std=c99 -fopenmp prog.c -o prog")
    w.line(" * Build (cluster):     mpicc -O2 -std=c99 -fopenmp -DREPRO_USE_MPI prog.c -o prog")
    w.line(f" * Run:                 ./prog {' '.join('<' + p + '>' for p in spec.params)}")
    w.line(" */")
    w.blank()
    w.lines(
        [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "#include <math.h>",
            "#include <time.h>",
            "#ifdef _OPENMP",
            "#include <omp.h>",
            "#endif",
            "#ifdef REPRO_USE_MPI",
            "#include <mpi.h>",
            "#endif",
        ]
    )
    w.blank()
    w.raw(MACROS)
    w.blank()

    # ---- constants -------------------------------------------------------
    w.line(f"#define REPRO_D {d}")
    w.line(f"#define REPRO_NDELTAS {len(deltas)}")
    w.line(f"#define REPRO_NPARAMS {len(spec.params)}")
    w.line(f"#define REPRO_PADDED_CELLS {layout.cells}")
    w.blank()
    w.line(
        "static const long repro_widths[REPRO_D] = {"
        + ", ".join(str(x) for x in layout.widths)
        + "};"
    )
    rows = ", ".join(
        "{" + ", ".join(str(c) for c in delta) + "}" for delta in deltas
    )
    w.line(f"static const long repro_deltas[REPRO_NDELTAS][REPRO_D] = {{{rows}}};")
    names = ", ".join(f'"{p}"' for p in spec.params) or '""'
    w.line(f"static const char *repro_param_names[] = {{{names}}};")
    w.blank()

    # ---- parameters and user globals --------------------------------------
    for p in spec.params:
        w.line(f"static long {p};")
    w.open("static void repro_read_params(char **argv)")
    for idx, p in enumerate(spec.params):
        w.line(f"{p} = atol(argv[{idx + 1}]);")
    if not spec.params:
        w.line("(void)argv;")
    w.close()
    w.blank()
    if spec.global_code_c:
        w.line("/* ---- user global code ---- */")
        w.raw(spec.global_code_c)
        w.blank()
    w.open("static void repro_user_init(void)")
    if spec.init_code_c:
        w.raw(spec.init_code_c)
    w.close()
    w.blank()

    _emit_tile_work(w, program)
    _emit_tile_box(w, program)
    _emit_execute_tile(w, program)
    _emit_pack_unpack(w, program)
    _emit_priority(w, program)
    _emit_load_balance(w, program, with_ehrhart=with_ehrhart)
    _emit_initial_tiles(w, program)

    w.raw(RUNTIME_LIBRARY)
    return w.text()


# ---------------------------------------------------------------------------
# generated sections
# ---------------------------------------------------------------------------


def _unpack_tile_args(w, spaces) -> None:
    for k, tv in enumerate(spaces.tile_vars):
        w.line(f"long {tv} = t[{k}];")


def _emit_tile_work(w: CWriter, program: GeneratedProgram) -> None:
    spaces = program.spaces
    w.line("/* ---- tile work: local-space point count (Section IV-E) ---- */")
    emit_count_function(
        w, "repro_tile_work_impl", spaces.local_nest, list(spaces.tile_vars)
    )
    w.open("static long repro_tile_work(const long *t)")
    args = ", ".join(f"t[{k}]" for k in range(len(spaces.tile_vars)))
    w.line(f"return repro_tile_work_impl({args});")
    w.close()
    w.blank()


def _emit_tile_box(w: CWriter, program: GeneratedProgram) -> None:
    """Per-dimension bounding box of the tile space, as parameter exprs."""
    spaces = program.spaces
    spec = program.spec
    w.line("/* ---- tile-space bounding box (for the slot encoding) ---- */")
    w.open("static int repro_tile_box(long *lo, long *hi)")
    for k, tv in enumerate(spaces.tile_vars):
        proj = project(spaces.tile_space, [tv, *spec.params])
        b = bounds_for_variable(proj, tv)
        if not b.is_bounded():
            raise GenerationError(
                f"tile dimension {tv!r} is unbounded; cannot generate C"
            )
        w.line(f"lo[{k}] = {lower_to_c(b)};")
        w.line(f"hi[{k}] = {upper_to_c(b)};")
        w.line(f"if (lo[{k}] > hi[{k}]) return 0;")
    w.line("return 1;")
    w.close()
    w.blank()


def _emit_execute_tile(w: CWriter, program: GeneratedProgram) -> None:
    spec = program.spec
    spaces = program.spaces
    layout = program.layout
    w.line("/* ---- tile calculation code (Section IV-L, Figure 3) ---- */")
    w.line("static double repro_objective_value = 0.0;")
    w.line("static int repro_objective_seen = 0;")
    objective = spec.objective({})
    w.open("static void repro_execute_tile(const long *t, double *V)")
    _unpack_tile_args(w, spaces)

    directions_x = spec.scan_directions()
    local_directions = {
        spaces.local_vars[k]: directions_x[x]
        for k, x in enumerate(spec.loop_vars)
    }

    def body() -> None:
        # Global coordinates (provided to the user, Figure 3).
        for k, x in enumerate(spec.loop_vars):
            iv = spaces.local_vars[k]
            tv = spaces.tile_vars[k]
            w.line(f"long {x} = {iv} + {layout.widths[k]} * {tv};")
        # Mapping functions: loc and the constant template offsets.
        loc_terms = " + ".join(
            f"{layout.strides[k]} * ({spaces.local_vars[k]} + {layout.ghost_lo[k]})"
            for k in range(len(spec.loop_vars))
        )
        w.line(f"long loc = {loc_terms};")
        for name, off in program.offsets.items():
            w.line(f"long loc_{name} = loc + ({off});")
        # Shared validity checks (Section IV-G).
        for idx, chk in enumerate(program.validity.checks):
            w.line(f"int _chk{idx} = {_constraint_to_c(chk)};")
        for name, _vec in spec.templates.items():
            ids = program.validity.per_template[name]
            cond = " && ".join(f"_chk{i}" for i in ids) if ids else "1"
            w.line(f"int is_valid_{name} = {cond};")
        # Silence unused warnings for symbols the user code may ignore.
        w.line(
            "(void)loc; "
            + " ".join(f"(void)loc_{n}; (void)is_valid_{n};" for n in
                       spec.templates.names())
        )
        w.line("/* ---- user center-loop code ---- */")
        if spec.center_code_c.strip():
            w.raw(spec.center_code_c)
        else:
            w.line("V[loc] = 0.0; /* no center code supplied */")
        obj_cond = " && ".join(
            f"{x} == {objective[x]}" for x in spec.loop_vars
        )
        w.open(f"if ({obj_cond})")
        w.line("repro_objective_value = V[loc];")
        w.line("repro_objective_seen = 1;")
        w.close()

    emit_scan_loops(w, spaces.local_nest, body, directions=local_directions)
    w.close()
    w.blank()


def _constraint_to_c(c: Constraint) -> str:
    parts = [str(c.expr.constant.numerator)]
    for name, coef in c.expr.terms():
        parts.append(f"+ ({coef.numerator})*{name}")
    op = "==" if c.is_equality() else ">="
    return f"(({' '.join(parts)}) {op} 0)"


def _emit_pack_unpack(w: CWriter, program: GeneratedProgram) -> None:
    spec = program.spec
    spaces = program.spaces
    layout = program.layout
    w.line("/* ---- packing / unpacking functions (Section IV-I) ---- */")

    # Size functions per delta.
    for di, delta in enumerate(program.deltas):
        plan = program.pack_plans[delta]
        emit_count_function(
            w, f"repro_pack_size_{di}", plan.region_nest, list(spaces.tile_vars)
        )
    w.open("static long repro_pack_size(int d, const long *t)")
    args = ", ".join(f"t[{k}]" for k in range(len(spaces.tile_vars)))
    w.open("switch (d)")
    for di in range(len(program.deltas)):
        w.line(f"case {di}: return repro_pack_size_{di}({args});")
    w.close()
    w.line("return 0;")
    w.close()
    w.blank()

    def loc_expr(offsets: Sequence[int]) -> str:
        return " + ".join(
            f"{layout.strides[k]} * ({spaces.local_vars[k]} + {offsets[k]})"
            for k in range(len(spec.loop_vars))
        )

    # Pack and unpack per delta: identical iteration spaces and order
    # (the paper's requirement), different mapping functions.
    for di, delta in enumerate(program.deltas):
        plan = program.pack_plans[delta]

        w.open(
            f"static void repro_pack_{di}(const long *t, const double *V, double *buf)"
        )
        _unpack_tile_args(w, spaces)
        w.line("long n = 0;")

        def pack_body() -> None:
            w.line(f"buf[n++] = V[{loc_expr(layout.ghost_lo)}];")

        emit_scan_loops(w, plan.region_nest, pack_body)
        w.line("(void)n;")
        w.close()

        w.open(
            f"static void repro_unpack_{di}(const long *t, const double *buf, double *V)"
        )
        _unpack_tile_args(w, spaces)
        w.line("long n = 0;")
        ghost_offsets = [
            layout.ghost_lo[k] + plan.consumer_shift[k]
            for k in range(len(spec.loop_vars))
        ]

        def unpack_body() -> None:
            w.line(f"V[{loc_expr(ghost_offsets)}] = buf[n++];")

        emit_scan_loops(w, plan.region_nest, unpack_body)
        w.line("(void)n;")
        w.close()
        w.blank()

    w.open("static void repro_pack(int d, const long *t, const double *V, double *buf)")
    w.open("switch (d)")
    for di in range(len(program.deltas)):
        w.line(f"case {di}: repro_pack_{di}(t, V, buf); return;")
    w.close()
    w.close()
    w.open(
        "static void repro_unpack(int d, const long *t, const double *buf, double *V)"
    )
    w.open("switch (d)")
    for di in range(len(program.deltas)):
        w.line(f"case {di}: repro_unpack_{di}(t, buf, V); return;")
    w.close()
    w.close()
    w.blank()


def _emit_priority(w: CWriter, program: GeneratedProgram) -> None:
    """Figure 5 priority: lb dims first, adjusted to the scan direction."""
    spec = program.spec
    directions = spec.scan_directions()
    lb_positions = [spec.loop_vars.index(x) for x in spec.lb_dims]
    other = [k for k in range(len(spec.loop_vars)) if k not in set(lb_positions)]
    order = lb_positions + other
    w.line("/* ---- tile priority (Section V-B, Figure 5) ---- */")
    w.line("/* lb dims downstream-first (feed the neighbouring node early), */")
    w.line("/* remaining dims column-major along the scan direction.        */")
    w.open("static void repro_priority(const long *t, long *key)")
    lb_set = set(lb_positions)
    for rank, k in enumerate(order):
        descending = directions[spec.loop_vars[k]] == DESCENDING
        if k in lb_set:
            sign = "" if descending else "-"
        else:
            sign = "-" if descending else ""
        w.line(f"key[{rank}] = {sign}t[{k}];")
    w.close()
    w.blank()


def _emit_load_balance(
    w: CWriter, program: GeneratedProgram, with_ehrhart: bool
) -> None:
    spec = program.spec
    spaces = program.spaces
    w.line("/* ---- load balancing (Section IV-J) ---- */")

    if with_ehrhart and len(spec.params) == 1:
        w.line("#define REPRO_HAVE_EHRHART 1")
        _emit_ehrhart_total(w, program)

    # Slab work: symbolic count over the lb tile indices.
    from ..loadbalance import _symbolic_slab_nest

    slab_nest = _symbolic_slab_nest(spaces)
    lb_tvs = list(spaces.lb_tile_vars)
    emit_count_function(w, "repro_slab_work_impl", slab_nest, lb_tvs)

    # Bounding box of the lb space, for the dense assignment table.
    j = len(lb_tvs)
    w.open("static int repro_lb_box(long *lo, long *hi)")
    for k, tv in enumerate(lb_tvs):
        proj = project(spaces.lb_space, [tv, *spec.params])
        b = bounds_for_variable(proj, tv)
        if not b.is_bounded():
            raise GenerationError(f"lb dimension {tv!r} is unbounded")
        w.line(f"lo[{k}] = {lower_to_c(b)};")
        w.line(f"hi[{k}] = {upper_to_c(b)};")
        w.line(f"if (lo[{k}] > hi[{k}]) return 0;")
    w.line("return 1;")
    w.close()
    w.blank()

    w.line(f"#define REPRO_LBD {j}")
    w.line("static long lb_lo[REPRO_LBD], lb_stride[REPRO_LBD];")
    w.line("static long lb_slots = 0;")
    w.line("static int *lb_assign;")
    w.blank()

    # Execution-direction signs per lb dim (slabs are walked in the
    # pipeline order, lb1 major).
    directions = spec.scan_directions()
    signs = [(-1 if directions[x] == DESCENDING else 1) for x in spec.lb_dims]

    w.open("static void repro_init_load_balance(int nnodes)")
    w.line("long lo[REPRO_LBD], hi[REPRO_LBD];")
    w.line('if (!repro_lb_box(lo, hi)) { fprintf(stderr, "empty lb space\\n"); exit(1); }')
    w.line("long stride = 1;")
    w.open("for (int k = REPRO_LBD - 1; k >= 0; k--)")
    w.line("lb_lo[k] = lo[k];")
    w.line("lb_stride[k] = stride;")
    w.line("stride *= (hi[k] - lo[k] + 1);")
    w.close()
    w.line("lb_slots = stride;")
    w.line("lb_assign = (int *)malloc((size_t)lb_slots * sizeof(int));")
    w.line("long *works = (long *)calloc((size_t)lb_slots, sizeof(long));")
    w.line("long total = 0;")
    # Walk slabs in pipeline order accumulating work; dimension-cut split.
    w.line("/* first pass: per-slab work */")
    args = ", ".join(lb_tvs)
    depth = 0
    for k, tv in enumerate(lb_tvs):
        if signs[k] > 0:
            w.open(f"for (long {tv} = lo[{k}]; {tv} <= hi[{k}]; {tv}++)")
        else:
            w.open(f"for (long {tv} = hi[{k}]; {tv} >= lo[{k}]; {tv}--)")
        depth += 1
    w.line(f"long work = repro_slab_work_impl({args});")
    idx_expr = " + ".join(
        f"lb_stride[{k}] * ({tv} - lb_lo[{k}])" for k, tv in enumerate(lb_tvs)
    )
    w.line(f"works[{idx_expr}] = work;")
    w.line("total += work;")
    for _ in range(depth):
        w.close()
    w.line("/* second pass: contiguous even cut along the walk order */")
    w.line("long cum = 0;")
    depth = 0
    for k, tv in enumerate(lb_tvs):
        if signs[k] > 0:
            w.open(f"for (long {tv} = lo[{k}]; {tv} <= hi[{k}]; {tv}++)")
        else:
            w.open(f"for (long {tv} = hi[{k}]; {tv} >= lo[{k}]; {tv}--)")
        depth += 1
    w.line(f"long slot = {idx_expr};")
    w.line("long work = works[slot];")
    w.line("long node = total > 0 ? ((2 * cum + work) * nnodes) / (2 * total) : 0;")
    w.line("if (node >= nnodes) node = nnodes - 1;")
    w.line("lb_assign[slot] = (int)node;")
    w.line("cum += work;")
    for _ in range(depth):
        w.close()
    w.line("free(works);")
    w.close()
    w.blank()

    lb_positions = [spec.loop_vars.index(x) for x in spec.lb_dims]
    w.open("static int repro_node_of_tile(const long *t)")
    w.line("if (lb_slots == 0) return 0;")
    idx_parts = " + ".join(
        f"lb_stride[{k}] * (t[{pos}] - lb_lo[{k}])"
        for k, pos in enumerate(lb_positions)
    )
    w.line(f"long slot = {idx_parts};")
    w.line("if (slot < 0 || slot >= lb_slots) return 0;")
    w.line("return lb_assign[slot];")
    w.close()
    w.blank()


def _emit_ehrhart_total(w: CWriter, program: GeneratedProgram) -> None:
    """Embed the total-work Ehrhart polynomial (exact integer Horner)."""
    spec = program.spec
    param = spec.params[0]
    qp = total_work_polynomial(spec)
    w.line(
        f"/* Ehrhart polynomial: total work as a function of {param} "
        f"(degree {qp.degree}, period {qp.period}) */"
    )
    w.open("static long repro_total_work_ehrhart(void)")
    for residue, coeffs in enumerate(qp.coeffs_by_residue):
        den = lcm_all(c.denominator for c in coeffs) or 1
        scaled = [int(c * den) for c in coeffs]
        terms = ", ".join(str(v) for v in scaled)
        w.open(
            f"if ({param} % {qp.period} == {residue})"
            if qp.period > 1
            else "if (1)"
        )
        w.line(f"static const long long a[] = {{{terms}}};")
        w.line("long long acc = 0;")
        w.line(f"for (int k = {len(scaled) - 1}; k >= 0; k--) acc = acc * {param} + a[k];")
        w.line(f"return (long)(acc / {den});")
        w.close()
    w.line("return 0;")
    w.close()
    w.blank()


def _emit_initial_tiles(w: CWriter, program: GeneratedProgram) -> None:
    """Face-scan initial-tile code (Section IV-K), with exhaustive fallback."""
    spec = program.spec
    spaces = program.spaces
    tile_space = spaces.tile_space
    deltas = program.deltas

    candidates: List[List[Constraint]] = []
    feasible = True
    for delta in deltas:
        offsets = {tv: dd for tv, dd in zip(spaces.tile_vars, delta)}
        per_delta: List[Constraint] = []
        for c in tile_space:
            if c.is_equality():
                continue
            drop = sum(c.coeff(tv) * dd for tv, dd in offsets.items())
            if drop < 0:
                shifted = c.shifted(offsets)
                per_delta.append(Constraint(-shifted.expr - 1))
        if not per_delta:
            feasible = False
            break
        candidates.append(per_delta)

    n_combos = 1
    if feasible:
        for per_delta in candidates:
            n_combos *= len(per_delta)
            if n_combos > MAX_FACE_COMBOS:
                feasible = False
                break

    w.line("/* ---- initial tile generation (Section IV-K) ---- */")
    w.line("static void repro_seed_candidate(const long *t);")
    w.open("static void repro_scan_initial_tiles(void)")
    w.line(f"long t[REPRO_D];")

    emitted_systems = set()
    if feasible:
        for combo in itertools.product(*candidates):
            key = frozenset(combo)
            if key in emitted_systems:
                continue
            emitted_systems.add(key)
            # Conjoin the tuple, not the frozenset: set iteration order
            # is hash-randomized and would make the emitted program
            # differ between runs.
            system = tile_space.and_also(combo)
            if system.is_trivially_empty():
                continue
            try:
                nest = synthesize_loop_nest(system, list(spaces.tile_vars))
            except Exception:
                continue

            def seed_body() -> None:
                for k, tv in enumerate(spaces.tile_vars):
                    w.line(f"t[{k}] = {tv};")
                w.line("repro_seed_candidate(t);")

            w.open(f"if ({context_to_c(nest)})")
            w.open("")  # scope block for loop variable reuse across combos
            emit_scan_loops(w, nest, seed_body)
            w.close()
            w.close()
    else:
        # Exhaustive fallback: scan the whole tile space.
        def seed_body() -> None:
            for k, tv in enumerate(spaces.tile_vars):
                w.line(f"t[{k}] = {tv};")
            w.line("repro_seed_candidate(t);")

        w.open("")
        emit_scan_loops(w, spaces.tile_nest, seed_body)
        w.close()
    w.close()
    w.blank()
