'''The pre-written C runtime library (paper Section V).

The generated program is "a combination of generated code for the problem
specific code and pre-written libraries for common functions such as
communication or memory management".  This module holds those pre-written
libraries as C source, emitted verbatim after the problem-specific part.

Contract — the generated (problem-specific) part defines, before this
library is pasted:

* macros ``REPRO_D``, ``REPRO_NDELTAS``, ``REPRO_PADDED_CELLS``
* ``static const long repro_widths[]``, ``repro_deltas[][REPRO_D]``
* parameter globals (e.g. ``static long N;``)
* ``static long repro_tile_work(const long *t)`` — local point count,
  0 for invalid tiles
* ``static int  repro_tile_box(long *lo, long *hi)`` — tile-space
  bounding box for the current parameters (0 if empty)
* ``static void repro_execute_tile(const long *t, double *V)``
* ``static long repro_pack_size(int d, const long *t)``
* ``static void repro_pack(int d, const long *t, const double *V, double *buf)``
* ``static void repro_unpack(int d, const long *t_prod, const double *buf, double *V)``
* ``static void repro_priority(const long *t, long *key)``
* ``static void repro_scan_initial_tiles(void)`` — calls
  ``repro_seed_candidate`` on every face-scan candidate (Section IV-K)
* ``static int repro_node_of_tile(const long *t)`` — owning rank
  (load-balancing cut, Section IV-J; constant 0 without MPI)
* ``static void repro_init_load_balance(int nnodes)``
* ``static void repro_user_init(void)`` and the user's global code.

The library provides tile-slot encoding, the pending-dependency table,
the shared priority heap, edge buffering, the OpenMP worker loop, MPI
edge exchange under ``#ifdef REPRO_USE_MPI``, and ``main``.
'''

RUNTIME_LIBRARY = r"""
/* ================================================================== */
/* Pre-written runtime library (memory, queueing, OpenMP + MPI).      */
/* ================================================================== */
/* Standard includes are emitted at the top of the generated file. */

static long box_lo[REPRO_D], box_hi[REPRO_D], box_stride[REPRO_D];
static long n_slots = 0;

static long *slot_work;        /* local point count per slot (0 = invalid) */
static int  *slot_deps;        /* remaining producer edges per slot        */
static char *slot_seeded;      /* face-scan seed dedup                     */
static double **edge_store;    /* [slot * REPRO_NDELTAS + d] buffers       */

static long tiles_total = 0;   /* valid tiles owned by this rank           */
static long tiles_done = 0;
static long cells_done = 0;

static int repro_rank = 0, repro_nranks = 1;

static double repro_now(void) {
#ifdef _OPENMP
    return omp_get_wtime();
#else
    return (double)clock() / CLOCKS_PER_SEC;
#endif
}

static long tile_slot(const long *t) {
    long id = 0;
    for (int k = 0; k < REPRO_D; k++) {
        long v = t[k] - box_lo[k];
        if (v < 0 || v > box_hi[k] - box_lo[k]) return -1;
        id += v * box_stride[k];
    }
    return id;
}

/* ------------------------- priority heap -------------------------- */
/* Entries are (key[REPRO_D], tile[REPRO_D]); smaller key pops first.  */

static long *heap_keys;   /* heap_cap * REPRO_D */
static long *heap_tiles;
static long heap_len = 0, heap_cap = 0;

static int key_less(const long *a, const long *b) {
    for (int k = 0; k < REPRO_D; k++) {
        if (a[k] != b[k]) return a[k] < b[k];
    }
    return 0;
}

static void heap_swap(long i, long j) {
    long tmp[REPRO_D];
    memcpy(tmp, heap_keys + i * REPRO_D, sizeof tmp);
    memcpy(heap_keys + i * REPRO_D, heap_keys + j * REPRO_D, sizeof tmp);
    memcpy(heap_keys + j * REPRO_D, tmp, sizeof tmp);
    memcpy(tmp, heap_tiles + i * REPRO_D, sizeof tmp);
    memcpy(heap_tiles + i * REPRO_D, heap_tiles + j * REPRO_D, sizeof tmp);
    memcpy(heap_tiles + j * REPRO_D, tmp, sizeof tmp);
}

static void heap_push(const long *tile) {
    if (heap_len == heap_cap) {
        heap_cap = heap_cap ? heap_cap * 2 : 1024;
        heap_keys = (long *)realloc(heap_keys, (size_t)heap_cap * REPRO_D * sizeof(long));
        heap_tiles = (long *)realloc(heap_tiles, (size_t)heap_cap * REPRO_D * sizeof(long));
        if (!heap_keys || !heap_tiles) { fprintf(stderr, "heap OOM\n"); exit(2); }
    }
    repro_priority(tile, heap_keys + heap_len * REPRO_D);
    memcpy(heap_tiles + heap_len * REPRO_D, tile, REPRO_D * sizeof(long));
    long i = heap_len++;
    while (i > 0) {
        long p = (i - 1) / 2;
        if (!key_less(heap_keys + i * REPRO_D, heap_keys + p * REPRO_D)) break;
        heap_swap(i, p);
        i = p;
    }
}

static int heap_pop(long *tile_out) {
    if (heap_len == 0) return 0;
    memcpy(tile_out, heap_tiles, REPRO_D * sizeof(long));
    heap_len--;
    if (heap_len > 0) {
        memcpy(heap_keys, heap_keys + heap_len * REPRO_D, REPRO_D * sizeof(long));
        memcpy(heap_tiles, heap_tiles + heap_len * REPRO_D, REPRO_D * sizeof(long));
        long i = 0;
        for (;;) {
            long l = 2 * i + 1, r = 2 * i + 2, m = i;
            if (l < heap_len && key_less(heap_keys + l * REPRO_D, heap_keys + m * REPRO_D)) m = l;
            if (r < heap_len && key_less(heap_keys + r * REPRO_D, heap_keys + m * REPRO_D)) m = r;
            if (m == i) break;
            heap_swap(i, m);
            i = m;
        }
    }
    return 1;
}

/* --------------------- seeding and bookkeeping --------------------- */

static void repro_seed_candidate(const long *t) {
    /* Called by the generated face scans (Section IV-K): accept a tile
       iff it is valid and every tile dependency is unsatisfiable. */
    long slot = tile_slot(t);
    if (slot < 0 || slot_work[slot] == 0 || slot_seeded[slot]) return;
    for (int d = 0; d < REPRO_NDELTAS; d++) {
        long p[REPRO_D];
        for (int k = 0; k < REPRO_D; k++) p[k] = t[k] + repro_deltas[d][k];
        long ps = tile_slot(p);
        if (ps >= 0 && slot_work[ps] > 0) return; /* has a live producer */
    }
    slot_seeded[slot] = 1;
    if (repro_node_of_tile(t) == repro_rank) heap_push(t);
}

#ifdef REPRO_USE_MPI
/* Edge messages carry a header: consumer tile coords + delta index. */
#define REPRO_EDGE_TAG 7701
static void send_edge(int dest, const long *consumer, int d,
                      const double *buf, long cells) {
    long header[REPRO_D + 2];
    memcpy(header, consumer, REPRO_D * sizeof(long));
    header[REPRO_D] = d;
    header[REPRO_D + 1] = cells;
    MPI_Send(header, REPRO_D + 2, MPI_LONG, dest, REPRO_EDGE_TAG, MPI_COMM_WORLD);
    MPI_Send((void *)buf, (int)cells, MPI_DOUBLE, dest, REPRO_EDGE_TAG + 1,
             MPI_COMM_WORLD);
}
#endif

static void deliver_edge(const long *consumer, int d, double *buf);

#ifdef REPRO_USE_MPI
static void poll_edges(void) {
    int flag = 1;
    while (flag) {
        MPI_Status st;
        MPI_Iprobe(MPI_ANY_SOURCE, REPRO_EDGE_TAG, MPI_COMM_WORLD, &flag, &st);
        if (!flag) break;
        long header[REPRO_D + 2];
        MPI_Recv(header, REPRO_D + 2, MPI_LONG, st.MPI_SOURCE, REPRO_EDGE_TAG,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long cells = header[REPRO_D + 1];
        double *buf = (double *)malloc((size_t)cells * sizeof(double));
        MPI_Recv(buf, (int)cells, MPI_DOUBLE, st.MPI_SOURCE, REPRO_EDGE_TAG + 1,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        deliver_edge(header, (int)header[REPRO_D], buf);
    }
}
#endif

/* Store an edge buffer and release the consumer when its last
   dependency arrives.  Caller must hold the queue lock (or be in the
   serial init phase). */
static void deliver_edge(const long *consumer, int d, double *buf) {
    long slot = tile_slot(consumer);
    if (slot < 0 || slot_work[slot] == 0) {
        fprintf(stderr, "edge delivered to invalid tile\n");
        exit(2);
    }
    edge_store[slot * REPRO_NDELTAS + d] = buf;
    if (--slot_deps[slot] == 0) heap_push(consumer);
}

/* ------------------------- the worker loop ------------------------ */

static void process_tile(const long *t, double *V) {
    long slot = tile_slot(t);
    /* Unpack incoming edges into the ghost margins. */
    for (int d = 0; d < REPRO_NDELTAS; d++) {
        long p[REPRO_D];
        for (int k = 0; k < REPRO_D; k++) p[k] = t[k] + repro_deltas[d][k];
        long ps = tile_slot(p);
        if (ps < 0 || slot_work[ps] == 0) continue;
        double *buf = edge_store[slot * REPRO_NDELTAS + d];
        if (!buf) { fprintf(stderr, "missing edge buffer\n"); exit(2); }
        repro_unpack(d, p, buf, V);
        free(buf);
        edge_store[slot * REPRO_NDELTAS + d] = NULL;
    }

    repro_execute_tile(t, V);

    /* Pack outgoing edges and hand them to the consumers. */
    for (int d = 0; d < REPRO_NDELTAS; d++) {
        long c[REPRO_D];
        for (int k = 0; k < REPRO_D; k++) c[k] = t[k] - repro_deltas[d][k];
        long cs = tile_slot(c);
        if (cs < 0 || slot_work[cs] == 0) continue;
        long cells = repro_pack_size(d, t);
        double *buf = (double *)malloc((size_t)(cells > 0 ? cells : 1) * sizeof(double));
        repro_pack(d, t, V, buf);
        int owner = repro_node_of_tile(c);
        if (owner == repro_rank) {
#ifdef _OPENMP
#pragma omp critical(repro_queue)
#endif
            deliver_edge(c, d, buf);
        } else {
#ifdef REPRO_USE_MPI
            send_edge(owner, c, d, buf, cells);
            free(buf);
#else
            fprintf(stderr, "cross-node edge without MPI\n");
            exit(2);
#endif
        }
    }

#ifdef _OPENMP
#pragma omp atomic
#endif
    tiles_done++;
#ifdef _OPENMP
#pragma omp atomic
#endif
    cells_done += slot_work[slot];
}

static void worker_loop(void) {
#ifdef _OPENMP
#pragma omp parallel
#endif
    {
        double *V = (double *)malloc((size_t)REPRO_PADDED_CELLS * sizeof(double));
        long t[REPRO_D];
        for (;;) {
            int got = 0;
            long done_snapshot;
#ifdef _OPENMP
#pragma omp critical(repro_queue)
#endif
            {
                got = heap_pop(t);
            }
            if (got) {
                process_tile(t, V);
                continue;
            }
#ifdef _OPENMP
#pragma omp atomic read
            done_snapshot = tiles_done;
#else
            done_snapshot = tiles_done;
#endif
            if (done_snapshot >= tiles_total) break;
#ifdef REPRO_USE_MPI
#ifdef _OPENMP
#pragma omp master
#endif
            {
#ifdef _OPENMP
#pragma omp critical(repro_queue)
#endif
                poll_edges();
            }
#endif
        }
        free(V);
    }
}

/* ----------------------------- setup ------------------------------ */

static void init_tables(void) {
    (void)repro_widths;
    long lo[REPRO_D], hi[REPRO_D];
    if (!repro_tile_box(lo, hi)) {
        fprintf(stderr, "empty problem\n");
        exit(1);
    }
    long stride = 1;
    for (int k = REPRO_D - 1; k >= 0; k--) {
        box_lo[k] = lo[k];
        box_hi[k] = hi[k];
        box_stride[k] = stride;
        stride *= (hi[k] - lo[k] + 1);
    }
    n_slots = stride;
    slot_work = (long *)calloc((size_t)n_slots, sizeof(long));
    slot_deps = (int *)calloc((size_t)n_slots, sizeof(int));
    slot_seeded = (char *)calloc((size_t)n_slots, 1);
    edge_store = (double **)calloc((size_t)n_slots * REPRO_NDELTAS, sizeof(double *));
    if (!slot_work || !slot_deps || !slot_seeded || !edge_store) {
        fprintf(stderr, "table OOM (%ld slots)\n", n_slots);
        exit(2);
    }

    /* Work per tile over the bounding box (0 marks invalid slots). */
    long t[REPRO_D];
    for (long s = 0; s < n_slots; s++) {
        long rem = s;
        for (int k = 0; k < REPRO_D; k++) {
            t[k] = box_lo[k] + rem / box_stride[k];
            rem %= box_stride[k];
        }
        slot_work[s] = repro_tile_work(t);
    }

    /* Dependency counts for owned tiles. */
    for (long s = 0; s < n_slots; s++) {
        if (slot_work[s] == 0) continue;
        long rem = s;
        for (int k = 0; k < REPRO_D; k++) {
            t[k] = box_lo[k] + rem / box_stride[k];
            rem %= box_stride[k];
        }
        if (repro_node_of_tile(t) != repro_rank) continue;
        tiles_total++;
        int deps = 0;
        for (int d = 0; d < REPRO_NDELTAS; d++) {
            long p[REPRO_D];
            for (int k = 0; k < REPRO_D; k++) p[k] = t[k] + repro_deltas[d][k];
            long ps = tile_slot(p);
            if (ps >= 0 && slot_work[ps] > 0) deps++;
        }
        slot_deps[s] = deps;
    }
}

int main(int argc, char **argv) {
#ifdef REPRO_USE_MPI
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &repro_rank);
    MPI_Comm_size(MPI_COMM_WORLD, &repro_nranks);
#endif
    if (argc < 1 + REPRO_NPARAMS) {
        fprintf(stderr, "usage: %s", argv[0]);
        for (int p = 0; p < REPRO_NPARAMS; p++)
            fprintf(stderr, " <%s>", repro_param_names[p]);
        fprintf(stderr, "\n");
        return 1;
    }
    repro_read_params(argv);
    repro_user_init();
    double tlb0 = repro_now();
    repro_init_load_balance(repro_nranks);
    double tlb1 = repro_now();
    init_tables();
    /* Initial tile generation (Section IV-K) is timed separately: the
       paper reports it at < 0.5% of total run time. */
    double ts0 = repro_now();
    repro_scan_initial_tiles();
    double ts1 = repro_now();
#ifdef REPRO_CHECK
    /* Self-check: the face-scan seeds (Section IV-K) must be exactly
       the owned tiles with zero live producers. */
    {
        long expected = 0, seeded = 0, t[REPRO_D];
        for (long s = 0; s < n_slots; s++) {
            if (slot_work[s] == 0) continue;
            long rem = s;
            for (int k = 0; k < REPRO_D; k++) {
                t[k] = box_lo[k] + rem / box_stride[k];
                rem %= box_stride[k];
            }
            if (slot_deps[s] == 0 &&
                repro_node_of_tile(t) == repro_rank) expected++;
            if (slot_seeded[s]) seeded++;
        }
        if (heap_len != expected) {
            fprintf(stderr,
                    "REPRO_CHECK: face scan queued %ld tiles, dependency "
                    "counting expects %ld (seeded candidates: %ld)\n",
                    heap_len, expected, seeded);
            exit(3);
        }
        if (repro_rank == 0)
            printf("check_initial ok %ld\n", expected);
    }
#endif

    double t0 = repro_now();
    worker_loop();
    double t1 = repro_now();

#ifdef REPRO_USE_MPI
    /* The objective lives on exactly one rank; reduce it to rank 0. */
    struct { double v; int seen; } local = { repro_objective_value,
                                             repro_objective_seen }, best;
    MPI_Allreduce(&local.v, &best.v, 1, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD);
    int seen_any = 0;
    MPI_Allreduce(&local.seen, &seen_any, 1, MPI_INT, MPI_MAX, MPI_COMM_WORLD);
    if (local.seen) best.v = local.v;
    repro_objective_value = best.v;
    repro_objective_seen = seen_any;
#endif
    if (repro_rank == 0) {
        printf("tiles %ld cells %ld time %.6f\n", tiles_done, cells_done, t1 - t0);
        printf("init_scan %.6f lb_time %.6f\n", ts1 - ts0, tlb1 - tlb0);
#ifdef REPRO_HAVE_EHRHART
        /* Cross-check: the embedded Ehrhart polynomial must count the
           same work the runtime actually executed (single rank only). */
        if (repro_nranks == 1)
            printf("ehrhart_total %ld\n", repro_total_work_ehrhart());
#endif
        if (repro_objective_seen)
            printf("objective %.12f\n", repro_objective_value);
    }
#ifdef REPRO_USE_MPI
    MPI_Finalize();
#endif
    return 0;
}
"""
