"""C backend: emits the hybrid OpenMP + MPI program (paper Section V)."""

from .emitter import CWriter
from .nestc import MACROS, emit_count_function, emit_scan_loops
from .program import emit_c_program
from .runtime_c import RUNTIME_LIBRARY

__all__ = [
    "CWriter",
    "MACROS",
    "emit_count_function",
    "emit_scan_loops",
    "emit_c_program",
    "RUNTIME_LIBRARY",
]
