"""The generation pipeline (paper Section IV-C) and its product.

``generate(spec)`` runs the paper's plan —

1. create the iteration spaces,
2. determine the tile dependencies,
3. create the template-recurrence validity functions,
4. create the mapping functions,
5. build the code-generation inputs (pack/unpack plans, load-balancing
   data, initial-tile scans, tile-calculation loop nests)

— and returns a :class:`GeneratedProgram`: the analysis product every
backend consumes.  The in-process runtime executes it directly, the C
backend (:mod:`repro.generator.cgen`) pretty-prints it as a hybrid
OpenMP + MPI program, and the Python backend (:mod:`~.pygen`) as a
standalone script.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

from ..errors import GenerationError
from ..spec import ProblemSpec
from .initial_tiles import initial_tiles
from .loadbalance import (
    LoadBalance,
    balance_dimension_cut,
    balance_hyperplane,
    compute_slab_work,
)
from .mapping import TileLayout, build_layout, template_offsets
from .packing import PackPlan, build_pack_plans
from .priority import PriorityFn, make_priority
from .spaces import IterationSpaces, TileIndex, build_iteration_spaces
from .tile_deps import Delta, dependency_deltas, tile_dependency_map
from .validity import ValiditySet, build_validity


@dataclass
class GenerationStats:
    """Wall-clock cost of each pipeline stage (feeds the GEN benchmark)."""

    spaces_s: float = 0.0
    tile_deps_s: float = 0.0
    validity_s: float = 0.0
    mapping_s: float = 0.0
    packing_s: float = 0.0
    total_s: float = 0.0


@dataclass
class GeneratedProgram:
    """Everything derived from a :class:`ProblemSpec` by the generator."""

    spec: ProblemSpec
    spaces: IterationSpaces
    deltas: Tuple[Delta, ...]
    delta_templates: Mapping[Delta, Tuple[str, ...]]
    validity: ValiditySet
    layout: TileLayout
    offsets: Mapping[str, int]
    pack_plans: Mapping[Delta, PackPlan]
    stats: GenerationStats = field(default_factory=GenerationStats)

    # -- conveniences used by the runtime, simulator and emitters ----------

    def priority(self, scheme: str = "lb-first") -> PriorityFn:
        return make_priority(self.spec, scheme)

    def load_balance(
        self,
        params: Mapping[str, int],
        nodes: int,
        method: str = "dimension-cut",
        slab_work: Optional[Dict] = None,
    ) -> LoadBalance:
        if method == "dimension-cut":
            return balance_dimension_cut(self.spaces, params, nodes, slab_work)
        if method == "hyperplane":
            return balance_hyperplane(
                self.spaces, params, nodes, slab_work=slab_work
            )
        raise GenerationError(f"unknown load-balancing method {method!r}")

    def slab_work(self, params: Mapping[str, int]) -> Dict:
        return compute_slab_work(self.spaces, params)

    def initial_tiles(
        self, params: Mapping[str, int], method: str = "face-scan"
    ) -> Set[TileIndex]:
        return initial_tiles(self.spaces, params, method=method)

    def describe(self) -> str:
        spec = self.spec
        lines = [spec.describe(), ""]
        lines.append(f"tile dependencies ({len(self.deltas)} edges):")
        for delta in self.deltas:
            names = ", ".join(self.delta_templates[delta])
            lines.append(f"    delta {delta}  <- templates {names}")
        lines.append(
            f"validity checks: {len(self.validity.checks)} distinct "
            f"({self.validity.shared_check_count()} shared)"
        )
        lines.append(f"padded tile shape: {self.layout.padded_shape}")
        lines.append(
            "template offsets: "
            + ", ".join(f"{n}={o:+d}" for n, o in self.offsets.items())
        )
        return "\n".join(lines)


def generate(spec: ProblemSpec, prune: str = "syntactic") -> GeneratedProgram:
    """Run the full generation pipeline on *spec* (paper Section IV-C)."""
    stats = GenerationStats()
    t0 = time.perf_counter()

    t = time.perf_counter()
    spaces = build_iteration_spaces(spec, prune=prune)
    stats.spaces_s = time.perf_counter() - t

    t = time.perf_counter()
    delta_templates = tile_dependency_map(spec)
    deltas = tuple(delta_templates.keys())
    stats.tile_deps_s = time.perf_counter() - t

    t = time.perf_counter()
    validity = build_validity(spec)
    stats.validity_s = time.perf_counter() - t

    t = time.perf_counter()
    layout = build_layout(spec)
    offsets = template_offsets(spec, layout)
    stats.mapping_s = time.perf_counter() - t

    t = time.perf_counter()
    pack_plans = build_pack_plans(spec, spaces, layout, prune=prune)
    stats.packing_s = time.perf_counter() - t

    stats.total_s = time.perf_counter() - t0
    return GeneratedProgram(
        spec=spec,
        spaces=spaces,
        deltas=deltas,
        delta_templates=delta_templates,
        validity=validity,
        layout=layout,
        offsets=offsets,
        pack_plans=pack_plans,
        stats=stats,
    )
