"""Standalone Python program emission (the pygen backend).

Emits a self-contained Python script with the same structure as the
generated C program: Fourier–Motzkin loop nests, mapping functions with
constant template offsets, shared validity checks, pack/unpack per edge,
face-scan initial tiles, the Figure 5 priority, and a dependency-driven
work loop.  The user's center-loop code is the ``center_code_py``
fragment of the spec, with exactly the Section IV-B programming
interface: the flat state array ``V``, ``loc``, ``loc_<r>`` and
``is_valid_<r>``.

The emitted script needs only numpy and the standard library — it does
not import :mod:`repro` — so it is a genuinely independent artifact, and
tests run it in a subprocess against the reference solvers.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from ...errors import GenerationError
from ...polyhedra import Constraint, project
from ...polyhedra.bounds import LoopNest, bounds_for_variable
from ...polyhedra.compile import _lower_expr, _upper_expr, _context_condition
from ...spec import DESCENDING
from ..pipeline import GeneratedProgram
from .writer import PyWriter


def _emit_loops(
    w: PyWriter,
    nest: LoopNest,
    directions: Mapping[str, int] | None = None,
) -> int:
    """Open one for-block per nest dimension; returns the block count."""
    directions = directions or {}
    for b in nest.per_var:
        lo = _lower_expr(b)
        hi = _upper_expr(b)
        if directions.get(b.var, 1) >= 0:
            w.open(f"for {b.var} in range({lo}, {hi} + 1)")
        else:
            w.open(f"for {b.var} in range({hi}, ({lo}) - 1, -1)")
    return len(nest.per_var)


def _emit_count_def(w: PyWriter, name: str, nest: LoopNest, args: Sequence[str]) -> None:
    w.open(f"def {name}({', '.join(args)})")
    w.open(f"if not ({_context_condition(nest)})")
    w.line("return 0")
    w.close()
    w.line("_total = 0")
    depth = 0
    for b in nest.per_var[:-1]:
        w.open(f"for {b.var} in range({_lower_expr(b)}, {_upper_expr(b)} + 1)")
        depth += 1
    inner = nest.per_var[-1]
    w.line(f"_n = {_upper_expr(inner)} - ({_lower_expr(inner)}) + 1")
    w.open("if _n > 0")
    w.line("_total += _n")
    w.close()
    w.close(depth)
    w.line("return _total")
    w.close()
    w.blank()


def _constraint_to_py(c: Constraint) -> str:
    parts = [str(c.expr.constant.numerator)]
    for name, coef in c.expr.terms():
        parts.append(f"+ ({coef.numerator})*{name}")
    op = "==" if c.is_equality() else ">="
    return f"(({' '.join(parts)}) {op} 0)"


def emit_python_program(program: GeneratedProgram) -> str:
    """Render *program* as a standalone Python script."""
    spec = program.spec
    spaces = program.spaces
    layout = program.layout
    d = len(spec.loop_vars)
    if not spec.center_code_py.strip():
        raise GenerationError(
            f"problem {spec.name!r} has no center_code_py; the Python "
            "backend needs the Python center-loop fragment"
        )

    w = PyWriter()
    w.line("#!/usr/bin/env python3")
    w.line('"""')
    w.line(f"Auto-generated tiled dynamic-programming program: {spec.name}")
    w.line("Produced by the repro program generator (VandenBerg & Stout,")
    w.line("CLUSTER 2011 reproduction).  Do not edit by hand.")
    w.line()
    w.line(f"Usage: python prog.py {' '.join('<' + p + '>' for p in spec.params)}")
    w.line('"""')
    w.line("import heapq")
    w.line("import sys")
    w.line("import time")
    w.blank()
    w.line("import numpy as np")
    w.blank()
    for idx, p in enumerate(spec.params):
        w.line(f"{p} = int(sys.argv[{idx + 1}])")
    w.blank()
    if spec.global_code_py:
        w.line("# ---- user global code ----")
        w.raw(spec.global_code_py)
        w.blank()
    if spec.init_code_py:
        w.line("# ---- user init code ----")
        w.raw(spec.init_code_py)
        w.blank()

    w.line(f"D = {d}")
    w.line(f"DELTAS = {tuple(program.deltas)!r}")
    w.line(f"PADDED_CELLS = {layout.cells}")
    w.line(f"NAN = float('nan')")
    w.blank()

    # Counters.
    w.line("# ---- tile work (local-space point count, Section IV-E) ----")
    _emit_count_def(
        w, "tile_work", spaces.local_nest, list(spaces.tile_vars)
    )
    for di, delta in enumerate(program.deltas):
        plan = program.pack_plans[delta]
        _emit_count_def(
            w, f"pack_size_{di}", plan.region_nest, list(spaces.tile_vars)
        )
    w.line(
        "PACK_SIZES = ("
        + ", ".join(f"pack_size_{di}" for di in range(len(program.deltas)))
        + ("," if len(program.deltas) == 1 else "")
        + ")"
    )
    w.blank()

    # Tile-space bounding box.
    w.line("# ---- tile-space bounding box ----")
    w.open("def tile_box()")
    w.line("lo = [0] * D")
    w.line("hi = [0] * D")
    for k, tv in enumerate(spaces.tile_vars):
        proj = project(spaces.tile_space, [tv, *spec.params])
        b = bounds_for_variable(proj, tv)
        if not b.is_bounded():
            raise GenerationError(f"tile dimension {tv!r} is unbounded")
        w.line(f"lo[{k}] = {_lower_expr(b)}")
        w.line(f"hi[{k}] = {_upper_expr(b)}")
    w.line("return lo, hi")
    w.close()
    w.blank()

    # Execute tile.
    directions_x = spec.scan_directions()
    local_directions = {
        spaces.local_vars[k]: directions_x[x]
        for k, x in enumerate(spec.loop_vars)
    }
    objective = spec.objective({})
    w.line("# ---- tile calculation code (Section IV-L, Figure 3) ----")
    w.line("OBJECTIVE = [0.0, False]")
    w.open("def execute_tile(t, V)")
    w.line(", ".join(spaces.tile_vars) + ("," if d == 1 else "") + " = t")
    depth = _emit_loops(w, spaces.local_nest, local_directions)
    for k, x in enumerate(spec.loop_vars):
        w.line(
            f"{x} = {spaces.local_vars[k]} + {layout.widths[k]} * {spaces.tile_vars[k]}"
        )
    loc_terms = " + ".join(
        f"{layout.strides[k]} * ({spaces.local_vars[k]} + {layout.ghost_lo[k]})"
        for k in range(d)
    )
    w.line(f"loc = {loc_terms}")
    for name, off in program.offsets.items():
        w.line(f"loc_{name} = loc + ({off})")
    for idx, chk in enumerate(program.validity.checks):
        w.line(f"_chk{idx} = {_constraint_to_py(chk)}")
    for name, _vec in spec.templates.items():
        ids = program.validity.per_template[name]
        cond = " and ".join(f"_chk{i}" for i in ids) if ids else "True"
        w.line(f"is_valid_{name} = {cond}")
    w.line("# ---- user center-loop code ----")
    w.raw(spec.center_code_py)
    obj_cond = " and ".join(f"{x} == {objective[x]}" for x in spec.loop_vars)
    w.open(f"if {obj_cond}")
    w.line("OBJECTIVE[0] = V[loc]")
    w.line("OBJECTIVE[1] = True")
    w.close()
    w.close(depth)
    w.close()
    w.blank()

    # Pack / unpack.
    w.line("# ---- packing / unpacking functions (Section IV-I) ----")
    for di, delta in enumerate(program.deltas):
        plan = program.pack_plans[delta]
        w.open(f"def pack_{di}(t, V, buf)")
        w.line(", ".join(spaces.tile_vars) + ("," if d == 1 else "") + " = t")
        w.line("_n = 0")
        depth = _emit_loops(w, plan.region_nest)
        src = " + ".join(
            f"{layout.strides[k]} * ({spaces.local_vars[k]} + {layout.ghost_lo[k]})"
            for k in range(d)
        )
        w.line(f"buf[_n] = V[{src}]")
        w.line("_n += 1")
        w.close(depth)
        w.close()
        w.open(f"def unpack_{di}(t, buf, V)")
        w.line(", ".join(spaces.tile_vars) + ("," if d == 1 else "") + " = t")
        w.line("_n = 0")
        depth = _emit_loops(w, plan.region_nest)
        ghost = [
            layout.ghost_lo[k] + plan.consumer_shift[k] for k in range(d)
        ]
        dst = " + ".join(
            f"{layout.strides[k]} * ({spaces.local_vars[k]} + {ghost[k]})"
            for k in range(d)
        )
        w.line(f"V[{dst}] = buf[_n]")
        w.line("_n += 1")
        w.close(depth)
        w.close()
    w.line(
        "PACKERS = ("
        + ", ".join(f"pack_{di}" for di in range(len(program.deltas)))
        + ("," if len(program.deltas) == 1 else "")
        + ")"
    )
    w.line(
        "UNPACKERS = ("
        + ", ".join(f"unpack_{di}" for di in range(len(program.deltas)))
        + ("," if len(program.deltas) == 1 else "")
        + ")"
    )
    w.blank()

    # Priority (Figure 5).
    lb_positions = [spec.loop_vars.index(x) for x in spec.lb_dims]
    other = [k for k in range(d) if k not in set(lb_positions)]
    order = lb_positions + other
    w.line("# ---- tile priority (Section V-B, Figure 5) ----")
    w.line("# lb dims downstream-first; remaining dims column-major.")
    w.open("def priority(t)")
    parts = []
    lb_set = set(lb_positions)
    for k in order:
        descending = directions_x[spec.loop_vars[k]] == DESCENDING
        if k in lb_set:
            sign = "" if descending else "-"
        else:
            sign = "-" if descending else ""
        parts.append(f"{sign}t[{k}]")
    w.line(f"return ({', '.join(parts)}{',' if len(parts) == 1 else ''})")
    w.close()
    w.blank()

    # Tile-space scan (used for seeding; the paper's face scans are in
    # the C backend, the Python backend uses the exhaustive equivalent).
    w.line("# ---- tile-space scan and initial tiles (Section IV-K) ----")
    w.open("def scan_tiles()")
    depth = _emit_loops(w, spaces.tile_nest)
    tup = ", ".join(spaces.tile_vars) + ("," if d == 1 else "")
    w.open(f"if tile_work({', '.join(spaces.tile_vars)}) > 0")
    w.line(f"yield ({tup})")
    w.close()
    w.close(depth)
    w.close()
    w.blank()

    w.raw(_PY_RUNTIME)
    return w.text()


_PY_RUNTIME = '''\
# ==================================================================
# Pre-written runtime (memory management, queueing) — Section V.
# ==================================================================

def main():
    t0 = time.perf_counter()
    tiles = set(scan_tiles())
    if not tiles:
        print("tiles 0 cells 0 time 0.0")
        return
    producers = {}
    deps = {}
    for t in tiles:
        prods = []
        for delta in DELTAS:
            p = tuple(a + b for a, b in zip(t, delta))
            if p in tiles:
                prods.append(p)
        producers[t] = prods
        deps[t] = len(prods)

    heap = [(priority(t), t) for t in tiles if deps[t] == 0]
    heapq.heapify(heap)
    edges = {}
    tiles_done = 0
    cells_done = 0
    while heap:
        _, t = heapq.heappop(heap)
        V = np.full(PADDED_CELLS, NAN)
        for di, delta in enumerate(DELTAS):
            p = tuple(a + b for a, b in zip(t, delta))
            if p in tiles:
                UNPACKERS[di](p, edges.pop((p, t)), V)
        execute_tile(t, V)
        cells_done += tile_work(*t)
        tiles_done += 1
        for di, delta in enumerate(DELTAS):
            c = tuple(a - b for a, b in zip(t, delta))
            if c not in tiles:
                continue
            buf = np.empty(max(PACK_SIZES[di](*t), 1))
            PACKERS[di](t, V, buf)
            edges[(t, c)] = buf
            deps[c] -= 1
            if deps[c] == 0:
                heapq.heappush(heap, (priority(c), c))
    elapsed = time.perf_counter() - t0
    print(f"tiles {tiles_done} cells {cells_done} time {elapsed:.6f}")
    if OBJECTIVE[1]:
        print(f"objective {OBJECTIVE[0]:.12f}")


if __name__ == "__main__":
    main()
'''
