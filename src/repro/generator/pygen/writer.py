"""Indented Python source writer (the pygen twin of cgen's CWriter)."""

from __future__ import annotations

from typing import Iterable, List


class PyWriter:
    """Accumulates Python source with block indentation."""

    def __init__(self, indent: str = "    "):
        self._lines: List[str] = []
        self._depth = 0
        self._indent = indent

    def line(self, text: str = "") -> "PyWriter":
        if text:
            self._lines.append(self._indent * self._depth + text)
        else:
            self._lines.append("")
        return self

    def lines(self, texts: Iterable[str]) -> "PyWriter":
        for t in texts:
            self.line(t)
        return self

    def raw(self, block: str) -> "PyWriter":
        """Paste a preformatted block re-indented to the current depth."""
        for t in block.splitlines():
            if t.strip():
                self._lines.append(self._indent * self._depth + t)
            else:
                self._lines.append("")
        return self

    def open(self, header: str) -> "PyWriter":
        self.line(header if header.endswith(":") else header + ":")
        self._depth += 1
        return self

    def close(self, count: int = 1) -> "PyWriter":
        self._depth -= count
        if self._depth < 0:
            raise ValueError("unbalanced PyWriter close()")
        return self

    def blank(self) -> "PyWriter":
        self._lines.append("")
        return self

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"
