"""Python backend: emits a standalone tiled DP script (pygen)."""

from .writer import PyWriter
from .program import emit_python_program

__all__ = ["PyWriter", "emit_python_program"]
