"""Tile-dependency analysis (paper Section IV-F).

A template vector ``r`` makes the cell ``x`` read ``x + r``, which may lie
in a neighbouring tile.  With ``x_k = w_k t_k + i_k`` and
``i_k in [0, w_k)``, the neighbour offset in dimension ``k`` is

    delta_k = floor((i_k + r_k) / w_k)
            in [ floor(r_k / w_k), floor((w_k - 1 + r_k) / w_k) ]

so each template contributes the integer box of those intervals, and a
tile ``t`` depends on every ``t + delta`` with ``delta != 0`` drawn from
the union over templates.  (The paper's example — template <1,1> causing
dependencies on t+<1,0>, t+<1,1> and t+<0,1> — is exactly this box.)
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Tuple

from ..spec import ProblemSpec

Delta = Tuple[int, ...]


def template_delta_box(
    vector: Tuple[int, ...], widths: Tuple[int, ...]
) -> List[Delta]:
    """All tile offsets a single template vector can cross into.

    Includes the zero offset when the dependency can stay inside the
    tile; callers filter it out where appropriate.
    """
    ranges = []
    for r, w in zip(vector, widths):
        lo = r // w                 # floor
        hi = (w - 1 + r) // w       # floor
        ranges.append(range(lo, hi + 1))
    return [tuple(c) for c in itertools.product(*ranges)]


def tile_dependency_map(spec: ProblemSpec) -> Dict[Delta, Tuple[str, ...]]:
    """Map each nonzero tile offset to the templates that can cross it.

    The keys are the paper's "list of all tile dependencies": the edges
    that need packing/unpacking functions.  Deterministically ordered.
    """
    widths = spec.tile_width_vector()
    out: Dict[Delta, List[str]] = {}
    for name, vec in spec.templates.items():
        for delta in template_delta_box(vec, widths):
            if all(c == 0 for c in delta):
                continue
            out.setdefault(delta, []).append(name)
    return {d: tuple(names) for d, names in sorted(out.items())}


def dependency_deltas(spec: ProblemSpec) -> Tuple[Delta, ...]:
    """The nonzero tile offsets, deterministically ordered."""
    return tuple(tile_dependency_map(spec).keys())


def producers_of(tile: Tuple[int, ...], deltas) -> List[Tuple[int, ...]]:
    """Tiles that *tile* reads from (must complete first): ``t + delta``."""
    return [tuple(t + d for t, d in zip(tile, delta)) for delta in deltas]


def consumers_of(tile: Tuple[int, ...], deltas) -> List[Tuple[int, ...]]:
    """Tiles that read from *tile*: ``t - delta``."""
    return [tuple(t - d for t, d in zip(tile, delta)) for delta in deltas]


def delta_between(consumer: Tuple[int, ...], producer: Tuple[int, ...]) -> Delta:
    """The offset such that ``producer == consumer + delta``."""
    return tuple(p - c for c, p in zip(consumer, producer))
