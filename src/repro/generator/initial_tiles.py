"""Initial-tile discovery (paper Section IV-K).

The runtime must seed its work queue with every tile whose dependencies
are *all* unsatisfiable — tiles ``t`` such that for every dependency
offset ``delta``, the tile ``t + delta`` is invalid.  The paper finds
them by examining the corners/faces/edges of the tile space where the
dependencies exit the space, generating one specialized scan per
combination of violated inequalities; the scans are cheap because the
regions are lower-dimensional.

We implement both that face-scan strategy and an exhaustive oracle (scan
every valid tile and test its producers).  Tests assert they agree; the
face scan is the default because it is the paper's method and typically
inspects far fewer tiles.

A producer tile is "invalid" when it contains no iteration-space point —
either it violates the (FM-projected) tile space or its local space is
empty (a rational-shadow tile).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Mapping, Set, Tuple

from ..errors import GenerationError
from ..polyhedra import Constraint, ConstraintSystem, synthesize_loop_nest
from ..spec import ProblemSpec
from .spaces import IterationSpaces, TileIndex
from .tile_deps import Delta, dependency_deltas

#: Safety valve: beyond this many violated-constraint combinations the
#: face scan falls back to the exhaustive method.
MAX_COMBINATIONS = 4096


def initial_tiles_exhaustive(
    spaces: IterationSpaces, params: Mapping[str, int]
) -> Set[TileIndex]:
    """Oracle: scan all valid tiles, keep those with no valid producer."""
    deltas = dependency_deltas(spaces.spec)
    valid = set(spaces.tiles(params))
    out: Set[TileIndex] = set()
    for tile in valid:
        producers = (
            tuple(t + d for t, d in zip(tile, delta)) for delta in deltas
        )
        if all(p not in valid for p in producers):
            out.add(tile)
    return out


def initial_tiles_face_scan(
    spaces: IterationSpaces, params: Mapping[str, int]
) -> Set[TileIndex]:
    """The paper's method: specialized scans of boundary regions.

    For each dependency offset ``delta``, a valid tile ``t`` has
    ``t + delta`` outside the tile space only if some inequality whose
    value *decreases* under the shift is violated at ``t + delta``.  We
    enumerate, per delta, those candidate inequalities; every choice of
    one violated inequality per delta yields a specialized system

        tile_space  AND  (for each delta) c_delta(t + delta) <= -1

    whose integer points are scanned.  The union over all choices —
    deduplicated — is the initial set.  Tiles whose producer lies inside
    the projected tile space but has an empty local space (rational
    shadows) are handled by a final per-tile confirmation pass.
    """
    spec = spaces.spec
    deltas = dependency_deltas(spec)
    tile_space = spaces.tile_space

    # Candidate violated inequalities per delta.
    candidates: List[List[Constraint]] = []
    for delta in deltas:
        offsets = {tv: d for tv, d in zip(spaces.tile_vars, delta)}
        per_delta: List[Constraint] = []
        for c in tile_space:
            if c.is_equality():
                continue
            drop = sum(c.coeff(tv) * d for tv, d in offsets.items())
            if drop < 0:
                # violated form: c(t + delta) <= -1  i.e. -c(t+delta) - 1 >= 0
                shifted = c.shifted(offsets)
                per_delta.append(Constraint(-shifted.expr - 1))
        if not per_delta:
            # This dependency can never exit the tile space through an
            # inequality; no tile can have *all* dependencies invalid via
            # pure face reasoning. Rational-shadow producers may still
            # make tiles initial, so fall back to the oracle.
            return initial_tiles_exhaustive(spaces, params)
        candidates.append(per_delta)

    n_combos = 1
    for per_delta in candidates:
        n_combos *= len(per_delta)
        if n_combos > MAX_COMBINATIONS:
            return initial_tiles_exhaustive(spaces, params)

    seen_systems: Set[FrozenSet[Constraint]] = set()
    found: Set[TileIndex] = set()
    for combo in itertools.product(*candidates):
        key = frozenset(combo)
        if key in seen_systems:
            continue
        seen_systems.add(key)
        # Conjoin the tuple, not the frozenset: set iteration order is
        # hash-randomized and would make the synthesized bound order
        # (and the emitted C) differ between runs.
        system = tile_space.and_also(combo)
        if system.is_trivially_empty():
            continue
        try:
            nest = synthesize_loop_nest(system, list(spaces.tile_vars))
        except Exception:
            # The specialized region is empty in a way FM surfaced as an
            # unbounded/contradictory system; skip it.
            continue
        for env in nest.iterate(dict(params)):
            found.add(tuple(env[tv] for tv in spaces.tile_vars))

    # Confirmation pass: drop non-tiles (empty local space) and tiles that
    # still have a valid producer (possible when the chosen inequality is
    # violated but another producer stays inside), and add tiles whose
    # producers are rational shadows.
    out: Set[TileIndex] = set()
    for tile in found:
        if spaces.tile_is_empty(tile, params):
            continue
        if _all_producers_invalid(spaces, tile, deltas, params):
            out.add(tile)
    return out


def _all_producers_invalid(
    spaces: IterationSpaces,
    tile: TileIndex,
    deltas: Tuple[Delta, ...],
    params: Mapping[str, int],
) -> bool:
    for delta in deltas:
        producer = tuple(t + d for t, d in zip(tile, delta))
        if spaces.tile_is_valid(producer, params):
            return False
    return True


def initial_tiles(
    spaces: IterationSpaces,
    params: Mapping[str, int],
    method: str = "face-scan",
) -> Set[TileIndex]:
    """Public entry point; *method* is ``'face-scan'`` or ``'exhaustive'``."""
    if method == "face-scan":
        return initial_tiles_face_scan(spaces, params)
    if method == "exhaustive":
        return initial_tiles_exhaustive(spaces, params)
    raise GenerationError(f"unknown initial-tile method {method!r}")
