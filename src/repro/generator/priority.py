"""Tile execution priorities (paper Section V-B, Figures 4 and 5).

Eligible tiles wait in a priority queue; the priority controls the peak
amount of buffered edge data.  Three schemes are provided:

``column-major``
    Figure 4(a): strict lexicographic order along the scan directions.
    Peak buffered edges in a 2-D n x n tiling: n + 1.

``level-set``
    Figure 4(b): wavefront order (sum of progress along every
    dimension).  Maximizes parallelism; peak edges 2(n - 1) in 2-D and
    up to ~d times the column-major peak in d dimensions.

``lb-first``
    Figure 5, the scheme the generated code uses: the load-balancing
    dimensions are the most significant keys and — crucially — ordered
    *downstream-first*: among ready tiles, the one whose completion most
    quickly feeds the next node in the pipeline wins ("leading to tiles
    that cause communication to execute more quickly", Section V-B).
    The remaining dimensions keep column-major order for memory control.
    Without the downstream-first ordering each node finishes its whole
    block before releasing its boundary, serializing the node pipeline —
    the FIG45/FIG7 ablation benchmarks quantify the difference.

``lb-last``
    Ablation variant: lb dimensions most significant but ordered
    *upstream-first* (plain column-major over the lb dims).  Exhibits
    the compounding starvation chain the paper's Section VI-C describes.

Priorities are ascending: *smaller* keys pop first.
"""

from __future__ import annotations

from typing import Callable, Mapping, Tuple

import numpy as np

from ..errors import GenerationError
from ..spec import DESCENDING, ProblemSpec

TileIndex = Tuple[int, ...]
PriorityFn = Callable[[TileIndex], tuple]

SCHEMES = ("column-major", "level-set", "lb-first", "lb-last")


def _progress_signs(spec: ProblemSpec) -> Tuple[int, ...]:
    """+1/-1 per dimension so that sign*t increases as execution advances."""
    directions = spec.scan_directions()
    return tuple(
        (-1 if directions[x] == DESCENDING else 1) for x in spec.loop_vars
    )


def make_priority(spec: ProblemSpec, scheme: str = "lb-first") -> PriorityFn:
    """Build a priority key function over tile indices for *spec*."""
    signs = _progress_signs(spec)
    if scheme == "column-major":

        def column_major(tile: TileIndex) -> tuple:
            return tuple(s * t for s, t in zip(signs, tile))

        return column_major

    if scheme == "level-set":

        def level_set(tile: TileIndex) -> tuple:
            adj = tuple(s * t for s, t in zip(signs, tile))
            return (sum(adj),) + adj

        return level_set

    if scheme in ("lb-first", "lb-last"):
        lb_positions = [spec.loop_vars.index(x) for x in spec.lb_dims]
        other_positions = [
            k for k in range(len(spec.loop_vars)) if k not in set(lb_positions)
        ]
        # lb-first: downstream tiles (largest execution progress along the
        # lb dims) pop first, so packed edges reach the neighbouring node
        # as early as the dependencies allow.  lb-last is the upstream-
        # first ablation.
        lb_sign = -1 if scheme == "lb-first" else 1

        def lb_priority(tile: TileIndex) -> tuple:
            key = tuple(lb_sign * signs[k] * tile[k] for k in lb_positions)
            return key + tuple(signs[k] * tile[k] for k in other_positions)

        return lb_priority

    raise GenerationError(
        f"unknown priority scheme {scheme!r}; choose one of {SCHEMES}"
    )


def make_priority_array(
    spec: ProblemSpec, scheme: str, tile_array: np.ndarray
) -> np.ndarray:
    """Vectorized twin of :func:`make_priority` over a ``(T, d)`` array.

    Row ``i`` of the result is exactly ``make_priority(spec, scheme)``
    applied to tile ``i`` — the array-native tile graph precomputes
    these keys once instead of calling the scalar closure per tile.
    """
    signs = np.asarray(_progress_signs(spec), dtype=np.int64)
    adj = tile_array * signs
    if scheme == "column-major":
        return adj
    if scheme == "level-set":
        return np.concatenate([adj.sum(axis=1, keepdims=True), adj], axis=1)
    if scheme in ("lb-first", "lb-last"):
        lb_positions = [spec.loop_vars.index(x) for x in spec.lb_dims]
        other_positions = [
            k for k in range(len(spec.loop_vars)) if k not in set(lb_positions)
        ]
        lb_sign = -1 if scheme == "lb-first" else 1
        return np.concatenate(
            [lb_sign * adj[:, lb_positions], adj[:, other_positions]], axis=1
        )
    raise GenerationError(
        f"unknown priority scheme {scheme!r}; choose one of {SCHEMES}"
    )
