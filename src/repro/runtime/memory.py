"""Edge-buffer memory accounting (paper Section V-B, Figure 4).

The runtime buffers a finished tile's packed edges until every consumer
has executed.  The execution priority determines how long edges live:
column-major order keeps ~n+1 edges alive in a 2-D n x n tiling while
level-set order keeps ~2(n-1), and in d dimensions the gap approaches a
factor of d.  This tracker measures exactly that: live packed cells and
their peak, which the FIG45 benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import RuntimeExecutionError

Edge = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass
class EdgeMemoryTracker:
    """Tracks live packed-edge buffers in cells (state-array elements).

    *rank* identifies the owning rank in error messages (None for the
    aggregate tracker that spans all ranks).  Protocol violations —
    packing the same edge twice, consuming an edge twice or before it
    was ever buffered — raise :class:`RuntimeExecutionError` naming the
    edge and rank, like every other runtime failure.
    """

    live_cells: int = 0
    live_edges: int = 0
    peak_cells: int = 0
    peak_edges: int = 0
    total_packed_cells: int = 0
    total_edges: int = 0
    rank: Optional[int] = None
    _sizes: Dict[Edge, int] = field(default_factory=dict)

    def _where(self) -> str:
        return "" if self.rank is None else f" on rank {self.rank}"

    def add_edge(self, edge: Edge, cells: int) -> None:
        if edge in self._sizes:
            raise RuntimeExecutionError(
                f"edge {edge} buffered twice{self._where()}"
            )
        self._sizes[edge] = cells
        self.live_cells += cells
        self.live_edges += 1
        self.total_packed_cells += cells
        self.total_edges += 1
        self.peak_cells = max(self.peak_cells, self.live_cells)
        self.peak_edges = max(self.peak_edges, self.live_edges)

    def remove_edge(self, edge: Edge) -> int:
        cells = self._sizes.pop(edge, None)
        if cells is None:
            raise RuntimeExecutionError(
                f"edge {edge} consumed twice or never buffered{self._where()}"
            )
        self.live_cells -= cells
        self.live_edges -= 1
        return cells

    def live_edge_keys(self) -> Tuple[Edge, ...]:
        """The currently buffered edges, in insertion (buffering) order.

        An export hook for the trace sanitizer: edges still live once
        every tile finished were packed but never consumed, and the
        keys name exactly which.
        """
        return tuple(self._sizes)

    def snapshot(self) -> Dict[str, int]:
        return {
            "live_cells": self.live_cells,
            "live_edges": self.live_edges,
            "peak_cells": self.peak_cells,
            "peak_edges": self.peak_edges,
            "total_packed_cells": self.total_packed_cells,
            "total_edges": self.total_edges,
        }

    @staticmethod
    def merge_snapshots(snapshots: Sequence[Dict[str, int]]) -> Dict[str, int]:
        """Field-wise sum of per-rank snapshots into one aggregate.

        Totals (``total_packed_cells``, ``total_edges``) sum exactly.
        The summed ``peak_*`` fields are an *upper bound* on any
        simultaneous aggregate peak: per-rank peaks need not coincide in
        time, and in a process-parallel run (where each rank's tracker
        lives in its own worker) no global interleaving exists to
        measure the true aggregate peak against.
        """
        merged = {
            "live_cells": 0,
            "live_edges": 0,
            "peak_cells": 0,
            "peak_edges": 0,
            "total_packed_cells": 0,
            "total_edges": 0,
        }
        for snap in snapshots:
            for key in merged:
                merged[key] += snap.get(key, 0)
        return merged
