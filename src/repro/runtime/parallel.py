"""Process-parallel SPMD backend: one OS worker per rank, for real.

The inline harness (:mod:`repro.runtime.spmd`) validates the full MPI
protocol but interleaves ranks cooperatively in one thread, so
``ranks=4`` costs *more* wall-clock than ``ranks=1``.  This module runs
the same protocol across real ``multiprocessing`` workers:

* **Workers fork, artifacts are inherited.**  The parent resolves the
  engine, builds the tile graph, the rank assignment and every compiled
  artifact *before* forking, so each worker shares them copy-on-write —
  no pickling of programs, kernels or CSR arrays.  Each worker drives
  its own :class:`~repro.runtime.scheduler.TileScheduler` (wavefront-
  batched when the engine supports it, exactly like PR 5's fused path)
  restricted to its rank's tiles.

* **Ghost arrays live in ``multiprocessing.shared_memory``.**  The
  parent creates one segment per cross-rank ``(src, dst)`` channel —
  a flat float64 slab with a statically precomputed slot per cross-rank
  edge — plus one per-rank ghost-array arena sized for the rank's
  widest wavefront level, which the worker's
  :class:`~repro.runtime.fastpath.WavefrontRun` evaluates batches into
  directly (``arena=``).  All segments are created and unlinked by the
  parent under a ``finally`` guard, so repeated runs never leak
  ``/dev/shm`` entries even on worker crashes or KeyboardInterrupt.

* **Cross-rank edges travel through real queues.**  Each ``(src, dst)``
  channel is a one-way ``multiprocessing.Pipe``: the producer packs the
  edge into its shared-memory slot and posts a tiny
  ``(producer_row, consumer_row, cells)`` descriptor; the consumer
  drains its inbound channels in ascending source order at the top of
  every scheduling turn, copies the payload out of the slab, and only
  then decrements the pending counter — the same send/recv/pending
  discipline as the inline harness and the generated C's MPI protocol.
  Payloads never cross the pipe; pipe writes double as the
  happens-before barrier for the slab writes.

* **A dead or stalled worker cannot hang the parent.**  The parent
  multiplexes result pipes with every worker's ``sentinel``; a worker
  that exits without reporting raises a
  :class:`~repro.errors.RuntimeExecutionError` naming the rank, a
  worker that makes no progress for *timeout* seconds aborts itself,
  and the parent enforces an overall deadline.  Every exit path
  terminates stragglers and unlinks the segments.

The inline harness stays the deterministic oracle: objective values,
recorded cells and cross-rank message counts are pinned identical
between ``backend="inline"`` and ``backend="process"`` in
tests/test_parallel.py.  Two documented deviations from the inline
result shape: ``tile_order`` is the per-rank execution orders
concatenated in rank order (a real parallel run has no global
interleaving), and the aggregate ``memory`` snapshot is the field-wise
sum of the per-rank trackers (an upper bound — per-rank peaks need not
coincide).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..spec import Kernel
from .executor import ExecutionResult, compiled_executor
from .fastpath import WavefrontRun
from .graph import TileGraph, TileIndex, tile_graph
from .memory import EdgeMemoryTracker
from .scheduler import TileScheduler, TransitionEvent
from .spmd import spmd_rank_assignment, validate_rank_of

__all__ = ["run_spmd_process", "cross_edge_slots", "arena_capacities"]

#: Environment variable naming the worker's rank inside worker
#: processes — set before any tile executes, so kernels and tests can
#: observe (or sabotage) a specific rank.
RANK_ENV_VAR = "REPRO_SPMD_RANK"

#: Default no-progress / overall deadline in seconds.
DEFAULT_TIMEOUT = 300.0

#: How long an idle worker blocks on its inbound channels per turn.
_POLL_S = 0.05


def cross_edge_slots(graph: TileGraph, rank_of: np.ndarray):
    """Static slot layout of every cross-rank edge.

    Each cross-rank edge gets a fixed ``[offset, offset + capacity)``
    float64 slot in its ``(src, dst)`` channel slab, assigned by a
    prefix sum in edge order (each edge is packed exactly once per run,
    so slots are single-use and need no synchronization beyond the
    descriptor message).  Returns ``(channel_cells, slots)`` where
    ``channel_cells[(src, dst)]`` is the slab size in cells and
    ``slots[(producer_row, consumer_row)]`` is
    ``(src, dst, offset, capacity)``.

    Public because the static concurrency analyzer
    (:mod:`repro.analysis.concurrency`) audits exactly this layout for
    slot aliasing and unmatched send/recv pairs.
    """
    counts = np.diff(graph.cons_ptr)
    owner = np.repeat(np.arange(counts.size), counts)
    src = rank_of[owner]
    dst = rank_of[graph.cons_rows]
    cross = np.flatnonzero(src != dst)
    channel_cells: Dict[Tuple[int, int], int] = {}
    slots: Dict[Tuple[int, int], Tuple[int, int, int, int]] = {}
    cons_rows = graph.cons_rows
    cons_cells = graph.cons_cells
    for e in cross.tolist():
        key = (int(src[e]), int(dst[e]))
        offset = channel_cells.get(key, 0)
        capacity = int(cons_cells[e])
        slots[(int(owner[e]), int(cons_rows[e]))] = (
            key[0], key[1], offset, capacity
        )
        channel_cells[key] = offset + capacity
    return channel_cells, slots


def arena_capacities(
    graph: TileGraph,
    rank_of: np.ndarray,
    ranks: int,
    resolved: str = "wavefront",
) -> List[int]:
    """Per-rank ghost-arena plane counts for the process backend.

    A wavefront worker evaluates whole fronts into its arena, so the
    arena needs one padded plane per tile of the rank's *widest* static
    wavefront level — fewer planes means two tiles of one batch would
    alias the same plane (a write-write overlap the static analyzer
    flags as ``RPR052``).  Per-tile engines reuse a single scratch
    plane; a rank that owns no tiles needs none.
    """
    rank_arr = np.asarray(rank_of, dtype=np.int64)
    caps: List[int] = []
    if resolved == "wavefront":
        levels = graph.wavefront_levels()
        for r in range(ranks):
            mine = levels[rank_arr == r]
            caps.append(int(np.bincount(mine).max()) if mine.size else 0)
    else:
        for r in range(ranks):
            caps.append(1 if int((rank_arr == r).sum()) else 0)
    return caps


class _SegmentPool:
    """Parent-owned shared-memory segments, released on every exit path.

    ``allocate`` hands out numpy views over fresh segments;
    ``release`` closes and unlinks them all.  ``unlink`` always runs —
    even when a lingering view keeps the parent-side mapping alive
    (``BufferError`` on close) the name is removed from ``/dev/shm``,
    so nothing leaks across runs; the resource tracker backstops a
    hard-killed parent.
    """

    def __init__(self):
        self._segments: List[shared_memory.SharedMemory] = []

    def allocate(self, shape: Tuple[int, ...]) -> np.ndarray:
        size = max(8, int(np.prod(shape)) * 8)
        seg = shared_memory.SharedMemory(create=True, size=size)
        self._segments.append(seg)
        return np.ndarray(shape, dtype=np.float64, buffer=seg.buf)

    def release(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []


@dataclass
class _WorkerContext:
    """Everything one worker needs, inherited through fork (no pickling)."""

    program: GeneratedProgram
    graph: TileGraph
    params: Dict[str, int]
    ranks: int
    rank_of: List[int]
    resolved: str
    kernel: Optional[Kernel]
    priority_scheme: str
    record_values: bool
    record_events: bool
    keep_edges: bool
    slots: Dict[Tuple[int, int], Tuple[int, int, int, int]]
    channel_views: Dict[Tuple[int, int], np.ndarray]
    in_conns: Dict[int, mp_connection.Connection]
    out_conns: Dict[int, mp_connection.Connection]
    result_conn: mp_connection.Connection
    arena: Optional[np.ndarray]
    timeout: float
    parent_pid: int
    #: Messages this worker must receive per source rank (static, from
    #: the slot layout); a channel hitting EOF while still owed messages
    #: means the peer died mid-protocol — abort immediately instead of
    #: starving until *timeout*.
    expected_in: Dict[int, int]
    recv_counts: Dict[int, int]
    #: Other ranks' channel-pipe ends, inherited at fork.  The worker
    #: closes them on entry: a descriptor pipe must be held open only
    #: by its owning endpoints, or the reader never sees EOF when its
    #: peer dies and the fast-abort above can't fire.
    foreign_conns: Tuple[mp_connection.Connection, ...] = ()
    #: Schedule policy every worker builds its scheduler with.  All
    #: ranks must agree: the policy decides when tiles leave the ready
    #: set, and the cross-rank send/recv protocol stays FIFO-identical
    #: only when both endpoints run the same policy.
    schedule: str = "dynamic"


def _post_edge(ctx: _WorkerContext, row: int, consumer: int,
               buffer: np.ndarray) -> None:
    """Producer side of one cross-rank send: slab write, then descriptor."""
    src, dst, offset, capacity = ctx.slots[(row, consumer)]
    n = len(buffer)
    if n > capacity:
        raise RuntimeExecutionError(
            f"packed edge {(row, consumer)} holds {n} cells but its "
            f"shared-memory slot caps at {capacity}"
        )
    ctx.channel_views[(src, dst)][offset:offset + n] = buffer
    ctx.out_conns[dst].send((row, consumer, n))


def _drain_inbox(ctx: _WorkerContext, sched: TileScheduler) -> bool:
    """Receive every queued descriptor addressed to this worker.

    Channels drain in ascending source rank, FIFO within a channel —
    the inline harness's recv order.  Receiving copies the payload out
    of the shared slab, registers the buffer with the scheduler
    (charging this rank's tracker, counting the cross-rank message) and
    only then delivers the pending decrement, mirroring the generated
    C's recv-then-account discipline.
    """
    received = False
    for src in sorted(ctx.in_conns):
        conn = ctx.in_conns[src]
        while conn.poll():
            try:
                row, consumer, n = conn.recv()
            except EOFError:
                # The channel is drained *and* closed: the peer exited.
                # A finished peer owes nothing; one that still owes
                # messages died mid-protocol, so fail fast (naming the
                # peer) instead of starving until the timeout.
                del ctx.in_conns[src]
                owed = ctx.expected_in[src] - ctx.recv_counts[src]
                if owed > 0:
                    raise RuntimeExecutionError(
                        f"peer rank {src} closed its channel with {owed} "
                        "of its messages undelivered"
                    )
                break
            ctx.recv_counts[src] += 1
            s, d, offset, _ = ctx.slots[(row, consumer)]
            buffer = np.array(ctx.channel_views[(s, d)][offset:offset + n])
            sched.send_edge(row, consumer, buffer, n)
            sched.deliver_edge(consumer)
            received = True
    return received


def _idle_wait(ctx: _WorkerContext, rank: int, last_progress: float) -> None:
    """Block until a message may have arrived; abort on starvation."""
    if time.monotonic() - last_progress > ctx.timeout:
        raise RuntimeExecutionError(
            f"rank {rank} starved: no ready tiles and no inbound edges "
            f"for {ctx.timeout:.0f}s"
        )
    if os.getppid() != ctx.parent_pid:
        raise RuntimeExecutionError(
            f"rank {rank}: parent process exited; aborting"
        )
    conns = list(ctx.in_conns.values())
    if conns:
        mp_connection.wait(conns, timeout=_POLL_S)
    else:
        time.sleep(_POLL_S)


def _seed_rank(sched: TileScheduler, graph: TileGraph, rank: int) -> None:
    """Make this rank's zero-dependency tiles ready (other ranks' tiles
    execute in other processes and must not pollute this worker's
    buckets or event trace)."""
    rank_of = sched.rank_of
    for row in graph.initial_rows().tolist():
        if rank_of[row] == rank:
            sched.make_ready(row)


def _worker_run(
    rank: int,
    ctx: _WorkerContext,
    trace_out: Optional[List[Optional[List[TransitionEvent]]]] = None,
) -> Dict[str, object]:
    """One rank's whole run; returns the per-rank result payload.

    *trace_out*, when given, receives the scheduler's (live) event list
    as soon as the scheduler exists, so a failing worker can still ship
    the partial trace it recorded — the sanitizer's killed-worker
    classification depends on it.
    """
    program = ctx.program
    graph = ctx.graph
    params = ctx.params
    ce = compiled_executor(program)
    spaces = program.spaces
    layout = program.layout
    local_vars = spaces.local_vars
    deltas = program.deltas
    pack_plans = program.pack_plans
    tile_tuples = graph.tile_tuples
    wavefront = ctx.resolved == "wavefront"

    sched = TileScheduler(
        graph,
        ranks=ctx.ranks,
        rank_of=ctx.rank_of,
        priority_scheme=ctx.priority_scheme,
        record_events=ctx.record_events,
        batch=wavefront,
        schedule=ctx.schedule,
    )
    if trace_out is not None:
        trace_out.append(sched.events)
    _seed_rank(sched, graph, rank)
    my_total = sum(1 for r in ctx.rank_of if r == rank)
    tile_order: List[TileIndex] = []

    state = ce.make_run_state(
        params, None if wavefront else ctx.kernel, ctx.resolved,
        ctx.record_values,
    )
    run: Optional[WavefrontRun] = None
    if wavefront:
        run = WavefrontRun(
            ce.wavefront_engine, graph, params, rank_of=ctx.rank_of,
            values=state.values, arena=ctx.arena,
        )
        pptr = graph.prod_ptr.tolist()
        prows = graph.prod_rows.tolist()
    kept_edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = (
        {} if ctx.keep_edges else None
    )
    scratch = ctx.arena[0] if (not wavefront and ctx.arena is not None) else None

    last_progress = time.monotonic()
    while sched.finished_per_rank[rank] < my_total:
        progress = _drain_inbox(ctx, sched)

        if wavefront:
            rows = sched.start_batch(rank)
            if rows:
                progress = True
                packed: Dict[Tuple[int, int], np.ndarray] = {}
                for row in rows:
                    for e in range(pptr[row], pptr[row + 1]):
                        p = prows[e]
                        if ctx.rank_of[p] != rank:
                            packed[(p, row)] = sched.take_edge(p, row)
                batch = run.execute_batch(rows, packed=packed)
                for b, row in enumerate(rows):
                    tile = tile_tuples[row]
                    tile_order.append(tile)
                    state.note_objective(tile, batch[b])
                    tile_env: Optional[Dict[str, int]] = None
                    for consumer, delta_id, _, dest in sched.outgoing(row):
                        if dest == rank:
                            sched.deliver_edge(consumer)
                        else:
                            if tile_env is None:
                                tile_env = dict(params)
                                tile_env.update(spaces.tile_env(tile))
                            plan = pack_plans[deltas[delta_id]]
                            buffer = plan.pack(
                                tile_env, batch[b], layout, local_vars
                            )
                            _post_edge(ctx, row, consumer, buffer)
                    sched.finish_tile(row)
        else:
            row = sched.start_tile(rank)
            if row is not None:
                progress = True
                tile = tile_tuples[row]
                tile_order.append(tile)
                if scratch is not None:
                    array = scratch
                    array.fill(np.nan)
                else:
                    array = np.full(
                        layout.padded_shape, np.nan, dtype=np.float64
                    )
                for producer, delta_id, buffer in sched.consume_edges(row):
                    plan = pack_plans[deltas[delta_id]]
                    env = dict(params)
                    env.update(spaces.tile_env(tile_tuples[producer]))
                    plan.unpack(env, buffer, array, layout, local_vars)
                state.execute_tile(tile, array)
                tile_env = dict(params)
                tile_env.update(spaces.tile_env(tile))
                for consumer, delta_id, _, dest in sched.outgoing(row):
                    plan = pack_plans[deltas[delta_id]]
                    buffer = plan.pack(tile_env, array, layout, local_vars)
                    if kept_edges is not None:
                        kept_edges[(tile, tile_tuples[consumer])] = (
                            buffer.copy()
                        )
                    if dest == rank:
                        sched.send_edge(row, consumer, buffer, len(buffer))
                        sched.deliver_edge(consumer)
                    else:
                        _post_edge(ctx, row, consumer, buffer)
                sched.finish_tile(row)

        if progress:
            last_progress = time.monotonic()
        else:
            _idle_wait(ctx, rank, last_progress)

    sched.verify_rank_drained(rank)
    if wavefront:
        run.verify_drained()
        state.cells_computed = run.cells
    return {
        "objective_value": state.objective_value,
        "cells": state.cells_computed,
        "tiles": sched.finished_per_rank[rank],
        "tile_order": tile_order,
        "memory": sched.trackers[rank].snapshot(),
        "cross_rank_messages": sched.cross_rank_messages,
        "cross_rank_cells": sched.cross_rank_cells,
        "values": state.values,
        "events": sched.events,
        "edges": kept_edges,
    }


def _worker_main(rank: int, ctx: _WorkerContext) -> None:
    """Worker process entry point: run, then report exactly once.

    An error report carries the partial transition trace recorded so
    far (when ``record_events`` is on): the parent re-exports it as
    ``partial_events`` on the raised error so the trace sanitizer can
    classify a truncated run.
    """
    os.environ[RANK_ENV_VAR] = str(rank)
    for conn in ctx.foreign_conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    trace_out: List[Optional[List[TransitionEvent]]] = []
    try:
        payload = _worker_run(rank, ctx, trace_out)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        events = trace_out[0] if trace_out else None
        try:
            ctx.result_conn.send(
                ("error", rank,
                 {"message": f"{type(exc).__name__}: {exc}",
                  "events": events})
            )
        except Exception:  # pragma: no cover - parent already gone
            pass
        raise SystemExit(1)
    ctx.result_conn.send(("ok", rank, payload))
    ctx.result_conn.close()


#: How long the parent keeps draining surviving workers' reports after
#: the first failure, so partial traces reach ``partial_events``.
_FAILURE_GRACE_S = 1.5


def _collect_results(
    procs: Dict[int, multiprocessing.Process],
    result_conns: Dict[int, mp_connection.Connection],
    timeout: float,
) -> Dict[int, Dict[str, object]]:
    """Wait for every worker's payload without ever hanging.

    Multiplexes the result pipes with the workers' process sentinels:
    a worker that dies without reporting (crash, ``SIGKILL``) raises a
    :class:`RuntimeExecutionError` naming the rank, and an overall
    deadline bounds stalls.  On any failure the parent briefly keeps
    draining the *other* workers' reports, then raises an error whose
    ``partial_events`` attribute maps each reporting rank to the
    transition events it managed to record (``record_events`` runs
    only) — the trace sanitizer uses it to classify truncated runs.
    A dead-without-report rank wins the blame over a worker that merely
    reported the death of its peer.
    """
    deadline = time.monotonic() + timeout
    results: Dict[int, Dict[str, object]] = {}
    errors: Dict[int, str] = {}
    partial_events: Dict[int, List[TransitionEvent]] = {}
    dead: Dict[int, Optional[int]] = {}
    pending = dict(result_conns)

    def drain_ready() -> None:
        for r in sorted(pending):
            conn = pending[r]
            got = False
            try:
                got = conn.poll()
            except (OSError, EOFError):  # pragma: no cover
                got = False
            if got:
                try:
                    status, _, payload = conn.recv()
                except EOFError:
                    # A pipe at EOF polls ready with nothing to read:
                    # the worker died without reporting.  Fall through
                    # to the death check below.
                    got = False
                else:
                    del pending[r]
                    if status == "error":
                        errors[r] = payload["message"]
                        if payload.get("events") is not None:
                            partial_events[r] = payload["events"]
                    else:
                        results[r] = payload
                        if payload.get("events") is not None:
                            partial_events[r] = payload["events"]
                    continue
            proc = procs[r]
            if not got and not proc.is_alive():
                del pending[r]
                dead[r] = proc.exitcode

    def fail(message: str) -> "RuntimeExecutionError":
        grace_deadline = time.monotonic() + _FAILURE_GRACE_S
        while pending and time.monotonic() < grace_deadline:
            mp_connection.wait(
                list(pending.values())
                + [procs[r].sentinel for r in pending],
                timeout=0.05,
            )
            drain_ready()
        if dead:
            r = min(dead)
            message = (
                f"SPMD worker for rank {r} died (exit code {dead[r]}) "
                "before completing its tiles"
            )
        elif errors:
            # A worker that merely observed its peer's death (channel
            # EOF, broken descriptor pipe) is a symptom; blame the rank
            # whose failure is its own.
            def symptom(msg: str) -> bool:
                return "peer rank" in msg or "BrokenPipeError" in msg

            own = [r for r in sorted(errors) if not symptom(errors[r])]
            r = own[0] if own else min(errors)
            message = f"SPMD worker for rank {r} failed: {errors[r]}"
        err = RuntimeExecutionError(message)
        err.partial_events = dict(partial_events)
        return err

    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise fail(
                f"SPMD process backend timed out after {timeout:.0f}s "
                f"waiting for ranks {sorted(pending)}"
            )
        waitables = list(pending.values()) + [
            procs[r].sentinel for r in pending
        ]
        mp_connection.wait(waitables, timeout=min(remaining, 1.0))
        drain_ready()
        if dead or errors:
            raise fail("")
    if dead or errors:  # pragma: no cover - raised inside the loop
        raise fail("")
    return results


def run_spmd_process(
    program: GeneratedProgram,
    params: Mapping[str, int],
    ranks: int,
    kernel: Optional[Kernel] = None,
    priority_scheme: str = "lb-first",
    record_values: bool = False,
    graph: Optional[TileGraph] = None,
    keep_edges: bool = False,
    mode: str = "auto",
    lb_method: str = "dimension-cut",
    record_events: bool = False,
    rank_of: Optional[np.ndarray] = None,
    timeout: float = DEFAULT_TIMEOUT,
    schedule: str = "dynamic",
) -> ExecutionResult:
    """Execute across *ranks* real worker processes over shared memory.

    Same signature surface as :func:`repro.runtime.spmd.run_spmd` plus
    *timeout*, the no-progress/overall deadline in seconds.  Objective
    values, recorded cells and cross-rank message counts are identical
    to the inline backend (and therefore to ``ranks=1``); see the
    module docstring for the two result-shape deviations
    (``tile_order`` grouping and aggregate ``memory``).
    """
    if ranks < 1:
        raise RuntimeExecutionError(f"rank count must be >= 1, got {ranks}")
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeExecutionError(
            "the process SPMD backend needs the POSIX 'fork' start "
            "method (workers inherit the compiled program copy-on-"
            "write); use backend='inline' on this platform"
        )
    mp_ctx = multiprocessing.get_context("fork")

    ce = compiled_executor(program)
    resolved = ce.resolve_mode(mode, kernel, keep_edges)
    params = dict(params)
    if graph is None:
        graph = tile_graph(program, params)
    if rank_of is None:
        rank_of = spmd_rank_assignment(
            program, params, graph, ranks, lb_method=lb_method
        )
    else:
        rank_of = validate_rank_of(rank_of, graph, ranks)
    rank_list = [int(r) for r in rank_of]

    # Touch every shared compiled artifact *before* forking so workers
    # inherit it copy-on-write instead of re-deriving it P times.
    graph.tile_tuples
    if schedule == "static":
        # The static policy derives its level barriers from these in
        # every worker's scheduler.
        graph.wavefront_levels()
        graph.dependency_count_array()
    if resolved == "wavefront":
        ce.wavefront_engine
        graph.wavefront_levels()
    else:
        if schedule == "dynamic":
            graph.priority_tuples(priority_scheme)
        if resolved == "vector":
            ce.vector_engine

    channel_cells, slots = cross_edge_slots(graph, rank_of)
    padded_shape = tuple(program.layout.padded_shape)
    caps = arena_capacities(graph, rank_of, ranks, resolved)
    expected_in_all: Dict[int, Dict[int, int]] = {r: {} for r in range(ranks)}
    for (src, dst) in channel_cells:
        expected_in_all[dst][src] = 0
    for (src, dst, _offset, _cap) in slots.values():
        expected_in_all[dst][src] += 1

    pool = _SegmentPool()
    procs: Dict[int, multiprocessing.Process] = {}
    parent_conns: List[mp_connection.Connection] = []
    try:
        channel_views = {
            key: pool.allocate((cells,))
            for key, cells in channel_cells.items()
        }
        # One descriptor pipe per (src, dst) channel, one result pipe
        # per worker.
        in_conns: Dict[int, Dict[int, mp_connection.Connection]] = {
            r: {} for r in range(ranks)
        }
        out_conns: Dict[int, Dict[int, mp_connection.Connection]] = {
            r: {} for r in range(ranks)
        }
        for (src, dst) in channel_cells:
            recv_end, send_end = mp_ctx.Pipe(duplex=False)
            in_conns[dst][src] = recv_end
            out_conns[src][dst] = send_end
            parent_conns.extend((recv_end, send_end))
        result_conns: Dict[int, mp_connection.Connection] = {}
        for r in range(ranks):
            recv_end, send_end = mp_ctx.Pipe(duplex=False)
            result_conns[r] = recv_end

            cap = caps[r]
            arena = pool.allocate((cap,) + padded_shape) if cap else None

            ctx = _WorkerContext(
                program=program,
                graph=graph,
                params=params,
                ranks=ranks,
                rank_of=rank_list,
                resolved=resolved,
                kernel=kernel,
                priority_scheme=priority_scheme,
                record_values=record_values,
                record_events=record_events,
                keep_edges=keep_edges,
                slots=slots,
                channel_views=channel_views,
                in_conns=in_conns[r],
                out_conns=out_conns[r],
                result_conn=send_end,
                arena=arena,
                timeout=timeout,
                parent_pid=os.getpid(),
                expected_in=expected_in_all[r],
                recv_counts={src: 0 for src in expected_in_all[r]},
                schedule=schedule,
                foreign_conns=tuple(
                    conn
                    for conn in parent_conns
                    if conn not in in_conns[r].values()
                    and conn not in out_conns[r].values()
                ),
            )
            proc = mp_ctx.Process(
                target=_worker_main, args=(r, ctx),
                name=f"repro-spmd-rank{r}", daemon=True,
            )
            proc.start()
            procs[r] = proc
            # The worker inherited its send end at fork; the parent's
            # copy would keep the pipe writable forever.
            send_end.close()

        # Every worker inherited its channel ends at fork; the parent's
        # copies would keep each descriptor pipe open even after its
        # writer dies, hiding the EOF the survivors' fast-abort needs.
        for conn in parent_conns:
            conn.close()

        payloads = _collect_results(procs, result_conns, timeout)
        parent_conns.extend(result_conns.values())
        for proc in procs.values():
            proc.join(timeout=10.0)
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate refused
                proc.kill()
                proc.join(timeout=5.0)
        for conn in parent_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        pool.release()

    return _merge_payloads(
        program, params, graph, ranks, resolved, payloads,
        record_values, record_events, keep_edges, len(slots),
        schedule=schedule,
    )


def _merge_payloads(
    program: GeneratedProgram,
    params: Dict[str, int],
    graph: TileGraph,
    ranks: int,
    resolved: str,
    payloads: Dict[int, Dict[str, object]],
    record_values: bool,
    record_events: bool,
    keep_edges: bool,
    n_cross_edges: int,
    schedule: str = "dynamic",
) -> ExecutionResult:
    """Fold per-rank payloads into one :class:`ExecutionResult`."""
    cells = sum(p["cells"] for p in payloads.values())
    if cells != graph.total_work():
        raise RuntimeExecutionError(
            f"workers computed {cells} cells but the graph holds "
            f"{graph.total_work()} points"
        )
    messages = sum(p["cross_rank_messages"] for p in payloads.values())
    if messages != n_cross_edges:
        raise RuntimeExecutionError(
            f"{messages} cross-rank messages were received but the "
            f"rank assignment cuts {n_cross_edges} edges"
        )

    objective_value: Optional[float] = None
    for r in sorted(payloads):
        v = payloads[r]["objective_value"]
        if v is not None:
            objective_value = v
            break

    tile_order: List[TileIndex] = []
    for r in sorted(payloads):
        tile_order.extend(payloads[r]["tile_order"])

    values = None
    if record_values:
        values = {}
        for r in sorted(payloads):
            values.update(payloads[r]["values"])

    events = None
    if record_events:
        events = []
        for r in sorted(payloads):
            for e in payloads[r]["events"]:
                events.append(replace(e, seq=len(events)))

    edges = None
    if keep_edges:
        edges = {}
        for r in sorted(payloads):
            edges.update(payloads[r]["edges"])

    memory_per_rank = [payloads[r]["memory"] for r in sorted(payloads)]
    return ExecutionResult(
        objective_point=program.spec.objective(params),
        objective_value=objective_value,
        tiles_executed=sum(p["tiles"] for p in payloads.values()),
        cells_computed=cells,
        tile_order=tile_order,
        memory=EdgeMemoryTracker.merge_snapshots(memory_per_rank),
        values=values,
        edges=edges,
        mode=resolved,
        backend="process",
        ranks=ranks,
        memory_per_rank=memory_per_rank,
        tiles_per_rank=[payloads[r]["tiles"] for r in sorted(payloads)],
        cross_rank_messages=messages,
        cross_rank_cells=sum(
            p["cross_rank_cells"] for p in payloads.values()
        ),
        events=events,
        schedule=schedule,
        tile_widths=dict(program.spec.tile_widths),
    )
