"""In-process tiled runtime: the Python twin of the generated C program."""

from .graph import Edge, TileGraph, TileIndex
from .memory import EdgeMemoryTracker
from .executor import ExecutionResult, execute, solve_reference
from .recover import Policy, SolutionRecovery

__all__ = [
    "TileGraph",
    "TileIndex",
    "Edge",
    "EdgeMemoryTracker",
    "ExecutionResult",
    "execute",
    "solve_reference",
    "SolutionRecovery",
    "Policy",
]
