"""In-process tiled runtime: the Python twin of the generated C program."""

from .graph import Edge, TileGraph, TileIndex, build_tile_graph_dicts, tile_graph
from .memory import EdgeMemoryTracker
from .executor import (
    CompiledExecutor,
    ExecutionResult,
    compiled_executor,
    execute,
    solve_reference,
)
from .fastpath import VectorTileEngine, vector_unsupported_reason
from .recover import Policy, SolutionRecovery

__all__ = [
    "TileGraph",
    "TileIndex",
    "Edge",
    "tile_graph",
    "build_tile_graph_dicts",
    "EdgeMemoryTracker",
    "CompiledExecutor",
    "compiled_executor",
    "ExecutionResult",
    "execute",
    "solve_reference",
    "VectorTileEngine",
    "vector_unsupported_reason",
    "SolutionRecovery",
    "Policy",
]
