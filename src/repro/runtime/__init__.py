"""In-process tiled runtime: the Python twin of the generated C program."""

from .graph import Edge, TileGraph, TileIndex, build_tile_graph_dicts, tile_graph
from .memory import EdgeMemoryTracker
from .scheduler import (
    EVENT_KINDS,
    SCHEDULE_POLICIES,
    TRACE_SCHEMA_VERSION,
    DynamicHeapPolicy,
    SchedulePolicy,
    StaticWavefrontPolicy,
    TileScheduler,
    TransitionEvent,
    decode_events,
    encode_events,
    rank_of_rows,
)
from .executor import (
    CompiledExecutor,
    ExecutionResult,
    compiled_executor,
    execute,
    solve_reference,
)
from .fastpath import (
    VectorTileEngine,
    WavefrontEngine,
    WavefrontRun,
    vector_unsupported_reason,
)
from .spmd import SPMD_BACKENDS, run_spmd, spmd_rank_assignment, validate_rank_of
from .parallel import arena_capacities, cross_edge_slots, run_spmd_process
from .recover import Policy, SolutionRecovery
from .tuner import (
    TuningDecision,
    candidate_tile_widths,
    heuristic_tile_widths,
    retile_program,
    tune,
)

__all__ = [
    "TileGraph",
    "TileIndex",
    "Edge",
    "tile_graph",
    "build_tile_graph_dicts",
    "EdgeMemoryTracker",
    "TileScheduler",
    "SchedulePolicy",
    "DynamicHeapPolicy",
    "StaticWavefrontPolicy",
    "SCHEDULE_POLICIES",
    "TransitionEvent",
    "encode_events",
    "decode_events",
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "rank_of_rows",
    "CompiledExecutor",
    "compiled_executor",
    "ExecutionResult",
    "execute",
    "solve_reference",
    "VectorTileEngine",
    "WavefrontEngine",
    "WavefrontRun",
    "vector_unsupported_reason",
    "run_spmd",
    "run_spmd_process",
    "cross_edge_slots",
    "arena_capacities",
    "spmd_rank_assignment",
    "validate_rank_of",
    "SPMD_BACKENDS",
    "SolutionRecovery",
    "Policy",
    "TuningDecision",
    "tune",
    "heuristic_tile_widths",
    "candidate_tile_widths",
    "retile_program",
]
