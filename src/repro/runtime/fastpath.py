"""Vectorized tile execution: the executor's fast path.

The interpreter in :mod:`repro.runtime.executor` evaluates a tile
cell-by-cell — per-point dict construction plus a Python-level kernel
call — which is the single hottest path of the whole system.  For specs
that carry a :data:`~repro.spec.VectorKernel` (an array-level twin of the
scalar kernel) this module executes the *entire tile* with whole-array
numpy operations instead:

1. **Validity masks** — every ``is_valid_r*`` check is a linear
   inequality over the global coordinates.  Its value over the tile's
   local box splits into a tile-invariant array part (precomputed once
   per program) plus a per-tile scalar base, so each check becomes one
   broadcast comparison — and interval analysis (min/max of the array
   part) collapses most checks to a scalar ``True``/``False`` per tile.

2. **Wavefront evaluation** — cells are grouped by the level function
   ``level(i) = sum_k dir_k * i_k`` (the anti-diagonal level sets of the
   local box under the spec's scan directions).  Every template vector
   strictly decreases the level (checked at construction; programs where
   some template does not are unsupported and fall back to the
   interpreter), so within one level no cell depends on another and the
   whole level is evaluated with one vector-kernel call.  Dependency
   values are whole-array *views* of the padded ghost array shifted by
   the template vector — no gather logic beyond numpy fancy indexing.

3. **Pack/unpack plans are reused unchanged** — the engine only replaces
   the center loop; the edge protocol, memory accounting and tile
   ordering are byte-for-byte those of the interpreter.

The engine is bit-identical to the interpreter: vector kernels apply the
same IEEE operations in the same order, and the cross-check suite
(tests/test_fastpath.py) pins every bundled problem to the interpreter
and to ``solve_reference`` exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..polyhedra import Constraint

__all__ = [
    "VectorTileEngine",
    "WavefrontEngine",
    "WavefrontRun",
    "vector_unsupported_reason",
]


def vector_unsupported_reason(program: GeneratedProgram) -> Optional[str]:
    """Why the vectorized fast path cannot run *program* (None = it can).

    Dispatch rules (documented in docs/architecture.md): the spec must
    provide a vector kernel, and every template vector must strictly
    decrease the wavefront level function ``sum_k dir_k * i_k`` so that
    level sets are data-parallel.
    """
    spec = program.spec
    if spec.vector_kernel is None:
        return f"problem {spec.name!r} has no vector kernel"
    directions = spec.scan_directions()
    for name, vec in spec.templates.items():
        step = sum(directions[x] * r for x, r in zip(spec.loop_vars, vec))
        if step >= 0:
            return (
                f"template {name!r} does not decrease the wavefront level "
                f"(direction-weighted step {step:+d}); level sets are not "
                "data-parallel"
            )
    return None


def _affine_parts(
    constraint: Constraint,
    loop_vars: Sequence[str],
    widths: Sequence[int],
    grids: np.ndarray,
):
    """Split ``a.x + c`` into (const, param terms, tile coeffs, box array).

    With ``x_k = w_k * t_k + i_k`` the constraint value over a tile's
    local box is ``const + sum_p b_p p + sum_k a_k w_k t_k`` (a per-tile
    scalar) plus ``sum_k a_k i_k`` (a tile-invariant array over the box).
    """
    expr = constraint.expr
    const = expr.constant
    if const.denominator != 1:
        raise RuntimeExecutionError(f"non-integral check constraint {constraint}")
    loop_set = set(loop_vars)
    param_items: List[Tuple[str, int]] = []
    tile_coefs = [0] * len(loop_vars)
    lin: Optional[np.ndarray] = None
    for name, coef in expr.terms():
        if coef.denominator != 1:
            raise RuntimeExecutionError(
                f"non-integral check constraint {constraint}"
            )
        c = coef.numerator
        if name in loop_set:
            k = loop_vars.index(name)
            tile_coefs[k] = c * widths[k]
            contrib = c * grids[k]
            lin = contrib if lin is None else lin + contrib
        else:
            param_items.append((name, c))
    if lin is None:
        lo = hi = 0
    else:
        lo = int(lin.min())
        hi = int(lin.max())
    return {
        "const": const.numerator,
        "param_items": tuple(param_items),
        "tile_coefs": tuple(tile_coefs),
        "lin": lin,
        "lin_min": lo,
        "lin_max": hi,
        "is_eq": constraint.is_equality(),
    }


class VectorTileEngine:
    """Executes one tile's local iteration space with numpy wavefronts.

    All loop-invariant artifacts — coordinate grids, the level function,
    the full-box wavefront partition, per-check array parts and the
    per-template shifted views — are derived once at construction and
    shared by every tile of every run of the program.
    """

    def __init__(self, program: GeneratedProgram):
        reason = vector_unsupported_reason(program)
        if reason is not None:
            raise RuntimeExecutionError(
                f"vectorized execution unsupported: {reason}"
            )
        spec = program.spec
        self.program = program
        self.spec = spec
        self.layout = program.layout
        self.loop_vars = spec.loop_vars
        self.widths = spec.tile_width_vector()
        self.vector_kernel = spec.vector_kernel

        layout = self.layout
        self.interior_slices = tuple(
            slice(lo, lo + w) for lo, w in zip(layout.ghost_lo, self.widths)
        )
        # Per template: the shifted box view of the padded array whose
        # element [i] is the dependency value of interior cell i.
        self.template_slices: Dict[str, Tuple[slice, ...]] = {}
        for name, vec in spec.templates.items():
            self.template_slices[name] = tuple(
                slice(lo + r, lo + r + w)
                for lo, r, w in zip(layout.ghost_lo, vec, self.widths)
            )

        # Local-coordinate grids and the wavefront level function.
        grids = np.indices(self.widths)
        self._grids = grids
        directions = spec.scan_directions()
        self._dirs = tuple(directions[x] for x in self.loop_vars)
        levels = np.zeros(self.widths, dtype=np.int64)
        for k, d in enumerate(self._dirs):
            levels += d * grids[k]
        flat = levels.reshape(-1)
        order = np.argsort(flat, kind="stable")
        cuts = np.flatnonzero(np.diff(flat[order])) + 1
        self._full_groups: List[np.ndarray] = np.split(order, cuts)
        self._full_wavefronts = [
            np.unravel_index(g, self.widths) for g in self._full_groups
        ]
        self._full_cells = int(np.prod(self.widths))

        # Affine data for the in-space constraints and the validity checks.
        self._space_parts = [
            _affine_parts(c, self.loop_vars, self.widths, grids)
            for c in spec.constraints
        ]
        self._check_parts = [
            _affine_parts(c, self.loop_vars, self.widths, grids)
            for c in program.validity.checks
        ]
        self.per_template = {
            name: tuple(ids)
            for name, ids in program.validity.per_template.items()
        }

    # -- per-tile affine evaluation ------------------------------------------

    def _eval_parts(self, parts, tile, params):
        """Constraint truth over the box: scalar bool or boolean array."""
        base = parts["const"]
        for name, c in parts["param_items"]:
            base += c * params[name]
        for k, c in enumerate(parts["tile_coefs"]):
            if c:
                base += c * tile[k]
        lin = parts["lin"]
        if parts["is_eq"]:
            if lin is None:
                return base == 0
            if base + parts["lin_min"] > 0 or base + parts["lin_max"] < 0:
                return False
            return (base + lin) == 0
        if lin is None:
            return base >= 0
        if base + parts["lin_min"] >= 0:
            return True
        if base + parts["lin_max"] < 0:
            return False
        return (base + lin) >= 0

    def _in_space_mask(self, tile, params) -> Optional[np.ndarray]:
        """Boolean box mask of iteration-space cells; None = whole box."""
        mask: Optional[np.ndarray] = None
        for parts in self._space_parts:
            m = self._eval_parts(parts, tile, params)
            if m is True:
                continue
            if m is False:
                return np.zeros(self.widths, dtype=bool)
            mask = m if mask is None else (mask & m)
        return mask

    def _template_validity(self, tile, params) -> Dict[str, object]:
        """Per-template validity over the box (scalar bool or array)."""
        cache: Dict[int, object] = {}
        out: Dict[str, object] = {}
        for name, ids in self.per_template.items():
            combined: object = True
            for idx in ids:
                m = cache.get(idx)
                if m is None:
                    m = self._eval_parts(self._check_parts[idx], tile, params)
                    cache[idx] = m
                if m is False:
                    combined = False
                    break
                if m is True:
                    continue
                combined = m if combined is True else (combined & m)
            out[name] = combined
        return out

    def _wavefronts(self, mask: Optional[np.ndarray]):
        if mask is None:
            return self._full_wavefronts
        flat = mask.reshape(-1)
        fronts = []
        for g in self._full_groups:
            sel = g[flat[g]]
            if sel.size:
                fronts.append(np.unravel_index(sel, self.widths))
        return fronts

    # -- tile execution -------------------------------------------------------

    def execute_tile(
        self,
        tile: Tuple[int, ...],
        array: np.ndarray,
        params: Mapping[str, int],
        values: Optional[Dict[Tuple[int, ...], float]] = None,
    ) -> int:
        """Evaluate the recurrence on every in-space cell of *tile*.

        *array* is the padded tile array with ghost margins already
        unpacked.  Returns the number of cells computed; records every
        cell into *values* when given (keys are global-coordinate
        tuples, exactly as the interpreter produces them).
        """
        mask = self._in_space_mask(tile, params)
        if mask is None:
            ncells = self._full_cells
        else:
            ncells = int(np.count_nonzero(mask))
            if ncells == self._full_cells:
                mask = None
        fronts = self._wavefronts(mask)
        if not fronts:
            return 0

        validity = self._template_validity(tile, params)
        interior = array[self.interior_slices]
        dep_views = {
            name: array[slc] for name, slc in self.template_slices.items()
        }
        base = [w * t for w, t in zip(self.widths, tile)]
        vector_kernel = self.vector_kernel
        nan = np.float64(np.nan)

        for idx in fronts:
            point = {
                x: base[k] + idx[k] for k, x in enumerate(self.loop_vars)
            }
            deps: Dict[str, object] = {}
            valid: Dict[str, object] = {}
            for name, view in dep_views.items():
                v = validity[name]
                if v is False:
                    deps[name] = nan
                    valid[name] = np.False_
                    continue
                vals = view[idx]
                if isinstance(v, np.ndarray):
                    vmask = v[idx]
                    bad = np.isnan(vals) & vmask
                else:
                    vmask = np.True_
                    bad = np.isnan(vals)
                if bad.any():
                    k = int(np.flatnonzero(bad)[0])
                    where = {
                        x: int(point[x][k]) for x in self.loop_vars
                    }
                    raise RuntimeExecutionError(
                        f"tile {tile}: dependency {name} of point {where} "
                        "is valid but its value was never computed or "
                        "delivered"
                    )
                deps[name] = vals
                valid[name] = vmask
            out = np.asarray(
                vector_kernel(point, deps, valid, params), dtype=np.float64
            )
            if out.ndim == 0:
                out = np.broadcast_to(out, idx[0].shape)
            interior[idx] = out
            if values is not None:
                cols = np.stack(
                    [point[x] for x in self.loop_vars], axis=1
                ).tolist()
                values.update(zip(map(tuple, cols), out.tolist()))
        return ncells


class WavefrontEngine:
    """Evaluates whole ready-fronts of tiles as one batched operation.

    The per-tile :class:`VectorTileEngine` still pays Python per tile:
    one ghost-array allocation, one pack/unpack round-trip per edge (a
    cell-by-cell Python loop), one validity evaluation, and one kernel
    call per intra-tile wavefront.  This engine amortizes all of that
    over a *batch* — every simultaneously-ready tile of one static
    wavefront level (see
    :meth:`repro.runtime.scheduler.TileScheduler.start_batch`):

    * the batch shares a single padded ghost array of shape
      ``(B, *padded_shape)``, allocated once per front;
    * interior cross-tile edges are **array slices**: a consumer's ghost
      margin is filled directly from the retained interior of its
      producer (``fill_slices`` maps each delta to a static
      producer-slab → consumer-window slice pair), so the pack/copy/
      unpack round-trip disappears.  Packed edges survive only at rank
      boundaries (SPMD) — exactly the edges the generated C sends over
      MPI;
    * interval analysis runs **batched**: one integer matmul classifies
      every validity check of every tile in the front as uniformly
      true/false or mixed.  Tiles whose box is fully in space and whose
      checks all collapse are evaluated *fused* — one vector-kernel call
      per intra-tile level for the whole sub-batch; the rest fall back
      to the per-tile engine on their own padded row (identical
      numerics, still no packing).

    Bit-identity with the per-tile path holds because vector kernels are
    lane-wise: stacking tiles along a batch axis feeds every cell the
    same dependency values through the same IEEE operations in the same
    order.  Results are pinned against ``mode="vector"``, the
    interpreter and ``solve_reference`` in tests/test_wavefront.py.

    Construction derives only program-level geometry; per-run state
    (retained interiors, refcounts, parameter-folded check bases) lives
    in :class:`WavefrontRun`.
    """

    def __init__(
        self,
        program: GeneratedProgram,
        tile_engine: Optional[VectorTileEngine] = None,
    ):
        self.tile_engine = (
            tile_engine if tile_engine is not None
            else VectorTileEngine(program)
        )
        eng = self.tile_engine
        self.program = program
        self.spec = eng.spec
        self.layout = eng.layout
        self.loop_vars = eng.loop_vars
        self.widths = eng.widths
        self.padded_shape = tuple(eng.layout.padded_shape)
        self.interior_slices = eng.interior_slices
        self.deltas = list(program.deltas)

        # Ghost-fill geometry per delta (producer = consumer + delta):
        # the producer-interior slab visible through the consumer's
        # padded window, and the window slice it lands in.  With
        # ``i_consumer = i_producer + w_k * delta_k`` both are static.
        ghost_lo = eng.layout.ghost_lo
        ghost_hi = eng.layout.ghost_hi
        self.fill_slices: Dict[tuple, Tuple[tuple, tuple]] = {}
        for delta in self.deltas:
            src: List[slice] = []
            dst: List[slice] = []
            for k, d in enumerate(delta):
                w = self.widths[k]
                lo = ghost_lo[k]
                hi = ghost_hi[k]
                p_lo = max(0, -lo - d * w)
                p_hi = min(w, w + hi - d * w)
                src.append(slice(p_lo, p_hi))
                dst.append(slice(p_lo + d * w + lo, p_hi + d * w + lo))
            self.fill_slices[delta] = (tuple(src), tuple(dst))

        # Batched interval analysis: stack every space constraint and
        # validity check into one (d, P) tile-coefficient matrix so a
        # single integer matmul yields the per-tile scalar base of every
        # part for the whole batch.
        self._parts = list(eng._space_parts) + list(eng._check_parts)
        self._n_space = len(eng._space_parts)
        d = len(self.loop_vars)
        if self._parts:
            self._coef = np.array(
                [p["tile_coefs"] for p in self._parts], dtype=np.int64
            ).T
        else:
            self._coef = np.zeros((d, 0), dtype=np.int64)
        self.per_template = eng.per_template


class WavefrontRun:
    """Per-run state of the wavefront-fused executor.

    Holds the retained tile interiors (the slice-copy substitute for
    packed interior edges), their refcounts (number of *same-rank*
    consumers still to run), the parameter-folded check bases, and the
    run's ``values``/cell accounting.  Drivers call
    :meth:`execute_batch` once per drained front and
    :meth:`verify_drained` after the loop.

    *arena* is an optional externally-owned ``(cap, *padded_shape)``
    float64 buffer backing the batch ghost arrays: when given (and the
    front fits), :meth:`execute_batch` evaluates the front in place in
    ``arena[:B]`` instead of allocating a fresh array per front.  The
    process-parallel SPMD backend (:mod:`repro.runtime.parallel`) hands
    each rank a view into a ``multiprocessing.shared_memory`` segment
    here, and the single-rank driver reuses one heap allocation across
    every front.  A returned batch is only valid until the next
    :meth:`execute_batch` call.
    """

    def __init__(
        self,
        engine: WavefrontEngine,
        graph,
        params: Mapping[str, int],
        rank_of: Optional[Sequence[int]] = None,
        values: Optional[Dict[Tuple[int, ...], float]] = None,
        arena: Optional[np.ndarray] = None,
    ):
        self.engine = engine
        self.graph = graph
        self.params = dict(params)
        self.values = values
        self.cells = 0
        if arena is not None:
            expected = engine.padded_shape
            if (
                arena.ndim != len(expected) + 1
                or tuple(arena.shape[1:]) != expected
                or arena.dtype != np.float64
            ):
                raise RuntimeExecutionError(
                    f"wavefront arena must be float64 with shape "
                    f"(cap, {', '.join(map(str, expected))}); got "
                    f"{arena.dtype} {tuple(arena.shape)}"
                )
        self._arena = arena
        self._store: Dict[int, np.ndarray] = {}
        self._refs: Dict[int, int] = {}
        # Per-part scalar base with the run's parameters folded in; the
        # batch classification only adds the tile term.
        base0 = [
            p["const"]
            + sum(c * self.params[name] for name, c in p["param_items"])
            for p in engine._parts
        ]
        self._base0 = np.asarray(base0, dtype=np.int64)
        # How many consumers of each row read its interior through the
        # shared array (same rank); cross-rank consumers go through
        # packed edges and are not counted.
        counts = np.diff(graph.cons_ptr)
        if rank_of is None:
            self._nlocal = counts.astype(np.int64)
        else:
            r = np.asarray(rank_of, dtype=np.int64)
            owner = np.repeat(np.arange(counts.size), counts)
            same = r[owner] == r[graph.cons_rows]
            self._nlocal = np.bincount(
                owner[same], minlength=counts.size
            ).astype(np.int64)

    # -- batched interval analysis -------------------------------------------

    def _classify(self, tiles_arr: np.ndarray):
        """Fusable mask + per-template scalar validity for one batch.

        A tile is *fusable* when its box is entirely in the iteration
        space and every validity check collapses to a scalar over the
        box — the batched twin of
        :meth:`VectorTileEngine._eval_parts` interval analysis.  Mixed
        tiles fall back to the per-tile engine.
        """
        eng = self.engine
        B = tiles_arr.shape[0]
        P = len(eng._parts)
        fused = np.ones(B, dtype=bool)
        valid: Dict[str, np.ndarray] = {}
        vals = self._base0[None, :] + tiles_arr @ eng._coef
        uni_true = np.empty((P, B), dtype=bool)
        uni_false = np.empty((P, B), dtype=bool)
        for i, p in enumerate(eng._parts):
            v = vals[:, i]
            lin_min = p["lin_min"]
            lin_max = p["lin_max"]
            if p["lin"] is None or lin_min == lin_max:
                vv = v + lin_min
                t = (vv == 0) if p["is_eq"] else (vv >= 0)
                f = ~t
            elif p["is_eq"]:
                f = (v + lin_min > 0) | (v + lin_max < 0)
                t = np.zeros(B, dtype=bool)
            else:
                t = v + lin_min >= 0
                f = v + lin_max < 0
            uni_true[i] = t
            uni_false[i] = f
        for i in range(eng._n_space):
            fused &= uni_true[i]
        ns = eng._n_space
        for name, ids in eng.per_template.items():
            has_false = np.zeros(B, dtype=bool)
            all_true = np.ones(B, dtype=bool)
            for idx in ids:
                has_false |= uni_false[ns + idx]
                all_true &= uni_true[ns + idx]
            # Classified = uniformly False (some check fails everywhere)
            # or uniformly True (every check holds everywhere).
            fused &= has_false | all_true
            valid[name] = all_true
        return fused, valid

    # -- batch execution ------------------------------------------------------

    def execute_batch(
        self,
        rows: Sequence[int],
        packed: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
    ) -> np.ndarray:
        """Evaluate one drained front; returns the batch padded array.

        *rows* are mutually independent (one ``start_batch`` result).
        *packed* maps ``(producer_row, row)`` to a packed edge buffer
        for edges that crossed a rank boundary; every other incoming
        edge is ghost-filled by slicing the producer's retained
        interior.  The returned ``(B, *padded_shape)`` array row ``b``
        is tile ``rows[b]``'s padded array — drivers read objective
        cells and pack outgoing cross-rank edges from it.
        """
        eng = self.engine
        graph = self.graph
        B = len(rows)
        arena = self._arena
        if arena is not None and B <= arena.shape[0]:
            batch = arena[:B]
            batch.fill(np.nan)
        else:
            batch = np.full(
                (B,) + eng.padded_shape, np.nan, dtype=np.float64
            )
        pptr = graph.prod_ptr
        prows = graph.prod_rows
        pdelta = graph.prod_delta
        deltas = eng.deltas
        store = self._store
        refs = self._refs
        program = eng.program
        spaces = program.spaces
        tt = graph.tile_tuples
        for b, row in enumerate(rows):
            arr = batch[b]
            for e in range(int(pptr[row]), int(pptr[row + 1])):
                p = int(prows[e])
                buf = packed.pop((p, row), None) if packed else None
                if buf is not None:
                    plan = program.pack_plans[deltas[int(pdelta[e])]]
                    env = dict(self.params)
                    env.update(spaces.tile_env(tt[p]))
                    plan.unpack(env, buf, arr, eng.layout, spaces.local_vars)
                    continue
                interior = store.get(p)
                if interior is None:
                    raise RuntimeExecutionError(
                        f"tile {tt[row]} started before the interior of "
                        f"its producer {tt[p]} was retained"
                    )
                src, dst = eng.fill_slices[deltas[int(pdelta[e])]]
                arr[dst] = interior[src]
                refs[p] -= 1
                if refs[p] == 0:
                    del store[p]
                    del refs[p]

        tiles_arr = graph.tile_array[list(rows)]
        fused, valid = self._classify(tiles_arr)
        cells = 0
        tile_engine = eng.tile_engine
        for b in np.flatnonzero(~fused).tolist():
            cells += tile_engine.execute_tile(
                tt[rows[b]], batch[b], self.params, self.values
            )
        fi = np.flatnonzero(fused)
        if fi.size:
            cells += self._execute_fused(batch, fi, tiles_arr, valid)
        self.cells += cells

        nlocal = self._nlocal
        interior_slices = eng.interior_slices
        for b, row in enumerate(rows):
            n = int(nlocal[row])
            if n:
                store[row] = batch[b][interior_slices].copy()
                refs[row] = n
        return batch

    def _execute_fused(
        self,
        batch: np.ndarray,
        fi: np.ndarray,
        tiles_arr: np.ndarray,
        valid_scalar: Dict[str, np.ndarray],
    ) -> int:
        """One fused evaluation of every full, collapsed tile in the batch.

        Cells are flattened tile-major per intra-tile level, so the
        kernel sees exactly the 1-D lane arrays the per-tile engine
        feeds it — just more lanes per call.
        """
        eng = self.engine
        tile_engine = eng.tile_engine
        full = fi.size == batch.shape[0]
        sub = batch if full else batch[fi]
        Bf = int(fi.size)
        widths = np.asarray(eng.widths, dtype=np.int64)
        base = tiles_arr[fi] * widths[None, :]
        interior = sub[(slice(None),) + eng.interior_slices]
        views = {
            name: sub[(slice(None),) + slc]
            for name, slc in tile_engine.template_slices.items()
        }
        vcols = {name: valid_scalar[name][fi] for name in views}
        vector_kernel = tile_engine.vector_kernel
        values = self.values
        loop_vars = eng.loop_vars
        params = self.params
        for idx in tile_engine._full_wavefronts:
            L = idx[0].shape[0]
            point = {
                x: (base[:, k, None] + idx[k][None, :]).reshape(-1)
                for k, x in enumerate(loop_vars)
            }
            deps: Dict[str, object] = {}
            valid: Dict[str, object] = {}
            for name, view in views.items():
                vals = view[(slice(None),) + idx].reshape(-1)
                vmask = np.repeat(vcols[name], L)
                bad = np.isnan(vals) & vmask
                if bad.any():
                    j = int(np.flatnonzero(bad)[0])
                    tile = tuple(tiles_arr[int(fi[j // L])].tolist())
                    where = {x: int(point[x][j]) for x in loop_vars}
                    raise RuntimeExecutionError(
                        f"tile {tile}: dependency {name} of point {where} "
                        "is valid but its value was never computed or "
                        "delivered"
                    )
                deps[name] = vals
                valid[name] = vmask
            out = np.asarray(
                vector_kernel(point, deps, valid, params), dtype=np.float64
            )
            if out.ndim == 0:
                out = np.broadcast_to(out, (Bf * L,))
            interior[(slice(None),) + idx] = out.reshape(Bf, L)
            if values is not None:
                cols = np.stack(
                    [point[x] for x in loop_vars], axis=1
                ).tolist()
                values.update(zip(map(tuple, cols), out.tolist()))
        if not full:
            batch[fi] = sub
        return Bf * tile_engine._full_cells

    # -- terminal check -------------------------------------------------------

    def verify_drained(self) -> None:
        """Raise unless every retained interior was consumed."""
        if self._store:
            raise RuntimeExecutionError(
                f"{len(self._store)} tile interiors were retained but "
                "never consumed by the wavefront ghost fill"
            )
