"""Vectorized tile execution: the executor's fast path.

The interpreter in :mod:`repro.runtime.executor` evaluates a tile
cell-by-cell — per-point dict construction plus a Python-level kernel
call — which is the single hottest path of the whole system.  For specs
that carry a :data:`~repro.spec.VectorKernel` (an array-level twin of the
scalar kernel) this module executes the *entire tile* with whole-array
numpy operations instead:

1. **Validity masks** — every ``is_valid_r*`` check is a linear
   inequality over the global coordinates.  Its value over the tile's
   local box splits into a tile-invariant array part (precomputed once
   per program) plus a per-tile scalar base, so each check becomes one
   broadcast comparison — and interval analysis (min/max of the array
   part) collapses most checks to a scalar ``True``/``False`` per tile.

2. **Wavefront evaluation** — cells are grouped by the level function
   ``level(i) = sum_k dir_k * i_k`` (the anti-diagonal level sets of the
   local box under the spec's scan directions).  Every template vector
   strictly decreases the level (checked at construction; programs where
   some template does not are unsupported and fall back to the
   interpreter), so within one level no cell depends on another and the
   whole level is evaluated with one vector-kernel call.  Dependency
   values are whole-array *views* of the padded ghost array shifted by
   the template vector — no gather logic beyond numpy fancy indexing.

3. **Pack/unpack plans are reused unchanged** — the engine only replaces
   the center loop; the edge protocol, memory accounting and tile
   ordering are byte-for-byte those of the interpreter.

The engine is bit-identical to the interpreter: vector kernels apply the
same IEEE operations in the same order, and the cross-check suite
(tests/test_fastpath.py) pins every bundled problem to the interpreter
and to ``solve_reference`` exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..polyhedra import Constraint

__all__ = ["VectorTileEngine", "vector_unsupported_reason"]


def vector_unsupported_reason(program: GeneratedProgram) -> Optional[str]:
    """Why the vectorized fast path cannot run *program* (None = it can).

    Dispatch rules (documented in docs/architecture.md): the spec must
    provide a vector kernel, and every template vector must strictly
    decrease the wavefront level function ``sum_k dir_k * i_k`` so that
    level sets are data-parallel.
    """
    spec = program.spec
    if spec.vector_kernel is None:
        return f"problem {spec.name!r} has no vector kernel"
    directions = spec.scan_directions()
    for name, vec in spec.templates.items():
        step = sum(directions[x] * r for x, r in zip(spec.loop_vars, vec))
        if step >= 0:
            return (
                f"template {name!r} does not decrease the wavefront level "
                f"(direction-weighted step {step:+d}); level sets are not "
                "data-parallel"
            )
    return None


def _affine_parts(
    constraint: Constraint,
    loop_vars: Sequence[str],
    widths: Sequence[int],
    grids: np.ndarray,
):
    """Split ``a.x + c`` into (const, param terms, tile coeffs, box array).

    With ``x_k = w_k * t_k + i_k`` the constraint value over a tile's
    local box is ``const + sum_p b_p p + sum_k a_k w_k t_k`` (a per-tile
    scalar) plus ``sum_k a_k i_k`` (a tile-invariant array over the box).
    """
    expr = constraint.expr
    const = expr.constant
    if const.denominator != 1:
        raise RuntimeExecutionError(f"non-integral check constraint {constraint}")
    loop_set = set(loop_vars)
    param_items: List[Tuple[str, int]] = []
    tile_coefs = [0] * len(loop_vars)
    lin: Optional[np.ndarray] = None
    for name, coef in expr.terms():
        if coef.denominator != 1:
            raise RuntimeExecutionError(
                f"non-integral check constraint {constraint}"
            )
        c = coef.numerator
        if name in loop_set:
            k = loop_vars.index(name)
            tile_coefs[k] = c * widths[k]
            contrib = c * grids[k]
            lin = contrib if lin is None else lin + contrib
        else:
            param_items.append((name, c))
    if lin is None:
        lo = hi = 0
    else:
        lo = int(lin.min())
        hi = int(lin.max())
    return {
        "const": const.numerator,
        "param_items": tuple(param_items),
        "tile_coefs": tuple(tile_coefs),
        "lin": lin,
        "lin_min": lo,
        "lin_max": hi,
        "is_eq": constraint.is_equality(),
    }


class VectorTileEngine:
    """Executes one tile's local iteration space with numpy wavefronts.

    All loop-invariant artifacts — coordinate grids, the level function,
    the full-box wavefront partition, per-check array parts and the
    per-template shifted views — are derived once at construction and
    shared by every tile of every run of the program.
    """

    def __init__(self, program: GeneratedProgram):
        reason = vector_unsupported_reason(program)
        if reason is not None:
            raise RuntimeExecutionError(
                f"vectorized execution unsupported: {reason}"
            )
        spec = program.spec
        self.program = program
        self.spec = spec
        self.layout = program.layout
        self.loop_vars = spec.loop_vars
        self.widths = spec.tile_width_vector()
        self.vector_kernel = spec.vector_kernel

        layout = self.layout
        self.interior_slices = tuple(
            slice(lo, lo + w) for lo, w in zip(layout.ghost_lo, self.widths)
        )
        # Per template: the shifted box view of the padded array whose
        # element [i] is the dependency value of interior cell i.
        self.template_slices: Dict[str, Tuple[slice, ...]] = {}
        for name, vec in spec.templates.items():
            self.template_slices[name] = tuple(
                slice(lo + r, lo + r + w)
                for lo, r, w in zip(layout.ghost_lo, vec, self.widths)
            )

        # Local-coordinate grids and the wavefront level function.
        grids = np.indices(self.widths)
        self._grids = grids
        directions = spec.scan_directions()
        self._dirs = tuple(directions[x] for x in self.loop_vars)
        levels = np.zeros(self.widths, dtype=np.int64)
        for k, d in enumerate(self._dirs):
            levels += d * grids[k]
        flat = levels.reshape(-1)
        order = np.argsort(flat, kind="stable")
        cuts = np.flatnonzero(np.diff(flat[order])) + 1
        self._full_groups: List[np.ndarray] = np.split(order, cuts)
        self._full_wavefronts = [
            np.unravel_index(g, self.widths) for g in self._full_groups
        ]
        self._full_cells = int(np.prod(self.widths))

        # Affine data for the in-space constraints and the validity checks.
        self._space_parts = [
            _affine_parts(c, self.loop_vars, self.widths, grids)
            for c in spec.constraints
        ]
        self._check_parts = [
            _affine_parts(c, self.loop_vars, self.widths, grids)
            for c in program.validity.checks
        ]
        self.per_template = {
            name: tuple(ids)
            for name, ids in program.validity.per_template.items()
        }

    # -- per-tile affine evaluation ------------------------------------------

    def _eval_parts(self, parts, tile, params):
        """Constraint truth over the box: scalar bool or boolean array."""
        base = parts["const"]
        for name, c in parts["param_items"]:
            base += c * params[name]
        for k, c in enumerate(parts["tile_coefs"]):
            if c:
                base += c * tile[k]
        lin = parts["lin"]
        if parts["is_eq"]:
            if lin is None:
                return base == 0
            if base + parts["lin_min"] > 0 or base + parts["lin_max"] < 0:
                return False
            return (base + lin) == 0
        if lin is None:
            return base >= 0
        if base + parts["lin_min"] >= 0:
            return True
        if base + parts["lin_max"] < 0:
            return False
        return (base + lin) >= 0

    def _in_space_mask(self, tile, params) -> Optional[np.ndarray]:
        """Boolean box mask of iteration-space cells; None = whole box."""
        mask: Optional[np.ndarray] = None
        for parts in self._space_parts:
            m = self._eval_parts(parts, tile, params)
            if m is True:
                continue
            if m is False:
                return np.zeros(self.widths, dtype=bool)
            mask = m if mask is None else (mask & m)
        return mask

    def _template_validity(self, tile, params) -> Dict[str, object]:
        """Per-template validity over the box (scalar bool or array)."""
        cache: Dict[int, object] = {}
        out: Dict[str, object] = {}
        for name, ids in self.per_template.items():
            combined: object = True
            for idx in ids:
                m = cache.get(idx)
                if m is None:
                    m = self._eval_parts(self._check_parts[idx], tile, params)
                    cache[idx] = m
                if m is False:
                    combined = False
                    break
                if m is True:
                    continue
                combined = m if combined is True else (combined & m)
            out[name] = combined
        return out

    def _wavefronts(self, mask: Optional[np.ndarray]):
        if mask is None:
            return self._full_wavefronts
        flat = mask.reshape(-1)
        fronts = []
        for g in self._full_groups:
            sel = g[flat[g]]
            if sel.size:
                fronts.append(np.unravel_index(sel, self.widths))
        return fronts

    # -- tile execution -------------------------------------------------------

    def execute_tile(
        self,
        tile: Tuple[int, ...],
        array: np.ndarray,
        params: Mapping[str, int],
        values: Optional[Dict[Tuple[int, ...], float]] = None,
    ) -> int:
        """Evaluate the recurrence on every in-space cell of *tile*.

        *array* is the padded tile array with ghost margins already
        unpacked.  Returns the number of cells computed; records every
        cell into *values* when given (keys are global-coordinate
        tuples, exactly as the interpreter produces them).
        """
        mask = self._in_space_mask(tile, params)
        if mask is None:
            ncells = self._full_cells
        else:
            ncells = int(np.count_nonzero(mask))
            if ncells == self._full_cells:
                mask = None
        fronts = self._wavefronts(mask)
        if not fronts:
            return 0

        validity = self._template_validity(tile, params)
        interior = array[self.interior_slices]
        dep_views = {
            name: array[slc] for name, slc in self.template_slices.items()
        }
        base = [w * t for w, t in zip(self.widths, tile)]
        vector_kernel = self.vector_kernel
        nan = np.float64(np.nan)

        for idx in fronts:
            point = {
                x: base[k] + idx[k] for k, x in enumerate(self.loop_vars)
            }
            deps: Dict[str, object] = {}
            valid: Dict[str, object] = {}
            for name, view in dep_views.items():
                v = validity[name]
                if v is False:
                    deps[name] = nan
                    valid[name] = np.False_
                    continue
                vals = view[idx]
                if isinstance(v, np.ndarray):
                    vmask = v[idx]
                    bad = np.isnan(vals) & vmask
                else:
                    vmask = np.True_
                    bad = np.isnan(vals)
                if bad.any():
                    k = int(np.flatnonzero(bad)[0])
                    where = {
                        x: int(point[x][k]) for x in self.loop_vars
                    }
                    raise RuntimeExecutionError(
                        f"tile {tile}: dependency {name} of point {where} "
                        "is valid but its value was never computed or "
                        "delivered"
                    )
                deps[name] = vals
                valid[name] = vmask
            out = np.asarray(
                vector_kernel(point, deps, valid, params), dtype=np.float64
            )
            if out.ndim == 0:
                out = np.broadcast_to(out, idx[0].shape)
            interior[idx] = out
            if values is not None:
                cols = np.stack(
                    [point[x] for x in self.loop_vars], axis=1
                ).tolist()
                values.update(zip(map(tuple, cols), out.tolist()))
        return ncells
