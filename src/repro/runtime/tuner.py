"""Simulator-driven auto-tuning of schedule policy and tile widths.

The runtime exposes two schedule policies (see
:data:`repro.runtime.scheduler.SCHEDULE_POLICIES`) and takes tile
widths as user input — historically guesswork.  This module replaces
both knobs with a measurement: sweep candidate tile widths x both
policies through the calibrated discrete-event simulator
(:func:`repro.simulate.hybrid.simulate_program`) and return the
combination with the smallest predicted makespan as a
:class:`TuningDecision`.

The dynamic-vs-static tradeoff the sweep resolves is the one Jin et
al. ("Hybrid Static/Dynamic Schedules for Tiled Polyhedral Programs",
arXiv:1610.07236) measure: a static wavefront schedule skips the
shared ready-queue critical section every tile otherwise pays, but
inherits level-barrier slack; which side wins depends on tile
granularity, machine shape and frontier width — exactly what the
simulator computes.  Tile-width candidates come from
:func:`heuristic_tile_widths`, which sizes tiles off the instance's
actual iteration-space extents (targeting O(10^2..10^3) tiles) instead
of a hardcoded constant.

Decisions are cached in an on-disk JSON registry keyed by the
*structural* compile signature of the spec (tile widths excluded — they
are what is being tuned), the concrete parameter values, and a machine
fingerprint, so repeated ``execute(schedule="auto")`` calls and the
``repro-tune`` CLI pay the sweep once per (program, params, machine).
The default machine fingerprint is deterministic (one node,
``os.cpu_count()`` cores, stock cost constants); pass an explicitly
calibrated :class:`~repro.simulate.machine.MachineModel` to tune for
measured hardware.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import PolyhedronError, ReproError, RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram, generate
from ..polyhedra.vertices import vertex_bounding_box
from ..simulate.machine import MachineModel
from ..spec import ProblemSpec
from .scheduler import SCHEDULE_POLICIES

__all__ = [
    "TuningDecision",
    "tune",
    "heuristic_tile_widths",
    "candidate_tile_widths",
    "normalize_tile_widths",
    "retile_program",
    "default_tuning_machine",
    "structural_signature",
    "tuning_cache_key",
    "default_cache_path",
    "TUNING_CACHE_VERSION",
    "CACHE_ENV_VAR",
]

#: Version of the on-disk tuning-registry schema; entries written under
#: a different version are ignored (and rewritten on the next store).
TUNING_CACHE_VERSION = 1

#: Environment override for the registry location (CI points this at a
#: workspace-local file; tests at tmp paths).
CACHE_ENV_VAR = "REPRO_TUNE_CACHE"

#: How many tiles the width heuristic aims for: enough parallelism for
#: any bundled machine shape, small enough that per-tile overhead stays
#: amortized (O(10^2..10^3) tiles).
DEFAULT_TARGET_TILES = 256


@dataclass(frozen=True)
class TuningDecision:
    """The tuner's verdict for one (program, params, machine)."""

    #: Chosen schedule policy ("dynamic" or "static").
    schedule: str
    #: Chosen per-loop-var tile widths.
    tile_widths: Dict[str, int]
    #: Simulated makespan of the chosen configuration.
    predicted_makespan_s: float
    #: Simulated makespan of the untuned default: the program's current
    #: widths under the dynamic policy.  Always >= predicted (the
    #: default is in the sweep).
    default_makespan_s: float
    #: How many (schedule, widths) configurations were simulated.
    candidates: int
    #: The registry key this decision is stored under.
    cache_key: str
    #: True when the decision was served from the on-disk registry
    #: instead of a fresh sweep.
    cache_hit: bool = False

    @property
    def predicted_speedup(self) -> float:
        """Predicted makespan improvement over the untuned default."""
        if self.predicted_makespan_s <= 0.0:
            return 1.0
        return self.default_makespan_s / self.predicted_makespan_s


# -- cache key -------------------------------------------------------------


def structural_signature(spec: ProblemSpec) -> str:
    """A stable hash of everything that defines the problem *except*
    tile widths (they are the tuned quantity).

    Two specs with equal signatures compile to the same tile graph
    family for any given widths, so a cached decision transfers.
    """
    material: Dict[str, Any] = {
        "name": spec.name,
        "loop_vars": list(spec.loop_vars),
        "params": list(spec.params),
        "constraints": sorted(str(c) for c in spec.constraints),
        "templates": sorted(
            (name, list(vec)) for name, vec in spec.templates.items()
        ),
        "lb_dims": list(spec.lb_dims),
        "objective_point": (
            sorted(spec.objective_point.items())
            if spec.objective_point is not None
            else None
        ),
        "dtype": spec.dtype,
    }
    blob = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def machine_fingerprint(machine: MachineModel) -> Dict[str, Any]:
    """The machine's identity in the cache key: every cost constant."""
    return dict(sorted(dataclasses.asdict(machine).items()))


def tuning_cache_key(
    spec: ProblemSpec,
    params: Mapping[str, int],
    machine: MachineModel,
) -> str:
    """Registry key: structural spec signature + params + machine."""
    material = {
        "version": TUNING_CACHE_VERSION,
        "spec": structural_signature(spec),
        "params": sorted((str(k), int(v)) for k, v in params.items()),
        "machine": machine_fingerprint(machine),
    }
    blob = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_tuning_machine() -> MachineModel:
    """The machine tuning targets absent an explicit model.

    One node with this host's core count and the stock cost constants —
    deterministic across invocations by construction, so cached
    decisions keyed on it are actually reused (a calibrated model's
    fitted constants would differ run to run).
    """
    return MachineModel(nodes=1, cores_per_node=os.cpu_count() or 1)


def default_cache_path() -> Path:
    """Registry location: ``$REPRO_TUNE_CACHE`` or the user cache dir."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "tuning.json"


# -- tile-width candidates -------------------------------------------------


def normalize_tile_widths(
    spec: ProblemSpec,
    tile_widths: Union[int, Mapping[str, int]],
) -> Dict[str, int]:
    """Canonicalize a width override to a full per-loop-var dict.

    An int applies to every loop var; a partial mapping inherits the
    spec's current width for missing vars.  Unknown names raise.
    """
    if isinstance(tile_widths, int):
        return {v: int(tile_widths) for v in spec.loop_vars}
    widths = {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
    for name, w in tile_widths.items():
        if name not in widths:
            raise RuntimeExecutionError(
                f"tile_widths names unknown loop var {name!r}; "
                f"expected a subset of {list(spec.loop_vars)}"
            )
        widths[name] = int(w)
    return widths


def heuristic_tile_widths(
    spec: ProblemSpec,
    params: Mapping[str, int],
    target_tiles: int = DEFAULT_TARGET_TILES,
) -> Dict[str, int]:
    """Widths sized from the instance's actual iteration-space extents.

    Computes the exact rational bounding box of the constraint system
    with *params* fixed, then picks per-dimension widths so the tile
    count lands near *target_tiles* (``target^(1/d)`` tiles per
    dimension), clamped below by each var's template reach (the spec's
    validity floor) and above by the dimension's extent.  Falls back to
    the spec's current widths when the instance polyhedron is empty.
    """
    reach = spec.templates.max_reach()
    try:
        box = vertex_bounding_box(
            spec.constraints.fix(dict(params)), list(spec.loop_vars)
        )
    except PolyhedronError:
        return {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
    extents: List[int] = [
        max(1, int(math.floor(hi)) - int(math.ceil(lo)) + 1)
        for lo, hi in box
    ]
    per_dim = max(1.0, float(target_tiles) ** (1.0 / len(extents)))
    widths: Dict[str, int] = {}
    for v, extent in zip(spec.loop_vars, extents):
        floor_w = max(1, int(reach.get(v, 1)))
        w = max(floor_w, math.ceil(extent / per_dim))
        widths[v] = min(w, max(extent, floor_w))
    return widths


def _scaled_widths(
    widths: Mapping[str, int],
    factor: float,
    reach: Mapping[str, int],
) -> Dict[str, int]:
    return {
        v: max(1, int(reach.get(v, 1)), int(round(w * factor)))
        for v, w in widths.items()
    }


def candidate_tile_widths(
    spec: ProblemSpec,
    params: Mapping[str, int],
    quick: bool = False,
) -> List[Dict[str, int]]:
    """The width candidates one sweep simulates, current widths first.

    Full sweeps add x2 and x1/2 scalings of the heuristic around it;
    ``quick`` keeps just {current, heuristic}.  Duplicates collapse.
    """
    current = {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
    heuristic = heuristic_tile_widths(spec, params)
    reach = spec.templates.max_reach()
    candidates = [current, heuristic]
    if not quick:
        candidates.append(_scaled_widths(heuristic, 2.0, reach))
        candidates.append(_scaled_widths(heuristic, 0.5, reach))
    out: List[Dict[str, int]] = []
    seen = set()
    for widths in candidates:
        key = tuple(sorted(widths.items()))
        if key not in seen:
            seen.add(key)
            out.append(widths)
    return out


def retile_program(
    program: GeneratedProgram,
    tile_widths: Union[int, Mapping[str, int]],
) -> GeneratedProgram:
    """The same problem re-generated with different tile widths.

    A no-op (the original object, with its caches) when the widths
    already match.  Re-tiled programs are memoized on the original, so
    a sweep revisiting a width — or ``execute(schedule="auto")`` runs
    replaying a cached decision — regenerates nothing.
    """
    widths = normalize_tile_widths(program.spec, tile_widths)
    if widths == {
        v: int(program.spec.tile_widths[v]) for v in program.spec.loop_vars
    }:
        return program
    cache = getattr(program, "_retile_cache", None)
    if cache is None:
        cache = {}
        program._retile_cache = cache
    key = tuple(sorted(widths.items()))
    retiled = cache.get(key)
    if retiled is None:
        spec = dataclasses.replace(program.spec, tile_widths=widths)
        retiled = generate(spec)
        cache[key] = retiled
    return retiled


# -- the on-disk registry --------------------------------------------------


def _load_registry(path: Path) -> Dict[str, Dict[str, Any]]:
    """The registry's decision table; empty on any malformed content."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    if (
        not isinstance(raw, dict)
        or raw.get("schema_version") != TUNING_CACHE_VERSION
        or not isinstance(raw.get("decisions"), dict)
    ):
        return {}
    decisions: Dict[str, Dict[str, Any]] = {}
    for key, entry in raw["decisions"].items():
        if isinstance(entry, dict):
            decisions[str(key)] = entry
    return decisions


def _store_decision(path: Path, decision: TuningDecision) -> None:
    decisions = _load_registry(path)
    decisions[decision.cache_key] = {
        "schedule": decision.schedule,
        "tile_widths": dict(decision.tile_widths),
        "predicted_makespan_s": decision.predicted_makespan_s,
        "default_makespan_s": decision.default_makespan_s,
        "candidates": decision.candidates,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(
            {
                "schema_version": TUNING_CACHE_VERSION,
                "decisions": decisions,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    tmp.replace(path)


def _decision_from_entry(
    entry: Mapping[str, Any],
    spec: ProblemSpec,
    cache_key: str,
) -> Optional[TuningDecision]:
    """Revive a registry entry; None when it fails basic validation."""
    try:
        schedule = str(entry["schedule"])
        widths = {
            str(k): int(v) for k, v in dict(entry["tile_widths"]).items()
        }
        predicted = float(entry["predicted_makespan_s"])
        default = float(entry["default_makespan_s"])
        candidates = int(entry.get("candidates", 0))
    except (KeyError, TypeError, ValueError):
        return None
    if schedule not in SCHEDULE_POLICIES:
        return None
    if sorted(widths) != sorted(spec.loop_vars):
        return None
    return TuningDecision(
        schedule=schedule,
        tile_widths=widths,
        predicted_makespan_s=predicted,
        default_makespan_s=default,
        candidates=candidates,
        cache_key=cache_key,
        cache_hit=True,
    )


# -- the sweep -------------------------------------------------------------


def tune(
    program: GeneratedProgram,
    params: Mapping[str, int],
    machine: Optional[MachineModel] = None,
    quick: bool = False,
    use_cache: bool = True,
    cache_path: Optional[Path] = None,
    tile_width_candidates: Optional[
        Sequence[Union[int, Mapping[str, int]]]
    ] = None,
) -> TuningDecision:
    """Pick (schedule policy, tile widths) for one problem instance.

    Simulates every candidate width set under both schedule policies on
    *machine* (default: :func:`default_tuning_machine`) and returns the
    configuration with the smallest predicted makespan.  The untuned
    default — the program's current widths under the dynamic policy —
    is always in the sweep and is also the tie-winner, so
    ``predicted_makespan_s <= default_makespan_s`` holds by
    construction and a tie changes nothing.

    With *use_cache* (default), the decision round-trips through the
    on-disk registry at *cache_path* (default:
    :func:`default_cache_path`): a prior decision for the same
    (structural spec, params, machine) is returned immediately with
    ``cache_hit=True``.  *tile_width_candidates* overrides the candidate
    widths (e.g. ``execute`` pins them to the current tiling when the
    caller supplied a prebuilt graph); *quick* trims the default
    candidate set for smoke runs.
    """
    from ..simulate.hybrid import simulate_program

    spec = program.spec
    if machine is None:
        machine = default_tuning_machine()
    key = tuning_cache_key(spec, params, machine)
    path = Path(cache_path) if cache_path is not None else default_cache_path()
    if use_cache:
        entry = _load_registry(path).get(key)
        if entry is not None:
            decision = _decision_from_entry(entry, spec, key)
            if decision is not None:
                return decision

    current = {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
    if tile_width_candidates is None:
        widths_list = candidate_tile_widths(spec, params, quick=quick)
    else:
        widths_list = []
        seen = set()
        for cand in tile_width_candidates:
            widths = normalize_tile_widths(spec, cand)
            wkey = tuple(sorted(widths.items()))
            if wkey not in seen:
                seen.add(wkey)
                widths_list.append(widths)
    if current not in widths_list:
        widths_list.insert(0, current)
    else:
        # The untuned default leads the sweep so exact ties resolve to it.
        widths_list.insert(0, widths_list.pop(widths_list.index(current)))

    best: Optional[Tuple[float, str, Dict[str, int]]] = None
    default_makespan: Optional[float] = None
    candidates = 0
    for widths in widths_list:
        # A candidate tiling can be infeasible even when every width
        # clears the template-reach floor: bidirectional dependencies
        # (e.g. Viterbi's +-3 state offsets) turn into tile-graph cycles
        # once the dimension is split.  Such candidates are skipped —
        # the untuned default always simulates, so the sweep still
        # returns a decision.
        try:
            prog_w = retile_program(program, widths)
            for schedule in SCHEDULE_POLICIES:
                sim = simulate_program(
                    prog_w, params, machine, schedule=schedule
                )
                candidates += 1
                makespan = float(sim.makespan_s)
                if schedule == "dynamic" and widths == current:
                    default_makespan = makespan
                if best is None or makespan < best[0]:
                    best = (makespan, schedule, widths)
        except ReproError:
            if widths == current:
                raise
            continue
    if best is None or default_makespan is None:  # pragma: no cover
        raise RuntimeExecutionError("tuning sweep simulated no candidates")

    decision = TuningDecision(
        schedule=best[1],
        tile_widths=dict(best[2]),
        predicted_makespan_s=best[0],
        default_makespan_s=default_makespan,
        candidates=candidates,
        cache_key=key,
    )
    if use_cache:
        try:
            _store_decision(path, decision)
        except OSError:  # pragma: no cover - read-only cache dir
            pass
    return decision
