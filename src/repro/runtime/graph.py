"""The tile dependency graph for one concrete problem instance.

Built once per (generated program, parameter values): every valid tile,
its valid producers/consumers, its work (iteration points), and each
edge's packed size.  The in-process executor and the cluster simulator
both run off this graph, which is what makes the simulator's schedule
"real": it orders exactly the tiles and edges the generated program
would execute and communicate.

The graph is *array-native* (structure of arrays):

* ``tile_array`` — the ``(T, d)`` int64 tile indices in the tile nest's
  lexicographic scan order (row number == lex rank);
* ``work_array`` — per-tile iteration-point counts, int64;
* producers in CSR form indexed by **consumer** row
  (``prod_ptr``/``prod_rows``/``prod_delta``, per-consumer edges in the
  program's delta order), and consumers in CSR form indexed by
  **producer** row (``cons_ptr``/``cons_rows``/``cons_delta``, per-
  producer edges in lexicographic consumer order) with the packed size
  of every edge in ``cons_cells``.

Construction never touches a per-tile Python loop on the common path:
tiles come from one vectorized scan of the tile nest, interior tiles
are detected and counted in closed form by one batched box-min
evaluation, edges are resolved per delta with a ravel-index lookup over
the tile bounding box, and full-region edge sizes are answered from the
pack plans' closed forms — only the boundary minority of tiles/edges
runs a compiled counter.  The dict-shaped views (``tiles``,
``producers``, ``consumers``, ``work``, ``edge_cells``) are materialized
lazily for tooling and tests; the executor and simulator consume the
arrays directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..generator.priority import make_priority_array
from ..generator.tile_deps import delta_between

TileIndex = Tuple[int, ...]
Edge = Tuple[TileIndex, TileIndex]  # (producer, consumer)

#: Beyond this many cells the dense ravel grid falls back to a hash map
#: (pathologically sparse tile spaces only).
_DENSE_GRID_LIMIT = 1 << 22

#: Per-program cap of the memoized graphs (see :func:`tile_graph`).
_GRAPH_CACHE_SIZE = 8


class TileGraph:
    """Concrete tile DAG: nodes are valid tiles, edges follow the deltas."""

    def __init__(
        self,
        program: GeneratedProgram,
        params: Dict[str, int],
        tile_array: np.ndarray,
        work_array: np.ndarray,
        prod_ptr: np.ndarray,
        prod_rows: np.ndarray,
        prod_delta: np.ndarray,
        cons_ptr: np.ndarray,
        cons_rows: np.ndarray,
        cons_delta: np.ndarray,
        cons_cells: np.ndarray,
    ):
        self.program = program
        self.params = params
        self.tile_array = tile_array
        self.work_array = work_array
        self.prod_ptr = prod_ptr
        self.prod_rows = prod_rows
        self.prod_delta = prod_delta
        self.cons_ptr = cons_ptr
        self.cons_rows = cons_rows
        self.cons_delta = cons_delta
        self.cons_cells = cons_cells
        self._tile_tuples: Optional[List[TileIndex]] = None
        self._priority_cache: Dict[str, List[tuple]] = {}
        self._dict_cache: Dict[str, object] = {}

    # -- construction --------------------------------------------------------

    @staticmethod
    def build(program: GeneratedProgram, params: Mapping[str, int]) -> "TileGraph":
        params = dict(params)
        spaces = program.spaces
        tile_array, work_array = spaces.valid_tile_array(params)
        T = tile_array.shape[0]
        if T == 0:
            raise RuntimeExecutionError(
                f"problem {program.spec.name!r} has no tiles for params {params}"
            )

        row_of = _RowIndex(tile_array)
        deltas = program.deltas

        cons_parts: List[np.ndarray] = []
        prod_parts: List[np.ndarray] = []
        did_parts: List[np.ndarray] = []
        cell_parts: List[np.ndarray] = []
        spec = program.spec
        tile_vars = spaces.tile_vars
        for di, delta in enumerate(deltas):
            shifted = tile_array + np.asarray(delta, dtype=np.int64)
            cons_r, prod_r = row_of.lookup(shifted)
            if cons_r.size == 0:
                continue
            plan = program.pack_plans[delta]
            ptiles = tile_array[prod_r]
            batch = plan.full_region_batch(spec, tile_vars)
            if batch is None:
                full = np.zeros(prod_r.size, dtype=bool)
            else:
                full = batch(params, ptiles)
            cells = np.full(prod_r.size, plan.full_cells, dtype=np.int64)
            clipped = np.flatnonzero(~full)
            if clipped.size:
                from ..polyhedra.batch import nest_count_batch

                cols = {
                    tv: ptiles[clipped, k]
                    for k, tv in enumerate(tile_vars)
                }
                cells[clipped] = nest_count_batch(
                    plan.region_nest, params, cols
                )
            cons_parts.append(cons_r)
            prod_parts.append(prod_r)
            did_parts.append(np.full(cons_r.size, di, dtype=np.int64))
            cell_parts.append(cells)

        if cons_parts:
            cons_e = np.concatenate(cons_parts)
            prod_e = np.concatenate(prod_parts)
            did_e = np.concatenate(did_parts)
            cell_e = np.concatenate(cell_parts)
        else:
            cons_e = prod_e = did_e = cell_e = np.empty(0, dtype=np.int64)

        # Producers CSR (indexed by consumer): the per-delta blocks are
        # already in delta order, so a stable sort by consumer keeps each
        # consumer's producers in the program's delta order.
        order = np.argsort(cons_e, kind="stable")
        prod_ptr = np.zeros(T + 1, dtype=np.int64)
        np.cumsum(np.bincount(cons_e, minlength=T), out=prod_ptr[1:])
        # Consumers CSR (indexed by producer), per-producer consumers in
        # lexicographic order (row number == lex rank of the tile).
        order2 = np.lexsort((cons_e, prod_e))
        cons_ptr = np.zeros(T + 1, dtype=np.int64)
        np.cumsum(np.bincount(prod_e, minlength=T), out=cons_ptr[1:])

        return TileGraph(
            program=program,
            params=params,
            tile_array=tile_array,
            work_array=work_array,
            prod_ptr=prod_ptr,
            prod_rows=prod_e[order],
            prod_delta=did_e[order],
            cons_ptr=cons_ptr,
            cons_rows=cons_e[order2],
            cons_delta=did_e[order2],
            cons_cells=cell_e[order2],
        )

    @staticmethod
    def from_dicts(
        program: GeneratedProgram,
        params: Mapping[str, int],
        tiles: Set[TileIndex],
        producers: Mapping[TileIndex, Tuple[TileIndex, ...]],
        work: Mapping[TileIndex, int],
        edge_cells: Mapping[Edge, int],
    ) -> "TileGraph":
        """Canonicalize a dict-shaped graph (the legacy builder's output).

        Used by tests and benchmarks to run the executor/simulator off
        the dict-based path; the arrays come out in the same canonical
        order :meth:`build` produces, so schedules are directly
        comparable.
        """
        tile_list = sorted(tiles)
        tile_array = np.asarray(tile_list, dtype=np.int64)
        T = len(tile_list)
        row = {t: r for r, t in enumerate(tile_list)}
        work_array = np.asarray([work[t] for t in tile_list], dtype=np.int64)
        delta_pos = {d: i for i, d in enumerate(program.deltas)}
        cons_e: List[int] = []
        prod_e: List[int] = []
        did_e: List[int] = []
        cell_e: List[int] = []
        for t in tile_list:
            for p in producers[t]:
                cons_e.append(row[t])
                prod_e.append(row[p])
                did_e.append(delta_pos[delta_between(t, p)])
                cell_e.append(edge_cells[(p, t)])
        cons_a = np.asarray(cons_e, dtype=np.int64)
        prod_a = np.asarray(prod_e, dtype=np.int64)
        did_a = np.asarray(did_e, dtype=np.int64)
        cell_a = np.asarray(cell_e, dtype=np.int64)
        order = np.lexsort((did_a, cons_a))
        prod_ptr = np.zeros(T + 1, dtype=np.int64)
        np.cumsum(np.bincount(cons_a, minlength=T), out=prod_ptr[1:])
        order2 = np.lexsort((cons_a, prod_a))
        cons_ptr = np.zeros(T + 1, dtype=np.int64)
        np.cumsum(np.bincount(prod_a, minlength=T), out=cons_ptr[1:])
        return TileGraph(
            program=program,
            params=dict(params),
            tile_array=tile_array,
            work_array=work_array,
            prod_ptr=prod_ptr,
            prod_rows=prod_a[order],
            prod_delta=did_a[order],
            cons_ptr=cons_ptr,
            cons_rows=cons_a[order2],
            cons_delta=did_a[order2],
            cons_cells=cell_a[order2],
        )

    # -- array-level accessors (the executor/simulator interface) ------------

    @property
    def tile_tuples(self) -> List[TileIndex]:
        """Row -> tile index tuple (row number is the tile's lex rank)."""
        if self._tile_tuples is None:
            self._tile_tuples = [tuple(r) for r in self.tile_array.tolist()]
        return self._tile_tuples

    def row_of(self, tile: TileIndex) -> int:
        """The tile's row (its lexicographic rank); raises for non-tiles."""
        index = self._dict_cache.get("row_of")
        if index is None:
            index = {t: r for r, t in enumerate(self.tile_tuples)}
            self._dict_cache["row_of"] = index
        try:
            return index[tuple(tile)]
        except KeyError:
            raise RuntimeExecutionError(
                f"{tuple(tile)} is not a valid tile"
            ) from None

    def producer_edges(self, row: int) -> List[Tuple[int, int]]:
        """Incoming edges of one row: ``(producer_row, delta_id)`` in the
        program's delta order — the order the unpack loop wants."""
        ptr = self.prod_ptr
        return [
            (int(self.prod_rows[e]), int(self.prod_delta[e]))
            for e in range(int(ptr[row]), int(ptr[row + 1]))
        ]

    def dependency_count_array(self) -> np.ndarray:
        """Producer count per row, int32 (copy — safe to decrement)."""
        return np.diff(self.prod_ptr).astype(np.int32)

    def initial_rows(self) -> np.ndarray:
        """Rows with no valid producer, ascending (lex order)."""
        return np.flatnonzero(np.diff(self.prod_ptr) == 0)

    def wavefront_levels(self) -> np.ndarray:
        """Static wavefront level of every row (longest producer path).

        Level 0 is the initial front; a tile's level is one more than
        the deepest of its producers, so the rows of level L form the
        L-th wavefront of the DAG: mutually independent, and ready the
        moment every earlier level has finished.  This is the static
        schedule of the batch-drain scheduler
        (:meth:`repro.runtime.scheduler.TileScheduler.start_batch`) —
        computed once per graph with vectorized Kahn propagation over
        the CSR arrays, then cached.
        """
        cached = self._dict_cache.get("wavefront_levels")
        if cached is None:
            T = self.tile_array.shape[0]
            indeg = np.diff(self.prod_ptr)
            levels = np.zeros(T, dtype=np.int64)
            ptr = self.cons_ptr
            cons = self.cons_rows
            frontier = np.flatnonzero(indeg == 0)
            level = 0
            seen = int(frontier.size)
            while frontier.size:
                levels[frontier] = level
                counts = ptr[frontier + 1] - ptr[frontier]
                total = int(counts.sum())
                if total == 0:
                    break
                starts = np.repeat(ptr[frontier], counts)
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                consumers = cons[starts + offsets]
                dec = np.bincount(consumers, minlength=T)
                indeg = indeg - dec
                frontier = np.flatnonzero((indeg == 0) & (dec > 0))
                level += 1
                seen += int(frontier.size)
            if seen != T:
                raise RuntimeExecutionError(
                    f"tile graph has a cycle: only {seen} of {T} tiles "
                    "are reachable from the initial front"
                )
            cached = levels
            self._dict_cache["wavefront_levels"] = cached
        return cached

    def priority_tuples(self, scheme: str = "lb-first") -> List[tuple]:
        """Row -> priority key tuple, identical to ``program.priority``.

        Computed vectorized over the whole tile array and cached per
        scheme; heap entries ``(key[row], row)`` order exactly like the
        scalar ``(priority(tile), tile)`` entries because the row number
        is the tile's lexicographic rank.
        """
        cached = self._priority_cache.get(scheme)
        if cached is None:
            keys = make_priority_array(
                self.program.spec, scheme, self.tile_array
            )
            cached = [tuple(k) for k in keys.tolist()]
            self._priority_cache[scheme] = cached
        return cached

    def lb_key_rows(self) -> np.ndarray:
        """``(T, len(lb_dims))`` projection of every tile onto the lb dims."""
        spec = self.program.spec
        cols = [spec.loop_vars.index(x) for x in spec.lb_dims]
        return self.tile_array[:, cols]

    def slab_work(self) -> Dict[Tuple[int, ...], int]:
        """Iteration points per load-balancing slab, from the graph.

        A slab's work is the sum of its tiles' work, so this agrees
        exactly with :func:`repro.generator.loadbalance.compute_slab_work`
        without any fresh compiled scans.
        """
        keys = self.lb_key_rows()
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        sums = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(sums, inverse, self.work_array)
        return {
            tuple(k): int(s) for k, s in zip(uniq.tolist(), sums.tolist())
        }

    # -- dict-shaped views (tooling, recovery, tests) -------------------------

    @property
    def tiles(self) -> Set[TileIndex]:
        cached = self._dict_cache.get("tiles")
        if cached is None:
            cached = set(self.tile_tuples)
            self._dict_cache["tiles"] = cached
        return cached

    @property
    def producers(self) -> Dict[TileIndex, Tuple[TileIndex, ...]]:
        cached = self._dict_cache.get("producers")
        if cached is None:
            tt = self.tile_tuples
            ptr = self.prod_ptr.tolist()
            rows = self.prod_rows.tolist()
            cached = {
                tt[r]: tuple(tt[p] for p in rows[ptr[r]:ptr[r + 1]])
                for r in range(len(tt))
            }
            self._dict_cache["producers"] = cached
        return cached

    @property
    def consumers(self) -> Dict[TileIndex, Tuple[TileIndex, ...]]:
        cached = self._dict_cache.get("consumers")
        if cached is None:
            tt = self.tile_tuples
            ptr = self.cons_ptr.tolist()
            rows = self.cons_rows.tolist()
            cached = {
                tt[r]: tuple(tt[c] for c in rows[ptr[r]:ptr[r + 1]])
                for r in range(len(tt))
            }
            self._dict_cache["consumers"] = cached
        return cached

    @property
    def work(self) -> Dict[TileIndex, int]:
        cached = self._dict_cache.get("work")
        if cached is None:
            cached = dict(zip(self.tile_tuples, self.work_array.tolist()))
            self._dict_cache["work"] = cached
        return cached

    @property
    def edge_cells(self) -> Dict[Edge, int]:
        cached = self._dict_cache.get("edge_cells")
        if cached is None:
            tt = self.tile_tuples
            ptr = self.cons_ptr.tolist()
            rows = self.cons_rows.tolist()
            cells = self.cons_cells.tolist()
            cached = {}
            for r in range(len(tt)):
                for e in range(ptr[r], ptr[r + 1]):
                    cached[(tt[r], tt[rows[e]])] = cells[e]
            self._dict_cache["edge_cells"] = cached
        return cached

    # -- derived quantities --------------------------------------------------

    def initial_tiles(self) -> Set[TileIndex]:
        """Tiles with no valid producer (the runtime's seed set)."""
        tt = self.tile_tuples
        return {tt[r] for r in self.initial_rows().tolist()}

    def total_work(self) -> int:
        return int(self.work_array.sum())

    def dependency_counts(self) -> Dict[TileIndex, int]:
        return dict(
            zip(self.tile_tuples, np.diff(self.prod_ptr).tolist())
        )

    def num_edges(self) -> int:
        return int(self.cons_rows.shape[0])

    def validate_acyclic(self) -> None:
        """Sanity check: the tile DAG must admit a topological order."""
        indeg = self.dependency_count_array()
        ptr = self.cons_ptr
        rows = self.cons_rows
        ready = np.flatnonzero(indeg == 0).tolist()
        seen = 0
        while ready:
            r = ready.pop()
            seen += 1
            for e in range(ptr[r], ptr[r + 1]):
                c = rows[e]
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if seen != len(self.tile_array):
            raise RuntimeExecutionError(
                f"tile dependency graph has a cycle: only {seen} of "
                f"{len(self.tile_array)} tiles are reachable"
            )

    def validate_schedule(self, order: Sequence[TileIndex]) -> None:
        """Check that *order* is a legal execution of this graph.

        Every tile must appear exactly once, and strictly after all of
        its producers.  Raises :class:`RuntimeExecutionError` with the
        first violation — used by tests and by simulator debugging.
        """
        position: Dict[TileIndex, int] = {}
        for idx, tile in enumerate(order):
            if tile in position:
                raise RuntimeExecutionError(
                    f"tile {tile} appears twice in the schedule"
                )
            if tile not in self.tiles:
                raise RuntimeExecutionError(
                    f"schedule contains unknown tile {tile}"
                )
            position[tile] = idx
        missing = self.tiles - position.keys()
        if missing:
            raise RuntimeExecutionError(
                f"schedule misses {len(missing)} tiles (e.g. "
                f"{next(iter(missing))})"
            )
        for tile in order:
            for producer in self.producers[tile]:
                if position[producer] >= position[tile]:
                    raise RuntimeExecutionError(
                        f"tile {tile} scheduled before its producer "
                        f"{producer}"
                    )

    def critical_path_work(self) -> int:
        """Longest producer->consumer chain weighted by tile work.

        Lower-bounds the makespan of any schedule; the simulator reports
        it alongside measured spans.
        """
        indeg = self.dependency_count_array()
        work = self.work_array
        ptr = self.cons_ptr
        rows = self.cons_rows
        longest = np.zeros(len(work), dtype=np.int64)
        ready = np.flatnonzero(indeg == 0).tolist()
        for r in ready:
            longest[r] = work[r]
        best = 0
        while ready:
            r = ready.pop()
            base = longest[r]
            if base > best:
                best = int(base)
            for e in range(ptr[r], ptr[r + 1]):
                c = rows[e]
                cand = base + work[c]
                if cand > longest[c]:
                    longest[c] = cand
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        return best


class _RowIndex:
    """Tile index -> row lookup over the tile bounding box.

    Dense ravel grid when the box is small enough (one fancy-indexing
    gather per delta), hash map fallback for pathologically sparse
    spaces.
    """

    def __init__(self, tile_array: np.ndarray):
        self.lo = tile_array.min(axis=0)
        self.hi = tile_array.max(axis=0)
        shape = self.hi - self.lo + 1
        self.shape = tuple(int(s) for s in shape)
        size = 1
        for s in self.shape:
            size *= s
        if size <= max(_DENSE_GRID_LIMIT, 4 * tile_array.shape[0]):
            grid = np.full(size, -1, dtype=np.int64)
            lin = np.ravel_multi_index(
                tuple((tile_array - self.lo).T), self.shape
            )
            grid[lin] = np.arange(tile_array.shape[0])
            self.grid = grid
            self.map = None
        else:
            lin = np.ravel_multi_index(
                tuple((tile_array - self.lo).T), self.shape, mode="wrap"
            )
            self.grid = None
            self.map = dict(
                zip(lin.tolist(), range(tile_array.shape[0]))
            )

    def lookup(self, shifted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rows whose shifted tile is a valid tile.

        Returns ``(query_rows, target_rows)``: for every row ``i`` of
        *shifted* that names a valid tile, its position and that tile's
        row.
        """
        inbox = np.all(
            (shifted >= self.lo) & (shifted <= self.hi), axis=1
        )
        rows = np.flatnonzero(inbox)
        if rows.size == 0:
            return rows, rows
        lin = np.ravel_multi_index(
            tuple((shifted[rows] - self.lo).T), self.shape
        )
        if self.grid is not None:
            target = self.grid[lin]
        else:
            get = self.map.get
            target = np.asarray(
                [get(v, -1) for v in lin.tolist()], dtype=np.int64
            )
        ok = target >= 0
        return rows[ok], target[ok]


def build_tile_graph_dicts(
    program: GeneratedProgram, params: Mapping[str, int]
):
    """The legacy dict-based builder, kept as the reference oracle.

    Enumerates tiles one by one and probes dicts per tile/edge — the
    pre-array-native algorithm, deterministic (tiles scanned in sorted
    order).  Returns ``(tiles, producers, consumers, work, edge_cells)``
    dicts matching the :class:`TileGraph` views field for field; tests
    assert the equality, benchmarks time the gap.
    """
    params = dict(params)
    spaces = program.spaces
    deltas = program.deltas
    tiles = set(spaces.tiles(params))
    if not tiles:
        raise RuntimeExecutionError(
            f"problem {program.spec.name!r} has no tiles for params {params}"
        )
    producers: Dict[TileIndex, Tuple[TileIndex, ...]] = {}
    consumers: Dict[TileIndex, List[TileIndex]] = {t: [] for t in sorted(tiles)}
    for tile in sorted(tiles):
        prods = []
        for delta in deltas:
            p = tuple(t + d for t, d in zip(tile, delta))
            if p in tiles:
                prods.append(p)
                consumers[p].append(tile)
        producers[tile] = tuple(prods)

    work: Dict[TileIndex, int] = {
        t: spaces.tile_point_count(t, params) for t in sorted(tiles)
    }

    edge_cells: Dict[Edge, int] = {}
    for consumer in sorted(tiles):
        for producer in producers[consumer]:
            delta = delta_between(consumer, producer)
            plan = program.pack_plans[delta]
            env = dict(params)
            env.update(spaces.tile_env(producer))
            edge_cells[(producer, consumer)] = plan.region_size(env)

    return (
        tiles,
        producers,
        {t: tuple(c) for t, c in consumers.items()},
        work,
        edge_cells,
    )


def tile_graph(
    program: GeneratedProgram, params: Mapping[str, int]
) -> TileGraph:
    """The per-program memoized graph: build once per parameter set.

    ``execute()``, ``simulate_program()`` and the load balancer all run
    off the same instance instead of rebuilding the graph per call; a
    small LRU (:data:`_GRAPH_CACHE_SIZE` parameter sets) bounds memory
    across sweeps.
    """
    key = tuple(sorted(params.items()))
    cache: "OrderedDict[tuple, TileGraph]" = getattr(
        program, "_tile_graph_cache", None
    )
    if cache is None:
        cache = OrderedDict()
        program._tile_graph_cache = cache
    graph = cache.get(key)
    if graph is None:
        graph = TileGraph.build(program, params)
        cache[key] = graph
        if len(cache) > _GRAPH_CACHE_SIZE:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return graph
