"""The tile dependency graph for one concrete problem instance.

Built once per (generated program, parameter values): every valid tile,
its valid producers/consumers, its work (iteration points), and each
edge's packed size.  The in-process executor and the cluster simulator
both run off this graph, which is what makes the simulator's schedule
"real": it orders exactly the tiles and edges the generated program
would execute and communicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..generator.tile_deps import delta_between

TileIndex = Tuple[int, ...]
Edge = Tuple[TileIndex, TileIndex]  # (producer, consumer)


@dataclass
class TileGraph:
    """Concrete tile DAG: nodes are valid tiles, edges follow the deltas."""

    program: GeneratedProgram
    params: Dict[str, int]
    tiles: Set[TileIndex]
    producers: Dict[TileIndex, Tuple[TileIndex, ...]]
    consumers: Dict[TileIndex, Tuple[TileIndex, ...]]
    work: Dict[TileIndex, int]
    edge_cells: Dict[Edge, int]

    @staticmethod
    def build(program: GeneratedProgram, params: Mapping[str, int]) -> "TileGraph":
        params = dict(params)
        spaces = program.spaces
        deltas = program.deltas
        tiles = set(spaces.tiles(params))
        if not tiles:
            raise RuntimeExecutionError(
                f"problem {program.spec.name!r} has no tiles for params {params}"
            )
        producers: Dict[TileIndex, Tuple[TileIndex, ...]] = {}
        consumers: Dict[TileIndex, List[TileIndex]] = {t: [] for t in tiles}
        for tile in tiles:
            prods = []
            for delta in deltas:
                p = tuple(t + d for t, d in zip(tile, delta))
                if p in tiles:
                    prods.append(p)
                    consumers[p].append(tile)
            producers[tile] = tuple(prods)

        work: Dict[TileIndex, int] = {
            t: spaces.tile_point_count(t, params) for t in tiles
        }

        edge_cells: Dict[Edge, int] = {}
        for consumer in tiles:
            for producer in producers[consumer]:
                delta = delta_between(consumer, producer)
                plan = program.pack_plans[delta]
                env = dict(params)
                env.update(spaces.tile_env(producer))
                edge_cells[(producer, consumer)] = plan.region_size(env)

        return TileGraph(
            program=program,
            params=params,
            tiles=tiles,
            producers=producers,
            consumers={t: tuple(c) for t, c in consumers.items()},
            work=work,
            edge_cells=edge_cells,
        )

    # -- derived quantities --------------------------------------------------

    def initial_tiles(self) -> Set[TileIndex]:
        """Tiles with no valid producer (the runtime's seed set)."""
        return {t for t in self.tiles if not self.producers[t]}

    def total_work(self) -> int:
        return sum(self.work.values())

    def dependency_counts(self) -> Dict[TileIndex, int]:
        return {t: len(self.producers[t]) for t in self.tiles}

    def validate_acyclic(self) -> None:
        """Sanity check: the tile DAG must admit a topological order."""
        indeg = self.dependency_counts()
        ready = [t for t, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            tile = ready.pop()
            seen += 1
            for c in self.consumers[tile]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if seen != len(self.tiles):
            raise RuntimeExecutionError(
                f"tile dependency graph has a cycle: only {seen} of "
                f"{len(self.tiles)} tiles are reachable"
            )

    def validate_schedule(self, order) -> None:
        """Check that *order* is a legal execution of this graph.

        Every tile must appear exactly once, and strictly after all of
        its producers.  Raises :class:`RuntimeExecutionError` with the
        first violation — used by tests and by simulator debugging.
        """
        position = {}
        for idx, tile in enumerate(order):
            if tile in position:
                raise RuntimeExecutionError(
                    f"tile {tile} appears twice in the schedule"
                )
            if tile not in self.tiles:
                raise RuntimeExecutionError(
                    f"schedule contains unknown tile {tile}"
                )
            position[tile] = idx
        missing = self.tiles - position.keys()
        if missing:
            raise RuntimeExecutionError(
                f"schedule misses {len(missing)} tiles (e.g. "
                f"{next(iter(missing))})"
            )
        for tile in order:
            for producer in self.producers[tile]:
                if position[producer] >= position[tile]:
                    raise RuntimeExecutionError(
                        f"tile {tile} scheduled before its producer "
                        f"{producer}"
                    )

    def critical_path_work(self) -> int:
        """Longest producer->consumer chain weighted by tile work.

        Lower-bounds the makespan of any schedule; the simulator reports
        it alongside measured spans.
        """
        indeg = self.dependency_counts()
        ready = [t for t, d in indeg.items() if d == 0]
        longest: Dict[TileIndex, int] = {t: self.work[t] for t in ready}
        order: List[TileIndex] = []
        while ready:
            tile = ready.pop()
            order.append(tile)
            base = longest[tile]
            for c in self.consumers[tile]:
                cand = base + self.work[c]
                if cand > longest.get(c, 0):
                    longest[c] = cand
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        return max(longest.values()) if longest else 0
