"""Solution recovery (paper Section VII-A), implemented.

The generated programs normally discard a tile's interior once its
edges are packed — only the objective value survives.  Recovering the
*solution* (a traceback through the decision space, or arbitrary cell
values) does not require storing the whole O(n^d) space: as the paper
sketches, "the edges of the tiles could be saved, and needed tiles
recalculated on the fly during the traceback".

:class:`SolutionRecovery` does exactly that: one forward pass through
the scheduler-driven executor with ``keep_edges=True`` retains the
O(n^(d-1)) packed edges; any tile can then be recomputed in isolation
by unpacking its stored incoming edges and re-running the kernel over
its local space.  ``value_at`` answers point queries, and ``traceback``
walks a user-supplied policy through the space, recomputing tiles on
demand (with a small LRU of recomputed tiles, since tracebacks revisit
neighbours).

Recovery owns no scheduling or compilation machinery of its own: the
forward pass is :func:`repro.runtime.executor.execute` (and therefore
:class:`repro.runtime.scheduler.TileScheduler`), tile recomputation
reuses the :class:`~repro.runtime.executor.CompiledExecutor`'s cached
scanner and public ``validity_checks``, and producer edges come from
the graph's CSR arrays — the same delta-order walk the unpack loop
uses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..spec import Kernel
from .executor import compiled_executor, execute
from .graph import TileGraph, TileIndex, tile_graph

Point = Tuple[int, ...]

#: A traceback policy: given the current point, its dependency values
#: (None when invalid) and its own value, return the chosen template
#: name — or None to stop the walk.
Policy = Callable[[Mapping[str, int], Mapping[str, Optional[float]], float], Optional[str]]


class SolutionRecovery:
    """Point queries and tracebacks from saved edges (Section VII-A)."""

    def __init__(
        self,
        program: GeneratedProgram,
        params: Mapping[str, int],
        kernel: Optional[Kernel] = None,
        cache_tiles: int = 16,
        schedule: str = "dynamic",
    ):
        self.program = program
        self.params = dict(params)
        self.kernel = kernel if kernel is not None else program.spec.kernel
        if self.kernel is None:
            raise RuntimeExecutionError(
                "solution recovery needs a Python kernel"
            )
        self.graph = tile_graph(program, self.params)
        # The forward pass honors the caller's schedule policy; the
        # saved edge set is identical either way (every edge is packed
        # under keep_edges), so recovery itself is policy-blind.
        self.result = execute(
            program,
            self.params,
            kernel=self.kernel,
            graph=self.graph,
            keep_edges=True,
            schedule=schedule,
        )
        self._cache: "OrderedDict[TileIndex, Dict[Point, float]]" = OrderedDict()
        self._cache_tiles = cache_tiles
        # The executor's compiled artifacts, shared rather than re-derived:
        # the local-space scanner and the validity-check closures.
        self._compiled = compiled_executor(program)
        self._check_fns, self._per_template = self._compiled.validity_checks

    # -- tile recomputation -------------------------------------------------

    def tile_values(self, tile: TileIndex) -> Dict[Point, float]:
        """All cell values of one tile, recomputed from its saved edges."""
        cached = self._cache.get(tile)
        if cached is not None:
            self._cache.move_to_end(tile)
            return cached
        program = self.program
        spec = program.spec
        spaces = program.spaces
        layout = program.layout
        params = self.params
        deltas = program.deltas
        edges = self.result.edges
        assert edges is not None
        row = self.graph.row_of(tile)
        tile_tuples = self.graph.tile_tuples

        array = np.full(layout.padded_shape, np.nan)
        for producer_row, delta_id in self.graph.producer_edges(row):
            producer = tile_tuples[producer_row]
            plan = program.pack_plans[deltas[delta_id]]
            env = dict(params)
            env.update(spaces.tile_env(producer))
            plan.unpack(
                env, edges[(producer, tile)], array, layout, spaces.local_vars
            )

        scan = self._compiled.scan
        tile_env = dict(params)
        tile_env.update(spaces.tile_env(tile))
        widths = spec.tile_width_vector()
        template_items = list(spec.templates.items())

        values: Dict[Point, float] = {}
        for local in scan(tile_env):
            point = {
                x: widths[k] * tile[k] + local[k]
                for k, x in enumerate(spec.loop_vars)
            }
            genv = dict(params)
            genv.update(point)
            deps: Dict[str, Optional[float]] = {}
            for name, vec in template_items:
                ok = all(
                    self._check_fns[i](genv)
                    for i in self._per_template[name]
                )
                if ok:
                    ghost = tuple(i + r for i, r in zip(local, vec))
                    deps[name] = float(array[layout.array_index(ghost)])
                else:
                    deps[name] = None
            value = float(self.kernel(point, deps, params))
            array[layout.array_index(local)] = value
            values[tuple(point[v] for v in spec.loop_vars)] = value

        self._cache[tile] = values
        if len(self._cache) > self._cache_tiles:
            self._cache.popitem(last=False)
        return values

    # -- queries -------------------------------------------------------------

    def value_at(self, point: Mapping[str, int]) -> float:
        """The DP value at any iteration-space point."""
        spec = self.program.spec
        env = dict(self.params)
        env.update(point)
        if not spec.constraints.satisfied(env):
            raise RuntimeExecutionError(
                f"point {dict(point)} is outside the iteration space"
            )
        tile = self.program.spaces.point_to_tile(point)
        key = tuple(point[v] for v in spec.loop_vars)
        return self.tile_values(tile)[key]

    def dependencies_at(
        self, point: Mapping[str, int]
    ) -> Dict[str, Optional[float]]:
        """Dependency values of a point (None where invalid)."""
        spec = self.program.spec
        out: Dict[str, Optional[float]] = {}
        for name in spec.templates.names():
            offsets = spec.templates.as_offset_map(name)
            target = {v: point[v] + offsets[v] for v in spec.loop_vars}
            env = dict(self.params)
            env.update(target)
            if spec.constraints.satisfied(env):
                out[name] = self.value_at(target)
            else:
                out[name] = None
        return out

    def traceback(
        self,
        policy: Policy,
        start: Optional[Mapping[str, int]] = None,
        max_steps: int = 100000,
    ) -> List[Tuple[Dict[str, int], Optional[str]]]:
        """Walk *policy* through the space, recomputing tiles on demand.

        Returns the visited ``(point, chosen_template)`` path; the final
        entry has ``None`` as its choice.
        """
        spec = self.program.spec
        point = dict(start if start is not None else spec.objective(self.params))
        path: List[Tuple[Dict[str, int], Optional[str]]] = []
        for _ in range(max_steps):
            value = self.value_at(point)
            deps = self.dependencies_at(point)
            choice = policy(point, deps, value)
            path.append((dict(point), choice))
            if choice is None:
                return path
            offsets = spec.templates.as_offset_map(choice)
            point = {v: point[v] + offsets[v] for v in spec.loop_vars}
        raise RuntimeExecutionError(
            f"traceback exceeded {max_steps} steps; the policy may loop"
        )

    @property
    def edge_memory_cells(self) -> int:
        """Cells held by the saved edges (the VII-A memory footprint)."""
        assert self.result.edges is not None
        return sum(len(buf) for buf in self.result.edges.values())
