"""In-process execution of a generated program (paper Section V).

This is the Python twin of the generated C runtime: tiles wait in a
pending table until their dependencies are satisfied, move to a priority
queue, and execute one at a time (the host is a single core; parallelism
is studied with :mod:`repro.simulate`).  Each executing tile allocates a
padded array, unpacks the incoming edges into its ghost margins, scans
its local iteration space in the legal direction evaluating the user
kernel, packs its outgoing edges, and frees the array — only edges stay
buffered, which is the paper's memory-saving design (Section V-B).

Two center-loop engines share that outer protocol:

* the **interpreter** evaluates the scalar Python kernel point by point
  (slow, obviously correct), and
* the **vectorized fast path** (:mod:`repro.runtime.fastpath`) evaluates
  whole anti-diagonal wavefronts with numpy array expressions when the
  spec carries a vector kernel.

``execute(..., mode=...)`` selects the engine: ``"auto"`` (default)
uses the fast path whenever the program supports it and falls back to
the interpreter otherwise; ``"interpret"``/``"vector"`` force one
engine (``"vector"`` raises when unsupported).  All loop-invariant
compiled artifacts — the local-space scanner, the validity-check
closures, the vector engine — are cached per program in a
:class:`CompiledExecutor`, so repeated runs (benchmarks, calibration
sweeps) stop re-deriving them.

Every numerical result is produced here by actually evaluating the
recurrence; tests compare the outputs against independent brute-force
solvers, and the fast path is pinned bit-identical to the interpreter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..polyhedra.compile import compile_scanner
from ..spec import Kernel
from .fastpath import VectorTileEngine, vector_unsupported_reason
from .graph import TileGraph, TileIndex, tile_graph
from .memory import EdgeMemoryTracker

EXECUTION_MODES = ("auto", "interpret", "vector")


@dataclass
class ExecutionResult:
    """Outcome of one in-process run."""

    objective_point: Dict[str, int]
    objective_value: Optional[float]
    tiles_executed: int
    cells_computed: int
    tile_order: List[TileIndex]
    memory: Dict[str, int]
    values: Optional[Dict[Tuple[int, ...], float]] = None
    #: With ``keep_edges=True``: every packed edge, keyed by
    #: (producer, consumer) — the raw material of solution recovery
    #: (paper Section VII-A).
    edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = None
    #: Which center-loop engine produced the numbers ("interpret"/"vector").
    mode: str = "interpret"

    def value_at(self, point: Mapping[str, int], loop_vars) -> float:
        if self.values is None:
            raise RuntimeExecutionError(
                "run with record_values=True to query arbitrary points"
            )
        key = tuple(point[v] for v in loop_vars)
        return self.values[key]


def _compile_checks(program: GeneratedProgram):
    """Turn validity constraints into fast integer closures.

    Returns ``(check_fns, per_template)`` where each check function maps a
    global environment (loop vars + params) to bool.
    """
    check_fns = []
    for c in program.validity.checks:
        items: List[Tuple[str, int]] = []
        for name, coef in c.expr.terms():
            if coef.denominator != 1:
                raise RuntimeExecutionError(f"non-integral check constraint {c}")
            items.append((name, coef.numerator))
        const = c.expr.constant
        if const.denominator != 1:
            raise RuntimeExecutionError(f"non-integral check constraint {c}")
        const_i = const.numerator
        is_eq = c.is_equality()

        def fn(env, items=tuple(items), const_i=const_i, is_eq=is_eq):
            total = const_i
            for name, coef in items:
                total += coef * env[name]
            return total == 0 if is_eq else total >= 0

        check_fns.append(fn)
    per_template = {
        name: tuple(ids) for name, ids in program.validity.per_template.items()
    }
    return check_fns, per_template


class CompiledExecutor:
    """Per-program cache of every loop-invariant execution artifact.

    Construction compiles the local-space scanner and the validity-check
    closures exactly once; the vectorized engine is built lazily on the
    first run that can use it.  One instance is cached on the program
    (see :func:`compiled_executor`), so benchmarks and calibration that
    execute the same program repeatedly pay the derivation cost once.
    """

    def __init__(self, program: GeneratedProgram):
        self.program = program
        self.spec = program.spec
        spaces = program.spaces
        directions_x = self.spec.scan_directions()
        self.local_directions = {
            spaces.local_vars[k]: directions_x[x]
            for k, x in enumerate(self.spec.loop_vars)
        }
        # Loop-invariant across tiles AND runs: compiled once here, never
        # inside the tile loop (it used to be recompiled per tile).
        self.scan = compile_scanner(spaces.local_nest, self.local_directions)
        self.check_fns, self.per_template = _compile_checks(program)
        self.template_items = list(self.spec.templates.items())
        self._vector_engine: Optional[VectorTileEngine] = None
        self._vector_reason: Optional[str] = None
        self._vector_probed = False

    # -- engine selection -----------------------------------------------------

    @property
    def vector_engine(self) -> Optional[VectorTileEngine]:
        """The vectorized engine, or None with ``vector_reason`` set."""
        if not self._vector_probed:
            self._vector_probed = True
            reason = vector_unsupported_reason(self.program)
            if reason is None:
                self._vector_engine = VectorTileEngine(self.program)
            else:
                self._vector_reason = reason
        return self._vector_engine

    @property
    def vector_reason(self) -> Optional[str]:
        self.vector_engine  # noqa: B018 - force the probe
        return self._vector_reason

    def resolve_mode(self, mode: str, kernel: Optional[Kernel]) -> str:
        """Dispatch ``auto``/``interpret``/``vector`` to a concrete engine."""
        if mode not in EXECUTION_MODES:
            raise RuntimeExecutionError(
                f"unknown execution mode {mode!r}; expected one of "
                f"{EXECUTION_MODES}"
            )
        if mode == "interpret":
            return "interpret"
        custom_kernel = kernel is not None and kernel is not self.spec.kernel
        if custom_kernel:
            if mode == "vector":
                raise RuntimeExecutionError(
                    "vector mode cannot run a custom scalar kernel; pass "
                    "mode='interpret' or a spec with a matching vector_kernel"
                )
            return "interpret"
        if self.vector_engine is None:
            if mode == "vector":
                raise RuntimeExecutionError(
                    f"vector mode unavailable: {self._vector_reason}"
                )
            return "interpret"
        return "vector"

    # -- the run --------------------------------------------------------------

    def run(
        self,
        params: Mapping[str, int],
        kernel: Optional[Kernel] = None,
        priority_scheme: str = "lb-first",
        record_values: bool = False,
        graph: Optional[TileGraph] = None,
        keep_edges: bool = False,
        mode: str = "auto",
    ) -> ExecutionResult:
        program = self.program
        spec = self.spec
        resolved = self.resolve_mode(mode, kernel)
        if resolved == "interpret":
            if kernel is None:
                kernel = spec.kernel
            if kernel is None:
                raise RuntimeExecutionError(
                    f"problem {spec.name!r} has no Python kernel; pass kernel="
                )
        params = dict(params)
        if graph is None:
            graph = tile_graph(program, params)
        spaces = program.spaces
        layout = program.layout

        objective = spec.objective(params)
        objective_key = tuple(objective[v] for v in spec.loop_vars)
        objective_tile = spaces.point_to_tile(objective)
        objective_value: Optional[float] = None

        values: Optional[Dict[Tuple[int, ...], float]] = (
            {} if record_values else None
        )

        # The ready queue runs on the graph's arrays: rows instead of
        # tuples, precomputed priority keys, int32 pending counters.
        # Heap order is identical to the scalar (priority(t), t) entries
        # because row number == the tile's lexicographic rank.
        tile_tuples = graph.tile_tuples
        prio = graph.priority_tuples(priority_scheme)
        remaining = graph.dependency_count_array()
        prod_ptr = graph.prod_ptr.tolist()
        prod_rows = graph.prod_rows.tolist()
        prod_delta = graph.prod_delta.tolist()
        cons_ptr = graph.cons_ptr.tolist()
        cons_rows = graph.cons_rows.tolist()
        cons_delta = graph.cons_delta.tolist()
        deltas = program.deltas
        heap: List[Tuple[tuple, int]] = [
            (prio[r], r) for r in graph.initial_rows().tolist()
        ]
        heapq.heapify(heap)

        edge_store: Dict[Tuple[int, int], np.ndarray] = {}
        kept_edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = (
            {} if keep_edges else None
        )
        tracker = EdgeMemoryTracker()
        tile_order: List[TileIndex] = []
        cells_computed = 0

        local_vars = spaces.local_vars
        widths = spec.tile_width_vector()
        engine = self.vector_engine if resolved == "vector" else None

        # Reused per-point environments for the interpreter: one global
        # env for the validity checks (params + loop vars, updated in
        # place), one point dict for the kernel, one deps dict.  Nothing
        # is reallocated inside the inner loop.
        genv: Dict[str, int] = dict(params)
        point: Dict[str, int] = {}
        deps: Dict[str, Optional[float]] = {}

        while heap:
            _, row = heapq.heappop(heap)
            tile = tile_tuples[row]
            tile_order.append(tile)
            array = np.full(layout.padded_shape, np.nan, dtype=np.float64)

            # Unpack incoming edges into the ghost margins.
            for e in range(prod_ptr[row], prod_ptr[row + 1]):
                producer = prod_rows[e]
                plan = program.pack_plans[deltas[prod_delta[e]]]
                buffer = edge_store.pop((producer, row))
                tracker.remove_edge((tile_tuples[producer], tile))
                env = dict(params)
                env.update(spaces.tile_env(tile_tuples[producer]))
                plan.unpack(env, buffer, array, layout, local_vars)

            # Execute the tile's local iteration space in the legal order.
            tile_env = dict(params)
            tile_env.update(spaces.tile_env(tile))
            if engine is not None:
                cells_computed += engine.execute_tile(
                    tile, array, params, values
                )
                if tile == objective_tile:
                    local = tuple(
                        objective[x] - widths[k] * tile[k]
                        for k, x in enumerate(spec.loop_vars)
                    )
                    value = array[layout.array_index(local)]
                    if not np.isnan(value):
                        objective_value = float(value)
            else:
                for local in self.scan(tile_env):
                    for k, x in enumerate(spec.loop_vars):
                        g = widths[k] * tile[k] + local[k]
                        point[x] = g
                        genv[x] = g
                    # Key taken before the kernel call: a kernel mutating
                    # its point dict must not corrupt the recorded cell.
                    key = tuple(genv[x] for x in spec.loop_vars)
                    for name, vec in self.template_items:
                        ok = all(
                            self.check_fns[idx](genv)
                            for idx in self.per_template[name]
                        )
                        if ok:
                            ghost = tuple(
                                i + r for i, r in zip(local, vec)
                            )
                            value = array[layout.array_index(ghost)]
                            if np.isnan(value):
                                raise RuntimeExecutionError(
                                    f"tile {tile}: dependency {name} of "
                                    f"point {dict(point)} is valid but its "
                                    "value was never computed or delivered"
                                )
                            deps[name] = float(value)
                        else:
                            deps[name] = None
                    result = kernel(point, deps, params)
                    array[layout.array_index(local)] = result
                    cells_computed += 1
                    if values is not None:
                        values[key] = float(result)
                    if key == objective_key:
                        objective_value = float(result)

            # Pack outgoing edges, deliver to consumers, release the tile.
            for e in range(cons_ptr[row], cons_ptr[row + 1]):
                consumer = cons_rows[e]
                plan = program.pack_plans[deltas[cons_delta[e]]]
                buffer = plan.pack(tile_env, array, layout, local_vars)
                edge_store[(row, consumer)] = buffer
                if kept_edges is not None:
                    kept_edges[(tile, tile_tuples[consumer])] = buffer.copy()
                tracker.add_edge((tile, tile_tuples[consumer]), len(buffer))
                remaining[consumer] -= 1
                if remaining[consumer] == 0:
                    heapq.heappush(heap, (prio[consumer], consumer))
                elif remaining[consumer] < 0:
                    raise RuntimeExecutionError(
                        f"tile {tile_tuples[consumer]} received more edges "
                        "than it has producers"
                    )

        if len(tile_order) != len(tile_tuples):
            raise RuntimeExecutionError(
                f"executed {len(tile_order)} of {len(tile_tuples)} tiles; "
                "the dependency graph deadlocked"
            )
        if cells_computed != graph.total_work():
            raise RuntimeExecutionError(
                f"computed {cells_computed} cells but the graph holds "
                f"{graph.total_work()} points"
            )
        if edge_store:
            raise RuntimeExecutionError(
                f"{len(edge_store)} edges were packed but never consumed"
            )

        return ExecutionResult(
            objective_point=objective,
            objective_value=objective_value,
            tiles_executed=len(tile_order),
            cells_computed=cells_computed,
            tile_order=tile_order,
            memory=tracker.snapshot(),
            values=values,
            edges=kept_edges,
            mode=resolved,
        )


def compiled_executor(program: GeneratedProgram) -> CompiledExecutor:
    """The per-program :class:`CompiledExecutor`, built once and cached."""
    cached = getattr(program, "_compiled_executor", None)
    if cached is None:
        cached = CompiledExecutor(program)
        program._compiled_executor = cached
    return cached


def execute(
    program: GeneratedProgram,
    params: Mapping[str, int],
    kernel: Optional[Kernel] = None,
    priority_scheme: str = "lb-first",
    record_values: bool = False,
    graph: Optional[TileGraph] = None,
    keep_edges: bool = False,
    mode: str = "auto",
) -> ExecutionResult:
    """Solve the problem instance and return the objective value.

    *kernel* defaults to the spec's Python kernel.  *record_values*
    additionally returns every computed cell (use only on small
    instances).  A prebuilt *graph* can be passed to amortize graph
    construction across runs with identical parameters.  *keep_edges*
    retains every packed edge after the run — O(n^(d-1)) memory instead
    of the O(n^d) full space — enabling solution recovery by on-the-fly
    tile recomputation (paper Section VII-A; see
    :class:`repro.runtime.recover.SolutionRecovery`).  *mode* selects
    the center-loop engine: ``"auto"`` (vectorized fast path when the
    spec has a vector kernel and no custom *kernel* is given, else the
    interpreter), ``"interpret"``, or ``"vector"`` (raises when the fast
    path cannot run this program).
    """
    return compiled_executor(program).run(
        params,
        kernel=kernel,
        priority_scheme=priority_scheme,
        record_values=record_values,
        graph=graph,
        keep_edges=keep_edges,
        mode=mode,
    )


def solve_reference(
    program: GeneratedProgram,
    params: Mapping[str, int],
    kernel: Optional[Kernel] = None,
    record_values: bool = False,
):
    """Untiled oracle: scan the original iteration space in scan order.

    Exercises none of the tiling machinery — a second, independent path
    to the same numbers, used by tests to validate the tiled executor.
    """
    spec = program.spec
    if kernel is None:
        kernel = spec.kernel
    if kernel is None:
        raise RuntimeExecutionError("no kernel available")
    params = dict(params)
    check_fns, per_template = _compile_checks(program)
    directions = spec.scan_directions()
    store: Dict[Tuple[int, ...], float] = {}
    objective = spec.objective(params)
    objective_key = tuple(objective[v] for v in spec.loop_vars)
    objective_value = None
    for env in program.spaces.original_nest.iterate(params, directions):
        point = {v: env[v] for v in spec.loop_vars}
        genv = dict(params)
        genv.update(point)
        deps: Dict[str, Optional[float]] = {}
        for name, vec in spec.templates.items():
            ok = all(check_fns[idx](genv) for idx in per_template[name])
            if ok:
                key = tuple(point[v] + r for v, r in zip(spec.loop_vars, vec))
                deps[name] = store[key]
            else:
                deps[name] = None
        value = float(kernel(point, deps, params))
        key = tuple(point[v] for v in spec.loop_vars)
        store[key] = value
        if key == objective_key:
            objective_value = value
    return ExecutionResult(
        objective_point=objective,
        objective_value=objective_value,
        tiles_executed=0,
        cells_computed=len(store),
        tile_order=[],
        memory={},
        values=store if record_values else None,
    )
