"""In-process execution of a generated program (paper Section V).

This is the Python twin of the generated C runtime: tiles wait in a
pending table until their dependencies are satisfied, move to a priority
queue, and execute one at a time (the host is a single core; parallelism
is studied with :mod:`repro.simulate`).  Each executing tile allocates a
padded array, unpacks the incoming edges into its ghost margins, scans
its local iteration space in the legal direction evaluating the user
kernel, packs its outgoing edges, and frees the array — only edges stay
buffered, which is the paper's memory-saving design (Section V-B).

Every numerical result is produced here by actually evaluating the
recurrence; tests compare the outputs against independent brute-force
solvers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..generator.tile_deps import delta_between
from ..polyhedra.compile import compile_scanner
from ..spec import Kernel
from .graph import TileGraph, TileIndex
from .memory import EdgeMemoryTracker


@dataclass
class ExecutionResult:
    """Outcome of one in-process run."""

    objective_point: Dict[str, int]
    objective_value: Optional[float]
    tiles_executed: int
    cells_computed: int
    tile_order: List[TileIndex]
    memory: Dict[str, int]
    values: Optional[Dict[Tuple[int, ...], float]] = None
    #: With ``keep_edges=True``: every packed edge, keyed by
    #: (producer, consumer) — the raw material of solution recovery
    #: (paper Section VII-A).
    edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = None

    def value_at(self, point: Mapping[str, int], loop_vars) -> float:
        if self.values is None:
            raise RuntimeExecutionError(
                "run with record_values=True to query arbitrary points"
            )
        key = tuple(point[v] for v in loop_vars)
        return self.values[key]


def _compile_checks(program: GeneratedProgram):
    """Turn validity constraints into fast integer closures.

    Returns ``(check_fns, per_template)`` where each check function maps a
    global environment (loop vars + params) to bool.
    """
    check_fns = []
    for c in program.validity.checks:
        items: List[Tuple[str, int]] = []
        for name, coef in c.expr.terms():
            if coef.denominator != 1:
                raise RuntimeExecutionError(f"non-integral check constraint {c}")
            items.append((name, coef.numerator))
        const = c.expr.constant
        if const.denominator != 1:
            raise RuntimeExecutionError(f"non-integral check constraint {c}")
        const_i = const.numerator
        is_eq = c.is_equality()

        def fn(env, items=tuple(items), const_i=const_i, is_eq=is_eq):
            total = const_i
            for name, coef in items:
                total += coef * env[name]
            return total == 0 if is_eq else total >= 0

        check_fns.append(fn)
    per_template = {
        name: tuple(ids) for name, ids in program.validity.per_template.items()
    }
    return check_fns, per_template


def execute(
    program: GeneratedProgram,
    params: Mapping[str, int],
    kernel: Optional[Kernel] = None,
    priority_scheme: str = "lb-first",
    record_values: bool = False,
    graph: Optional[TileGraph] = None,
    keep_edges: bool = False,
) -> ExecutionResult:
    """Solve the problem instance and return the objective value.

    *kernel* defaults to the spec's Python kernel.  *record_values*
    additionally returns every computed cell (use only on small
    instances).  A prebuilt *graph* can be passed to amortize graph
    construction across runs with identical parameters.  *keep_edges*
    retains every packed edge after the run — O(n^(d-1)) memory instead
    of the O(n^d) full space — enabling solution recovery by on-the-fly
    tile recomputation (paper Section VII-A; see
    :class:`repro.runtime.recover.SolutionRecovery`).
    """
    spec = program.spec
    if kernel is None:
        kernel = spec.kernel
    if kernel is None:
        raise RuntimeExecutionError(
            f"problem {spec.name!r} has no Python kernel; pass kernel="
        )
    params = dict(params)
    if graph is None:
        graph = TileGraph.build(program, params)
    spaces = program.spaces
    layout = program.layout

    directions_x = spec.scan_directions()
    local_directions = {
        spaces.local_vars[k]: directions_x[x]
        for k, x in enumerate(spec.loop_vars)
    }

    check_fns, per_template = _compile_checks(program)
    template_items = list(spec.templates.items())
    template_local_offsets = {
        name: tuple(vec) for name, vec in template_items
    }

    objective = spec.objective(params)
    objective_key = tuple(objective[v] for v in spec.loop_vars)
    objective_value: Optional[float] = None

    values: Optional[Dict[Tuple[int, ...], float]] = {} if record_values else None

    priority = program.priority(priority_scheme)
    remaining = graph.dependency_counts()
    heap: List[Tuple[tuple, TileIndex]] = []
    for t in sorted(graph.initial_tiles()):
        heapq.heappush(heap, (priority(t), t))

    edge_store: Dict[Tuple[TileIndex, TileIndex], np.ndarray] = {}
    kept_edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = (
        {} if keep_edges else None
    )
    tracker = EdgeMemoryTracker()
    tile_order: List[TileIndex] = []
    cells_computed = 0

    loop_vars = spec.loop_vars
    local_vars = spaces.local_vars
    widths = spec.tile_width_vector()

    while heap:
        _, tile = heapq.heappop(heap)
        tile_order.append(tile)
        array = np.full(layout.padded_shape, np.nan, dtype=np.float64)

        # Unpack incoming edges into the ghost margins.
        for producer in graph.producers[tile]:
            delta = delta_between(tile, producer)
            plan = program.pack_plans[delta]
            buffer = edge_store.pop((producer, tile))
            tracker.remove_edge((producer, tile))
            env = dict(params)
            env.update(spaces.tile_env(producer))
            plan.unpack(env, buffer, array, layout, local_vars)

        # Execute the tile's local iteration space in the legal order.
        tile_env = dict(params)
        tile_env.update(spaces.tile_env(tile))
        scan = compile_scanner(spaces.local_nest, local_directions)
        for local in scan(tile_env):
            point = {
                x: widths[k] * tile[k] + local[k] for k, x in enumerate(loop_vars)
            }
            genv = dict(params)
            genv.update(point)
            deps: Dict[str, Optional[float]] = {}
            for name, vec in template_items:
                ok = all(check_fns[idx](genv) for idx in per_template[name])
                if ok:
                    ghost = tuple(i + r for i, r in zip(local, vec))
                    value = array[layout.array_index(ghost)]
                    if np.isnan(value):
                        raise RuntimeExecutionError(
                            f"tile {tile}: dependency {name} of point "
                            f"{point} is valid but its value was never "
                            "computed or delivered"
                        )
                    deps[name] = float(value)
                else:
                    deps[name] = None
            result = kernel(point, deps, params)
            array[layout.array_index(local)] = result
            cells_computed += 1
            key = tuple(point[v] for v in loop_vars)
            if values is not None:
                values[key] = float(result)
            if key == objective_key:
                objective_value = float(result)

        # Pack outgoing edges, deliver to consumers, release the tile.
        for consumer in graph.consumers[tile]:
            delta = delta_between(consumer, tile)
            plan = program.pack_plans[delta]
            env = dict(params)
            env.update(spaces.tile_env(tile))
            buffer = plan.pack(env, array, layout, local_vars)
            edge_store[(tile, consumer)] = buffer
            if kept_edges is not None:
                kept_edges[(tile, consumer)] = buffer.copy()
            tracker.add_edge((tile, consumer), len(buffer))
            remaining[consumer] -= 1
            if remaining[consumer] == 0:
                heapq.heappush(heap, (priority(consumer), consumer))
            elif remaining[consumer] < 0:
                raise RuntimeExecutionError(
                    f"tile {consumer} received more edges than it has "
                    "producers"
                )

    if len(tile_order) != len(graph.tiles):
        raise RuntimeExecutionError(
            f"executed {len(tile_order)} of {len(graph.tiles)} tiles; "
            "the dependency graph deadlocked"
        )
    if cells_computed != graph.total_work():
        raise RuntimeExecutionError(
            f"computed {cells_computed} cells but the graph holds "
            f"{graph.total_work()} points"
        )
    if edge_store:
        raise RuntimeExecutionError(
            f"{len(edge_store)} edges were packed but never consumed"
        )

    return ExecutionResult(
        objective_point=objective,
        objective_value=objective_value,
        tiles_executed=len(tile_order),
        cells_computed=cells_computed,
        tile_order=tile_order,
        memory=tracker.snapshot(),
        values=values,
        edges=kept_edges,
    )


def solve_reference(
    program: GeneratedProgram,
    params: Mapping[str, int],
    kernel: Optional[Kernel] = None,
    record_values: bool = False,
):
    """Untiled oracle: scan the original iteration space in scan order.

    Exercises none of the tiling machinery — a second, independent path
    to the same numbers, used by tests to validate the tiled executor.
    """
    spec = program.spec
    if kernel is None:
        kernel = spec.kernel
    if kernel is None:
        raise RuntimeExecutionError("no kernel available")
    params = dict(params)
    check_fns, per_template = _compile_checks(program)
    directions = spec.scan_directions()
    store: Dict[Tuple[int, ...], float] = {}
    objective = spec.objective(params)
    objective_key = tuple(objective[v] for v in spec.loop_vars)
    objective_value = None
    for env in program.spaces.original_nest.iterate(params, directions):
        point = {v: env[v] for v in spec.loop_vars}
        genv = dict(params)
        genv.update(point)
        deps: Dict[str, Optional[float]] = {}
        for name, vec in spec.templates.items():
            ok = all(check_fns[idx](genv) for idx in per_template[name])
            if ok:
                key = tuple(point[v] + r for v, r in zip(spec.loop_vars, vec))
                deps[name] = store[key]
            else:
                deps[name] = None
        value = float(kernel(point, deps, params))
        key = tuple(point[v] for v in spec.loop_vars)
        store[key] = value
        if key == objective_key:
            objective_value = value
    return ExecutionResult(
        objective_point=objective,
        objective_value=objective_value,
        tiles_executed=0,
        cells_computed=len(store),
        tile_order=[],
        memory={},
        values=store if record_values else None,
    )
