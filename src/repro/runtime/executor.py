"""In-process execution of a generated program (paper Section V).

This is the Python twin of the generated C runtime.  The scheduling
protocol — pending tiles, priority-ordered ready queues, packed-edge
buffering — lives in one place, :class:`repro.runtime.scheduler.TileScheduler`;
this module is the *numeric driver* of that core: each started tile
allocates a padded array, unpacks the incoming edges into its ghost
margins, scans its local iteration space in the legal direction
evaluating the user kernel, packs its outgoing edges, and frees the
array — only edges stay buffered, which is the paper's memory-saving
design (Section V-B).

Two center-loop engines share that outer protocol:

* the **interpreter** evaluates the scalar Python kernel point by point
  (slow, obviously correct), and
* the **vectorized fast path** (:mod:`repro.runtime.fastpath`) evaluates
  whole anti-diagonal wavefronts with numpy array expressions when the
  spec carries a vector kernel.

``execute(..., mode=...)`` selects the engine: ``"auto"`` (default)
uses the fast path whenever the program supports it and falls back to
the interpreter otherwise; ``"interpret"``/``"vector"`` force one
engine (``"vector"`` raises when unsupported).  ``execute(..., ranks=P)``
with ``P > 1`` partitions the tiles by the load balancer's rank
assignment and runs the multi-rank SPMD harness
(:mod:`repro.runtime.spmd`) instead of the single-rank driver; results
are bit-identical by construction.  All loop-invariant compiled
artifacts — the local-space scanner, the validity-check closures, the
vector engine — are cached per program in a :class:`CompiledExecutor`,
so repeated runs (benchmarks, calibration sweeps) stop re-deriving
them.

Every numerical result is produced here by actually evaluating the
recurrence; tests compare the outputs against independent brute-force
solvers, and the fast path is pinned bit-identical to the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..polyhedra.compile import compile_scanner
from ..spec import Kernel
from .fastpath import (
    VectorTileEngine,
    WavefrontEngine,
    WavefrontRun,
    vector_unsupported_reason,
)
from .graph import TileGraph, TileIndex, tile_graph
from .scheduler import TileScheduler, TransitionEvent

EXECUTION_MODES = ("auto", "interpret", "vector", "wavefront")


@dataclass
class ExecutionResult:
    """Outcome of one in-process run."""

    objective_point: Dict[str, int]
    objective_value: Optional[float]
    tiles_executed: int
    cells_computed: int
    tile_order: List[TileIndex]
    memory: Dict[str, int]
    values: Optional[Dict[Tuple[int, ...], float]] = None
    #: With ``keep_edges=True``: every packed edge, keyed by
    #: (producer, consumer) — the raw material of solution recovery
    #: (paper Section VII-A).
    edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = None
    #: Which center-loop engine produced the numbers ("interpret"/"vector").
    mode: str = "interpret"
    #: Which SPMD transport ran the ranks: "inline" (cooperative,
    #: single-thread — also the value for plain single-rank runs) or
    #: "process" (one OS process per rank over shared memory).
    backend: str = "inline"
    #: How many SPMD ranks executed the run (1 = the plain executor).
    ranks: int = 1
    #: Per-rank edge-memory snapshots (same keys as ``memory``, which
    #: aggregates across ranks).  Cells are float64 state-array elements;
    #: multiply by 8 for bytes.
    memory_per_rank: Optional[List[Dict[str, int]]] = None
    #: Tiles executed by each rank.
    tiles_per_rank: Optional[List[int]] = None
    #: Edges that crossed a rank boundary (one in-memory message each —
    #: the analogue of the generated C's MPI message count).
    cross_rank_messages: int = 0
    cross_rank_cells: int = 0
    #: With ``record_events=True``: the scheduler's transition trace.
    events: Optional[List[TransitionEvent]] = None
    #: Which schedule policy ordered the ready set ("dynamic"/"static";
    #: an ``execute(schedule="auto")`` run reports the tuner's choice).
    schedule: str = "dynamic"
    #: The tile widths the run actually used, per loop var — either the
    #: spec's, an explicit ``tile_widths=`` override, or the tuner's
    #: choice under ``schedule="auto"``.
    tile_widths: Optional[Dict[str, int]] = None

    def value_at(self, point: Mapping[str, int], loop_vars) -> float:
        if self.values is None:
            raise RuntimeExecutionError(
                "run with record_values=True to query arbitrary points"
            )
        key = tuple(point[v] for v in loop_vars)
        return self.values[key]

    @property
    def peak_edge_cells_per_rank(self) -> Optional[List[int]]:
        if self.memory_per_rank is None:
            return None
        return [m["peak_cells"] for m in self.memory_per_rank]


def _compile_checks(program: GeneratedProgram):
    """Turn validity constraints into fast integer closures.

    Returns ``(check_fns, per_template)`` where each check function maps a
    global environment (loop vars + params) to bool.  Prefer
    :attr:`CompiledExecutor.validity_checks` (cached per program via
    :func:`compiled_executor`) over calling this directly.
    """
    check_fns = []
    for c in program.validity.checks:
        # Integral coefficients stay plain ints (the fast common case);
        # rational coefficients keep their exact Fraction so the
        # interpreter still evaluates the check correctly — the vector
        # engine rejects such programs at construction and auto mode
        # falls back here.
        items = [
            (name, coef.numerator if coef.denominator == 1 else coef)
            for name, coef in c.expr.terms()
        ]
        const = c.expr.constant
        const_i = const.numerator if const.denominator == 1 else const
        is_eq = c.is_equality()

        def fn(env, items=tuple(items), const_i=const_i, is_eq=is_eq):
            total = const_i
            for name, coef in items:
                total += coef * env[name]
            return total == 0 if is_eq else total >= 0

        check_fns.append(fn)
    per_template = {
        name: tuple(ids) for name, ids in program.validity.per_template.items()
    }
    return check_fns, per_template


class _RunState:
    """Per-run numeric state: one tile body shared by every driver.

    Owns the objective bookkeeping, the optional ``values`` record, and
    the reused per-point environments of the interpreter.
    :meth:`execute_tile` evaluates one tile's local iteration space
    (ghosts already unpacked into *array*) with whichever engine the run
    resolved to — the single-rank executor and the multi-rank SPMD
    harness call exactly the same body, which is what makes their
    numbers bit-identical regardless of scheduling.
    """

    def __init__(
        self,
        ce: "CompiledExecutor",
        params: Dict[str, int],
        kernel: Optional[Kernel],
        engine: Optional[VectorTileEngine],
        record_values: bool,
    ):
        self.ce = ce
        self.params = params
        self.kernel = kernel
        self.engine = engine
        spec = ce.spec
        self.objective = spec.objective(params)
        self.objective_key = tuple(
            self.objective[v] for v in spec.loop_vars
        )
        self.objective_tile = ce.program.spaces.point_to_tile(self.objective)
        self.objective_value: Optional[float] = None
        self.values: Optional[Dict[Tuple[int, ...], float]] = (
            {} if record_values else None
        )
        self.cells_computed = 0
        # Reused per-point environments for the interpreter: one global
        # env for the validity checks (params + loop vars, updated in
        # place), one point dict for the kernel, one deps dict.  Nothing
        # is reallocated inside the inner loop.
        self._genv: Dict[str, int] = dict(params)
        self._point: Dict[str, int] = {}
        self._deps: Dict[str, Optional[float]] = {}

    def note_objective(self, tile: TileIndex, array: np.ndarray) -> None:
        """Record the objective cell if *tile* holds it (array engines).

        The vector and wavefront engines write whole arrays instead of
        visiting points one by one, so the objective is read back from
        the tile's padded array after evaluation; NaN means the
        objective point is outside the iteration space (prefix runs).
        """
        if tile != self.objective_tile:
            return
        spec = self.ce.spec
        widths = spec.tile_width_vector()
        local = tuple(
            self.objective[x] - widths[k] * tile[k]
            for k, x in enumerate(spec.loop_vars)
        )
        value = array[self.ce.program.layout.array_index(local)]
        if not np.isnan(value):
            self.objective_value = float(value)

    def execute_tile(self, tile: TileIndex, array: np.ndarray) -> int:
        """Evaluate every in-space cell of *tile*; returns cells computed."""
        ce = self.ce
        spec = ce.spec
        layout = ce.program.layout
        widths = spec.tile_width_vector()
        values = self.values
        engine = self.engine
        if engine is not None:
            cells = engine.execute_tile(tile, array, self.params, values)
            self.note_objective(tile, array)
            self.cells_computed += cells
            return cells

        kernel = self.kernel
        genv = self._genv
        point = self._point
        deps = self._deps
        objective_key = self.objective_key
        check_fns = ce.check_fns
        per_template = ce.per_template
        tile_env = dict(self.params)
        tile_env.update(ce.program.spaces.tile_env(tile))
        cells = 0
        for local in ce.scan(tile_env):
            for k, x in enumerate(spec.loop_vars):
                g = widths[k] * tile[k] + local[k]
                point[x] = g
                genv[x] = g
            # Key taken before the kernel call: a kernel mutating
            # its point dict must not corrupt the recorded cell.
            key = tuple(genv[x] for x in spec.loop_vars)
            for name, vec in ce.template_items:
                ok = all(
                    check_fns[idx](genv) for idx in per_template[name]
                )
                if ok:
                    ghost = tuple(i + r for i, r in zip(local, vec))
                    value = array[layout.array_index(ghost)]
                    if np.isnan(value):
                        raise RuntimeExecutionError(
                            f"tile {tile}: dependency {name} of "
                            f"point {dict(point)} is valid but its "
                            "value was never computed or delivered"
                        )
                    deps[name] = float(value)
                else:
                    deps[name] = None
            result = kernel(point, deps, self.params)
            array[layout.array_index(local)] = result
            cells += 1
            if values is not None:
                values[key] = float(result)
            if key == objective_key:
                self.objective_value = float(result)
        self.cells_computed += cells
        return cells


class CompiledExecutor:
    """Per-program cache of every loop-invariant execution artifact.

    Construction compiles the local-space scanner and the validity-check
    closures exactly once; the vectorized engine is built lazily on the
    first run that can use it.  One instance is cached on the program
    (see :func:`compiled_executor`), so benchmarks and calibration that
    execute the same program repeatedly pay the derivation cost once.
    """

    def __init__(self, program: GeneratedProgram):
        self.program = program
        self.spec = program.spec
        spaces = program.spaces
        directions_x = self.spec.scan_directions()
        self.local_directions = {
            spaces.local_vars[k]: directions_x[x]
            for k, x in enumerate(self.spec.loop_vars)
        }
        # Loop-invariant across tiles AND runs: compiled once here, never
        # inside the tile loop (it used to be recompiled per tile).
        self.scan = compile_scanner(spaces.local_nest, self.local_directions)
        self.check_fns, self.per_template = _compile_checks(program)
        self.template_items = list(self.spec.templates.items())
        self._vector_engine: Optional[VectorTileEngine] = None
        self._vector_reason: Optional[str] = None
        self._vector_probed = False
        self._wavefront_engine: Optional[WavefrontEngine] = None
        self._wavefront_reason: Optional[str] = None
        self._wavefront_probed = False

    # -- public compiled artifacts --------------------------------------------

    @property
    def validity_checks(self):
        """The compiled validity checks: ``(check_fns, per_template)``.

        ``check_fns[i]`` maps a global environment (params + loop vars)
        to bool; ``per_template[name]`` lists the check ids guarding the
        template.  Public so solution recovery and analysis tooling
        reuse the executor's compiled closures instead of re-deriving
        them.
        """
        return self.check_fns, self.per_template

    # -- engine selection -----------------------------------------------------

    @property
    def vector_engine(self) -> Optional[VectorTileEngine]:
        """The vectorized engine, or None with ``vector_reason`` set.

        Engine *construction* failures (e.g. non-integral check
        constraints the interval analysis cannot split) fold into the
        reason instead of escaping, so auto mode degrades to the
        interpreter rather than crashing after dispatch committed.
        """
        if not self._vector_probed:
            self._vector_probed = True
            reason = vector_unsupported_reason(self.program)
            if reason is None:
                try:
                    self._vector_engine = VectorTileEngine(self.program)
                except RuntimeExecutionError as exc:
                    self._vector_reason = (
                        f"vector engine construction failed: {exc}"
                    )
            else:
                self._vector_reason = reason
        return self._vector_engine

    @property
    def vector_reason(self) -> Optional[str]:
        self.vector_engine  # noqa: B018 - force the probe
        return self._vector_reason

    @property
    def wavefront_engine(self) -> Optional[WavefrontEngine]:
        """The wavefront-fused batch engine, or None with a reason set.

        Requires the per-tile vector engine (same support condition);
        shares its compiled artifacts.
        """
        if not self._wavefront_probed:
            self._wavefront_probed = True
            if self.vector_engine is None:
                self._wavefront_reason = self._vector_reason
            else:
                try:
                    self._wavefront_engine = WavefrontEngine(
                        self.program, tile_engine=self.vector_engine
                    )
                except RuntimeExecutionError as exc:
                    self._wavefront_reason = (
                        f"wavefront engine construction failed: {exc}"
                    )
        return self._wavefront_engine

    @property
    def wavefront_reason(self) -> Optional[str]:
        self.wavefront_engine  # noqa: B018 - force the probe
        return self._wavefront_reason

    def resolve_mode(
        self,
        mode: str,
        kernel: Optional[Kernel],
        keep_edges: bool = False,
    ) -> str:
        """Dispatch ``auto``/``interpret``/``vector``/``wavefront`` to a
        concrete engine.

        Auto prefers the wavefront-fused batch path, stepping down to
        the per-tile vector engine when the run must retain packed edges
        (``keep_edges`` — wavefront interior edges are array views,
        never packed) and to the interpreter when the program has no
        vector kernel, a custom scalar kernel, or engine construction
        failed.  Forced modes raise instead of degrading.
        """
        if mode not in EXECUTION_MODES:
            raise RuntimeExecutionError(
                f"unknown execution mode {mode!r}; expected one of "
                f"{EXECUTION_MODES}"
            )
        if mode == "interpret":
            return "interpret"
        custom_kernel = kernel is not None and kernel is not self.spec.kernel
        if custom_kernel:
            if mode in ("vector", "wavefront"):
                raise RuntimeExecutionError(
                    f"{mode} mode cannot run a custom scalar kernel; pass "
                    "mode='interpret' or a spec with a matching vector_kernel"
                )
            return "interpret"
        if self.vector_engine is None:
            if mode == "vector":
                raise RuntimeExecutionError(
                    f"vector mode unavailable: {self._vector_reason}"
                )
            if mode == "wavefront":
                raise RuntimeExecutionError(
                    f"wavefront mode unavailable: {self._vector_reason}"
                )
            return "interpret"
        if mode == "vector":
            return "vector"
        if mode == "wavefront":
            if keep_edges:
                raise RuntimeExecutionError(
                    "wavefront mode cannot retain packed edges: interior "
                    "edges are array views, never packed; use "
                    "mode='vector' with keep_edges=True"
                )
            if self.wavefront_engine is None:
                raise RuntimeExecutionError(
                    f"wavefront mode unavailable: {self._wavefront_reason}"
                )
            return "wavefront"
        # auto
        if keep_edges or self.wavefront_engine is None:
            return "vector"
        return "wavefront"

    def make_run_state(
        self,
        params: Dict[str, int],
        kernel: Optional[Kernel],
        resolved: str,
        record_values: bool,
    ) -> _RunState:
        """The per-run numeric state for one resolved engine (see
        :class:`_RunState`); drivers call ``state.execute_tile`` per
        started tile."""
        if resolved == "interpret":
            if kernel is None:
                kernel = self.spec.kernel
            if kernel is None:
                raise RuntimeExecutionError(
                    f"problem {self.spec.name!r} has no Python kernel; "
                    "pass kernel="
                )
        engine = self.vector_engine if resolved == "vector" else None
        return _RunState(self, params, kernel, engine, record_values)

    # -- the run --------------------------------------------------------------

    def run(
        self,
        params: Mapping[str, int],
        kernel: Optional[Kernel] = None,
        priority_scheme: str = "lb-first",
        record_values: bool = False,
        graph: Optional[TileGraph] = None,
        keep_edges: bool = False,
        mode: str = "auto",
        record_events: bool = False,
        schedule: str = "dynamic",
    ) -> ExecutionResult:
        """One single-rank run: drive the scheduler core, tile by tile."""
        program = self.program
        resolved = self.resolve_mode(mode, kernel, keep_edges)
        params = dict(params)
        if graph is None:
            graph = tile_graph(program, params)
        if resolved == "wavefront":
            return self._run_wavefront(
                params, graph, priority_scheme, record_values, record_events,
                schedule,
            )
        spaces = program.spaces
        layout = program.layout
        local_vars = spaces.local_vars
        deltas = program.deltas
        pack_plans = program.pack_plans

        state = self.make_run_state(params, kernel, resolved, record_values)
        sched = TileScheduler(
            graph,
            priority_scheme=priority_scheme,
            record_events=record_events,
            schedule=schedule,
        )
        sched.seed()

        tile_tuples = graph.tile_tuples
        kept_edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = (
            {} if keep_edges else None
        )
        tile_order: List[TileIndex] = []

        while True:
            row = sched.start_tile(0)
            if row is None:
                break
            tile = tile_tuples[row]
            tile_order.append(tile)
            array = np.full(layout.padded_shape, np.nan, dtype=np.float64)

            # Unpack incoming edges into the ghost margins.
            for producer, delta_id, buffer in sched.consume_edges(row):
                plan = pack_plans[deltas[delta_id]]
                env = dict(params)
                env.update(spaces.tile_env(tile_tuples[producer]))
                plan.unpack(env, buffer, array, layout, local_vars)

            # Execute the tile's local iteration space in the legal order.
            state.execute_tile(tile, array)

            # Pack outgoing edges, deliver to consumers, release the tile.
            tile_env = dict(params)
            tile_env.update(spaces.tile_env(tile))
            for consumer, delta_id, _, _ in sched.outgoing(row):
                plan = pack_plans[deltas[delta_id]]
                buffer = plan.pack(tile_env, array, layout, local_vars)
                if kept_edges is not None:
                    kept_edges[(tile, tile_tuples[consumer])] = buffer.copy()
                sched.send_edge(row, consumer, buffer, len(buffer))
                sched.deliver_edge(consumer)
            sched.finish_tile(row)

        sched.verify_drained()
        if state.cells_computed != graph.total_work():
            raise RuntimeExecutionError(
                f"computed {state.cells_computed} cells but the graph holds "
                f"{graph.total_work()} points"
            )

        return ExecutionResult(
            objective_point=state.objective,
            objective_value=state.objective_value,
            tiles_executed=len(tile_order),
            cells_computed=state.cells_computed,
            tile_order=tile_order,
            memory=sched.memory_snapshot(),
            values=state.values,
            edges=kept_edges,
            mode=resolved,
            ranks=1,
            memory_per_rank=sched.memory_per_rank(),
            tiles_per_rank=list(sched.finished_per_rank),
            events=sched.events,
            schedule=schedule,
            tile_widths=dict(self.spec.tile_widths),
        )

    def _run_wavefront(
        self,
        params: Dict[str, int],
        graph: TileGraph,
        priority_scheme: str,
        record_values: bool,
        record_events: bool,
        schedule: str = "dynamic",
    ) -> ExecutionResult:
        """One single-rank wavefront-fused run: drain whole fronts.

        The batch scheduler pops every ready tile of the current static
        wavefront level at once and :class:`WavefrontRun` evaluates the
        front against one shared padded array — interior edges travel as
        array slices, so nothing is ever packed (the priority scheme is
        irrelevant here: the schedule *is* the level order).  The
        per-tile path stays the oracle; results are pinned bit-identical
        in tests/test_wavefront.py.
        """
        state = self.make_run_state(params, None, "wavefront", record_values)
        sched = TileScheduler(
            graph,
            priority_scheme=priority_scheme,
            record_events=record_events,
            batch=True,
            schedule=schedule,
        )
        sched.seed()
        # One ghost-array arena sized for the widest static front,
        # reused by every execute_batch call instead of a fresh
        # allocation per front (results are read out before the next
        # batch overwrites it).
        cap = int(np.bincount(graph.wavefront_levels()).max())
        arena = np.empty(
            (cap,) + tuple(self.program.layout.padded_shape),
            dtype=np.float64,
        )
        run = WavefrontRun(
            self.wavefront_engine, graph, params, values=state.values,
            arena=arena,
        )

        tile_tuples = graph.tile_tuples
        tile_order: List[TileIndex] = []
        while True:
            rows = sched.start_batch(0)
            if not rows:
                break
            batch = run.execute_batch(rows)
            for b, row in enumerate(rows):
                tile = tile_tuples[row]
                tile_order.append(tile)
                state.note_objective(tile, batch[b])
                for consumer, _, _, _ in sched.outgoing(row):
                    sched.deliver_edge(consumer)
                sched.finish_tile(row)

        sched.verify_drained()
        run.verify_drained()
        state.cells_computed = run.cells
        if state.cells_computed != graph.total_work():
            raise RuntimeExecutionError(
                f"computed {state.cells_computed} cells but the graph holds "
                f"{graph.total_work()} points"
            )

        return ExecutionResult(
            objective_point=state.objective,
            objective_value=state.objective_value,
            tiles_executed=len(tile_order),
            cells_computed=state.cells_computed,
            tile_order=tile_order,
            memory=sched.memory_snapshot(),
            values=state.values,
            edges=None,
            mode="wavefront",
            ranks=1,
            memory_per_rank=sched.memory_per_rank(),
            tiles_per_rank=list(sched.finished_per_rank),
            events=sched.events,
            schedule=schedule,
            tile_widths=dict(self.spec.tile_widths),
        )


def compiled_executor(program: GeneratedProgram) -> CompiledExecutor:
    """The per-program :class:`CompiledExecutor`, built once and cached."""
    cached = getattr(program, "_compiled_executor", None)
    if cached is None:
        cached = CompiledExecutor(program)
        program._compiled_executor = cached
    return cached


def execute(
    program: GeneratedProgram,
    params: Mapping[str, int],
    kernel: Optional[Kernel] = None,
    priority_scheme: str = "lb-first",
    record_values: bool = False,
    graph: Optional[TileGraph] = None,
    keep_edges: bool = False,
    mode: str = "auto",
    ranks: int = 1,
    lb_method: str = "dimension-cut",
    record_events: bool = False,
    backend: str = "inline",
    schedule: str = "dynamic",
    tile_widths: Optional[Mapping[str, int]] = None,
) -> ExecutionResult:
    """Solve the problem instance and return the objective value.

    *kernel* defaults to the spec's Python kernel.  *record_values*
    additionally returns every computed cell (use only on small
    instances).  A prebuilt *graph* can be passed to amortize graph
    construction across runs with identical parameters.  *keep_edges*
    retains every packed edge after the run — O(n^(d-1)) memory instead
    of the O(n^d) full space — enabling solution recovery by on-the-fly
    tile recomputation (paper Section VII-A; see
    :class:`repro.runtime.recover.SolutionRecovery`).  *mode* selects
    the center-loop engine: ``"auto"`` (wavefront-fused batch execution
    when the spec has a vector kernel and no custom *kernel* is given,
    stepping down to the per-tile vector engine under *keep_edges* and
    to the interpreter otherwise), ``"interpret"``, ``"vector"``, or
    ``"wavefront"`` (forced modes raise when the engine cannot run this
    program).  *ranks* > 1 partitions the tiles
    with the load balancer (*lb_method*) and runs the SPMD harness —
    same numbers, plus per-rank accounting and cross-rank message
    counts.  *record_events* returns the scheduler's transition trace
    in ``ExecutionResult.events``.  *backend* selects the multi-rank
    transport: ``"inline"`` (default — ranks interleaved cooperatively
    in this thread, the deterministic oracle) or ``"process"`` (one OS
    worker process per rank over ``multiprocessing.shared_memory``
    ghost arrays, for real multi-core wall-clock wins; see
    :mod:`repro.runtime.parallel`).  *schedule* selects the scheduler's
    ready-set policy: ``"dynamic"`` (priority heaps, the default),
    ``"static"`` (precomputed wavefront levels released behind arrival
    barriers), or ``"auto"`` (the simulator-driven tuner of
    :mod:`repro.runtime.tuner` picks policy *and* tile widths, cached
    on disk per program/params/machine).  *tile_widths* overrides the
    spec's widths for this run (an int applies to every loop var); the
    program is re-tiled through the generator, so pass it instead of —
    not alongside — a prebuilt *graph*.  Both policies produce
    bit-identical values; the chosen policy and widths are reported in
    ``ExecutionResult.schedule``/``tile_widths``.
    """
    if schedule not in ("dynamic", "static", "auto"):
        raise RuntimeExecutionError(
            f"unknown schedule {schedule!r}; expected 'dynamic', "
            "'static', or 'auto'"
        )
    if tile_widths is not None:
        from .tuner import normalize_tile_widths, retile_program

        widths = normalize_tile_widths(program.spec, tile_widths)
        if widths != dict(program.spec.tile_widths):
            if graph is not None:
                raise RuntimeExecutionError(
                    "a prebuilt graph fixes the tiling; pass either "
                    "graph= or tile_widths=, not both"
                )
            program = retile_program(program, widths)
    if schedule == "auto":
        from .tuner import retile_program, tune

        # A prebuilt graph (or explicit widths) pins the tiling — the
        # tuner then only chooses the policy for the current widths.
        pin_widths = graph is not None or tile_widths is not None
        decision = tune(
            program,
            params,
            quick=True,
            tile_width_candidates=(
                [dict(program.spec.tile_widths)] if pin_widths else None
            ),
        )
        schedule = decision.schedule
        if decision.tile_widths != dict(program.spec.tile_widths):
            program = retile_program(program, decision.tile_widths)
    if backend != "inline" or ranks > 1:
        from .spmd import run_spmd

        return run_spmd(
            program,
            params,
            ranks=ranks,
            kernel=kernel,
            priority_scheme=priority_scheme,
            record_values=record_values,
            graph=graph,
            keep_edges=keep_edges,
            mode=mode,
            lb_method=lb_method,
            record_events=record_events,
            backend=backend,
            schedule=schedule,
        )
    return compiled_executor(program).run(
        params,
        kernel=kernel,
        priority_scheme=priority_scheme,
        record_values=record_values,
        graph=graph,
        keep_edges=keep_edges,
        mode=mode,
        record_events=record_events,
        schedule=schedule,
    )


def solve_reference(
    program: GeneratedProgram,
    params: Mapping[str, int],
    kernel: Optional[Kernel] = None,
    record_values: bool = False,
):
    """Untiled oracle: scan the original iteration space in scan order.

    Exercises none of the tiling machinery — a second, independent path
    to the same numbers, used by tests to validate the tiled executor.
    """
    spec = program.spec
    if kernel is None:
        kernel = spec.kernel
    if kernel is None:
        raise RuntimeExecutionError("no kernel available")
    params = dict(params)
    check_fns, per_template = compiled_executor(program).validity_checks
    directions = spec.scan_directions()
    store: Dict[Tuple[int, ...], float] = {}
    objective = spec.objective(params)
    objective_key = tuple(objective[v] for v in spec.loop_vars)
    objective_value = None
    for env in program.spaces.original_nest.iterate(params, directions):
        point = {v: env[v] for v in spec.loop_vars}
        genv = dict(params)
        genv.update(point)
        deps: Dict[str, Optional[float]] = {}
        for name, vec in spec.templates.items():
            ok = all(check_fns[idx](genv) for idx in per_template[name])
            if ok:
                key = tuple(point[v] + r for v, r in zip(spec.loop_vars, vec))
                deps[name] = store[key]
            else:
                deps[name] = None
        value = float(kernel(point, deps, params))
        key = tuple(point[v] for v in spec.loop_vars)
        store[key] = value
        if key == objective_key:
            objective_value = value
    return ExecutionResult(
        objective_point=objective,
        objective_value=objective_value,
        tiles_executed=0,
        cells_computed=len(store),
        tile_order=[],
        memory={},
        values=store if record_values else None,
    )
