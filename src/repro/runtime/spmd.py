"""Multi-rank SPMD execution harness (paper Sections V–VI, end to end).

``execute(..., ranks=P)`` runs the *whole* generated pipeline the way
the emitted hybrid C program would on an MPI cluster, entirely
in-process: the load balancer's Ehrhart-balanced assignment partitions
the tiles into P ranks, each rank drives its own priority-ordered
schedule against its own edge buffers, and every edge that crosses a
rank boundary travels through an explicit in-memory message queue whose
send/recv ordering mirrors the generated C's MPI protocol:

* **send** — at tile completion the producer rank packs each outgoing
  edge and posts cross-rank edges to the per-``(src, dst)`` FIFO
  channel, in lexicographic consumer order (the order the C runtime
  posts its ``MPI_Isend`` calls);
* **recv** — at the top of its scheduling turn a rank drains every
  inbound channel (ascending source rank, FIFO within a channel) before
  dispatching work, the analogue of the C runtime's message-progress
  poll before the next heap pop;
* **pending accounting** — a cross-rank edge decrements the consumer's
  pending counter only at *recv*, while local edges decrement at pack
  time, exactly like the generated program.

Ranks are interleaved deterministically (round-robin, one tile per
turn), so the transition-event trace is reproducible byte for byte.
Because every tile's numerics depend only on its unpacked ghost cells —
never on global scheduling order — the objective value and every
recorded cell are bit-identical to the single-rank executor; this
harness is the first end-to-end numerical validation of the
load-balance + packing + priority pipeline, and tests pin
``execute(..., ranks=P)`` against ``ranks=1`` exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..spec import Kernel
from .executor import ExecutionResult, compiled_executor
from .fastpath import WavefrontRun
from .graph import TileGraph, TileIndex, tile_graph
from .scheduler import TileScheduler, rank_of_rows

__all__ = ["run_spmd", "spmd_rank_assignment", "validate_rank_of"]

#: The two transports a multi-rank run can use: ``inline`` interleaves
#: ranks cooperatively in this thread (deterministic, the oracle);
#: ``process`` runs each rank as a real ``multiprocessing`` worker over
#: shared-memory segments (:mod:`repro.runtime.parallel`).
SPMD_BACKENDS = ("inline", "process")


def validate_rank_of(
    rank_of, graph: TileGraph, ranks: int
) -> np.ndarray:
    """Validate an explicit per-row rank assignment up front.

    Shape, dtype and range are checked *before* any scheduling state is
    built, so a bad override fails with a message naming the offending
    row instead of surfacing as an opaque downstream error (or worse, a
    silent misroute).
    """
    arr = np.asarray(rank_of)
    if arr.ndim != 1:
        raise RuntimeExecutionError(
            f"rank_of must be a 1-D per-row array, got shape "
            f"{tuple(arr.shape)}"
        )
    T = len(graph.tile_tuples)
    if arr.shape[0] != T:
        raise RuntimeExecutionError(
            f"rank_of covers {arr.shape[0]} rows but the graph has "
            f"{T} tiles"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise RuntimeExecutionError(
            f"rank_of must hold integer ranks, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.int64)
    bad = np.flatnonzero((arr < 0) | (arr >= ranks))
    if bad.size:
        r = int(bad[0])
        raise RuntimeExecutionError(
            f"rank_of[{r}] = {int(arr[r])} assigns tile "
            f"{graph.tile_tuples[r]} outside 0..{ranks - 1}"
        )
    return arr


def spmd_rank_assignment(
    program: GeneratedProgram,
    params: Mapping[str, int],
    graph: TileGraph,
    ranks: int,
    lb_method: str = "dimension-cut",
) -> np.ndarray:
    """Per-row rank assignment from the load balancer.

    Feeds the balancer the slab work the graph already holds, then
    projects every tile row onto its lb slab's node — the exact
    assignment the generated C program computes at startup.
    """
    if ranks == 1:
        return np.zeros(len(graph.tile_tuples), dtype=np.int64)
    balance = program.load_balance(
        dict(params), ranks, method=lb_method, slab_work=graph.slab_work()
    )
    return rank_of_rows(graph, balance)


def run_spmd(
    program: GeneratedProgram,
    params: Mapping[str, int],
    ranks: int,
    kernel: Optional[Kernel] = None,
    priority_scheme: str = "lb-first",
    record_values: bool = False,
    graph: Optional[TileGraph] = None,
    keep_edges: bool = False,
    mode: str = "auto",
    lb_method: str = "dimension-cut",
    record_events: bool = False,
    rank_of: Optional[np.ndarray] = None,
    backend: str = "inline",
    schedule: str = "dynamic",
) -> ExecutionResult:
    """Execute the program across *ranks* SPMD ranks.

    Same signature surface as :func:`repro.runtime.executor.execute`
    plus *lb_method* (how tiles are partitioned) and *rank_of* (an
    explicit per-row rank assignment overriding the load balancer —
    used by tests to probe pathological partitions).  Returns an
    :class:`ExecutionResult` whose per-rank fields
    (``memory_per_rank``, ``tiles_per_rank``, ``cross_rank_messages``)
    are filled in; ``tile_order`` is the global interleaved execution
    order, a valid topological order of the tile DAG.

    *backend* selects the transport: ``"inline"`` (this module — ranks
    interleaved cooperatively in one thread, the deterministic oracle)
    or ``"process"`` (:mod:`repro.runtime.parallel` — one OS process
    per rank over shared-memory segments, for real wall-clock
    parallelism; its ``tile_order`` is per-rank-grouped rather than a
    global interleaving).
    """
    if backend not in SPMD_BACKENDS:
        raise RuntimeExecutionError(
            f"unknown SPMD backend {backend!r}; expected one of "
            f"{SPMD_BACKENDS}"
        )
    if backend == "process":
        from .parallel import run_spmd_process

        return run_spmd_process(
            program,
            params,
            ranks=ranks,
            kernel=kernel,
            priority_scheme=priority_scheme,
            record_values=record_values,
            graph=graph,
            keep_edges=keep_edges,
            mode=mode,
            lb_method=lb_method,
            record_events=record_events,
            rank_of=rank_of,
            schedule=schedule,
        )
    if ranks < 1:
        raise RuntimeExecutionError(f"rank count must be >= 1, got {ranks}")
    ce = compiled_executor(program)
    resolved = ce.resolve_mode(mode, kernel, keep_edges)
    params = dict(params)
    if graph is None:
        graph = tile_graph(program, params)
    if rank_of is None:
        rank_of = spmd_rank_assignment(
            program, params, graph, ranks, lb_method=lb_method
        )
    else:
        rank_of = validate_rank_of(rank_of, graph, ranks)
    if resolved == "wavefront":
        return _run_spmd_wavefront(
            ce,
            program,
            params,
            ranks,
            graph,
            rank_of,
            priority_scheme,
            record_values,
            record_events,
            schedule,
        )

    spaces = program.spaces
    layout = program.layout
    local_vars = spaces.local_vars
    deltas = program.deltas
    pack_plans = program.pack_plans

    state = ce.make_run_state(params, kernel, resolved, record_values)
    sched = TileScheduler(
        graph,
        ranks=ranks,
        rank_of=rank_of,
        priority_scheme=priority_scheme,
        record_events=record_events,
        schedule=schedule,
    )
    sched.seed()

    tile_tuples = graph.tile_tuples
    T = len(tile_tuples)
    kept_edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = (
        {} if keep_edges else None
    )
    tile_order: List[TileIndex] = []

    # One FIFO channel per (source, destination) rank pair; entries are
    # consumer rows whose edge buffer is already in the scheduler's
    # store.  Delivery (the pending decrement) happens at recv.
    channels: Dict[Tuple[int, int], Deque[int]] = {
        (src, dst): deque()
        for src in range(ranks)
        for dst in range(ranks)
        if src != dst
    }

    def drain_inbox(rank: int) -> bool:
        """Receive every queued cross-rank edge addressed to *rank*."""
        received = False
        for src in range(ranks):
            if src == rank:
                continue
            channel = channels[(src, rank)]
            while channel:
                sched.deliver_edge(channel.popleft())
                received = True
        return received

    while sched.finished < T:
        progress = False
        for rank in range(ranks):
            if drain_inbox(rank):
                progress = True
            row = sched.start_tile(rank)
            if row is None:
                continue
            progress = True
            tile = tile_tuples[row]
            tile_order.append(tile)
            array = np.full(layout.padded_shape, np.nan, dtype=np.float64)

            # Unpack incoming edges into the ghost margins.
            for producer, delta_id, buffer in sched.consume_edges(row):
                plan = pack_plans[deltas[delta_id]]
                env = dict(params)
                env.update(spaces.tile_env(tile_tuples[producer]))
                plan.unpack(env, buffer, array, layout, local_vars)

            state.execute_tile(tile, array)

            # Pack outgoing edges: local edges deliver immediately,
            # cross-rank edges post to the destination's FIFO channel.
            tile_env = dict(params)
            tile_env.update(spaces.tile_env(tile))
            for consumer, delta_id, _, dest_rank in sched.outgoing(row):
                plan = pack_plans[deltas[delta_id]]
                buffer = plan.pack(tile_env, array, layout, local_vars)
                if kept_edges is not None:
                    kept_edges[(tile, tile_tuples[consumer])] = buffer.copy()
                sched.send_edge(row, consumer, buffer, len(buffer))
                if dest_rank == rank:
                    sched.deliver_edge(consumer)
                else:
                    channels[(rank, dest_rank)].append(consumer)
            sched.finish_tile(row)
        if not progress:
            raise RuntimeExecutionError(
                f"SPMD deadlock: {sched.finished} of {T} tiles ran, no "
                "rank can make progress"
            )

    undelivered = sum(len(c) for c in channels.values())
    if undelivered:  # pragma: no cover - implied by finished == T
        raise RuntimeExecutionError(
            f"{undelivered} cross-rank messages were never received"
        )
    sched.verify_drained()
    if state.cells_computed != graph.total_work():
        raise RuntimeExecutionError(
            f"computed {state.cells_computed} cells but the graph holds "
            f"{graph.total_work()} points"
        )

    return ExecutionResult(
        objective_point=state.objective,
        objective_value=state.objective_value,
        tiles_executed=len(tile_order),
        cells_computed=state.cells_computed,
        tile_order=tile_order,
        memory=sched.memory_snapshot(),
        values=state.values,
        edges=kept_edges,
        mode=resolved,
        ranks=ranks,
        memory_per_rank=sched.memory_per_rank(),
        tiles_per_rank=list(sched.finished_per_rank),
        cross_rank_messages=sched.cross_rank_messages,
        cross_rank_cells=sched.cross_rank_cells,
        events=sched.events,
        schedule=schedule,
        tile_widths=dict(program.spec.tile_widths),
    )


def _run_spmd_wavefront(
    ce,
    program: GeneratedProgram,
    params: Dict[str, int],
    ranks: int,
    graph: TileGraph,
    rank_of: np.ndarray,
    priority_scheme: str,
    record_values: bool,
    record_events: bool,
    schedule: str = "dynamic",
) -> ExecutionResult:
    """The wavefront-fused SPMD driver: each rank drains whole fronts.

    Per scheduling turn a rank receives its inbound messages, pops every
    ready tile of its lowest static wavefront level
    (:meth:`~repro.runtime.scheduler.TileScheduler.start_batch`) and
    evaluates the batch in one fused operation.  Packed edges survive
    only at rank boundaries — exactly the edges the generated C sends
    over MPI: incoming cross-rank edges are consumed from the
    scheduler's store (:meth:`~TileScheduler.take_edge`) and unpacked
    into the batch's ghost margins, outgoing cross-rank edges are packed
    from the batch and posted to the FIFO channels.  Same-rank edges
    travel as array slices of retained interiors and are never packed,
    so edge-memory accounting here covers cross-rank traffic only.
    """
    spaces = program.spaces
    layout = program.layout
    local_vars = spaces.local_vars
    deltas = program.deltas
    pack_plans = program.pack_plans

    state = ce.make_run_state(params, None, "wavefront", record_values)
    sched = TileScheduler(
        graph,
        ranks=ranks,
        rank_of=rank_of,
        priority_scheme=priority_scheme,
        record_events=record_events,
        batch=True,
        schedule=schedule,
    )
    sched.seed()
    run = WavefrontRun(
        ce.wavefront_engine,
        graph,
        params,
        rank_of=rank_of,
        values=state.values,
    )

    tile_tuples = graph.tile_tuples
    T = len(tile_tuples)
    tile_order: List[TileIndex] = []
    rank_list = rank_of.tolist()
    pptr = graph.prod_ptr.tolist()
    prows = graph.prod_rows.tolist()

    channels: Dict[Tuple[int, int], Deque[int]] = {
        (src, dst): deque()
        for src in range(ranks)
        for dst in range(ranks)
        if src != dst
    }

    def drain_inbox(rank: int) -> bool:
        received = False
        for src in range(ranks):
            if src == rank:
                continue
            channel = channels[(src, rank)]
            while channel:
                sched.deliver_edge(channel.popleft())
                received = True
        return received

    while sched.finished < T:
        progress = False
        for rank in range(ranks):
            if drain_inbox(rank):
                progress = True
            rows = sched.start_batch(rank)
            if not rows:
                continue
            progress = True

            # Collect the batch's cross-rank incoming edges from the
            # packed store; same-rank edges ghost-fill from retained
            # interiors inside execute_batch.
            packed: Dict[Tuple[int, int], np.ndarray] = {}
            for row in rows:
                for e in range(pptr[row], pptr[row + 1]):
                    p = prows[e]
                    if rank_list[p] != rank:
                        packed[(p, row)] = sched.take_edge(p, row)

            batch = run.execute_batch(rows, packed=packed)

            for b, row in enumerate(rows):
                tile = tile_tuples[row]
                tile_order.append(tile)
                state.note_objective(tile, batch[b])
                tile_env = dict(params)
                tile_env.update(spaces.tile_env(tile))
                for consumer, delta_id, _, dest_rank in sched.outgoing(row):
                    if dest_rank == rank:
                        sched.deliver_edge(consumer)
                    else:
                        plan = pack_plans[deltas[delta_id]]
                        buffer = plan.pack(
                            tile_env, batch[b], layout, local_vars
                        )
                        sched.send_edge(row, consumer, buffer, len(buffer))
                        channels[(rank, dest_rank)].append(consumer)
                sched.finish_tile(row)
        if not progress:
            raise RuntimeExecutionError(
                f"SPMD deadlock: {sched.finished} of {T} tiles ran, no "
                "rank can make progress"
            )

    undelivered = sum(len(c) for c in channels.values())
    if undelivered:  # pragma: no cover - implied by finished == T
        raise RuntimeExecutionError(
            f"{undelivered} cross-rank messages were never received"
        )
    sched.verify_drained()
    run.verify_drained()
    state.cells_computed = run.cells
    if state.cells_computed != graph.total_work():
        raise RuntimeExecutionError(
            f"computed {state.cells_computed} cells but the graph holds "
            f"{graph.total_work()} points"
        )

    return ExecutionResult(
        objective_point=state.objective,
        objective_value=state.objective_value,
        tiles_executed=len(tile_order),
        cells_computed=state.cells_computed,
        tile_order=tile_order,
        memory=sched.memory_snapshot(),
        values=state.values,
        edges=None,
        mode="wavefront",
        ranks=ranks,
        memory_per_rank=sched.memory_per_rank(),
        tiles_per_rank=list(sched.finished_per_rank),
        cross_rank_messages=sched.cross_rank_messages,
        cross_rank_cells=sched.cross_rank_cells,
        events=sched.events,
        schedule=schedule,
        tile_widths=dict(program.spec.tile_widths),
    )
