"""Multi-rank SPMD execution harness (paper Sections V–VI, end to end).

``execute(..., ranks=P)`` runs the *whole* generated pipeline the way
the emitted hybrid C program would on an MPI cluster, entirely
in-process: the load balancer's Ehrhart-balanced assignment partitions
the tiles into P ranks, each rank drives its own priority-ordered
schedule against its own edge buffers, and every edge that crosses a
rank boundary travels through an explicit in-memory message queue whose
send/recv ordering mirrors the generated C's MPI protocol:

* **send** — at tile completion the producer rank packs each outgoing
  edge and posts cross-rank edges to the per-``(src, dst)`` FIFO
  channel, in lexicographic consumer order (the order the C runtime
  posts its ``MPI_Isend`` calls);
* **recv** — at the top of its scheduling turn a rank drains every
  inbound channel (ascending source rank, FIFO within a channel) before
  dispatching work, the analogue of the C runtime's message-progress
  poll before the next heap pop;
* **pending accounting** — a cross-rank edge decrements the consumer's
  pending counter only at *recv*, while local edges decrement at pack
  time, exactly like the generated program.

Ranks are interleaved deterministically (round-robin, one tile per
turn), so the transition-event trace is reproducible byte for byte.
Because every tile's numerics depend only on its unpacked ghost cells —
never on global scheduling order — the objective value and every
recorded cell are bit-identical to the single-rank executor; this
harness is the first end-to-end numerical validation of the
load-balance + packing + priority pipeline, and tests pin
``execute(..., ranks=P)`` against ``ranks=1`` exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from ..generator.pipeline import GeneratedProgram
from ..spec import Kernel
from .executor import ExecutionResult, compiled_executor
from .graph import TileGraph, TileIndex, tile_graph
from .scheduler import TileScheduler, rank_of_rows

__all__ = ["run_spmd", "spmd_rank_assignment"]


def spmd_rank_assignment(
    program: GeneratedProgram,
    params: Mapping[str, int],
    graph: TileGraph,
    ranks: int,
    lb_method: str = "dimension-cut",
) -> np.ndarray:
    """Per-row rank assignment from the load balancer.

    Feeds the balancer the slab work the graph already holds, then
    projects every tile row onto its lb slab's node — the exact
    assignment the generated C program computes at startup.
    """
    if ranks == 1:
        return np.zeros(len(graph.tile_tuples), dtype=np.int64)
    balance = program.load_balance(
        dict(params), ranks, method=lb_method, slab_work=graph.slab_work()
    )
    return rank_of_rows(graph, balance)


def run_spmd(
    program: GeneratedProgram,
    params: Mapping[str, int],
    ranks: int,
    kernel: Optional[Kernel] = None,
    priority_scheme: str = "lb-first",
    record_values: bool = False,
    graph: Optional[TileGraph] = None,
    keep_edges: bool = False,
    mode: str = "auto",
    lb_method: str = "dimension-cut",
    record_events: bool = False,
    rank_of: Optional[np.ndarray] = None,
) -> ExecutionResult:
    """Execute the program across *ranks* SPMD ranks, in-process.

    Same signature surface as :func:`repro.runtime.executor.execute`
    plus *lb_method* (how tiles are partitioned) and *rank_of* (an
    explicit per-row rank assignment overriding the load balancer —
    used by tests to probe pathological partitions).  Returns an
    :class:`ExecutionResult` whose per-rank fields
    (``memory_per_rank``, ``tiles_per_rank``, ``cross_rank_messages``)
    are filled in; ``tile_order`` is the global interleaved execution
    order, a valid topological order of the tile DAG.
    """
    if ranks < 1:
        raise RuntimeExecutionError(f"rank count must be >= 1, got {ranks}")
    ce = compiled_executor(program)
    resolved = ce.resolve_mode(mode, kernel)
    params = dict(params)
    if graph is None:
        graph = tile_graph(program, params)
    if rank_of is None:
        rank_of = spmd_rank_assignment(
            program, params, graph, ranks, lb_method=lb_method
        )

    spaces = program.spaces
    layout = program.layout
    local_vars = spaces.local_vars
    deltas = program.deltas
    pack_plans = program.pack_plans

    state = ce.make_run_state(params, kernel, resolved, record_values)
    sched = TileScheduler(
        graph,
        ranks=ranks,
        rank_of=rank_of,
        priority_scheme=priority_scheme,
        record_events=record_events,
    )
    sched.seed()

    tile_tuples = graph.tile_tuples
    T = len(tile_tuples)
    kept_edges: Optional[Dict[Tuple[TileIndex, TileIndex], np.ndarray]] = (
        {} if keep_edges else None
    )
    tile_order: List[TileIndex] = []

    # One FIFO channel per (source, destination) rank pair; entries are
    # consumer rows whose edge buffer is already in the scheduler's
    # store.  Delivery (the pending decrement) happens at recv.
    channels: Dict[Tuple[int, int], Deque[int]] = {
        (src, dst): deque()
        for src in range(ranks)
        for dst in range(ranks)
        if src != dst
    }

    def drain_inbox(rank: int) -> bool:
        """Receive every queued cross-rank edge addressed to *rank*."""
        received = False
        for src in range(ranks):
            if src == rank:
                continue
            channel = channels[(src, rank)]
            while channel:
                sched.deliver_edge(channel.popleft())
                received = True
        return received

    while sched.finished < T:
        progress = False
        for rank in range(ranks):
            if drain_inbox(rank):
                progress = True
            row = sched.start_tile(rank)
            if row is None:
                continue
            progress = True
            tile = tile_tuples[row]
            tile_order.append(tile)
            array = np.full(layout.padded_shape, np.nan, dtype=np.float64)

            # Unpack incoming edges into the ghost margins.
            for producer, delta_id, buffer in sched.consume_edges(row):
                plan = pack_plans[deltas[delta_id]]
                env = dict(params)
                env.update(spaces.tile_env(tile_tuples[producer]))
                plan.unpack(env, buffer, array, layout, local_vars)

            state.execute_tile(tile, array)

            # Pack outgoing edges: local edges deliver immediately,
            # cross-rank edges post to the destination's FIFO channel.
            tile_env = dict(params)
            tile_env.update(spaces.tile_env(tile))
            for consumer, delta_id, _, dest_rank in sched.outgoing(row):
                plan = pack_plans[deltas[delta_id]]
                buffer = plan.pack(tile_env, array, layout, local_vars)
                if kept_edges is not None:
                    kept_edges[(tile, tile_tuples[consumer])] = buffer.copy()
                sched.send_edge(row, consumer, buffer, len(buffer))
                if dest_rank == rank:
                    sched.deliver_edge(consumer)
                else:
                    channels[(rank, dest_rank)].append(consumer)
            sched.finish_tile(row)
        if not progress:
            raise RuntimeExecutionError(
                f"SPMD deadlock: {sched.finished} of {T} tiles ran, no "
                "rank can make progress"
            )

    undelivered = sum(len(c) for c in channels.values())
    if undelivered:  # pragma: no cover - implied by finished == T
        raise RuntimeExecutionError(
            f"{undelivered} cross-rank messages were never received"
        )
    sched.verify_drained()
    if state.cells_computed != graph.total_work():
        raise RuntimeExecutionError(
            f"computed {state.cells_computed} cells but the graph holds "
            f"{graph.total_work()} points"
        )

    return ExecutionResult(
        objective_point=state.objective,
        objective_value=state.objective_value,
        tiles_executed=len(tile_order),
        cells_computed=state.cells_computed,
        tile_order=tile_order,
        memory=sched.memory_snapshot(),
        values=state.values,
        edges=kept_edges,
        mode=resolved,
        ranks=ranks,
        memory_per_rank=sched.memory_per_rank(),
        tiles_per_rank=list(sched.finished_per_rank),
        cross_rank_messages=sched.cross_rank_messages,
        cross_rank_cells=sched.cross_rank_cells,
        events=sched.events,
    )
