"""The rank-aware tile-scheduling core (paper Sections V–VI).

The generated programs have exactly one scheduling protocol: tiles wait
in a pending table until every producer has delivered its packed edge,
move to a priority-ordered ready queue, execute, pack their outgoing
edges, and release — only edges stay buffered between tiles.  This
module owns that state machine once, driven directly off the CSR arrays
of :class:`~repro.runtime.graph.TileGraph`, so every runtime component
is a thin *driver* of the same engine instead of a re-implementation:

* the in-process executor (:mod:`repro.runtime.executor`) runs a single
  rank and plugs real numerics into ``tile_start``/``edge_sent``;
* the SPMD harness (:mod:`repro.runtime.spmd`) runs one logical rank
  per load-balancer node and routes cross-rank edges through explicit
  message queues, mirroring the generated C's MPI protocol;
* the discrete-event simulator (:mod:`repro.simulate.hybrid`) layers a
  :class:`~repro.simulate.machine.MachineModel` *timing policy* on the
  same transition stream — executed and simulated schedules are the
  same object by construction;
* solution recovery (:mod:`repro.runtime.recover`) replays the forward
  pass through the executor driver.

Ready-set management is a swappable *schedule policy*
(:class:`SchedulePolicy`): the paper's dynamic priority-queue protocol
(:class:`DynamicHeapPolicy`, the default) and a static wavefront
schedule (:class:`StaticWavefrontPolicy`) that precomputes per-rank
level buckets from the CSR graph and releases whole levels behind
arrival barriers — no heap, and no per-tile pending-counter updates in
the steady state.  Both policies drive the identical edge lifecycle
(``consume_edges``/``send_edge``/``deliver_edge``), so numerics are
bit-identical and cross-rank message counts match by construction; only
the *order* tiles leave the ready set differs.  See Jin et al.,
"Hybrid Static/Dynamic Schedules for Tiled Polyhedral Programs"
(arXiv:1610.07236) for the tradeoff, and :mod:`repro.runtime.tuner`
for the simulator-driven chooser.

State transitions are observable: with ``record_events=True`` the
scheduler appends one :class:`TransitionEvent` per transition
(``tile_ready``, ``tile_start``, ``edge_sent``, ``tile_done``), in a
deterministic total order (priority heaps break ties by lexicographic
tile rank, drivers sequence ranks deterministically), which tests pin
byte-for-byte across runs.

Edge-buffer accounting is per rank: each rank owns an
:class:`~repro.runtime.memory.EdgeMemoryTracker` charged for the edges
its tiles *consume* (an in-flight cross-rank edge counts against its
destination, the rank that must buffer it until the consumer runs),
plus one aggregate tracker across all ranks.
"""

from __future__ import annotations

import heapq
import re
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RuntimeExecutionError
from .graph import TileGraph, TileIndex
from .memory import EdgeMemoryTracker

__all__ = [
    "TransitionEvent",
    "TileScheduler",
    "SchedulePolicy",
    "DynamicHeapPolicy",
    "StaticWavefrontPolicy",
    "SCHEDULE_POLICIES",
    "rank_of_rows",
    "encode_events",
    "decode_events",
    "TRACE_SCHEMA_VERSION",
    "EVENT_KINDS",
]

#: Schedule policies a :class:`TileScheduler` can be built with.  The
#: ``execute``/CLI layers additionally accept ``"auto"``, which resolves
#: to one of these through :mod:`repro.runtime.tuner` before a scheduler
#: is ever constructed.
SCHEDULE_POLICIES = ("dynamic", "static")

EVENT_KINDS = ("tile_ready", "tile_start", "edge_sent", "tile_done")

#: Version of the ``encode_events`` wire format.  The trace sanitizer
#: (:mod:`repro.analysis.tracecheck`) and any external consumer key on
#: this contract; bump it whenever the line layout of
#: :meth:`TransitionEvent.encode` changes.  The schema is documented in
#: ``docs/architecture.md`` ("The transition-trace schema").
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TransitionEvent:
    """One observable transition of the scheduling state machine.

    ``tile_ready``  — the tile's last pending edge was delivered;
    ``tile_start``  — the tile was popped from its rank's ready queue;
    ``edge_sent``   — the tile packed one outgoing edge (``dest``/
    ``dest_rank``/``cells`` describe the edge; a cross-rank send has
    ``dest_rank != rank``);
    ``tile_done``   — the tile released its state array.
    """

    seq: int
    kind: str
    tile: TileIndex
    rank: int
    dest: Optional[TileIndex] = None
    dest_rank: Optional[int] = None
    cells: int = 0

    def encode(self) -> str:
        """Stable one-line text form (the byte-identical trace unit)."""
        if self.kind == "edge_sent":
            return (
                f"{self.seq} {self.kind} {self.tile} r{self.rank} -> "
                f"{self.dest} r{self.dest_rank} cells={self.cells}"
            )
        return f"{self.seq} {self.kind} {self.tile} r{self.rank}"


def encode_events(events: Sequence[TransitionEvent]) -> bytes:
    """Serialize a transition trace to bytes for exact comparison."""
    return "\n".join(e.encode() for e in events).encode("ascii")


#: One encoded trace line (schema version 1).  ``tile``/``dest`` are the
#: ``repr`` of the tile-index tuple; the ``->`` tail appears on
#: ``edge_sent`` lines only.
_EVENT_LINE = re.compile(
    r"^(?P<seq>\d+) (?P<kind>[a-z_]+) (?P<tile>\(.*?\)) r(?P<rank>\d+)"
    r"(?: -> (?P<dest>\(.*?\)) r(?P<dest_rank>\d+) cells=(?P<cells>\d+))?$"
)


def _parse_tile(text: str) -> TileIndex:
    inner = text.strip("()")
    return tuple(int(p) for p in inner.split(",") if p.strip())


def decode_events(data: bytes) -> List[TransitionEvent]:
    """Parse an :func:`encode_events` trace back into events.

    The inverse of :func:`encode_events` under schema version
    :data:`TRACE_SCHEMA_VERSION`: ``encode_events(decode_events(b)) ==
    b`` for every encoded trace, which tests pin.  Raises
    :class:`RuntimeExecutionError` naming the offending line on any
    malformed input — the trace sanitizer turns that into a stable
    diagnostic rather than a crash.
    """
    events: List[TransitionEvent] = []
    if not data:
        return events
    for lineno, line in enumerate(data.decode("ascii").split("\n"), start=1):
        m = _EVENT_LINE.match(line)
        if m is None:
            raise RuntimeExecutionError(
                f"trace line {lineno} does not match schema version "
                f"{TRACE_SCHEMA_VERSION}: {line!r}"
            )
        kind = m.group("kind")
        if kind not in EVENT_KINDS:
            raise RuntimeExecutionError(
                f"trace line {lineno} has unknown event kind {kind!r}"
            )
        if (m.group("dest") is not None) != (kind == "edge_sent"):
            raise RuntimeExecutionError(
                f"trace line {lineno}: the '-> dest' tail is required "
                f"exactly on edge_sent lines: {line!r}"
            )
        events.append(
            TransitionEvent(
                seq=int(m.group("seq")),
                kind=kind,
                tile=_parse_tile(m.group("tile")),
                rank=int(m.group("rank")),
                dest=(
                    _parse_tile(m.group("dest"))
                    if m.group("dest") is not None
                    else None
                ),
                dest_rank=(
                    int(m.group("dest_rank"))
                    if m.group("dest_rank") is not None
                    else None
                ),
                cells=int(m.group("cells") or 0),
            )
        )
    return events


def rank_of_rows(graph: TileGraph, balance) -> np.ndarray:
    """Per-row owning rank from a load-balancer assignment.

    Projects every tile row onto the lb dimensions and looks its slab up
    in ``balance.slab_node`` — the vectorized twin of
    :meth:`repro.generator.loadbalance.LoadBalance.node_of_tile`.  The
    slab dict is scattered once into a dense array-indexed table over
    the slab bounding box, so the per-row lookup is one fancy-indexed
    gather instead of T hash probes.
    """
    slab_node = balance.slab_node
    keys = np.asarray(graph.lb_key_rows(), dtype=np.int64)
    if keys.ndim == 1:
        keys = keys[:, None]
    T = keys.shape[0]
    out = np.full(T, -1, dtype=np.int64)
    if slab_node:
        slab_keys = np.asarray(list(slab_node.keys()), dtype=np.int64)
        if slab_keys.ndim == 1:
            slab_keys = slab_keys[:, None]
        nodes = np.fromiter(
            slab_node.values(), dtype=np.int64, count=len(slab_node)
        )
        lo = slab_keys.min(axis=0)
        hi = slab_keys.max(axis=0)
        table = np.full(tuple((hi - lo + 1).tolist()), -1, dtype=np.int64)
        table[tuple((slab_keys - lo).T)] = nodes
        inside = np.flatnonzero(np.all((keys >= lo) & (keys <= hi), axis=1))
        if inside.size:
            out[inside] = table[tuple((keys[inside] - lo).T)]
    bad = np.flatnonzero(out < 0)
    if bad.size:
        r = int(bad[0])
        raise RuntimeExecutionError(
            f"tile {graph.tile_tuples[r]} projects to unassigned lb "
            f"slab {tuple(keys[r].tolist())}"
        )
    return out


class SchedulePolicy:
    """Ready-set management strategy of one :class:`TileScheduler`.

    The scheduler owns the edge lifecycle (buffers, trackers, message
    counts) and the transition trace; the policy owns only *which tiles
    are ready and in what order they leave*.  The contract every policy
    must honor:

    * ``make_ready(row)`` — a driver announced a zero-dependency tile;
    * ``deliver_edge(consumer)`` — one incoming edge arrived; returns
      True when the arrival made the consumer startable (its rank's
      ready set now contains it);
    * ``has_ready(rank)`` / ``pop_tile(rank)`` — per-tile drain;
    * ``pop_batch(rank)`` — whole-front drain for the wavefront-fused
      engine: every returned row belongs to one static wavefront level,
      in ascending row order.

    Policies emit ``tile_ready`` through ``sched._emit`` at the moment a
    tile enters the ready set (immediately for the dynamic policy, at
    its level's release barrier for the static one).  Numerics never
    depend on the policy: ghost cells fix every tile's inputs, so any
    topological execution order yields bit-identical values.
    """

    name = "?"

    def __init__(self, sched: "TileScheduler"):
        self.sched = sched

    def make_ready(self, row: int) -> None:
        raise NotImplementedError

    def deliver_edge(self, consumer: int) -> bool:
        raise NotImplementedError

    def has_ready(self, rank: int) -> bool:
        raise NotImplementedError

    def pop_tile(self, rank: int) -> Optional[int]:
        raise NotImplementedError

    def pop_batch(self, rank: int) -> List[int]:
        raise NotImplementedError


class DynamicHeapPolicy(SchedulePolicy):
    """The paper's dynamic protocol: pending counters + priority heaps.

    Every tile waits on a per-tile pending counter; the delivery that
    zeroes it pushes the tile onto its rank's priority heap (``(key,
    row)`` tuples, ties broken by lexicographic tile rank — identical
    ordering to the scalar heap of the generated C).  In batch mode the
    heap is replaced by per-level buckets plus a small per-level heap so
    the wavefront engine pops whole fronts without per-tile heap churn.
    """

    name = "dynamic"

    def __init__(self, sched: "TileScheduler"):
        super().__init__(sched)
        graph = sched.graph
        self._remaining = graph.dependency_count_array().tolist()
        self.ready: List[List[Tuple[tuple, int]]] = [
            [] for _ in range(sched.ranks)
        ]
        if sched.batch:
            self._levels = graph.wavefront_levels().tolist()
            self._buckets: List[Dict[int, List[int]]] = [
                {} for _ in range(sched.ranks)
            ]
            self._level_heaps: List[List[int]] = [
                [] for _ in range(sched.ranks)
            ]

    def make_ready(self, row: int) -> None:
        sched = self.sched
        rank = sched.rank_of[row]
        if sched.batch:
            level = self._levels[row]
            bucket = self._buckets[rank]
            rows = bucket.get(level)
            if rows is None:
                bucket[level] = [row]
                heapq.heappush(self._level_heaps[rank], level)
            else:
                rows.append(row)
        else:
            heapq.heappush(self.ready[rank], (sched.prio[row], row))
        sched._emit("tile_ready", row, rank)

    def deliver_edge(self, consumer: int) -> bool:
        remaining = self._remaining
        remaining[consumer] -= 1
        if remaining[consumer] == 0:
            self.make_ready(consumer)
            return True
        if remaining[consumer] < 0:
            raise RuntimeExecutionError(
                f"tile {self.sched.tile_tuples[consumer]} received more "
                "edges than it has producers"
            )
        return False

    def has_ready(self, rank: int) -> bool:
        if self.sched.batch:
            return bool(self._buckets[rank])
        return bool(self.ready[rank])

    def pop_tile(self, rank: int) -> Optional[int]:
        rq = self.ready[rank]
        if not rq:
            return None
        _, row = heapq.heappop(rq)
        return row

    def pop_batch(self, rank: int) -> List[int]:
        bucket = self._buckets[rank]
        if not bucket:
            return []
        level = heapq.heappop(self._level_heaps[rank])
        return sorted(bucket.pop(level))


class StaticWavefrontPolicy(SchedulePolicy):
    """Static wavefront schedule: precomputed level buckets + barriers.

    The per-rank execution order is fixed at construction from
    :meth:`~repro.runtime.graph.TileGraph.wavefront_levels`: each rank
    runs its level-``l`` rows in ascending row order, and a level is
    *released* once the rank has seen every arrival it statically
    expects for that level — one ``make_ready`` per zero-dependency row
    (level 0) or one ``deliver_edge`` per incoming edge (level > 0).
    The steady state is one dict-counter increment per edge: no heap of
    tiles, and no per-tile pending counters.

    Releases are per (rank, level) barriers, which is *coarser* than
    per-tile readiness — a level releases only after every one of its
    tiles is individually startable, so popping its rows in any order is
    safe.  Deadlock-freedom follows by induction on the globally lowest
    unfinished level: all its arrivals come from strictly lower levels,
    which any fair driver has already drained.  Cross-rank timing can
    release a rank's levels out of order; the released-level heap always
    pops the lowest, preserving the static order per rank.
    """

    name = "static"

    def __init__(self, sched: "TileScheduler"):
        super().__init__(sched)
        graph = sched.graph
        ranks = sched.ranks
        rank_of = sched.rank_of
        self._levels = graph.wavefront_levels().tolist()
        indeg = graph.dependency_count_array().tolist()
        # Per rank: unreleased level -> rows (ascending, by construction
        # since rows are appended in row order), and the arrival barrier
        # (expected counts) each level waits behind.
        buckets: List[Dict[int, List[int]]] = [{} for _ in range(ranks)]
        expected: List[Dict[int, int]] = [{} for _ in range(ranks)]
        for row, level in enumerate(self._levels):
            r = rank_of[row]
            rows = buckets[r].get(level)
            if rows is None:
                buckets[r][level] = [row]
            else:
                rows.append(row)
            # A zero-dependency row arrives once via make_ready; every
            # other row contributes one arrival per incoming edge.
            expected[r][level] = expected[r].get(level, 0) + (
                indeg[row] if indeg[row] else 1
            )
        self._buckets = buckets
        self._expected = expected
        self._arrived: List[Dict[int, int]] = [{} for _ in range(ranks)]
        self._released: List[Dict[int, Deque[int]]] = [
            {} for _ in range(ranks)
        ]
        self._released_heap: List[List[int]] = [[] for _ in range(ranks)]

    def _arrival(self, row: int) -> bool:
        """Count one arrival for *row*'s (rank, level) barrier; True when
        the arrival released the level (the row is now startable)."""
        sched = self.sched
        rank = sched.rank_of[row]
        level = self._levels[row]
        expected = self._expected[rank][level]
        arrived = self._arrived[rank]
        n = arrived.get(level, 0) + 1
        if n > expected:
            raise RuntimeExecutionError(
                f"tile {sched.tile_tuples[row]} received more edges "
                "than it has producers"
            )
        arrived[level] = n
        if n < expected:
            return False
        rows = self._buckets[rank].pop(level)
        for r in rows:
            sched._emit("tile_ready", r, rank)
        self._released[rank][level] = deque(rows)
        heapq.heappush(self._released_heap[rank], level)
        return True

    def make_ready(self, row: int) -> None:
        self._arrival(row)

    def deliver_edge(self, consumer: int) -> bool:
        return self._arrival(consumer)

    def has_ready(self, rank: int) -> bool:
        return bool(self._released[rank])

    def pop_tile(self, rank: int) -> Optional[int]:
        released = self._released[rank]
        if not released:
            return None
        heap = self._released_heap[rank]
        level = heap[0]
        dq = released[level]
        row = dq.popleft()
        if not dq:
            heapq.heappop(heap)
            del released[level]
        return row

    def pop_batch(self, rank: int) -> List[int]:
        released = self._released[rank]
        if not released:
            return []
        level = heapq.heappop(self._released_heap[rank])
        return list(released.pop(level))


_POLICY_CLASSES = {
    "dynamic": DynamicHeapPolicy,
    "static": StaticWavefrontPolicy,
}


class TileScheduler:
    """The pending → ready → running → done state machine over one graph.

    The scheduler owns *logical* scheduling state only — who is ready,
    which edges are buffered where, what transitioned when.  Drivers own
    time (the simulator), numerics (the executor/SPMD harness) and
    message transport (the SPMD queues), and call back in:

    ``make_ready(row)``
        push an unblocked tile onto its rank's priority heap (drivers
        decide *when*: the executor seeds immediately, the simulator at
        the event's simulated arrival time);
    ``start_tile(rank)``
        pop the highest-priority ready tile of one rank;
    ``consume_edges(row)``
        pop and un-account every incoming edge buffer of a starting tile;
    ``send_edge(producer, consumer, ...)``
        buffer one packed outgoing edge (accounted against the
        consumer's rank; cross-rank sends are counted);
    ``deliver_edge(consumer)``
        decrement the pending counter once an edge has *arrived*
        (immediately for local edges; after transport for cross-rank
        edges and simulated messages);
    ``finish_tile(row)``
        release the tile.

    Priority heaps hold ``(priority_key[row], row)``; because a row
    number is the tile's lexicographic rank, ordering is identical to
    the scalar ``(priority(tile), tile)`` heap of the generated C.

    *Which* tiles are ready and in what order they pop is delegated to a
    :class:`SchedulePolicy` selected by ``schedule`` (one of
    :data:`SCHEDULE_POLICIES`); everything above — edge buffers, memory
    trackers, message counts, the transition trace — is policy-blind.
    """

    def __init__(
        self,
        graph: TileGraph,
        ranks: int = 1,
        rank_of: Optional[Sequence[int]] = None,
        priority_scheme: str = "lb-first",
        record_events: bool = False,
        batch: bool = False,
        schedule: str = "dynamic",
    ):
        if ranks < 1:
            raise RuntimeExecutionError(f"rank count must be >= 1, got {ranks}")
        if schedule not in SCHEDULE_POLICIES:
            raise RuntimeExecutionError(
                f"unknown schedule policy {schedule!r}; expected one of "
                f"{SCHEDULE_POLICIES}"
            )
        self.graph = graph
        self.ranks = ranks
        self.tile_tuples = graph.tile_tuples
        T = len(self.tile_tuples)
        if rank_of is None:
            self.rank_of: List[int] = [0] * T
        else:
            self.rank_of = [int(r) for r in rank_of]
            if len(self.rank_of) != T:
                raise RuntimeExecutionError(
                    f"rank assignment covers {len(self.rank_of)} rows but "
                    f"the graph has {T} tiles"
                )
            for row, r in enumerate(self.rank_of):
                if not 0 <= r < ranks:
                    raise RuntimeExecutionError(
                        f"row {row} (tile {self.tile_tuples[row]}) assigned "
                        f"to rank {r} outside 0..{ranks - 1}"
                    )
        # The static policy never consults priority keys — skip deriving
        # them so "no heap" also means no priority-array build.
        self.prio = (
            graph.priority_tuples(priority_scheme)
            if schedule == "dynamic"
            else None
        )
        self._prod_ptr = graph.prod_ptr.tolist()
        self._prod_rows = graph.prod_rows.tolist()
        self._prod_delta = graph.prod_delta.tolist()
        self._cons_ptr = graph.cons_ptr.tolist()
        self._cons_rows = graph.cons_rows.tolist()
        self._cons_delta = graph.cons_delta.tolist()
        self._cons_cells = graph.cons_cells.tolist()
        # Batch mode: start_batch pops whole static wavefront levels at
        # once for the wavefront-fused engine, so the steady state does
        # list appends and one small per-level heap op instead of
        # per-tile heap churn.
        self.batch = batch
        self.schedule = schedule
        self.trackers = [EdgeMemoryTracker(rank=r) for r in range(ranks)]
        # Aggregate accounting across ranks; aliases rank 0's tracker in
        # the single-rank case so the hot path pays for one tracker only.
        self.tracker = self.trackers[0] if ranks == 1 else EdgeMemoryTracker()
        self._store: Dict[Tuple[int, int], np.ndarray] = {}
        self.started = 0
        self.finished = 0
        self.finished_per_rank = [0] * ranks
        self.cross_rank_messages = 0
        self.cross_rank_cells = 0
        self.events: Optional[List[TransitionEvent]] = (
            [] if record_events else None
        )
        self._seq = 0
        self.policy: SchedulePolicy = _POLICY_CLASSES[schedule](self)

    # -- event plumbing -------------------------------------------------------

    def _emit(
        self,
        kind: str,
        row: int,
        rank: int,
        dest: Optional[int] = None,
        dest_rank: Optional[int] = None,
        cells: int = 0,
    ) -> None:
        events = self.events
        if events is None:
            return
        tt = self.tile_tuples
        events.append(
            TransitionEvent(
                seq=self._seq,
                kind=kind,
                tile=tt[row],
                rank=rank,
                dest=tt[dest] if dest is not None else None,
                dest_rank=dest_rank,
                cells=cells,
            )
        )
        self._seq += 1

    # -- pending -> ready ------------------------------------------------------

    def seed(self) -> None:
        """Make every zero-dependency tile ready (drivers with their own
        notion of time call :meth:`make_ready` per row instead)."""
        for row in self.graph.initial_rows().tolist():
            self.make_ready(row)

    def make_ready(self, row: int) -> None:
        self.policy.make_ready(row)

    def deliver_edge(self, consumer: int) -> bool:
        """Record the arrival of one incoming edge; True when the
        consumer became startable (its rank's ready set now holds it —
        immediately under the dynamic policy, at its level's release
        barrier under the static one)."""
        return self.policy.deliver_edge(consumer)

    # -- ready -> running ------------------------------------------------------

    def has_ready(self, rank: int = 0) -> bool:
        return self.policy.has_ready(rank)

    def start_tile(self, rank: int = 0) -> Optional[int]:
        """Pop the next ready tile of *rank* (None = idle): the highest-
        priority one under the dynamic policy, the next row of the
        lowest released level under the static one."""
        if self.batch:
            raise RuntimeExecutionError(
                "scheduler is in batch mode; pop whole fronts with "
                "start_batch instead of start_tile"
            )
        row = self.policy.pop_tile(rank)
        if row is None:
            return None
        self.started += 1
        self._emit("tile_start", row, rank)
        return row

    def start_batch(self, rank: int = 0) -> List[int]:
        """Pop *every* ready tile of *rank*'s lowest wavefront level.

        The batch-drain API of the wavefront-fused executor: all rows of
        one static wavefront level (see
        :meth:`repro.runtime.graph.TileGraph.wavefront_levels`) that are
        currently ready on this rank, in ascending row (lexicographic
        tile) order.  Tiles of one level never depend on each other, so
        a drained batch is safe to evaluate as a single fused operation.
        Returns an empty list when the rank is idle.
        """
        if not self.batch:
            raise RuntimeExecutionError(
                "scheduler was not built with batch=True; start_batch "
                "needs the static wavefront buckets"
            )
        rows = self.policy.pop_batch(rank)
        self.started += len(rows)
        for row in rows:
            self._emit("tile_start", row, rank)
        return rows

    def consume_edges(
        self, row: int
    ) -> Iterator[Tuple[int, int, Optional[np.ndarray]]]:
        """Pop every incoming edge of a starting tile, releasing buffers.

        Yields ``(producer_row, delta_id, buffer)`` in the program's
        delta order — the order the unpack loop wants.  *buffer* is None
        for drivers that schedule without numerics (the simulator).
        """
        ptr = self._prod_ptr
        prod_rows = self._prod_rows
        prod_delta = self._prod_delta
        rank = self.rank_of[row]
        tracker = self.trackers[rank]
        aggregate = self.tracker
        store = self._store
        for e in range(ptr[row], ptr[row + 1]):
            producer = prod_rows[e]
            key = (producer, row)
            tracker.remove_edge(key)
            if aggregate is not tracker:
                aggregate.remove_edge(key)
            yield producer, prod_delta[e], store.pop(key, None)

    def take_edge(
        self, producer: int, consumer: int
    ) -> Optional[np.ndarray]:
        """Pop one buffered edge of a starting tile, releasing its memory.

        The single-edge twin of :meth:`consume_edges`, used by the
        wavefront-fused drivers which consume only their *cross-rank*
        edges through the packed-edge store (interior edges travel as
        array slices and are never packed).
        """
        key = (producer, consumer)
        tracker = self.trackers[self.rank_of[consumer]]
        tracker.remove_edge(key)
        if self.tracker is not tracker:
            self.tracker.remove_edge(key)
        return self._store.pop(key, None)

    # -- running -> done -------------------------------------------------------

    def outgoing(self, row: int) -> List[Tuple[int, int, int, int]]:
        """The tile's outgoing edges: ``(consumer_row, delta_id, cells,
        consumer_rank)`` in lexicographic consumer order — the order the
        generated C posts its sends."""
        ptr = self._cons_ptr
        rank_of = self.rank_of
        out = []
        for e in range(ptr[row], ptr[row + 1]):
            c = self._cons_rows[e]
            out.append(
                (c, self._cons_delta[e], self._cons_cells[e], rank_of[c])
            )
        return out

    def send_edge(
        self,
        row: int,
        consumer: int,
        buffer: Optional[np.ndarray] = None,
        cells: Optional[int] = None,
    ) -> None:
        """Buffer one packed edge, charged against the consumer's rank.

        *cells* defaults to the graph's packed size for the edge (pass
        ``len(buffer)`` to account the actual buffer).  Delivery is
        separate: call :meth:`deliver_edge` when the edge *arrives*.
        """
        key = (row, consumer)
        if cells is None:
            ptr = self._cons_ptr
            for e in range(ptr[row], ptr[row + 1]):
                if self._cons_rows[e] == consumer:
                    cells = self._cons_cells[e]
                    break
            else:
                raise RuntimeExecutionError(
                    f"tile {self.tile_tuples[row]} has no edge to "
                    f"{self.tile_tuples[consumer]}"
                )
        if buffer is not None:
            self._store[key] = buffer
        src_rank = self.rank_of[row]
        dst_rank = self.rank_of[consumer]
        tracker = self.trackers[dst_rank]
        tracker.add_edge(key, cells)
        if self.tracker is not tracker:
            self.tracker.add_edge(key, cells)
        if dst_rank != src_rank:
            self.cross_rank_messages += 1
            self.cross_rank_cells += cells
        self._emit(
            "edge_sent", row, src_rank, dest=consumer, dest_rank=dst_rank,
            cells=cells,
        )

    def finish_tile(self, row: int) -> None:
        rank = self.rank_of[row]
        self.finished += 1
        self.finished_per_rank[rank] += 1
        self._emit("tile_done", row, rank)

    # -- terminal checks -------------------------------------------------------

    def verify_drained(self) -> None:
        """Raise unless every tile ran and every edge was consumed."""
        T = len(self.tile_tuples)
        if self.finished != T:
            raise RuntimeExecutionError(
                f"executed {self.finished} of {T} tiles; the dependency "
                "graph deadlocked"
            )
        if self.tracker.live_edges:
            raise RuntimeExecutionError(
                f"{self.tracker.live_edges} edges were packed but never "
                "consumed"
            )
        if self._store:  # pragma: no cover - implied by live_edges == 0
            raise RuntimeExecutionError(
                f"{len(self._store)} edge buffers were never released"
            )

    def verify_rank_drained(self, rank: int) -> None:
        """Per-rank terminal check for distributed drivers.

        A process-backend worker owns exactly one rank of the run: the
        other ranks' tiles execute in other processes, so the global
        :meth:`verify_drained` invariant (``finished == T``) can never
        hold locally.  This checks the worker-local invariant instead —
        every tile *of this rank* ran, and the rank's tracker holds no
        live edge buffers.
        """
        mine = sum(1 for r in self.rank_of if r == rank)
        if self.finished_per_rank[rank] != mine:
            raise RuntimeExecutionError(
                f"rank {rank} executed {self.finished_per_rank[rank]} of "
                f"its {mine} tiles; the rank-local schedule deadlocked"
            )
        tracker = self.trackers[rank]
        if tracker.live_edges:
            raise RuntimeExecutionError(
                f"rank {rank} finished with {tracker.live_edges} edge "
                "buffers still live"
            )

    # -- reporting -------------------------------------------------------------

    def memory_snapshot(self) -> Dict[str, int]:
        """Aggregate edge-memory accounting across all ranks."""
        return self.tracker.snapshot()

    def memory_per_rank(self) -> List[Dict[str, int]]:
        return [t.snapshot() for t in self.trackers]
