"""Exact polyhedral algebra: the substrate under the program generator.

Public surface:

* :class:`LinExpr` — exact affine expressions.
* :class:`Constraint`, :class:`ConstraintSystem` — parametric polyhedra,
  with a small text grammar (``parse_constraint``).
* :func:`eliminate` / :func:`project` — Fourier–Motzkin elimination with
  duplicate/redundancy pruning (paper Section IV-D).
* :func:`synthesize_loop_nest` — loop-bound generation (Figure 3 loops).
* :func:`enumerate_points` / :func:`count_points` — lattice scanning.
* :func:`ehrhart_univariate` — Ehrhart quasi-polynomials by exact
  interpolation (the Barvinok-library substitute, Section IV-J).
"""

from .linexpr import LinExpr, parse_affine
from .constraints import (
    EQ,
    GE,
    Constraint,
    ConstraintSystem,
    box,
    nonneg_orthant,
    parse_constraint,
)
from .fourier_motzkin import eliminate, project, remove_redundant_lp
from .bounds import Bound, LoopBounds, LoopNest, synthesize_loop_nest
from .lattice import (
    bounding_box,
    count_box_filtered,
    count_points,
    enumerate_box_filtered,
    enumerate_points,
)
from .ehrhart import QuasiPolynomial, ehrhart_univariate, simplex_count
from .ehrhart2 import QuasiPolynomial2, ehrhart_bivariate
from .ratlinalg import eval_polynomial, fit_polynomial, solve_rational
from .batch import nest_scan_array
from .compile import compile_counter, compile_scanner
from .vertices import is_bounded, vertex_bounding_box, vertices

__all__ = [
    "LinExpr",
    "parse_affine",
    "Constraint",
    "ConstraintSystem",
    "GE",
    "EQ",
    "parse_constraint",
    "box",
    "nonneg_orthant",
    "eliminate",
    "project",
    "remove_redundant_lp",
    "Bound",
    "LoopBounds",
    "LoopNest",
    "synthesize_loop_nest",
    "enumerate_points",
    "count_points",
    "enumerate_box_filtered",
    "count_box_filtered",
    "bounding_box",
    "QuasiPolynomial",
    "ehrhart_univariate",
    "simplex_count",
    "solve_rational",
    "fit_polynomial",
    "eval_polynomial",
    "compile_counter",
    "nest_scan_array",
    "compile_scanner",
    "QuasiPolynomial2",
    "ehrhart_bivariate",
    "vertices",
    "is_bounded",
    "vertex_bounding_box",
]
