"""Bivariate Ehrhart polynomials (two-parameter point counts).

The alignment problems are parameterized by several sequence lengths;
their total work is a polynomial in (L1, L2) (e.g. the 2-D grid counts
(L1+1)(L2+1) points).  This module reconstructs such counts exactly by
interpolation on a triangular coefficient basis {p^i q^j : i+j <= d},
the bivariate analogue of :mod:`repro.polyhedra.ehrhart`.  Periodicity
is supported per parameter; verification points guard against an
underestimated period or degree, as in the univariate case.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import PolyhedronError
from .bounds import synthesize_loop_nest
from .constraints import ConstraintSystem
from .ratlinalg import solve_rational


@dataclass(frozen=True)
class QuasiPolynomial2:
    """Bivariate quasi-polynomial: coefficients per residue pair.

    ``coeffs[(r1, r2)]`` maps exponent pairs ``(i, j)`` (``i + j <=
    degree``) to rational coefficients, selected by ``(p % period1,
    q % period2)``.
    """

    params: Tuple[str, str]
    periods: Tuple[int, int]
    degree: int
    coeffs_by_residue: Mapping[
        Tuple[int, int], Mapping[Tuple[int, int], Fraction]
    ]
    valid_from: Tuple[int, int]

    def evaluate(self, p: int, q: int) -> int:
        if p < self.valid_from[0] or q < self.valid_from[1]:
            raise PolyhedronError(
                f"quasi-polynomial only valid for {self.params[0]} >= "
                f"{self.valid_from[0]} and {self.params[1]} >= "
                f"{self.valid_from[1]}"
            )
        key = (p % self.periods[0], q % self.periods[1])
        total = Fraction(0)
        for (i, j), c in self.coeffs_by_residue[key].items():
            total += c * (Fraction(p) ** i) * (Fraction(q) ** j)
        if total.denominator != 1:
            raise PolyhedronError(
                f"non-integer count {total} at ({p}, {q})"
            )
        return total.numerator

    def __call__(self, p: int, q: int) -> int:
        return self.evaluate(p, q)


def _count(system, order, assignment) -> int:
    nest = synthesize_loop_nest(system.fix(assignment), list(order))
    return nest.count({})


def ehrhart_bivariate(
    system: ConstraintSystem,
    order: Sequence[str],
    params: Tuple[str, str],
    periods: Tuple[int, int] = (1, 1),
    start: Tuple[int, int] = (0, 0),
    extra_params: Mapping[str, int] | None = None,
    verify_points: int = 2,
) -> QuasiPolynomial2:
    """Reconstruct ``#points(p, q)`` for the two named parameters.

    The coefficient basis is triangular of total degree ``len(order)``.
    Sampling uses an axis-aligned grid per residue class; extra diagonal
    samples verify the fit exactly.
    """
    p_name, q_name = params
    degree = len(order)
    basis = [
        (i, j) for i in range(degree + 1) for j in range(degree + 1 - i)
    ]
    extra = dict(extra_params or {})

    def count(p: int, q: int) -> int:
        assignment = dict(extra)
        assignment[p_name] = p
        assignment[q_name] = q
        return _count(system, order, assignment)

    coeffs_by_residue: Dict[Tuple[int, int], Dict[Tuple[int, int], Fraction]] = {}
    per1, per2 = periods
    if per1 < 1 or per2 < 1:
        raise PolyhedronError(f"periods must be >= 1, got {periods}")
    for r1 in range(per1):
        for r2 in range(per2):
            first_p = start[0] + ((r1 - start[0]) % per1)
            first_q = start[1] + ((r2 - start[1]) % per2)
            # Sample enough grid points to cover the triangular basis:
            # a (degree+1) x (degree+1) grid is square and invertible
            # for the triangular basis when we select exactly len(basis)
            # equations via least..., so instead sample exactly at the
            # basis-shaped grid: points (a, b) with a+b <= degree give a
            # uniquely solvable system for the triangular basis
            # (generalized Vandermonde on the simplex grid).
            samples = [
                (first_p + a * per1, first_q + b * per2)
                for a in range(degree + 1)
                for b in range(degree + 1 - a)
            ]
            matrix = [
                [Fraction(p) ** i * Fraction(q) ** j for (i, j) in basis]
                for (p, q) in samples
            ]
            rhs = [count(p, q) for (p, q) in samples]
            solution = solve_rational(matrix, rhs)
            fit = dict(zip(basis, solution))
            # Verification on fresh diagonal points.
            for k in range(1, verify_points + 1):
                p = first_p + (degree + k) * per1
                q = first_q + (degree + k) * per2
                predicted = sum(
                    c * Fraction(p) ** i * Fraction(q) ** j
                    for (i, j), c in fit.items()
                )
                actual = count(p, q)
                if predicted != actual:
                    raise PolyhedronError(
                        f"bivariate Ehrhart fit failed at ({p}, {q}): "
                        f"fit {predicted}, true {actual}; increase the "
                        "period"
                    )
            coeffs_by_residue[(r1, r2)] = fit
    return QuasiPolynomial2(
        params=(p_name, q_name),
        periods=periods,
        degree=degree,
        coeffs_by_residue=coeffs_by_residue,
        valid_from=start,
    )
