"""Array-native scanning of loop nests (the tile-graph fast path).

``compile_scanner`` makes a nest fast to iterate one point at a time;
this module goes one step further and materializes *all* integer points
of a nest as one ``(N, d)`` int64 ndarray using numpy arithmetic only —
no per-point Python.  The enumeration proceeds level by level: at each
depth the affine lower/upper bounds are evaluated over the columns of
the partial assignments (``ceil``/``floor`` division rendered with
``//`` exactly as the compiled scanners do), and the row set is expanded
with ``repeat``/``arange``.  Rows come out in ascending lexicographic
nest order — identical to ``compile_scanner(nest)(env)``.

This is what lets :class:`repro.runtime.graph.TileGraph` enumerate an
8k-tile space in a handful of vector operations instead of 8k generator
steps ("Hybrid Static/Dynamic Schedules for Tiled Polyhedral Programs"
resolves tile dependence structure with the same array arithmetic).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..errors import PolyhedronError
from .bounds import LOWER, LoopNest
from .constraints import EQ

__all__ = ["nest_count_batch", "nest_scan_array"]


def _parsed_bounds(nest: LoopNest):
    """Per-depth ``(lowers, uppers)`` with integer (const, items, div).

    Each bound becomes ``(const, ((name, coef), ...), div)``; cached on
    the nest (pure function of its structure).
    """
    cached = getattr(nest, "_batch_bounds", None)
    if cached is not None:
        return cached
    parsed = []
    for b in nest.per_var:
        def parse(bd):
            expr = bd.expr
            const = expr.constant
            if const.denominator != 1:
                raise PolyhedronError(f"non-integral bound constant in {bd}")
            items: List[Tuple[str, int]] = []
            for name, coef in expr.terms():
                if coef.denominator != 1:
                    raise PolyhedronError(
                        f"non-integral bound coefficient in {bd}"
                    )
                items.append((name, coef.numerator))
            return (const.numerator, tuple(items), bd.div)

        parsed.append(
            (tuple(parse(bd) for bd in b.lowers),
             tuple(parse(bd) for bd in b.uppers))
        )
    nest._batch_bounds = parsed  # type: ignore[attr-defined]
    return parsed


def _eval_bound(parsed, env, cols, rows, kind):
    const, items, div = parsed
    total = np.full(rows, const, dtype=np.int64)
    for name, coef in items:
        col = cols.get(name)
        if col is None:
            total += coef * env[name]
        else:
            total += coef * col
    if div == 1:
        return total
    if kind == LOWER:
        return -((-total) // div)  # ceil(a/div)
    return total // div            # floor(a/div)


def nest_scan_array(nest: LoopNest, env: Mapping[str, int]) -> np.ndarray:
    """All integer points of *nest* under *env* as an ``(N, d)`` array.

    Rows are in ascending lexicographic nest order — the exact sequence
    ``compile_scanner(nest)(env)`` yields.  Returns an empty ``(0, d)``
    array when the context fails or any level is empty.
    """
    d = len(nest.order)
    if not nest.context.satisfied(env):
        return np.empty((0, d), dtype=np.int64)
    parsed = _parsed_bounds(nest)
    cols: Dict[str, np.ndarray] = {}
    rows = 1
    for depth, b in enumerate(nest.per_var):
        lowers, uppers = parsed[depth]
        lo = _eval_bound(lowers[0], env, cols, rows, LOWER)
        for p in lowers[1:]:
            np.maximum(lo, _eval_bound(p, env, cols, rows, LOWER), out=lo)
        hi = _eval_bound(uppers[0], env, cols, rows, "upper")
        for p in uppers[1:]:
            np.minimum(hi, _eval_bound(p, env, cols, rows, "upper"), out=hi)
        counts = np.maximum(hi - lo + 1, 0)
        total = int(counts.sum())
        if total == 0:
            return np.empty((0, d), dtype=np.int64)
        rep = np.repeat(np.arange(rows), counts)
        for name in cols:
            cols[name] = cols[name][rep]
        # offset of each new row within its parent's [lo, hi] range
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        cols[b.var] = lo[rep] + offsets
        rows = total
    return np.stack([cols[v] for v in nest.order], axis=1)


def _parsed_context(nest: LoopNest):
    """Context constraints as ``(kind, const, items)``; cached on the nest.

    ``None`` when any coefficient is non-integral (scalar fallback).
    """
    cached = getattr(nest, "_batch_context", None)
    if cached is not None:
        return cached[0]
    parsed: List[Tuple[str, int, Tuple[Tuple[str, int], ...]]] = []
    ok = True
    for c in nest.context:
        expr = c.expr
        if expr.constant.denominator != 1 or any(
            coef.denominator != 1 for _, coef in expr.terms()
        ):
            ok = False
            break
        parsed.append(
            (
                c.kind,
                expr.constant.numerator,
                tuple(
                    (name, coef.numerator) for name, coef in expr.terms()
                ),
            )
        )
    result = tuple(parsed) if ok else None
    nest._batch_context = (result,)  # type: ignore[attr-defined]
    return result


def nest_count_batch(
    nest: LoopNest,
    env: Mapping[str, int],
    col_env: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Point counts of *nest* for a whole batch of environments at once.

    *col_env* maps symbolic names (e.g. the tile variables) to int64
    columns of equal length ``n``; *env* holds the shared scalar
    bindings (problem parameters).  Returns an ``(n,)`` int64 array
    where entry ``i`` equals ``compile_counter(nest)(env | col_env[i])``
    — but the whole batch is counted with one level-by-level expansion,
    closing the innermost level in constant form, instead of ``n``
    compiled calls.  This is what keeps boundary tiles and clipped pack
    regions off the per-call path in the tile graph.
    """
    names = list(col_env)
    first = np.asarray(col_env[names[0]], dtype=np.int64) if names else None
    n = first.shape[0] if names else 1
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out

    # Context: residual constraints over parameters and the batch
    # columns; rows failing it scan an empty space.
    ctx = _parsed_context(nest)
    base_cols = {
        name: np.asarray(col, dtype=np.int64) for name, col in col_env.items()
    }
    if ctx is None:
        scratch = dict(env)
        mask = np.empty(n, dtype=bool)
        for i in range(n):
            for name in names:
                scratch[name] = int(base_cols[name][i])
            mask[i] = nest.context.satisfied(scratch)
    else:
        mask = np.ones(n, dtype=bool)
        for kind, const, items in ctx:
            total = np.full(n, const, dtype=np.int64)
            for name, coef in items:
                col = base_cols.get(name)
                total += coef * (col if col is not None else env[name])
            mask &= (total == 0) if kind == EQ else (total >= 0)
    origin = np.flatnonzero(mask)
    if origin.size == 0:
        return out

    parsed = _parsed_bounds(nest)
    cols: Dict[str, np.ndarray] = {
        name: col[origin] for name, col in base_cols.items()
    }
    rows = origin.size
    last = len(nest.per_var) - 1
    cnt = np.ones(rows, dtype=np.int64)
    for depth, b in enumerate(nest.per_var):
        lowers, uppers = parsed[depth]
        lo = _eval_bound(lowers[0], env, cols, rows, LOWER)
        for p in lowers[1:]:
            np.maximum(lo, _eval_bound(p, env, cols, rows, LOWER), out=lo)
        hi = _eval_bound(uppers[0], env, cols, rows, "upper")
        for p in uppers[1:]:
            np.minimum(hi, _eval_bound(p, env, cols, rows, "upper"), out=hi)
        cnt = np.maximum(hi - lo + 1, 0)
        if depth == last:
            break
        total = int(cnt.sum())
        if total == 0:
            return out
        rep = np.repeat(np.arange(rows), cnt)
        for name in cols:
            cols[name] = cols[name][rep]
        offsets = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
        cols[b.var] = lo[rep] + offsets
        origin = origin[rep]
        rows = total
    np.add.at(out, origin, cnt)
    return out
