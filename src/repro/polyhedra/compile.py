"""Compile loop nests to specialized Python code (fast scanning/counting).

The generic :class:`~repro.polyhedra.bounds.LoopNest` evaluates bounds
with exact rational arithmetic — robust, but far too slow for the hot
paths (per-tile work counts, per-cell execution).  Constraints are
normalized to integer coefficients, so every bound is
``ceil/floor((c0 + sum c_k * v_k) / d)`` over integers: we render the
nest as straight-line Python source with ``//`` arithmetic, ``exec`` it
once, and reuse the closure.  This mirrors what the C backend emits and
is ~50x faster than the interpreted path.

Compiled artifacts are pure functions of the nest.  Two cache levels
keep them from ever being rebuilt: an attribute on the nest object (the
fast path), and a module-level memo keyed by the nest's *structural
signature* — so structurally equal nests from different program
generations (rebuilt specs, test fixtures, hypothesis sweeps) share one
compiled closure instead of paying ``exec`` again.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

from ..errors import PolyhedronError
from .bounds import Bound, LoopNest


def _expr_to_py(bound: Bound) -> str:
    """Render ``ceil/floor(expr/div)`` as integer Python source."""
    terms: List[str] = []
    expr = bound.expr
    const = expr.constant
    if const.denominator != 1:
        raise PolyhedronError(f"non-integral bound constant in {bound}")
    parts = [str(const.numerator)]
    for name, coef in expr.terms():
        if coef.denominator != 1:
            raise PolyhedronError(f"non-integral bound coefficient in {bound}")
        c = coef.numerator
        if c == 1:
            parts.append(f"+ {name}")
        elif c == -1:
            parts.append(f"- {name}")
        elif c >= 0:
            parts.append(f"+ {c}*{name}")
        else:
            parts.append(f"- {-c}*{name}")
    body = " ".join(parts)
    if bound.div == 1:
        return f"({body})"
    if bound.kind == "lower":
        # ceil(a/b) == -((-a) // b) for b > 0
        return f"(-((-({body})) // {bound.div}))"
    return f"(({body}) // {bound.div})"


def _lower_expr(bounds) -> str:
    rendered = [_expr_to_py(b) for b in bounds.lowers]
    return rendered[0] if len(rendered) == 1 else "max(" + ", ".join(rendered) + ")"


def _upper_expr(bounds) -> str:
    rendered = [_expr_to_py(b) for b in bounds.uppers]
    return rendered[0] if len(rendered) == 1 else "min(" + ", ".join(rendered) + ")"


def _free_variables(nest: LoopNest) -> List[str]:
    """Variables the nest's bounds/context reference but do not scan."""
    loop_vars = set(nest.order)
    free: set = set()
    for b in nest.per_var:
        for bd in b.lowers + b.uppers:
            free |= bd.free_variables()
    for c in nest.context:
        free |= c.variables()
    return sorted(free - loop_vars)


def _context_condition(nest: LoopNest) -> str:
    conds: List[str] = []
    for c in nest.context:
        parts = [str(c.expr.constant.numerator)]
        for name, coef in c.expr.terms():
            ci = coef.numerator if coef.denominator == 1 else None
            if ci is None:
                raise PolyhedronError(f"non-integral context constraint {c}")
            parts.append(f"+ {ci}*{name}")
        body = " ".join(parts)
        op = "==" if c.is_equality() else ">="
        conds.append(f"({body}) {op} 0")
    return " and ".join(conds) if conds else "True"


# -- the shared compile memo --------------------------------------------------

#: Structural-signature memo: compiled closures shared across nest objects.
_COUNTER_MEMO: Dict[tuple, Callable] = {}
_SCANNER_MEMO: Dict[tuple, Callable] = {}

#: Observability for tests and benchmarks: how many closures were
#: actually compiled (exec'd) vs served from the structural memo.
COMPILE_STATS = {
    "counter_compiles": 0,
    "counter_memo_hits": 0,
    "scanner_compiles": 0,
    "scanner_memo_hits": 0,
}


def reset_compile_stats() -> None:
    for k in COMPILE_STATS:
        COMPILE_STATS[k] = 0


def clear_compile_memo() -> None:
    """Drop the module-level memo (tests; the per-nest caches survive)."""
    _COUNTER_MEMO.clear()
    _SCANNER_MEMO.clear()


def _expr_key(expr) -> tuple:
    return (expr.constant, tuple(sorted(expr.terms())))


def nest_signature(nest: LoopNest) -> tuple:
    """A hashable structural key: equal nests compile to equal closures.

    Covers everything the code generators below read — the loop order,
    every bound's expression/divisor/kind, and the context constraints.
    Cached on the nest object.
    """
    key = getattr(nest, "_structural_key", None)
    if key is not None:
        return key
    per_var = tuple(
        (
            b.var,
            tuple((bd.div, _expr_key(bd.expr)) for bd in b.lowers),
            tuple((bd.div, _expr_key(bd.expr)) for bd in b.uppers),
        )
        for b in nest.per_var
    )
    context = tuple(
        sorted((c.is_equality(), _expr_key(c.expr)) for c in nest.context)
    )
    key = (nest.order, per_var, context)
    nest._structural_key = key  # type: ignore[attr-defined]
    return key


def compile_counter(nest: LoopNest) -> Callable[[Mapping[str, int]], int]:
    """Return ``count(env) -> int`` equivalent to ``nest.count(env)``.

    The innermost dimension is counted in closed form.  The result is
    cached on the nest and memoized by structural signature.
    """
    cached = getattr(nest, "_compiled_counter", None)
    if cached is not None:
        return cached
    sig = nest_signature(nest)
    memoized = _COUNTER_MEMO.get(sig)
    if memoized is not None:
        COMPILE_STATS["counter_memo_hits"] += 1
        nest._compiled_counter = memoized  # type: ignore[attr-defined]
        return memoized

    free = _free_variables(nest)
    lines: List[str] = []
    args = ", ".join(free)
    lines.append(f"def _count({args}):")
    lines.append(f"    if not ({_context_condition(nest)}):")
    lines.append("        return 0")
    lines.append("    _total = 0")
    indent = "    "
    for depth, b in enumerate(nest.per_var):
        lo = _lower_expr(b)
        hi = _upper_expr(b)
        if depth == len(nest.per_var) - 1:
            lines.append(f"{indent}_n = {hi} - ({lo}) + 1")
            lines.append(f"{indent}if _n > 0:")
            lines.append(f"{indent}    _total += _n")
        else:
            lines.append(f"{indent}for {b.var} in range({lo}, {hi} + 1):")
            indent += "    "
    lines.append("    return _total")
    namespace: Dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from exact IR
    fn = namespace["_count"]

    def count(env: Mapping[str, int]) -> int:
        return fn(*(env[v] for v in free))

    count.free_variables = tuple(free)  # type: ignore[attr-defined]
    count.source = "\n".join(lines)  # type: ignore[attr-defined]
    COMPILE_STATS["counter_compiles"] += 1
    _COUNTER_MEMO[sig] = count
    nest._compiled_counter = count  # type: ignore[attr-defined]
    return count


def compile_scanner(
    nest: LoopNest,
    directions: Mapping[str, int] | None = None,
) -> Callable[[Mapping[str, int]], Iterator[Tuple[int, ...]]]:
    """Return ``scan(env) -> iterator of tuples`` in nest order.

    Tuples hold the loop variables' values in ``nest.order``.  Directions
    (+1 ascending / -1 descending) are baked into the generated loops, so
    a separate scanner is compiled per direction signature; all are
    cached on the nest.
    """
    directions = directions or {}
    sig = tuple(directions.get(v, 1) for v in nest.order)
    cache: Dict = getattr(nest, "_compiled_scanners", None) or {}
    if sig in cache:
        return cache[sig]
    memo_key = (nest_signature(nest), sig)
    memoized = _SCANNER_MEMO.get(memo_key)
    if memoized is not None:
        COMPILE_STATS["scanner_memo_hits"] += 1
        cache[sig] = memoized
        nest._compiled_scanners = cache  # type: ignore[attr-defined]
        return memoized

    free = _free_variables(nest)
    lines: List[str] = []
    args = ", ".join(free)
    lines.append(f"def _scan({args}):")
    lines.append(f"    if not ({_context_condition(nest)}):")
    lines.append("        return")
    indent = "    "
    for b, direction in zip(nest.per_var, sig):
        lo = _lower_expr(b)
        hi = _upper_expr(b)
        if direction >= 0:
            lines.append(f"{indent}for {b.var} in range({lo}, {hi} + 1):")
        else:
            lines.append(f"{indent}for {b.var} in range({hi}, ({lo}) - 1, -1):")
        indent += "    "
    tup = ", ".join(b.var for b in nest.per_var)
    trailing = "," if len(nest.per_var) == 1 else ""
    lines.append(f"{indent}yield ({tup}{trailing})")
    namespace: Dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from exact IR
    fn = namespace["_scan"]

    def scan(env: Mapping[str, int]) -> Iterator[Tuple[int, ...]]:
        return fn(*(env[v] for v in free))

    scan.free_variables = tuple(free)  # type: ignore[attr-defined]
    scan.source = "\n".join(lines)  # type: ignore[attr-defined]
    COMPILE_STATS["scanner_compiles"] += 1
    _SCANNER_MEMO[memo_key] = scan
    cache[sig] = scan
    nest._compiled_scanners = cache  # type: ignore[attr-defined]
    return scan
