"""Vertex enumeration for (fixed-parameter) rational polyhedra.

Small-scale, exact: every d-subset of constraints is solved as a linear
system over the rationals; feasible, deduplicated solutions are the
vertex set.  Intended for the dimensionalities the generator works with
(d <= 6, tens of constraints) — the combinatorics stay tame there, and
exactness matters more than asymptotics.

Used for diagnostics (polytope volume sanity, Ehrhart degree checks)
and exposed as public API; boundedness certification backs the loop
synthesizer's error messages.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import List, Sequence, Tuple

from ..errors import PolyhedronError
from .constraints import ConstraintSystem
from .linexpr import LinExpr
from .ratlinalg import solve_rational

Vertex = Tuple[Fraction, ...]


def _rows(system: ConstraintSystem, names: Sequence[str]):
    """(coefficients, constant) rows for every constraint; checks that
    no foreign variables remain."""
    rows = []
    extra = system.variables() - set(names)
    if extra:
        raise PolyhedronError(
            f"vertex enumeration needs fixed parameters; free: {sorted(extra)}"
        )
    for c in system:
        coeffs = [c.expr.coeff(n) for n in names]
        rows.append((coeffs, c.expr.constant, c.is_equality()))
    return rows


def vertices(system: ConstraintSystem, names: Sequence[str]) -> List[Vertex]:
    """All vertices of the rational polyhedron, exactly.

    Raises if the system mentions variables outside *names* (fix the
    parameters first).  An empty polyhedron yields an empty list.
    """
    names = list(names)
    d = len(names)
    rows = _rows(system, names)
    if d == 0:
        return []
    equalities = [r for r in rows if r[2]]
    inequalities = [r for r in rows if not r[2]]
    seen = set()
    out: List[Vertex] = []
    # Equalities are always active; choose the remainder among inequalities.
    need = d - len(equalities)
    if need < 0:
        need = 0
    for combo in itertools.combinations(range(len(inequalities)), need):
        active = equalities + [inequalities[i] for i in combo]
        matrix = [r[0] for r in active[:d]]
        rhs = [-r[1] for r in active[:d]]
        if len(matrix) != d:
            continue
        try:
            point = tuple(solve_rational(matrix, rhs))
        except PolyhedronError:
            continue  # singular: constraints not independent
        if point in seen:
            continue
        # Feasibility against every constraint.
        feasible = True
        for coeffs, const, is_eq in rows:
            value = sum(c * p for c, p in zip(coeffs, point)) + const
            if is_eq:
                if value != 0:
                    feasible = False
                    break
            elif value < 0:
                feasible = False
                break
        if feasible:
            seen.add(point)
            out.append(point)
    return sorted(out)


def is_bounded(system: ConstraintSystem, names: Sequence[str]) -> bool:
    """Is the polyhedron bounded along every axis?  (Exact LP via scipy.)"""
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover
        raise PolyhedronError("boundedness check requires scipy")

    names = list(names)
    rows = _rows(system, names)
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for coeffs, const, is_eq in rows:
        frow = [float(c) for c in coeffs]
        if is_eq:
            a_eq.append(frow)
            b_eq.append(-float(const))
        else:
            a_ub.append([-x for x in frow])
            b_ub.append(float(const))
    for axis in range(len(names)):
        for sign in (1.0, -1.0):
            obj = [0.0] * len(names)
            obj[axis] = sign
            res = linprog(
                obj,
                A_ub=a_ub or None,
                b_ub=b_ub or None,
                A_eq=a_eq or None,
                b_eq=b_eq or None,
                bounds=[(None, None)] * len(names),
                method="highs",
            )
            if res.status == 3:  # unbounded
                return False
            if res.status == 2:  # infeasible: empty polyhedron is bounded
                return True
    return True


def vertex_bounding_box(
    system: ConstraintSystem, names: Sequence[str]
) -> List[Tuple[Fraction, Fraction]]:
    """Per-axis (min, max) over the vertex set — the exact rational box."""
    vs = vertices(system, names)
    if not vs:
        raise PolyhedronError("empty polyhedron has no bounding box")
    out = []
    for k in range(len(names)):
        coords = [v[k] for v in vs]
        out.append((min(coords), max(coords)))
    return out
