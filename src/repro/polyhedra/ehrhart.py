"""Ehrhart quasi-polynomials for parametric polytopes (paper Section IV-J).

The paper uses the Barvinok library to compute two Ehrhart polynomials:
the total work of the problem as a function of the parameters, and the
work of the tile slab at fixed load-balancing indices.  Those counts
drive the load balancer.

Barvinok is not available here, so we reconstruct the quasi-polynomial
exactly by interpolation: for a polytope with ``d`` eliminated variables,
the count is a degree-``<= d`` quasi-polynomial in the parameter with some
period ``p`` (for tiled spaces ``p`` divides the lcm of the tile widths).
We sample ``d+1`` exact counts per residue class — counting uses the
recursive Fourier–Motzkin scanner with a closed-form innermost dimension —
and solve the Vandermonde system over the rationals.  The result is
verified against fresh counts at extra sample points, so a wrong period
assumption is detected rather than silently accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import PolyhedronError
from .bounds import synthesize_loop_nest
from .constraints import ConstraintSystem
from .ratlinalg import eval_polynomial, fit_polynomial


@dataclass(frozen=True)
class QuasiPolynomial:
    """A univariate quasi-polynomial: one coefficient vector per residue.

    ``coeffs_by_residue[n % period]`` holds coefficients lowest degree
    first.  ``valid_from`` records the smallest argument the fit was
    sampled at; evaluation below it is refused (Ehrhart behaviour for
    "small" parameters can differ when the polytope degenerates).
    """

    param: str
    period: int
    coeffs_by_residue: Tuple[Tuple[Fraction, ...], ...]
    valid_from: int

    def evaluate(self, n: int) -> int:
        if n < self.valid_from:
            raise PolyhedronError(
                f"quasi-polynomial for {self.param} only valid for "
                f"{self.param} >= {self.valid_from}, got {n}"
            )
        coeffs = self.coeffs_by_residue[n % self.period]
        value = eval_polynomial(coeffs, n)
        if value.denominator != 1:
            raise PolyhedronError(
                f"quasi-polynomial evaluated to non-integer {value} at {n}"
            )
        return value.numerator

    @property
    def degree(self) -> int:
        deg = 0
        for coeffs in self.coeffs_by_residue:
            for k in range(len(coeffs) - 1, -1, -1):
                if coeffs[k] != 0:
                    deg = max(deg, k)
                    break
        return deg

    def __call__(self, n: int) -> int:
        return self.evaluate(n)


def count_for_param(
    system: ConstraintSystem,
    order: Sequence[str],
    param: str,
    value: int,
    extra_params: Mapping[str, int] | None = None,
    prune: str = "syntactic",
) -> int:
    """Exact lattice count of *system* with ``param = value``."""
    fixed: Dict[str, int] = dict(extra_params or {})
    fixed[param] = value
    nest = synthesize_loop_nest(system.fix(fixed), list(order), prune=prune)
    return nest.count({})


def ehrhart_univariate(
    system: ConstraintSystem,
    order: Sequence[str],
    param: str,
    period: int = 1,
    start: int = 0,
    extra_params: Mapping[str, int] | None = None,
    verify_points: int = 2,
    prune: str = "syntactic",
) -> QuasiPolynomial:
    """Reconstruct the Ehrhart quasi-polynomial ``#points(param)``.

    *order* lists the counted (non-parameter) variables; the degree of the
    quasi-polynomial is at most ``len(order)``.  *period* must be a
    multiple of the true period (1 for untiled spaces; lcm of tile widths
    for tiled ones).  *verify_points* extra samples per residue class are
    checked against the fit and a mismatch raises, which catches an
    underestimated period.
    """
    if period < 1:
        raise PolyhedronError(f"period must be >= 1, got {period}")
    degree = len(order)
    samples_needed = degree + 1

    def count(n: int) -> int:
        return count_for_param(
            system, order, param, n, extra_params=extra_params, prune=prune
        )

    coeffs_by_residue: List[Tuple[Fraction, ...]] = []
    for residue in range(period):
        # Sample points congruent to `residue` mod `period`, at or above
        # `start`.
        first = start + ((residue - start) % period)
        xs = [first + k * period for k in range(samples_needed)]
        ys = [count(x) for x in xs]
        coeffs = tuple(fit_polynomial(xs, ys))
        # Verification: extra fresh samples must match exactly.
        for k in range(verify_points):
            x = first + (samples_needed + k) * period
            expected = count(x)
            got = eval_polynomial(list(coeffs), x)
            if got != expected:
                raise PolyhedronError(
                    f"Ehrhart fit failed verification at {param}={x}: "
                    f"fit gives {got}, true count is {expected}. "
                    f"The period ({period}) is probably too small."
                )
        coeffs_by_residue.append(coeffs)
    return QuasiPolynomial(
        param=param,
        period=period,
        coeffs_by_residue=tuple(coeffs_by_residue),
        valid_from=start,
    )


def simplex_count(dim: int, n: int) -> int:
    """Closed-form count of ``{x >= 0, sum x <= n}`` in ``dim`` dimensions.

    Equals ``C(n + dim, dim)``.  Used as an oracle in tests: the 2-arm
    bandit's iteration space is exactly the 4-simplex.
    """
    from math import comb

    if n < 0:
        return 0
    return comb(n + dim, dim)
