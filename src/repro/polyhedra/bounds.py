"""Loop-bound synthesis from constraint systems (paper Sections IV-D, IV-L).

Given a variable ordering (outermost to innermost), Fourier–Motzkin
elimination from the innermost variable outward yields, for each loop
variable, a set of affine *lower* and *upper* bounds in terms of the outer
variables and the parameters.  At runtime the loop bound is the max of the
ceil-divided lower bounds and the min of the floor-divided upper bounds —
exactly the ``max``/``min``/``ceild``/``floord`` structure of Figure 3's
generated loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from .._util import ceil_div, floor_div
from ..errors import PolyhedronError
from .constraints import Constraint, ConstraintSystem
from .fourier_motzkin import eliminate
from .linexpr import LinExpr

LOWER = "lower"
UPPER = "upper"


@dataclass(frozen=True)
class Bound:
    """One affine bound: ``ceil(expr/div)`` (lower) or ``floor(expr/div)``.

    *expr* has integral coefficients and *div* is a positive integer.
    """

    expr: LinExpr
    div: int
    kind: str

    def value(self, env: Mapping[str, int]) -> int:
        raw = self.expr.evaluate(env)
        if raw.denominator != 1:
            raise PolyhedronError(
                f"bound expression {self.expr} evaluated to non-integer {raw}"
            )
        n = raw.numerator
        return ceil_div(n, self.div) if self.kind == LOWER else floor_div(n, self.div)

    def free_variables(self) -> frozenset:
        return self.expr.variables()

    def __str__(self) -> str:
        fn = "ceild" if self.kind == LOWER else "floord"
        if self.div == 1:
            return f"({self.expr})"
        return f"{fn}({self.expr}, {self.div})"


@dataclass(frozen=True)
class LoopBounds:
    """All bounds for one loop variable."""

    var: str
    lowers: Tuple[Bound, ...]
    uppers: Tuple[Bound, ...]

    def lower(self, env: Mapping[str, int]) -> int:
        if not self.lowers:
            raise PolyhedronError(f"variable {self.var!r} has no lower bound")
        return max(b.value(env) for b in self.lowers)

    def upper(self, env: Mapping[str, int]) -> int:
        if not self.uppers:
            raise PolyhedronError(f"variable {self.var!r} has no upper bound")
        return min(b.value(env) for b in self.uppers)

    def range(self, env: Mapping[str, int]) -> range:
        return range(self.lower(env), self.upper(env) + 1)

    def is_bounded(self) -> bool:
        return bool(self.lowers) and bool(self.uppers)


def bounds_for_variable(system: ConstraintSystem, var: str) -> LoopBounds:
    """Extract the bounds *var* receives from constraints mentioning it.

    Equalities produce a matching ceil-lower and floor-upper pair, so a
    non-integral forced value yields an empty range (lower > upper), which
    is the correct behaviour for integer scanning.
    """
    lowers: List[Bound] = []
    uppers: List[Bound] = []
    for c in system:
        a = c.coeff(var)
        if a == 0:
            continue
        if a.denominator != 1:
            raise PolyhedronError(f"non-integral coefficient on {var!r}: {c}")
        rest = c.expr - LinExpr({var: a})
        ai = a.numerator
        if c.is_equality():
            # var == -rest/a
            if ai > 0:
                lowers.append(Bound(-rest, ai, LOWER))
                uppers.append(Bound(-rest, ai, UPPER))
            else:
                lowers.append(Bound(rest, -ai, LOWER))
                uppers.append(Bound(rest, -ai, UPPER))
        elif ai > 0:
            # a*var + rest >= 0  ->  var >= ceil(-rest/a)
            lowers.append(Bound(-rest, ai, LOWER))
        else:
            # var <= floor(rest/(-a))
            uppers.append(Bound(rest, -ai, UPPER))
    return LoopBounds(var, tuple(lowers), tuple(uppers))


class LoopNest:
    """A synthesized perfect loop nest over *order* (outermost first).

    ``context`` holds the residual constraints on parameters alone; a run
    whose parameters violate the context scans an empty space.
    """

    def __init__(
        self,
        order: Sequence[str],
        per_var: Sequence[LoopBounds],
        context: ConstraintSystem,
    ):
        if len(order) != len(per_var):
            raise PolyhedronError("order and bounds length mismatch")
        self.order: Tuple[str, ...] = tuple(order)
        self.per_var: Tuple[LoopBounds, ...] = tuple(per_var)
        self.context = context

    # -- scanning ----------------------------------------------------------

    def iterate(
        self,
        params: Mapping[str, int],
        directions: Mapping[str, int] | None = None,
    ) -> Iterator[Dict[str, int]]:
        """Yield every integer point as a dict (includes the params).

        *directions* maps variables to +1 (ascending, the default) or -1
        (descending) — Figure 3 of the paper scans descending when the
        templates are positive, so a cell's dependencies are evaluated
        before the cell itself.
        """
        if not self.context.satisfied(params):
            return
        env: Dict[str, int] = dict(params)
        yield from self._scan(0, env, directions or {})

    def _scan(
        self, depth: int, env: Dict[str, int], directions: Mapping[str, int]
    ) -> Iterator[Dict[str, int]]:
        if depth == len(self.order):
            yield dict(env)
            return
        b = self.per_var[depth]
        rng = b.range(env)
        if directions.get(b.var, 1) < 0:
            rng = reversed(rng)
        for v in rng:
            env[b.var] = v
            yield from self._scan(depth + 1, env, directions)
        env.pop(b.var, None)

    def count(self, params: Mapping[str, int]) -> int:
        """Number of integer points; innermost dimension in closed form."""
        if not self.context.satisfied(params):
            return 0
        env: Dict[str, int] = dict(params)
        return self._count(0, env)

    def _count(self, depth: int, env: Dict[str, int]) -> int:
        b = self.per_var[depth]
        if depth == len(self.order) - 1:
            lo, hi = b.lower(env), b.upper(env)
            return max(0, hi - lo + 1)
        total = 0
        for v in b.range(env):
            env[b.var] = v
            total += self._count(depth + 1, env)
        env.pop(b.var, None)
        return total

    def first_point(self, params: Mapping[str, int]) -> Dict[str, int] | None:
        """Lexicographically first point under the loop order, or None."""
        for p in self.iterate(params):
            return p
        return None

    def is_empty(self, params: Mapping[str, int]) -> bool:
        return self.first_point(params) is None


def synthesize_loop_nest(
    system: ConstraintSystem,
    order: Sequence[str],
    prune: str = "syntactic",
) -> LoopNest:
    """Build a :class:`LoopNest` scanning *system* in the given order.

    Eliminates variables innermost-first so that each variable's bounds
    only reference outer variables and parameters (Fourier–Motzkin loop
    synthesis, as used by the paper).
    """
    order = list(order)
    missing = [v for v in order if v not in system.variables()]
    # Variables absent from the system are unconstrained -> refuse early.
    if missing:
        raise PolyhedronError(
            f"loop variables {missing} do not appear in the constraint system"
        )
    systems: List[ConstraintSystem] = [system] * len(order)
    s = system
    for k in range(len(order) - 1, -1, -1):
        systems[k] = s
        s = eliminate(s, order[k], prune=prune)
    context = s
    per_var: List[LoopBounds] = []
    for k, var in enumerate(order):
        b = bounds_for_variable(systems[k], var)
        if not b.is_bounded():
            raise PolyhedronError(
                f"variable {var!r} is unbounded in the iteration space; "
                "add constraints or parameters that bound it"
            )
        per_var.append(b)
    return LoopNest(order, per_var, context)
