"""Lattice-point enumeration and counting over parametric polyhedra.

Thin wrappers around :mod:`repro.polyhedra.bounds` plus a deliberately
naive box-scan enumerator used as an independent oracle in tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..errors import PolyhedronError
from .bounds import LoopNest, synthesize_loop_nest
from .constraints import ConstraintSystem


def enumerate_points(
    system: ConstraintSystem,
    order: Sequence[str],
    params: Mapping[str, int] | None = None,
    prune: str = "syntactic",
) -> Iterator[Dict[str, int]]:
    """Yield every integer point of *system* with *params* fixed."""
    nest = synthesize_loop_nest(system, order, prune=prune)
    yield from nest.iterate(params or {})


def count_points(
    system: ConstraintSystem,
    order: Sequence[str],
    params: Mapping[str, int] | None = None,
    prune: str = "syntactic",
) -> int:
    """Exact number of integer points (innermost dimension closed-form)."""
    nest = synthesize_loop_nest(system, order, prune=prune)
    return nest.count(params or {})


def enumerate_box_filtered(
    system: ConstraintSystem,
    order: Sequence[str],
    box: Mapping[str, Tuple[int, int]],
    params: Mapping[str, int] | None = None,
) -> Iterator[Tuple[int, ...]]:
    """Oracle enumerator: scan an explicit box and filter by the system.

    Independent of Fourier–Motzkin, so tests can cross-check the fast
    path.  Yields coordinate tuples in *order*.
    """
    params = dict(params or {})
    ranges = []
    for var in order:
        if var not in box:
            raise PolyhedronError(f"box is missing a range for {var!r}")
        lo, hi = box[var]
        ranges.append(range(lo, hi + 1))
    for combo in itertools.product(*ranges):
        env = dict(params)
        env.update(zip(order, combo))
        if system.satisfied(env):
            yield combo


def count_box_filtered(
    system: ConstraintSystem,
    order: Sequence[str],
    box: Mapping[str, Tuple[int, int]],
    params: Mapping[str, int] | None = None,
) -> int:
    return sum(1 for _ in enumerate_box_filtered(system, order, box, params))


def bounding_box(
    system: ConstraintSystem,
    order: Sequence[str],
    params: Mapping[str, int] | None = None,
    prune: str = "syntactic",
) -> Dict[str, Tuple[int, int]]:
    """Axis-aligned integer bounding box of the (fixed-parameter) polytope.

    Computed by projecting onto each axis with Fourier–Motzkin; the box is
    exact for the rational relaxation, hence a valid cover of the integer
    points.
    """
    from .fourier_motzkin import project

    params = dict(params or {})
    fixed = system.fix(params)
    out: Dict[str, Tuple[int, int]] = {}
    for var in order:
        proj = project(fixed, [var], prune=prune)
        nest = synthesize_loop_nest(proj, [var], prune=prune)
        lo = nest.per_var[0].lower({})
        hi = nest.per_var[0].upper({})
        out[var] = (lo, hi)
    return out
