"""Fourier–Motzkin elimination with redundancy control (paper Section IV-D).

The generator eliminates variables from systems of linear inequalities in
three places: building the tile space, building the load-balancing space,
and synthesizing loop bounds.  Plain FM elimination can square the number
of constraints per eliminated variable, so — exactly as the paper notes —
duplicate and redundant constraints must be pruned after every step.

Three pruning levels are provided:

``syntactic``
    normalization + hashing removes exact duplicates, plus pairwise
    dominance (same variable coefficients, weaker constant).
``lp``
    additionally drops any inequality whose removal does not change the
    rational polyhedron, decided exactly with scipy's HiGHS LP solver.
``none``
    no pruning (only useful for benchmarking the blow-up).

FM over the rationals is conservative for integer points: the projected
system may admit rational shadows with empty integer fibers.  That is the
classical behaviour loop-bound generation tolerates (inner loops simply
execute zero iterations), and the paper uses plain FM the same way.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import PolyhedronError
from .constraints import EQ, GE, Constraint, ConstraintSystem
from .linexpr import LinExpr

PRUNE_LEVELS = ("none", "syntactic", "lp")


def eliminate(
    system: ConstraintSystem,
    names: Sequence[str] | str,
    prune: str = "syntactic",
) -> ConstraintSystem:
    """Eliminate *names* (in order) from *system* by Fourier–Motzkin.

    Equalities involving the eliminated variable are used as substitutions
    when the variable's coefficient allows an exact solve; otherwise they
    are split into two inequalities first.
    """
    if isinstance(names, str):
        names = [names]
    if prune not in PRUNE_LEVELS:
        raise PolyhedronError(f"unknown prune level {prune!r}")
    current = system
    for name in names:
        current = _eliminate_one(current, name, prune)
    return current


def _eliminate_one(system: ConstraintSystem, name: str, prune: str) -> ConstraintSystem:
    # 1. Try to use an equality as an exact substitution.
    for c in system.equalities():
        a = c.coeff(name)
        if a == 0:
            continue
        # name = -(expr - a*name)/a
        rest = c.expr - LinExpr({name: a})
        solution = rest * (Fraction(-1) / a)
        others = [k for k in system if k is not c]
        substituted = ConstraintSystem(
            k.substitute({name: solution}) for k in others
        )
        return _prune(substituted, prune)

    lowers: List[Constraint] = []   # coeff > 0  (gives a lower bound on name)
    uppers: List[Constraint] = []   # coeff < 0  (gives an upper bound)
    keep: List[Constraint] = []
    for c in system:
        a = c.coeff(name)
        if a == 0:
            keep.append(c)
        elif c.is_equality():
            # No unit-solvable equality: split into two inequalities.
            lowers.append(Constraint(c.expr, GE))
            uppers.append(Constraint(-c.expr, GE))
            # Re-dispatch by sign below; handle simply by appending both and
            # fixing the partition afterwards.
        elif a > 0:
            lowers.append(c)
        else:
            uppers.append(c)

    # Fix partition for split equalities (their negations flipped sign).
    fixed_lowers, fixed_uppers = [], []
    for c in lowers + uppers:
        a = c.coeff(name)
        (fixed_lowers if a > 0 else fixed_uppers).append(c)
    lowers, uppers = fixed_lowers, fixed_uppers

    new: List[Constraint] = list(keep)
    for lo in lowers:
        a = lo.coeff(name)           # a > 0
        for up in uppers:
            b = up.coeff(name)       # b < 0
            # a*up.expr + (-b)*lo.expr has a zero coefficient on `name`.
            combined = up.expr * a + lo.expr * (-b)
            cons = Constraint(combined, GE)
            if cons.is_contradiction():
                # Keep the contradiction so emptiness is still visible.
                return ConstraintSystem([cons])
            new.append(cons)
    return _prune(ConstraintSystem(new), prune)


def _prune(system: ConstraintSystem, level: str) -> ConstraintSystem:
    if level == "none":
        return system
    pruned = _prune_dominated(system)
    if level == "lp":
        pruned = remove_redundant_lp(pruned)
    return pruned


def _prune_dominated(system: ConstraintSystem) -> ConstraintSystem:
    """Drop inequalities dominated by one with identical variable part.

    ``e + c1 >= 0`` implies ``e + c2 >= 0`` whenever ``c2 >= c1``; keep
    only the tightest constant per variable part.  Exact duplicates were
    already removed by ConstraintSystem's constructor.
    """
    best: Dict[tuple, Constraint] = {}
    others: List[Constraint] = []
    for c in system:
        if c.is_equality():
            others.append(c)
            continue
        key = tuple(sorted(c.expr.coeffs.items()))
        prev = best.get(key)
        if prev is None or c.expr.constant < prev.expr.constant:
            best[key] = c
    return ConstraintSystem(others + list(best.values()))


def remove_redundant_lp(system: ConstraintSystem) -> ConstraintSystem:
    """Remove inequalities implied by the rest (exact rational check via LP).

    A constraint ``e >= 0`` is redundant iff ``min e`` subject to the other
    constraints is ``>= 0`` (or the feasible set is empty).  Equalities are
    kept untouched.  Falls back to the input unchanged if scipy is absent.
    """
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return system

    ineqs = system.inequalities()
    eqs = system.equalities()
    if len(ineqs) <= 1:
        return system

    names = sorted(system.variables())
    index = {n: i for i, n in enumerate(names)}
    if not names:
        return ConstraintSystem(list(system))

    def row(c: Constraint) -> Tuple[List[float], float]:
        coeffs = [0.0] * len(names)
        for n, v in c.expr.coeffs.items():
            coeffs[index[n]] = float(v)
        return coeffs, float(c.expr.constant)

    kept: List[Constraint] = []
    active = list(ineqs)
    for i, c in enumerate(ineqs):
        candidates = [k for k in active if k is not c]
        # minimize c.expr  s.t.  k.expr >= 0 for k in candidates, eqs == 0
        A_ub, b_ub = [], []
        for k in candidates:
            coeffs, const = row(k)
            A_ub.append([-x for x in coeffs])  # -k.expr <= const
            b_ub.append(const)
        A_eq, b_eq = [], []
        for k in eqs:
            coeffs, const = row(k)
            A_eq.append(coeffs)
            b_eq.append(-const)
        obj, obj_const = row(c)
        res = linprog(
            obj,
            A_ub=A_ub or None,
            b_ub=b_ub or None,
            A_eq=A_eq or None,
            b_eq=b_eq or None,
            bounds=[(None, None)] * len(names),
            method="highs",
        )
        redundant = False
        if res.status == 2:  # infeasible without c -> system empty -> keep all
            redundant = False
        elif res.status == 0 and res.fun is not None:
            # Small tolerance guards float LP noise; constraints are
            # integral so true minima are at least 1 apart from -epsilon.
            redundant = (res.fun + obj_const) >= -1e-9
        if redundant:
            active = candidates
        else:
            kept.append(c)
    return ConstraintSystem(eqs + kept)


def project(
    system: ConstraintSystem,
    keep: Iterable[str],
    prune: str = "syntactic",
) -> ConstraintSystem:
    """Project the system onto *keep* by eliminating every other variable."""
    keep_set = set(keep)
    drop = sorted(system.variables() - keep_set)
    return eliminate(system, drop, prune=prune)
