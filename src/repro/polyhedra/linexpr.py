"""Exact affine expressions over named variables.

A :class:`LinExpr` is ``sum_i c_i * v_i + k`` with rational coefficients.
It is the atom of the whole polyhedral layer: constraints, loop bounds,
mapping functions and Ehrhart evaluation are all built from it.

Expressions are immutable and hashable; arithmetic returns new objects.
Exactness matters — Fourier–Motzkin elimination multiplies constraints by
coefficients, and any floating-point rounding would corrupt loop bounds —
so coefficients are :class:`fractions.Fraction` throughout.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, Mapping, Tuple, Union

from .._util import as_fraction, gcd_all, lcm_all

Number = Union[int, Fraction]


class LinExpr:
    """Immutable affine expression with exact rational coefficients."""

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, coeffs: Mapping[str, Number] | None = None, const: Number = 0):
        clean: Dict[str, Fraction] = {}
        if coeffs:
            for name, c in coeffs.items():
                f = as_fraction(c)
                if f != 0:
                    clean[name] = f
        self._coeffs: Dict[str, Fraction] = clean
        self._const: Fraction = as_fraction(const)
        self._hash: int | None = None

    # -- constructors -------------------------------------------------

    @staticmethod
    def var(name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return LinExpr({name: 1})

    @staticmethod
    def const(value: Number) -> "LinExpr":
        """A constant expression."""
        return LinExpr({}, value)

    @staticmethod
    def zero() -> "LinExpr":
        return _ZERO

    # -- accessors -----------------------------------------------------

    @property
    def coeffs(self) -> Mapping[str, Fraction]:
        return dict(self._coeffs)

    @property
    def constant(self) -> Fraction:
        return self._const

    def coeff(self, name: str) -> Fraction:
        """Coefficient of *name* (0 if absent)."""
        return self._coeffs.get(name, Fraction(0))

    def variables(self) -> frozenset:
        return frozenset(self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def terms(self) -> Iterator[Tuple[str, Fraction]]:
        """Deterministically ordered (name, coefficient) pairs."""
        return iter(sorted(self._coeffs.items()))

    # -- arithmetic ------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = _coerce(other)
        coeffs = dict(self._coeffs)
        for name, c in other._coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return LinExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-_coerce(other))

    def __rsub__(self, other) -> "LinExpr":
        return _coerce(other) + (-self)

    def __mul__(self, scalar) -> "LinExpr":
        s = as_fraction(scalar)
        if s == 0:
            return _ZERO
        return LinExpr({n: c * s for n, c in self._coeffs.items()}, self._const * s)

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> "LinExpr":
        s = as_fraction(scalar)
        if s == 0:
            raise ZeroDivisionError("division of LinExpr by zero")
        return self * (Fraction(1) / s)

    # -- substitution / evaluation ----------------------------------------

    def substitute(self, bindings: Mapping[str, "LinExpr | Number"]) -> "LinExpr":
        """Replace variables by expressions or numbers, exactly."""
        out = LinExpr({}, self._const)
        for name, c in self._coeffs.items():
            if name in bindings:
                repl = bindings[name]
                repl_expr = repl if isinstance(repl, LinExpr) else LinExpr.const(repl)
                out = out + repl_expr * c
            else:
                out = out + LinExpr({name: c})
        return out

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Evaluate with *every* variable bound; raises KeyError otherwise."""
        total = self._const
        for name, c in self._coeffs.items():
            total += c * as_fraction(env[name])
        return total

    # -- normalization helpers ------------------------------------------

    def scaled_integral(self) -> Tuple["LinExpr", int]:
        """Return ``(expr * m, m)`` where *m* is the least positive integer
        making every coefficient (including the constant) an integer."""
        denoms = [c.denominator for c in self._coeffs.values()]
        denoms.append(self._const.denominator)
        m = lcm_all(denoms)
        return self * m, m

    def content(self) -> int:
        """gcd of the integer *variable* coefficients (expr must be integral).

        The constant is deliberately excluded: integer tightening divides
        variable coefficients by the content and floors the constant.
        """
        nums = []
        for c in self._coeffs.values():
            if c.denominator != 1:
                raise ValueError("content() requires integral coefficients")
            nums.append(c.numerator)
        return gcd_all(nums)

    # -- dunder plumbing ---------------------------------------------------

    def _key(self) -> tuple:
        return (tuple(sorted(self._coeffs.items())), self._const)

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        for name, c in sorted(self._coeffs.items()):
            if c == 1:
                parts.append(f"+ {name}")
            elif c == -1:
                parts.append(f"- {name}")
            elif c > 0:
                parts.append(f"+ {c}*{name}")
            else:
                parts.append(f"- {-c}*{name}")
        if self._const > 0 or not parts:
            parts.append(f"+ {self._const}")
        elif self._const < 0:
            parts.append(f"- {-self._const}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        return text


def _coerce(value) -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.const(as_fraction(value))


_ZERO = LinExpr({}, 0)


def parse_affine(text: str) -> LinExpr:
    """Parse a human-written affine expression like ``'2*s1 - f2 + N - 3'``.

    Supports ``+``, ``-``, integer (or rational ``p/q``) literals, optional
    ``*`` between coefficient and variable, and implicit coefficient 1.
    This is the expression micro-grammar used by the spec-file parser.
    """
    import re

    from ..errors import ParseError

    text = text.strip()
    if not text:
        raise ParseError("empty affine expression")
    # Tokenize into signed terms.
    token_re = re.compile(
        r"\s*(?P<sign>[+-])?\s*"
        r"(?:(?P<num>\d+(?:/\d+)?)\s*\*?\s*(?P<var1>[A-Za-z_]\w*)?"
        r"|(?P<var2>[A-Za-z_]\w*))"
    )
    pos = 0
    expr = LinExpr.zero()
    first = True
    while pos < len(text):
        m = token_re.match(text, pos)
        if not m or m.end() == pos:
            raise ParseError(f"cannot parse affine expression {text!r} at offset {pos}")
        sign = m.group("sign")
        if sign is None and not first:
            raise ParseError(
                f"missing '+'/'-' between terms in {text!r} at offset {pos}"
            )
        s = -1 if sign == "-" else 1
        if m.group("num") is not None:
            coeff = Fraction(m.group("num"))
            var = m.group("var1")
            if var is None:
                expr = expr + LinExpr.const(coeff * s)
            else:
                expr = expr + LinExpr({var: coeff * s})
        else:
            expr = expr + LinExpr({m.group("var2"): s})
        pos = m.end()
        first = False
    return expr
