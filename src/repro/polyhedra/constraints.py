"""Linear constraints and constraint systems (parametric polyhedra).

A :class:`Constraint` is ``expr >= 0`` (inequality) or ``expr == 0``
(equality) over a :class:`~repro.polyhedra.linexpr.LinExpr`.  A
:class:`ConstraintSystem` is a finite conjunction of constraints: the
iteration spaces of the paper (original space, tile space, load-balancing
space, local space) are all ConstraintSystems over different variable
sets.

Constraints are normalized on construction:

* coefficients are scaled to integers,
* divided by their gcd,
* and for inequalities the constant is *floored* after the gcd division
  (integer tightening — valid because all evaluation points are integer).
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Iterable, Iterator, List, Mapping, Sequence, Tuple

from .._util import as_fraction
from ..errors import ParseError, PolyhedronError
from .linexpr import LinExpr, parse_affine

GE = ">="
EQ = "=="


class Constraint:
    """A normalized linear constraint ``expr >= 0`` or ``expr == 0``."""

    __slots__ = ("_expr", "_kind", "_hash")

    def __init__(self, expr: LinExpr, kind: str = GE):
        if kind not in (GE, EQ):
            raise PolyhedronError(f"unknown constraint kind {kind!r}")
        self._kind = kind
        self._expr = self._normalize(expr, kind)
        self._hash: int | None = None

    @staticmethod
    def _normalize(expr: LinExpr, kind: str) -> LinExpr:
        expr, _ = expr.scaled_integral()
        g = expr.content()
        if g > 1:
            coeffs = {n: c / g for n, c in expr.coeffs.items()}
            const = expr.constant / g
            if kind == GE:
                # Integer tightening: a/g . x + floor(c/g) >= 0.
                const = Fraction(const.numerator // const.denominator)
            else:
                # An equality with non-integral constant after division has
                # no integer solutions; keep it as-is so emptiness shows up.
                if const.denominator != 1:
                    return expr
            expr = LinExpr(coeffs, const)
        elif g == 0:
            # Constant constraint; leave the (integral) constant alone.
            pass
        return expr

    # -- accessors ---------------------------------------------------------

    @property
    def expr(self) -> LinExpr:
        return self._expr

    @property
    def kind(self) -> str:
        return self._kind

    def is_equality(self) -> bool:
        return self._kind == EQ

    def variables(self) -> frozenset:
        return self._expr.variables()

    def coeff(self, name: str) -> Fraction:
        return self._expr.coeff(name)

    def is_trivial(self) -> bool:
        """True for constraints with no variables that always hold."""
        if not self._expr.is_constant():
            return False
        c = self._expr.constant
        return c >= 0 if self._kind == GE else c == 0

    def is_contradiction(self) -> bool:
        """True for constraints with no variables that never hold."""
        if not self._expr.is_constant():
            return False
        c = self._expr.constant
        return c < 0 if self._kind == GE else c != 0

    def satisfied(self, env: Mapping[str, int]) -> bool:
        value = self._expr.evaluate(env)
        return value >= 0 if self._kind == GE else value == 0

    def substitute(self, bindings) -> "Constraint":
        return Constraint(self._expr.substitute(bindings), self._kind)

    def shifted(self, offsets: Mapping[str, int]) -> "Constraint":
        """The constraint at ``x + r``: substitute ``v -> v + r_v``.

        Used by template-validity analysis (paper Section IV-G).
        """
        bindings = {
            name: LinExpr({name: 1}, off) for name, off in offsets.items()
        }
        return self.substitute(bindings)

    # -- plumbing ----------------------------------------------------------

    def _key(self) -> tuple:
        return (self._kind, self._expr._key())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        return f"Constraint({self})"

    def __str__(self) -> str:
        return f"{self._expr} {self._kind} 0"


_REL_RE = re.compile(r"(<=|>=|==|<|>|=)")


def parse_constraint(text: str) -> List[Constraint]:
    """Parse constraints like ``'s1 + f1 <= N'`` or chained ``'0 <= x <= N'``.

    Returns a list because chained comparisons expand to several
    constraints.  Strict ``<``/``>`` are tightened to integer ``<=``/``>=``.
    """
    parts = _REL_RE.split(text)
    if len(parts) < 3 or len(parts) % 2 == 0:
        raise ParseError(f"no relational operator in constraint {text!r}")
    out: List[Constraint] = []
    for i in range(0, len(parts) - 2, 2):
        lhs, op, rhs = parts[i], parts[i + 1], parts[i + 2]
        left = parse_affine(lhs)
        right = parse_affine(rhs)
        if op in ("=", "=="):
            out.append(Constraint(left - right, EQ))
        elif op == "<=":
            out.append(Constraint(right - left, GE))
        elif op == ">=":
            out.append(Constraint(left - right, GE))
        elif op == "<":
            out.append(Constraint(right - left - 1, GE))
        elif op == ">":
            out.append(Constraint(left - right - 1, GE))
    return out


class ConstraintSystem:
    """An immutable conjunction of constraints (a parametric polyhedron)."""

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Iterable[Constraint] = ()):
        seen = set()
        ordered: List[Constraint] = []
        for c in constraints:
            if c.is_trivial():
                continue
            if c not in seen:
                seen.add(c)
                ordered.append(c)
        self._constraints: Tuple[Constraint, ...] = tuple(ordered)

    @staticmethod
    def parse(lines: Iterable[str]) -> "ConstraintSystem":
        cs: List[Constraint] = []
        for line in lines:
            if "#" in line:
                line = line.split("#", 1)[0]
            line = line.strip()
            if not line:
                continue
            cs.extend(parse_constraint(line))
        return ConstraintSystem(cs)

    # -- accessors ---------------------------------------------------------

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self._constraints

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def variables(self) -> frozenset:
        vs: set = set()
        for c in self._constraints:
            vs |= c.variables()
        return frozenset(vs)

    def is_trivially_empty(self) -> bool:
        return any(c.is_contradiction() for c in self._constraints)

    def satisfied(self, env: Mapping[str, int]) -> bool:
        return all(c.satisfied(env) for c in self._constraints)

    # -- combinators ---------------------------------------------------------

    def and_also(self, extra: Iterable[Constraint]) -> "ConstraintSystem":
        return ConstraintSystem(list(self._constraints) + list(extra))

    def substitute(self, bindings) -> "ConstraintSystem":
        return ConstraintSystem(c.substitute(bindings) for c in self._constraints)

    def fix(self, assignments: Mapping[str, int]) -> "ConstraintSystem":
        """Substitute concrete integer values for some variables."""
        bindings = {n: LinExpr.const(v) for n, v in assignments.items()}
        return self.substitute(bindings)

    def equalities(self) -> List[Constraint]:
        return [c for c in self._constraints if c.is_equality()]

    def inequalities(self) -> List[Constraint]:
        return [c for c in self._constraints if not c.is_equality()]

    def constraints_on(self, name: str) -> List[Constraint]:
        return [c for c in self._constraints if c.coeff(name) != 0]

    # -- plumbing ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, ConstraintSystem):
            return NotImplemented
        return set(self._constraints) == set(other._constraints)

    def __hash__(self) -> int:
        return hash(frozenset(self._constraints))

    def __repr__(self) -> str:
        body = ", ".join(str(c) for c in self._constraints)
        return f"ConstraintSystem[{body}]"


def nonneg_orthant(names: Sequence[str]) -> ConstraintSystem:
    """Convenience: the system ``v >= 0`` for each name."""
    return ConstraintSystem(Constraint(LinExpr.var(n)) for n in names)


def box(bounds: Mapping[str, Tuple[int, int]]) -> ConstraintSystem:
    """Convenience: an axis-aligned integer box ``lo <= v <= hi``."""
    cs: List[Constraint] = []
    for name, (lo, hi) in bounds.items():
        cs.append(Constraint(LinExpr.var(name) - as_fraction(lo)))
        cs.append(Constraint(as_fraction(hi) - LinExpr.var(name)))
    return ConstraintSystem(cs)
