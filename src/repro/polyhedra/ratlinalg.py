"""Exact rational linear algebra (Gaussian elimination over Fractions).

Used by Ehrhart-polynomial reconstruction, where float least-squares
would smear the exact integer point counts, and by the hyperplane load
balancer's plane fitting.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from ..errors import PolyhedronError


def solve_rational(
    matrix: Sequence[Sequence[Fraction | int]],
    rhs: Sequence[Fraction | int],
) -> List[Fraction]:
    """Solve the square system ``matrix @ x = rhs`` exactly.

    Raises :class:`PolyhedronError` on singular systems.
    """
    n = len(matrix)
    if n == 0:
        return []
    a: List[List[Fraction]] = [
        [Fraction(v) for v in row] + [Fraction(rhs[i])] for i, row in enumerate(matrix)
    ]
    for row in a:
        if len(row) != n + 1:
            raise PolyhedronError("solve_rational requires a square system")
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot_row is None:
            raise PolyhedronError("singular system in solve_rational")
        a[col], a[pivot_row] = a[pivot_row], a[col]
        pivot = a[col][col]
        a[col] = [v / pivot for v in a[col]]
        for r in range(n):
            if r != col and a[r][col] != 0:
                factor = a[r][col]
                a[r] = [rv - factor * cv for rv, cv in zip(a[r], a[col])]
    return [a[i][n] for i in range(n)]


def fit_polynomial(xs: Sequence[int], ys: Sequence[int | Fraction]) -> List[Fraction]:
    """Exact coefficients (lowest degree first) of the interpolating
    polynomial through ``(xs[i], ys[i])``; degree = len(xs) - 1."""
    if len(xs) != len(ys):
        raise PolyhedronError("fit_polynomial needs matching xs/ys lengths")
    if len(set(xs)) != len(xs):
        raise PolyhedronError("fit_polynomial needs distinct sample points")
    n = len(xs)
    vandermonde = [[Fraction(x) ** k for k in range(n)] for x in xs]
    return solve_rational(vandermonde, [Fraction(y) for y in ys])


def eval_polynomial(coeffs: Sequence[Fraction], x: int | Fraction) -> Fraction:
    """Horner evaluation of coefficients stored lowest degree first."""
    total = Fraction(0)
    for c in reversed(coeffs):
        total = total * x + c
    return total
