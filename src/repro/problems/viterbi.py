"""Viterbi decoding as a template-recurrence dynamic program.

An HMM with a *fixed* number of states K fits the paper's model: the
lattice is (t, s) with ``0 <= t <= T`` (parametric) and
``0 <= s <= K-1`` (fixed), and the recurrence

    f(t, s) = emit[s, obs[t]] + max_{s'} ( trans[s', s] + f(t-1, s') )

(in log domain) has exactly the 2K-1 ... actually ``2K-1`` distinct
offsets ``(-1, s'-s)`` for ``s'-s`` in ``[-(K-1), K-1]`` — constant
template vectors, one per state offset.  This exercises parts of the
generator the bandit/alignment suite does not: *mixed-sign* template
components within one vector, ghost margins on both sides of the state
dimension, and validity checks that prune state offsets falling off the
state axis.

The base case falls out of the validity machinery: at ``t = 0`` every
dependency is invalid and the kernel returns the prior + emission.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..spec import ProblemSpec

NEG_INF = -1e30


def random_hmm(
    n_states: int, n_symbols: int, length: int, seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A deterministic random HMM instance.

    Returns ``(prior_log, trans_log, emit_log, observations)`` with
    shapes (K,), (K, K), (K, M) and (T+1,).
    """
    rng = np.random.default_rng(seed)

    def normalize_log(raw: np.ndarray, axis=None) -> np.ndarray:
        p = raw / raw.sum(axis=axis, keepdims=axis is not None)
        return np.log(p)

    prior = normalize_log(rng.random(n_states) + 0.1)
    trans = normalize_log(rng.random((n_states, n_states)) + 0.1, axis=1)
    emit = normalize_log(rng.random((n_states, n_symbols)) + 0.1, axis=1)
    obs = rng.integers(0, n_symbols, length + 1)
    return prior, trans, emit, obs


def viterbi_spec(
    prior_log: np.ndarray,
    trans_log: np.ndarray,
    emit_log: np.ndarray,
    observations: Sequence[int],
    tile_width_t: int = 8,
) -> ProblemSpec:
    """Build the (t, s) lattice spec for one concrete HMM instance.

    The state dimension is tiled at exactly K (one tile across states —
    the templates reach K-1 cells, so no narrower width is legal), and
    the time dimension at *tile_width_t*.
    """
    K = len(prior_log)
    templates: Dict[str, List[int]] = {}
    for off in range(-(K - 1), K):
        templates[f"from_{'m' if off < 0 else 'p'}{abs(off)}"] = [-1, off]

    prior = np.asarray(prior_log, dtype=float)
    trans = np.asarray(trans_log, dtype=float)
    emit = np.asarray(emit_log, dtype=float)
    obs = np.asarray(observations, dtype=int)

    def kernel(point: Mapping[str, int], deps: Mapping[str, Optional[float]],
               params: Mapping[str, int]) -> float:
        t, s = point["t_step"], point["s_state"]
        e = emit[s, obs[t]]
        if all(v is None for v in deps.values()):
            return float(prior[s] + e)
        best = NEG_INF
        for off in range(-(K - 1), K):
            name = f"from_{'m' if off < 0 else 'p'}{abs(off)}"
            v = deps[name]
            if v is None:
                continue
            sp = s + off
            cand = trans[sp, s] + v
            if cand > best:
                best = cand
        return float(e + best)

    # Generated-code fragments: the HMM tables are embedded as literals,
    # exactly like the alignment problems embed their sequences.
    def c_matrix(name: str, array: np.ndarray) -> str:
        if array.ndim == 1:
            body = ", ".join(f"{v!r}" for v in array.tolist())
            return f"static const double {name}[] = {{{body}}};"
        rows = ", ".join(
            "{" + ", ".join(f"{v!r}" for v in row) + "}"
            for row in array.tolist()
        )
        return (
            f"static const double {name}[][{array.shape[1]}] = {{{rows}}};"
        )

    global_c = "\n".join(
        [
            c_matrix("PRIOR_LOG", prior),
            c_matrix("TRANS_LOG", trans),
            c_matrix("EMIT_LOG", emit),
            "static const int OBS[] = {"
            + ", ".join(str(int(v)) for v in obs)
            + "};",
        ]
    )
    center_c_lines = [
        "double e = EMIT_LOG[s_state][OBS[t_step]];",
        "double best = -1e300; double cand; int any = 0;",
    ]
    for off in range(-(K - 1), K):
        name = f"from_{'m' if off < 0 else 'p'}{abs(off)}"
        center_c_lines += [
            f"if (is_valid_{name}) {{",
            f"    any = 1;",
            f"    cand = TRANS_LOG[s_state + ({off})][s_state] + V[loc_{name}];",
            "    if (cand > best) best = cand;",
            "}",
        ]
    center_c_lines.append(
        "V[loc] = any ? e + best : PRIOR_LOG[s_state] + e;"
    )

    global_py = "\n".join(
        [
            f"PRIOR_LOG = {prior.tolist()!r}",
            f"TRANS_LOG = {trans.tolist()!r}",
            f"EMIT_LOG = {emit.tolist()!r}",
            f"OBS = {obs.tolist()!r}",
        ]
    )
    center_py_lines = [
        "_e = EMIT_LOG[s_state][OBS[t_step]]",
        "_best = None",
    ]
    for off in range(-(K - 1), K):
        name = f"from_{'m' if off < 0 else 'p'}{abs(off)}"
        center_py_lines += [
            f"if is_valid_{name}:",
            f"    _c = TRANS_LOG[s_state + ({off})][s_state] + V[loc_{name}]",
            "    if _best is None or _c > _best:",
            "        _best = _c",
        ]
    center_py_lines.append(
        "V[loc] = (PRIOR_LOG[s_state] + _e) if _best is None else (_e + _best)"
    )

    return ProblemSpec.create(
        name=f"viterbi-k{K}",
        loop_vars=["t_step", "s_state"],
        params=["T"],
        constraints=[
            "t_step >= 0",
            "t_step <= T",
            "s_state >= 0",
            f"s_state <= {K - 1}",
        ],
        templates=templates,
        tile_widths={"t_step": tile_width_t, "s_state": K},
        lb_dims=("t_step",),
        kernel=kernel,
        objective_point={"t_step": len(obs) - 1, "s_state": 0},
        global_code_c=global_c,
        center_code_c="\n".join(center_c_lines),
        global_code_py=global_py,
        center_code_py="\n".join(center_py_lines),
    )


def viterbi_reference(
    prior_log: np.ndarray,
    trans_log: np.ndarray,
    emit_log: np.ndarray,
    observations: Sequence[int],
) -> Tuple[float, List[int]]:
    """Classic Viterbi: returns (best final log-prob, best state path)."""
    prior = np.asarray(prior_log, dtype=float)
    trans = np.asarray(trans_log, dtype=float)
    emit = np.asarray(emit_log, dtype=float)
    obs = list(observations)
    K = len(prior)
    delta = prior + emit[:, obs[0]]
    back: List[np.ndarray] = []
    for t in range(1, len(obs)):
        scores = delta[:, None] + trans  # scores[s', s]
        choice = scores.argmax(axis=0)
        delta = scores.max(axis=0) + emit[:, obs[t]]
        back.append(choice)
    best_final = int(delta.argmax())
    path = [best_final]
    for choice in reversed(back):
        path.append(int(choice[path[-1]]))
    path.reverse()
    return float(delta.max()), path


def viterbi_lattice_reference(
    prior_log, trans_log, emit_log, observations
) -> np.ndarray:
    """The full delta lattice (T+1, K) — per-cell oracle for the kernel."""
    prior = np.asarray(prior_log, dtype=float)
    trans = np.asarray(trans_log, dtype=float)
    emit = np.asarray(emit_log, dtype=float)
    obs = list(observations)
    K = len(prior)
    out = np.empty((len(obs), K))
    out[0] = prior + emit[:, obs[0]]
    for t in range(1, len(obs)):
        scores = out[t - 1][:, None] + trans
        out[t] = scores.max(axis=0) + emit[:, obs[t]]
    return out
