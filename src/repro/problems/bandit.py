"""Bernoulli bandit problems (paper Sections I, II and VI).

The k-arm Bernoulli bandit is solved by 2k-dimensional dynamic
programming: the state counts the successes ``s_i`` and failures ``f_i``
observed on each arm, and the Bayesian value recursion (uniform priors,
so the posterior success probability of arm ``i`` is
``(s_i + 1) / (s_i + f_i + 2)``) is

    V(state) = max_i [ p_i * (1 + V(state + success_i))
                       + (1 - p_i) * V(state + failure_i) ]

with ``V = 0`` once all ``N`` trials are allocated.  ``V(0)`` is the
expected number of successes under optimal play — the quantity the
adaptive-clinical-trial application maximizes.

Note: Figure 1 of the paper omits the immediate-reward term (its
recurrence would evaluate to zero); we use the standard form above.  The
template structure — the only input the generator consumes — is
identical: one unit vector per state dimension.

Three instances are provided, matching the paper's evaluation set:

* :func:`two_arm_spec` — the 4-D 2-arm bandit,
* :func:`three_arm_spec` — the 6-D 3-arm bandit,
* :func:`delayed_two_arm_spec` — the 6-D 2-arm bandit with response
  delay, whose iteration space couples the "pulls allocated" and
  "results observed" dimensions (Section VI: "incrementing the result
  dimensions requires that the arm-pulled dimension already have been
  incremented").

Each spec comes with an independent brute-force reference solver used as
a numerical oracle in tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Mapping, Optional

import numpy as np

from ..spec import ProblemSpec

# ---------------------------------------------------------------------------
# k-arm bandit (k = 2 and 3)
# ---------------------------------------------------------------------------


def _posterior(s: int, f: int) -> float:
    """Posterior mean success probability under a uniform prior."""
    return (s + 1.0) / (s + f + 2.0)


def _karm_kernel(k: int):
    """Python kernel for the k-arm bandit recurrence."""

    def kernel(point: Mapping[str, int], deps: Mapping[str, Optional[float]],
               params: Mapping[str, int]) -> float:
        # All 2k dependencies share the single budget constraint, so they
        # are all valid or all invalid; invalid means the trials are
        # exhausted and the value is 0.
        if deps[f"succ1"] is None:
            return 0.0
        best = -1.0
        for arm in range(1, k + 1):
            s = point[f"s{arm}"]
            f = point[f"f{arm}"]
            p = _posterior(s, f)
            v = p * (1.0 + deps[f"succ{arm}"]) + (1.0 - p) * deps[f"fail{arm}"]
            if v > best:
                best = v
        return best

    return kernel


def _karm_vector_kernel(k: int):
    """Array-level twin of :func:`_karm_kernel` for the fast path.

    All 2k templates share the budget check, so ``valid["succ1"]`` gates
    the whole arm-max; invalid lanes produce NaN arm values (NaN never
    wins a ``>`` comparison) and are overwritten with 0.0 at the end.
    """

    def vector_kernel(point, deps, valid, params):
        best = np.full(point["s1"].shape, -1.0)
        for arm in range(1, k + 1):
            s = point[f"s{arm}"]
            f = point[f"f{arm}"]
            p = (s + 1.0) / (s + f + 2.0)
            v = p * (1.0 + deps[f"succ{arm}"]) + (1.0 - p) * deps[f"fail{arm}"]
            best = np.where(v > best, v, best)
        return np.where(valid["succ1"], best, 0.0)

    return vector_kernel


def _karm_center_code_c(k: int) -> str:
    lines = ["double best = -1.0, p, v;"]
    for arm in range(1, k + 1):
        lines += [
            f"p = (s{arm} + 1.0) / (s{arm} + f{arm} + 2.0);",
            f"v = is_valid_succ{arm}"
            f" ? p * (1.0 + V[loc_succ{arm}]) + (1.0 - p) * V[loc_fail{arm}]"
            f" : 0.0;",
            "if (v > best) best = v;",
        ]
    lines.append("V[loc] = best;")
    return "\n".join(lines)


def _karm_center_code_py(k: int) -> str:
    lines = ["_best = -1.0"]
    for arm in range(1, k + 1):
        lines += [
            f"_p = (s{arm} + 1.0) / (s{arm} + f{arm} + 2.0)",
            f"_v = (_p * (1.0 + V[loc_succ{arm}]) + (1.0 - _p) * V[loc_fail{arm}])"
            f" if is_valid_succ{arm} else 0.0",
            "if _v > _best:",
            "    _best = _v",
        ]
    lines.append("V[loc] = _best")
    return "\n".join(lines)


def karm_spec(k: int, tile_width: int = 8, lb_dims=None) -> ProblemSpec:
    """The 2k-dimensional k-arm Bernoulli bandit specification."""
    loop_vars = []
    templates: Dict[str, list] = {}
    for arm in range(1, k + 1):
        loop_vars += [f"s{arm}", f"f{arm}"]
    d = len(loop_vars)
    for arm in range(1, k + 1):
        succ = [0] * d
        succ[loop_vars.index(f"s{arm}")] = 1
        fail = [0] * d
        fail[loop_vars.index(f"f{arm}")] = 1
        templates[f"succ{arm}"] = succ
        templates[f"fail{arm}"] = fail
    constraints = [f"{v} >= 0" for v in loop_vars]
    constraints.append(" + ".join(loop_vars) + " <= N")
    if lb_dims is None:
        lb_dims = ("s1", "f1")
    return ProblemSpec.create(
        name=f"bandit{k}",
        loop_vars=loop_vars,
        params=["N"],
        constraints=constraints,
        templates=templates,
        tile_widths=tile_width,
        lb_dims=lb_dims,
        kernel=_karm_kernel(k),
        vector_kernel=_karm_vector_kernel(k),
        center_code_c=_karm_center_code_c(k),
        center_code_py=_karm_center_code_py(k),
    )


def two_arm_spec(tile_width: int = 8, lb_dims=None) -> ProblemSpec:
    """The paper's running example: the 4-D 2-arm bandit (Figure 1)."""
    return karm_spec(2, tile_width=tile_width, lb_dims=lb_dims)


def three_arm_spec(tile_width: int = 8, lb_dims=None) -> ProblemSpec:
    """The 6-D 3-arm bandit of [Oehmke, Hardwick & Stout, SC'00]."""
    return karm_spec(3, tile_width=tile_width, lb_dims=lb_dims)


def two_arm_reference(N: int) -> float:
    """Independent vectorized solver for the 2-arm bandit.

    Sweeps levels ``m = s1+f1+s2+f2`` from ``N-1`` down to 0 over a dense
    4-D array; never touches the generator or the tiled runtime.
    Returns ``V(0,0,0,0)``.
    """
    V = np.zeros((N + 2,) * 4, dtype=np.float64)
    s = np.arange(N + 1, dtype=np.float64)
    for m in range(N - 1, -1, -1):
        for s1 in range(m + 1):
            for f1 in range(m - s1 + 1):
                rem = m - s1 - f1
                p1 = _posterior(s1, f1)
                # vector over s2 = 0..rem, with f2 = rem - s2 .. but we
                # need all (s2, f2) with s2 + f2 <= rem; loop s2, vector f2.
                for s2 in range(rem + 1):
                    fmax = rem - s2
                    f2 = np.arange(fmax + 1)
                    p2 = (s2 + 1.0) / (s2 + f2 + 2.0)
                    v1 = (
                        p1 * (1.0 + V[s1 + 1, f1, s2, f2])
                        + (1.0 - p1) * V[s1, f1 + 1, s2, f2]
                    )
                    v2 = (
                        p2 * (1.0 + V[s1, f1, s2 + 1, f2])
                        + (1.0 - p2) * V[s1, f1, s2, f2 + 1]
                    )
                    V[s1, f1, s2, f2] = np.maximum(v1, v2)
    return float(V[0, 0, 0, 0])


def three_arm_reference(N: int) -> float:
    """Brute-force memoized solver for the 3-arm bandit (small N only)."""

    @lru_cache(maxsize=None)
    def value(s1, f1, s2, f2, s3, f3):
        if s1 + f1 + s2 + f2 + s3 + f3 >= N:
            return 0.0
        best = -1.0
        state = [s1, f1, s2, f2, s3, f3]
        for arm in range(3):
            s, f = state[2 * arm], state[2 * arm + 1]
            p = _posterior(s, f)
            up = list(state)
            up[2 * arm] += 1
            down = list(state)
            down[2 * arm + 1] += 1
            v = p * (1.0 + value(*up)) + (1.0 - p) * value(*down)
            best = max(best, v)
        return best

    result = value(0, 0, 0, 0, 0, 0)
    value.cache_clear()
    return result


# ---------------------------------------------------------------------------
# 2-arm bandit with response delay (6-D)
# ---------------------------------------------------------------------------


def _delayed_kernel(point, deps, params):
    """Kernel for the delayed 2-arm bandit.

    State ``<q1, s1, f1, q2, s2, f2>``: ``q_i`` pulls allocated to arm i,
    of which ``s_i + f_i`` outcomes have been observed.  Moves: allocate
    a pull (``pull_i``: q_i + 1) while budget remains, or observe a
    pending outcome (``obs_s_i``/``obs_f_i``, a chance node resolving
    with the posterior probability).

    *Delay rule*: an arm's newest outcome stays hidden until a newer pull
    of that arm is in flight — observation of arm ``i`` is only allowed
    when ``pend_i >= 2``, or at the end of the trial when no budget
    remains.  So the decision to pull is genuinely made one outcome
    behind, which is what makes the delayed value strictly below the
    immediate-feedback value.  (The paper names the 6-D "bandit with
    delay" but gives no state equations; this realizes its stated
    cross-dimension coupling: incrementing a result dimension requires
    the pull dimension to have been incremented first.)
    """
    pend1 = point["q1"] - point["s1"] - point["f1"]
    pend2 = point["q2"] - point["s2"] - point["f2"]
    can_pull = deps["pull1"] is not None or deps["pull2"] is not None
    if (pend1 >= 2 or (not can_pull and pend1 >= 1)) and deps["obs_s1"] is not None:
        p = _posterior(point["s1"], point["f1"])
        return p * (1.0 + deps["obs_s1"]) + (1.0 - p) * deps["obs_f1"]
    if (pend2 >= 2 or (not can_pull and pend2 >= 1)) and deps["obs_s2"] is not None:
        p = _posterior(point["s2"], point["f2"])
        return p * (1.0 + deps["obs_s2"]) + (1.0 - p) * deps["obs_f2"]
    candidates = [v for v in (deps["pull1"], deps["pull2"]) if v is not None]
    if not candidates:
        return 0.0
    return max(candidates)


def _delayed_vector_kernel(point, deps, valid, params):
    """Array-level twin of :func:`_delayed_kernel` for the fast path."""
    q1, s1, f1 = point["q1"], point["s1"], point["f1"]
    q2, s2, f2 = point["q2"], point["s2"], point["f2"]
    pend1 = q1 - s1 - f1
    pend2 = q2 - s2 - f2
    can_pull = valid["pull1"] | valid["pull2"]
    gate1 = ((pend1 >= 2) | (~can_pull & (pend1 >= 1))) & valid["obs_s1"]
    gate2 = ((pend2 >= 2) | (~can_pull & (pend2 >= 1))) & valid["obs_s2"]
    p1 = (s1 + 1.0) / (s1 + f1 + 2.0)
    obs1 = p1 * (1.0 + deps["obs_s1"]) + (1.0 - p1) * deps["obs_f1"]
    p2 = (s2 + 1.0) / (s2 + f2 + 2.0)
    obs2 = p2 * (1.0 + deps["obs_s2"]) + (1.0 - p2) * deps["obs_f2"]
    # max over the valid pulls; -inf sentinel, first candidate wins ties
    # (matching the scalar max over the candidate list), no pulls -> 0.0.
    v1 = np.where(valid["pull1"], deps["pull1"], -np.inf)
    v2 = np.where(valid["pull2"], deps["pull2"], -np.inf)
    pulls = np.where(v2 > v1, v2, v1)
    pulls = np.where(np.isinf(pulls), 0.0, pulls)
    return np.where(gate1, obs1, np.where(gate2, obs2, pulls))


_DELAYED_CENTER_C = """\
int pend1 = q1 - s1 - f1, pend2 = q2 - s2 - f2;
int can_pull = is_valid_pull1 || is_valid_pull2;
double p, v1, v2;
if ((pend1 >= 2 || (!can_pull && pend1 >= 1)) && is_valid_obs_s1) {
    p = (s1 + 1.0) / (s1 + f1 + 2.0);
    V[loc] = p * (1.0 + V[loc_obs_s1]) + (1.0 - p) * V[loc_obs_f1];
} else if ((pend2 >= 2 || (!can_pull && pend2 >= 1)) && is_valid_obs_s2) {
    p = (s2 + 1.0) / (s2 + f2 + 2.0);
    V[loc] = p * (1.0 + V[loc_obs_s2]) + (1.0 - p) * V[loc_obs_f2];
} else {
    v1 = is_valid_pull1 ? V[loc_pull1] : 0.0;
    v2 = is_valid_pull2 ? V[loc_pull2] : 0.0;
    V[loc] = (v1 > v2 ? v1 : v2);
}
"""

_DELAYED_CENTER_PY = """\
_pend1 = q1 - s1 - f1
_pend2 = q2 - s2 - f2
_can_pull = is_valid_pull1 or is_valid_pull2
if (_pend1 >= 2 or (not _can_pull and _pend1 >= 1)) and is_valid_obs_s1:
    _p = (s1 + 1.0) / (s1 + f1 + 2.0)
    V[loc] = _p * (1.0 + V[loc_obs_s1]) + (1.0 - _p) * V[loc_obs_f1]
elif (_pend2 >= 2 or (not _can_pull and _pend2 >= 1)) and is_valid_obs_s2:
    _p = (s2 + 1.0) / (s2 + f2 + 2.0)
    V[loc] = _p * (1.0 + V[loc_obs_s2]) + (1.0 - _p) * V[loc_obs_f2]
else:
    _v1 = V[loc_pull1] if is_valid_pull1 else 0.0
    _v2 = V[loc_pull2] if is_valid_pull2 else 0.0
    V[loc] = _v1 if _v1 > _v2 else _v2
"""


def delayed_two_arm_spec(tile_width: int = 4, lb_dims=None) -> ProblemSpec:
    """The 6-D delayed 2-arm bandit (paper Section VI).

    Iteration space (the coupled polytope the paper highlights):

        0 <= s_i,  0 <= f_i,  s_i + f_i <= q_i,  q1 + q2 <= N.

    Incrementing a result dimension (s_i or f_i) is only valid when the
    corresponding pull dimension q_i has room — the cross-dimension
    relationship that distinguishes this space from the plain simplex.
    """
    loop_vars = ["q1", "s1", "f1", "q2", "s2", "f2"]
    templates = {
        "pull1": [1, 0, 0, 0, 0, 0],
        "obs_s1": [0, 1, 0, 0, 0, 0],
        "obs_f1": [0, 0, 1, 0, 0, 0],
        "pull2": [0, 0, 0, 1, 0, 0],
        "obs_s2": [0, 0, 0, 0, 1, 0],
        "obs_f2": [0, 0, 0, 0, 0, 1],
    }
    constraints = [
        "s1 >= 0", "f1 >= 0", "s2 >= 0", "f2 >= 0",
        "q1 >= 0", "q2 >= 0",
        "s1 + f1 <= q1",
        "s2 + f2 <= q2",
        "q1 + q2 <= N",
    ]
    if lb_dims is None:
        lb_dims = ("q1", "q2")
    return ProblemSpec.create(
        name="bandit2-delayed",
        loop_vars=loop_vars,
        params=["N"],
        constraints=constraints,
        templates=templates,
        tile_widths=tile_width,
        lb_dims=lb_dims,
        kernel=_delayed_kernel,
        vector_kernel=_delayed_vector_kernel,
        center_code_c=_DELAYED_CENTER_C,
        center_code_py=_DELAYED_CENTER_PY,
    )


def delayed_two_arm_reference(N: int) -> float:
    """Brute-force memoized oracle for the delayed 2-arm bandit."""

    @lru_cache(maxsize=None)
    def value(q1, s1, f1, q2, s2, f2):
        pend1 = q1 - s1 - f1
        pend2 = q2 - s2 - f2
        can_pull = q1 + q2 + 1 <= N
        if pend1 >= 2 or (not can_pull and pend1 >= 1):
            p = _posterior(s1, f1)
            return p * (1.0 + value(q1, s1 + 1, f1, q2, s2, f2)) + (
                1.0 - p
            ) * value(q1, s1, f1 + 1, q2, s2, f2)
        if pend2 >= 2 or (not can_pull and pend2 >= 1):
            p = _posterior(s2, f2)
            return p * (1.0 + value(q1, s1, f1, q2, s2 + 1, f2)) + (
                1.0 - p
            ) * value(q1, s1, f1, q2, s2, f2 + 1)
        best = 0.0
        if can_pull:
            best = max(best, value(q1 + 1, s1, f1, q2, s2, f2))
            best = max(best, value(q1, s1, f1, q2 + 1, s2, f2))
        return best

    result = value(0, 0, 0, 0, 0, 0)
    value.cache_clear()
    return result
