"""Sequence-alignment dynamic programs (paper Section I).

The paper motivates the generator with Multiple Sequence Alignment
(d-dimensional, one dimension per sequence, scoring matrix and gap
penalties) and the related Longest Common Subsequence problem.  These
problems exercise the generator differently from the bandits: the
template vectors are *negative* (each cell reads its lexicographic
predecessors, so the scan is ascending), they include diagonals (which
produce corner tile-dependencies and corner ghost regions), and the
iteration space is a parametric box rather than a simplex.

Base cases need no special handling: the ``is_valid_r*`` machinery makes
the first row/column recurrences degenerate exactly as the textbook
boundary conditions require (e.g. edit distance D(i,0) = i emerges from
"only the vertical dependency is valid").

All specs carry an independent brute-force reference solver.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..spec import ProblemSpec

DNA = "ACGT"


def random_sequence(length: int, seed: int, alphabet: str = DNA) -> str:
    """Deterministic pseudo-random sequence for tests and benchmarks."""
    rng = np.random.default_rng(seed)
    return "".join(alphabet[i] for i in rng.integers(0, len(alphabet), length))


def _strings_global_c(strings: Sequence[str]) -> str:
    """C globals embedding the sequences (one array per sequence)."""
    return "\n".join(
        f'static const char STR{k}[] = "{s}";' for k, s in enumerate(strings)
    )


def _seq_array(s: str) -> np.ndarray:
    """Sequence as a numpy char array for the vector kernels.

    Empty sequences get a single NUL placeholder so that index-clamping
    (``max(i-1, 0)``) in masked-out lanes stays in bounds.
    """
    return np.array(list(s) or ["\0"], dtype="<U1")


# ---------------------------------------------------------------------------
# Edit distance (2-D)
# ---------------------------------------------------------------------------


def edit_distance_spec(
    a: str, b: str, tile_width: int = 8, lb_dims=None
) -> ProblemSpec:
    """Levenshtein distance between *a* and *b* as a generator problem.

    Iteration space: ``0 <= i <= LA``, ``0 <= j <= LB``; templates are
    the negative unit/diagonal steps; the objective cell is ``(LA, LB)``.
    The objective point depends on the parameters, so it is fixed at spec
    construction for the concrete strings.
    """

    def kernel(point: Mapping[str, int], deps: Mapping[str, Optional[float]],
               params: Mapping[str, int]) -> float:
        i, j = point["i"], point["j"]
        best = None
        if deps["up"] is not None:
            best = deps["up"] + 1.0
        if deps["left"] is not None:
            cand = deps["left"] + 1.0
            best = cand if best is None or cand < best else best
        if deps["diag"] is not None:
            cost = 0.0 if a[i - 1] == b[j - 1] else 1.0
            cand = deps["diag"] + cost
            best = cand if best is None or cand < best else best
        return 0.0 if best is None else best

    A, B = _seq_array(a), _seq_array(b)

    def vector_kernel(point, deps, valid, params):
        # Array twin of `kernel`: min-cascade with an inf sentinel for
        # "no valid dependency", same candidate order, masked lanes
        # (NaN deps) never win a `<` comparison.
        i, j = point["i"], point["j"]
        best = np.where(valid["up"], deps["up"] + 1.0, np.inf)
        cand = deps["left"] + 1.0
        best = np.where(valid["left"] & (cand < best), cand, best)
        cost = np.where(
            A[np.maximum(i - 1, 0)] == B[np.maximum(j - 1, 0)], 0.0, 1.0
        )
        cand = deps["diag"] + cost
        best = np.where(valid["diag"] & (cand < best), cand, best)
        return np.where(np.isinf(best), 0.0, best)

    return ProblemSpec.create(
        name="edit-distance",
        loop_vars=["i", "j"],
        params=["LA", "LB"],
        constraints=["i >= 0", "j >= 0", "i <= LA", "j <= LB"],
        templates={"up": [-1, 0], "left": [0, -1], "diag": [-1, -1]},
        tile_widths=tile_width,
        lb_dims=lb_dims or ("i",),
        kernel=kernel,
        vector_kernel=vector_kernel,
        objective_point={"i": len(a), "j": len(b)},
        global_code_c=(
            f'static const char SEQ_A[] = "{a}";\n'
            f'static const char SEQ_B[] = "{b}";'
        ),
        center_code_c=(
            "double best = 1e300, c;\n"
            "if (is_valid_up)   { c = V[loc_up] + 1.0; if (c < best) best = c; }\n"
            "if (is_valid_left) { c = V[loc_left] + 1.0; if (c < best) best = c; }\n"
            "if (is_valid_diag) { c = V[loc_diag] + (SEQ_A[i-1] == SEQ_B[j-1] ? 0.0 : 1.0);"
            " if (c < best) best = c; }\n"
            "V[loc] = (best > 1e299 ? 0.0 : best);"
        ),
        global_code_py=(f'SEQ_A = "{a}"\nSEQ_B = "{b}"'),
        center_code_py=(
            "_best = None\n"
            "if is_valid_up:\n"
            "    _best = V[loc_up] + 1.0\n"
            "if is_valid_left:\n"
            "    _c = V[loc_left] + 1.0\n"
            "    if _best is None or _c < _best:\n"
            "        _best = _c\n"
            "if is_valid_diag:\n"
            "    _c = V[loc_diag] + (0.0 if SEQ_A[i-1] == SEQ_B[j-1] else 1.0)\n"
            "    if _best is None or _c < _best:\n"
            "        _best = _c\n"
            "V[loc] = 0.0 if _best is None else _best"
        ),
    )


def edit_distance_reference(a: str, b: str) -> int:
    """Classic O(LA*LB) two-row Levenshtein, independent of the generator."""
    prev = list(range(len(b) + 1))
    for i in range(1, len(a) + 1):
        cur = [i] + [0] * len(b)
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev = cur
    return prev[len(b)]


# ---------------------------------------------------------------------------
# Longest Common Subsequence (2 or 3 strings)
# ---------------------------------------------------------------------------


def lcs_spec(strings: Sequence[str], tile_width: int = 8, lb_dims=None) -> ProblemSpec:
    """LCS of 2 or 3 strings — the paper cites the 3-string variant [6]."""
    d = len(strings)
    if d not in (2, 3):
        raise ValueError(f"lcs_spec supports 2 or 3 strings, got {d}")
    loop_vars = [f"x{k+1}" for k in range(d)]
    params = [f"L{k+1}" for k in range(d)]
    constraints = [f"{v} >= 0" for v in loop_vars] + [
        f"{v} <= {p}" for v, p in zip(loop_vars, params)
    ]
    # Templates: all nonzero vectors in {-1, 0}^d.
    templates: Dict[str, List[int]] = {}
    for combo in itertools.product((0, -1), repeat=d):
        if all(c == 0 for c in combo):
            continue
        name = "drop_" + "".join(
            loop_vars[k][1:] for k in range(d) if combo[k] != 0
        )
        templates[name] = list(combo)
    diag_name = "drop_" + "".join(v[1:] for v in loop_vars)

    def kernel(point, deps, params_env):
        coords = [point[v] for v in loop_vars]
        if all(c >= 1 for c in coords):
            chars = {strings[k][coords[k] - 1] for k in range(d)}
            if len(chars) == 1:
                return deps[diag_name] + 1.0
        best = 0.0
        for k in range(d):
            name = "drop_" + loop_vars[k][1:]
            v = deps[name]
            if v is not None and v > best:
                best = v
        return best

    arrs = [_seq_array(s) for s in strings]
    drop_names = ["drop_" + loop_vars[k][1:] for k in range(d)]

    def vector_kernel(point, deps, valid, params_env):
        coords = [point[v] for v in loop_vars]
        chars = [arrs[k][np.maximum(coords[k] - 1, 0)] for k in range(d)]
        match = coords[0] >= 1
        for c in coords[1:]:
            match = match & (c >= 1)
        for ch in chars[1:]:
            match = match & (chars[0] == ch)
        best = np.zeros(coords[0].shape, dtype=np.float64)
        for name in drop_names:
            v = deps[name]
            best = np.where(valid[name] & (v > best), v, best)
        # `match` implies the diagonal dependency is valid (all coords
        # >= 1 and within the box), so its lanes hold real values.
        return np.where(match, deps[diag_name] + 1.0, best)

    # Python center-loop fragment for the pygen backend.
    eq_chain = " == ".join(
        f"STRINGS[{k}][{loop_vars[k]}-1]" for k in range(d)
    )
    all_pos = " and ".join(f"{v} >= 1" for v in loop_vars)
    py_lines = [
        f"if ({all_pos}) and ({eq_chain}):",
        f"    V[loc] = V[loc_{diag_name}] + 1.0",
        "else:",
        "    _best = 0.0",
    ]
    for k in range(d):
        name = "drop_" + loop_vars[k][1:]
        py_lines += [
            f"    if is_valid_{name} and V[loc_{name}] > _best:",
            f"        _best = V[loc_{name}]",
        ]
    py_lines.append("    V[loc] = _best")

    # C center-loop fragment (same logic, C syntax).
    eq_c = " && ".join(
        f"STR{k}[{loop_vars[k]}-1] == STR{(k + 1) % d}[{loop_vars[(k + 1) % d]}-1]"
        for k in range(d - 1)
    )
    pos_c = " && ".join(f"{v} >= 1" for v in loop_vars)
    c_lines = [
        f"if (({pos_c}) && ({eq_c})) {{",
        f"    V[loc] = V[loc_{diag_name}] + 1.0;",
        "} else {",
        "    double best = 0.0;",
    ]
    for k in range(d):
        name = "drop_" + loop_vars[k][1:]
        c_lines.append(
            f"    if (is_valid_{name} && V[loc_{name}] > best) best = V[loc_{name}];"
        )
    c_lines += ["    V[loc] = best;", "}"]

    return ProblemSpec.create(
        name=f"lcs{d}",
        loop_vars=loop_vars,
        params=params,
        constraints=constraints,
        templates=templates,
        tile_widths=tile_width,
        lb_dims=lb_dims or (loop_vars[0],),
        kernel=kernel,
        vector_kernel=vector_kernel,
        objective_point={v: len(s) for v, s in zip(loop_vars, strings)},
        global_code_py=f"STRINGS = {tuple(strings)!r}",
        center_code_py="\n".join(py_lines),
        global_code_c=_strings_global_c(strings),
        center_code_c="\n".join(c_lines),
    )


def lcs_reference(strings: Sequence[str]) -> int:
    """Dense DP oracle for the LCS of 2 or 3 strings."""
    d = len(strings)
    shape = tuple(len(s) + 1 for s in strings)
    table = np.zeros(shape, dtype=np.int64)
    for idx in itertools.product(*(range(1, n) for n in shape)):
        chars = {strings[k][idx[k] - 1] for k in range(d)}
        if len(chars) == 1:
            prev = tuple(i - 1 for i in idx)
            table[idx] = table[prev] + 1
        else:
            best = 0
            for k in range(d):
                drop = tuple(i - 1 if j == k else i for j, i in enumerate(idx))
                best = max(best, table[drop])
            table[idx] = best
    # Fill order above skips boundary hyperplanes (they stay 0, correct),
    # but interior max must also consider dropping to a boundary index —
    # itertools.product from 1 covers that because `drop` may hit 0.
    return int(table[tuple(len(s) for s in strings)])


# ---------------------------------------------------------------------------
# Multiple Sequence Alignment (sum-of-pairs, d = 2 or 3)
# ---------------------------------------------------------------------------

#: Simple DNA scoring: match reward 0, mismatch and gap costs positive
#: (minimization, as in the paper's "minimal cost alignment").
DEFAULT_MISMATCH = 3.0
DEFAULT_GAP = 2.0


def _pair_cost(
    ca: Optional[str], cb: Optional[str], mismatch: float, gap: float
) -> float:
    """Sum-of-pairs column cost for one pair of rows (None = gap)."""
    if ca is None and cb is None:
        return 0.0
    if ca is None or cb is None:
        return gap
    return 0.0 if ca == cb else mismatch


def msa_spec(
    strings: Sequence[str],
    tile_width: int = 8,
    mismatch: float = DEFAULT_MISMATCH,
    gap: float = DEFAULT_GAP,
    lb_dims=None,
) -> ProblemSpec:
    """Exact sum-of-pairs MSA of 2 or 3 sequences.

    Cell ``x`` holds the minimal cost of aligning the prefixes
    ``strings[k][:x_k]``; each of the ``2^d - 1`` moves advances a subset
    of the sequences, charging every advanced/advanced pair a
    match/mismatch score and every advanced/held pair a gap penalty.
    """
    d = len(strings)
    if d not in (2, 3):
        raise ValueError(f"msa_spec supports 2 or 3 sequences, got {d}")
    loop_vars = [f"x{k+1}" for k in range(d)]
    params = [f"L{k+1}" for k in range(d)]
    constraints = [f"{v} >= 0" for v in loop_vars] + [
        f"{v} <= {p}" for v, p in zip(loop_vars, params)
    ]
    moves: List[Tuple[int, ...]] = [
        combo
        for combo in itertools.product((0, -1), repeat=d)
        if any(c != 0 for c in combo)
    ]

    def move_name(move: Tuple[int, ...]) -> str:
        return "adv_" + "".join(str(k + 1) for k in range(d) if move[k] != 0)

    templates = {move_name(m): list(m) for m in moves}

    def kernel(point, deps, params_env):
        best = None
        for move in moves:
            name = move_name(move)
            base = deps[name]
            if base is None:
                continue
            # Column cost: characters consumed by advanced sequences.
            chars: List[Optional[str]] = []
            for k in range(d):
                if move[k] != 0:
                    chars.append(strings[k][point[loop_vars[k]] - 1])
                else:
                    chars.append(None)
            cost = 0.0
            for a_i in range(d):
                for b_i in range(a_i + 1, d):
                    cost += _pair_cost(chars[a_i], chars[b_i], mismatch, gap)
            cand = base + cost
            if best is None or cand < best:
                best = cand
        return 0.0 if best is None else best

    arrs = [_seq_array(s) for s in strings]

    def vector_kernel(point, deps, valid, params_env):
        chars = [
            arrs[k][np.maximum(point[loop_vars[k]] - 1, 0)] for k in range(d)
        ]
        shape = point[loop_vars[0]].shape
        best = np.full(shape, np.inf)
        for move in moves:
            name = move_name(move)
            # Accumulate the column cost pair by pair in the scalar
            # kernel's order so the float sums are bit-identical.
            cost = 0.0
            for a_i in range(d):
                for b_i in range(a_i + 1, d):
                    if move[a_i] != 0 and move[b_i] != 0:
                        cost = cost + np.where(
                            chars[a_i] == chars[b_i], 0.0, mismatch
                        )
                    elif move[a_i] != 0 or move[b_i] != 0:
                        cost = cost + gap
            cand = deps[name] + cost
            best = np.where(valid[name] & (cand < best), cand, best)
        return np.where(np.isinf(best), 0.0, best)

    # Python center-loop fragment for the pygen backend: one guarded
    # candidate per move; gap costs fold to constants at generation time.
    py_lines = ["_best = None"]
    for move in moves:
        name = move_name(move)
        advanced = [k for k in range(d) if move[k] != 0]
        gap_pairs = len(advanced) * (d - len(advanced))
        terms = [f"V[loc_{name}]"]
        if gap_pairs:
            terms.append(f"{gap_pairs} * {gap!r}")
        for ai in range(len(advanced)):
            for bi in range(ai + 1, len(advanced)):
                ka, kb = advanced[ai], advanced[bi]
                terms.append(
                    f"(0.0 if STRINGS[{ka}][{loop_vars[ka]}-1] == "
                    f"STRINGS[{kb}][{loop_vars[kb]}-1] else {mismatch!r})"
                )
        py_lines += [
            f"if is_valid_{name}:",
            f"    _c = {' + '.join(terms)}",
            "    if _best is None or _c < _best:",
            "        _best = _c",
        ]
    py_lines.append("V[loc] = 0.0 if _best is None else _best")

    # C center-loop fragment.
    c_lines = ["double best = 1e300, c;"]
    for move in moves:
        name = move_name(move)
        advanced = [k for k in range(d) if move[k] != 0]
        gap_pairs = len(advanced) * (d - len(advanced))
        terms = [f"V[loc_{name}]"]
        if gap_pairs:
            terms.append(f"{gap_pairs} * {gap}")
        for ai in range(len(advanced)):
            for bi in range(ai + 1, len(advanced)):
                ka, kb = advanced[ai], advanced[bi]
                terms.append(
                    f"(STR{ka}[{loop_vars[ka]}-1] == STR{kb}[{loop_vars[kb]}-1]"
                    f" ? 0.0 : {mismatch})"
                )
        c_lines += [
            f"if (is_valid_{name}) {{",
            f"    c = {' + '.join(terms)};",
            "    if (c < best) best = c;",
            "}",
        ]
    c_lines.append("V[loc] = (best > 1e299 ? 0.0 : best);")

    return ProblemSpec.create(
        name=f"msa{d}",
        loop_vars=loop_vars,
        params=params,
        constraints=constraints,
        templates=templates,
        tile_widths=tile_width,
        lb_dims=lb_dims or (loop_vars[0],),
        kernel=kernel,
        vector_kernel=vector_kernel,
        objective_point={v: len(s) for v, s in zip(loop_vars, strings)},
        global_code_py=f"STRINGS = {tuple(strings)!r}",
        center_code_py="\n".join(py_lines),
        global_code_c=_strings_global_c(strings),
        center_code_c="\n".join(c_lines),
    )


def msa_reference(
    strings: Sequence[str],
    mismatch: float = DEFAULT_MISMATCH,
    gap: float = DEFAULT_GAP,
) -> float:
    """Dense DP oracle for sum-of-pairs MSA (2 or 3 sequences)."""
    d = len(strings)
    shape = tuple(len(s) + 1 for s in strings)
    table = np.full(shape, np.inf, dtype=np.float64)
    table[(0,) * d] = 0.0
    moves = [
        combo
        for combo in itertools.product((0, -1), repeat=d)
        if any(c != 0 for c in combo)
    ]
    for idx in itertools.product(*(range(n) for n in shape)):
        if idx == (0,) * d:
            continue
        best = np.inf
        for move in moves:
            prev = tuple(i + m for i, m in zip(idx, move))
            if any(p < 0 for p in prev):
                continue
            chars: List[Optional[str]] = [
                strings[k][idx[k] - 1] if move[k] != 0 else None for k in range(d)
            ]
            cost = 0.0
            for a_i in range(d):
                for b_i in range(a_i + 1, d):
                    cost += _pair_cost(chars[a_i], chars[b_i], mismatch, gap)
            best = min(best, table[prev] + cost)
        table[idx] = best
    return float(table[tuple(len(s) for s in strings)])


# ---------------------------------------------------------------------------
# Damerau-Levenshtein (optimal string alignment) — transposition template
# ---------------------------------------------------------------------------


def damerau_spec(a: str, b: str, tile_width: int = 8, lb_dims=None) -> ProblemSpec:
    """Restricted Damerau-Levenshtein distance (edit + adjacent swap).

    Adds the transposition move to edit distance: a *reach-2* template
    ``<-2, -2>``, exercising multi-cell ghost margins and the tile-width
    >= reach validation (widths below 2 are rejected by the spec layer).
    """

    def kernel(point: Mapping[str, int], deps: Mapping[str, Optional[float]],
               params: Mapping[str, int]) -> float:
        i, j = point["i"], point["j"]
        best = None
        if deps["up"] is not None:
            best = deps["up"] + 1.0
        if deps["left"] is not None:
            cand = deps["left"] + 1.0
            best = cand if best is None or cand < best else best
        if deps["diag"] is not None:
            cost = 0.0 if a[i - 1] == b[j - 1] else 1.0
            cand = deps["diag"] + cost
            best = cand if best is None or cand < best else best
        if (
            deps["swap"] is not None
            and i >= 2
            and j >= 2
            and a[i - 1] == b[j - 2]
            and a[i - 2] == b[j - 1]
        ):
            cand = deps["swap"] + 1.0
            best = cand if best is None or cand < best else best
        return 0.0 if best is None else best

    A, B = _seq_array(a), _seq_array(b)

    def vector_kernel(point, deps, valid, params):
        i, j = point["i"], point["j"]
        best = np.where(valid["up"], deps["up"] + 1.0, np.inf)
        cand = deps["left"] + 1.0
        best = np.where(valid["left"] & (cand < best), cand, best)
        cost = np.where(
            A[np.maximum(i - 1, 0)] == B[np.maximum(j - 1, 0)], 0.0, 1.0
        )
        cand = deps["diag"] + cost
        best = np.where(valid["diag"] & (cand < best), cand, best)
        swap_ok = (
            valid["swap"]
            & (i >= 2)
            & (j >= 2)
            & (A[np.maximum(i - 1, 0)] == B[np.maximum(j - 2, 0)])
            & (A[np.maximum(i - 2, 0)] == B[np.maximum(j - 1, 0)])
        )
        cand = deps["swap"] + 1.0
        best = np.where(swap_ok & (cand < best), cand, best)
        return np.where(np.isinf(best), 0.0, best)

    return ProblemSpec.create(
        name="damerau",
        loop_vars=["i", "j"],
        params=["LA", "LB"],
        constraints=["i >= 0", "j >= 0", "i <= LA", "j <= LB"],
        templates={
            "up": [-1, 0],
            "left": [0, -1],
            "diag": [-1, -1],
            "swap": [-2, -2],
        },
        tile_widths=tile_width,
        lb_dims=lb_dims or ("i",),
        kernel=kernel,
        vector_kernel=vector_kernel,
        objective_point={"i": len(a), "j": len(b)},
        global_code_py=f'SEQ_A = "{a}"\nSEQ_B = "{b}"',
        center_code_py=(
            "_best = None\n"
            "if is_valid_up:\n"
            "    _best = V[loc_up] + 1.0\n"
            "if is_valid_left:\n"
            "    _c = V[loc_left] + 1.0\n"
            "    if _best is None or _c < _best:\n"
            "        _best = _c\n"
            "if is_valid_diag:\n"
            "    _c = V[loc_diag] + (0.0 if SEQ_A[i-1] == SEQ_B[j-1] else 1.0)\n"
            "    if _best is None or _c < _best:\n"
            "        _best = _c\n"
            "if is_valid_swap and i >= 2 and j >= 2 and "
            "SEQ_A[i-1] == SEQ_B[j-2] and SEQ_A[i-2] == SEQ_B[j-1]:\n"
            "    _c = V[loc_swap] + 1.0\n"
            "    if _best is None or _c < _best:\n"
            "        _best = _c\n"
            "V[loc] = 0.0 if _best is None else _best"
        ),
    )


def damerau_reference(a: str, b: str) -> int:
    """Textbook optimal-string-alignment distance."""
    la, lb = len(a), len(b)
    d = [[0] * (lb + 1) for _ in range(la + 1)]
    for i in range(la + 1):
        d[i][0] = i
    for j in range(lb + 1):
        d[0][j] = j
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            d[i][j] = min(
                d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost
            )
            if (
                i >= 2
                and j >= 2
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                d[i][j] = min(d[i][j], d[i - 2][j - 2] + 1)
    return d[la][lb]


# ---------------------------------------------------------------------------
# Smith-Waterman local alignment (max-with-zero kernel)
# ---------------------------------------------------------------------------

SW_MATCH = 2.0
SW_MISMATCH = -1.0
SW_GAP = 1.0


def smith_waterman_spec(
    a: str,
    b: str,
    tile_width: int = 8,
    match: float = SW_MATCH,
    mismatch: float = SW_MISMATCH,
    gap: float = SW_GAP,
    lb_dims=None,
) -> ProblemSpec:
    """Smith-Waterman local alignment scores over the (i, j) grid.

    The kernel clamps at zero (local alignment restarts anywhere); the
    quantity of interest is the *maximum over all cells*, so use
    :func:`smith_waterman_best` (record_values) or SolutionRecovery
    rather than the objective point.
    """

    def kernel(point, deps, params):
        i, j = point["i"], point["j"]
        best = 0.0
        if deps["diag"] is not None:
            s = match if a[i - 1] == b[j - 1] else mismatch
            best = max(best, deps["diag"] + s)
        if deps["up"] is not None:
            best = max(best, deps["up"] - gap)
        if deps["left"] is not None:
            best = max(best, deps["left"] - gap)
        return best

    A, B = _seq_array(a), _seq_array(b)

    def vector_kernel(point, deps, valid, params):
        i, j = point["i"], point["j"]
        best = np.zeros(i.shape, dtype=np.float64)
        s = np.where(
            A[np.maximum(i - 1, 0)] == B[np.maximum(j - 1, 0)],
            match, mismatch,
        )
        cand = deps["diag"] + s
        best = np.where(valid["diag"] & (cand > best), cand, best)
        cand = deps["up"] - gap
        best = np.where(valid["up"] & (cand > best), cand, best)
        cand = deps["left"] - gap
        best = np.where(valid["left"] & (cand > best), cand, best)
        return best

    return ProblemSpec.create(
        name="smith-waterman",
        loop_vars=["i", "j"],
        params=["LA", "LB"],
        constraints=["i >= 0", "j >= 0", "i <= LA", "j <= LB"],
        templates={"up": [-1, 0], "left": [0, -1], "diag": [-1, -1]},
        tile_widths=tile_width,
        lb_dims=lb_dims or ("i",),
        kernel=kernel,
        vector_kernel=vector_kernel,
        objective_point={"i": len(a), "j": len(b)},
    )


def smith_waterman_best(program, params) -> float:
    """Best local-alignment score: max over every computed cell."""
    from ..runtime import execute

    result = execute(program, params, record_values=True)
    return max(result.values.values())


def smith_waterman_reference(
    a: str,
    b: str,
    match: float = SW_MATCH,
    mismatch: float = SW_MISMATCH,
    gap: float = SW_GAP,
) -> float:
    """Dense numpy oracle for the best Smith-Waterman score."""
    la, lb = len(a), len(b)
    h = np.zeros((la + 1, lb + 1))
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            h[i, j] = max(
                0.0, h[i - 1, j - 1] + s, h[i - 1, j] - gap, h[i, j - 1] - gap
            )
    return float(h.max())
