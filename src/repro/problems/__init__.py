"""The paper's problem suite, each with an independent reference solver.

``REGISTRY`` maps problem names to factory callables used by the CLI and
the benchmarks; factories take the sizing arguments and return a
:class:`~repro.spec.ProblemSpec`.
"""

from typing import Callable, Dict

from .bandit import (
    delayed_two_arm_reference,
    delayed_two_arm_spec,
    karm_spec,
    three_arm_reference,
    three_arm_spec,
    two_arm_reference,
    two_arm_spec,
)
from .alignment import (
    DEFAULT_GAP,
    DEFAULT_MISMATCH,
    damerau_reference,
    damerau_spec,
    edit_distance_reference,
    edit_distance_spec,
    lcs_reference,
    lcs_spec,
    msa_reference,
    msa_spec,
    random_sequence,
    smith_waterman_best,
    smith_waterman_reference,
    smith_waterman_spec,
)
from .viterbi import (
    random_hmm,
    viterbi_lattice_reference,
    viterbi_reference,
    viterbi_spec,
)

REGISTRY: Dict[str, Callable] = {
    "bandit2": two_arm_spec,
    "bandit3": three_arm_spec,
    "bandit2-delayed": delayed_two_arm_spec,
    "edit-distance": edit_distance_spec,
    "damerau": damerau_spec,
    "smith-waterman": smith_waterman_spec,
    "lcs": lcs_spec,
    "msa": msa_spec,
    "viterbi": viterbi_spec,
}

__all__ = [
    "REGISTRY",
    "two_arm_spec",
    "two_arm_reference",
    "three_arm_spec",
    "three_arm_reference",
    "delayed_two_arm_spec",
    "delayed_two_arm_reference",
    "karm_spec",
    "edit_distance_spec",
    "edit_distance_reference",
    "lcs_spec",
    "lcs_reference",
    "msa_spec",
    "msa_reference",
    "random_sequence",
    "DEFAULT_GAP",
    "DEFAULT_MISMATCH",
    "random_hmm",
    "viterbi_spec",
    "viterbi_reference",
    "viterbi_lattice_reference",
    "damerau_spec",
    "damerau_reference",
    "smith_waterman_spec",
    "smith_waterman_reference",
    "smith_waterman_best",
]
