"""Template vectors: the constant dependency offsets of the recurrence.

The paper's problems have the form ``f(x) = F(f(x + r1), ..., f(x + rk))``
with constant vectors ``r_i``.  This module holds the named template set
plus the dependence analysis the generator needs:

* a *legal sequential scan* exists iff per loop dimension all templates
  whose first nonzero component (in loop order) lies in that dimension
  agree in sign — that sign fixes whether the loop runs ascending or
  descending (paper Section IV-L);
* global acyclicity (a linear schedule exists) is certified with an LP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from ..errors import SpecError

ASCENDING = 1
DESCENDING = -1


@dataclass(frozen=True)
class TemplateSet:
    """An ordered, named set of template vectors over *loop_vars*."""

    loop_vars: Tuple[str, ...]
    vectors: Tuple[Tuple[str, Tuple[int, ...]], ...]

    @staticmethod
    def from_dict(
        loop_vars: Sequence[str], vectors: Mapping[str, Sequence[int]]
    ) -> "TemplateSet":
        lv = tuple(loop_vars)
        items = []
        for name, vec in vectors.items():
            v = tuple(int(c) for c in vec)
            if len(v) != len(lv):
                raise SpecError(
                    f"template {name!r} has {len(v)} components but there "
                    f"are {len(lv)} loop variables"
                )
            if all(c == 0 for c in v):
                raise SpecError(f"template {name!r} is the zero vector")
            items.append((name, v))
        if not items:
            raise SpecError("at least one template vector is required")
        names = [n for n, _ in items]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate template names: {names}")
        return TemplateSet(lv, tuple(items))

    # -- accessors ---------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.vectors)

    def vector(self, name: str) -> Tuple[int, ...]:
        for n, v in self.vectors:
            if n == name:
                return v
        raise SpecError(f"unknown template {name!r}")

    def items(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        return iter(self.vectors)

    def as_offset_map(self, name: str) -> Dict[str, int]:
        """The template as a {loop_var: offset} mapping (zeros included)."""
        return dict(zip(self.loop_vars, self.vector(name)))

    def __len__(self) -> int:
        return len(self.vectors)

    # -- dependence analysis -------------------------------------------------

    def scan_directions(self) -> Dict[str, int]:
        """Per-dimension scan direction making the sequential order legal.

        A cell ``x`` reads ``x + r``, so ``x + r`` must be scanned before
        ``x``: the first nonzero component of ``r`` (in loop order) must
        point *against* the scan.  Dimensions unconstrained by any
        template default to DESCENDING (the paper's Figure 3 convention,
        where positive templates scan from upper bound to lower bound).
        """
        forced: Dict[str, int] = {}
        for name, vec in self.vectors:
            for var, comp in zip(self.loop_vars, vec):
                if comp == 0:
                    continue
                want = DESCENDING if comp > 0 else ASCENDING
                prev = forced.get(var)
                if prev is not None and prev != want:
                    raise SpecError(
                        f"templates conflict on scan direction of {var!r}: "
                        f"template {name!r} needs "
                        f"{'descending' if want == DESCENDING else 'ascending'} "
                        "but an earlier template needs the opposite. "
                        "Reorder the loop variables so the conflicting "
                        "templates are distinguished by an earlier dimension."
                    )
                if prev is None:
                    forced[var] = want
                break  # only the first nonzero component matters
        return {v: forced.get(v, DESCENDING) for v in self.loop_vars}

    def has_linear_schedule(self) -> bool:
        """True iff some vector λ satisfies λ·r >= 1 for every template.

        Existence of such a λ certifies the dependence graph is acyclic
        for every problem size (the recurrences are well-defined).
        """
        try:
            from scipy.optimize import linprog
        except ImportError:  # pragma: no cover
            return True
        d = len(self.loop_vars)
        # feasibility: -r·λ <= -1 for each template; minimize 0.
        a_ub = [[-float(c) for c in vec] for _, vec in self.vectors]
        b_ub = [-1.0] * len(self.vectors)
        res = linprog(
            [0.0] * d,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(None, None)] * d,
            method="highs",
        )
        return res.status == 0

    def ghost_widths(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Ghost-cell margins per dimension: ``(low_side, high_side)``.

        A positive component ``r_k`` reads up to ``r_k`` cells beyond the
        tile's high face (so the high margin is ``max r_k``); a negative
        component reads below the low face.
        """
        lo = {v: 0 for v in self.loop_vars}
        hi = {v: 0 for v in self.loop_vars}
        for _, vec in self.vectors:
            for var, comp in zip(self.loop_vars, vec):
                if comp > 0:
                    hi[var] = max(hi[var], comp)
                elif comp < 0:
                    lo[var] = max(lo[var], -comp)
        return lo, hi

    def max_reach(self) -> Dict[str, int]:
        """Per-dimension maximum |component| over all templates."""
        lo, hi = self.ghost_widths()
        return {v: max(lo[v], hi[v]) for v in self.loop_vars}
