"""Synthesize an executable kernel from a spec's ``center_code_py``.

The in-process runtime wants a Python callable ``kernel(point, deps,
params)``; spec *files* only carry the textual center-loop fragment
written against the Section IV-B interface (``V[loc]``, ``V[loc_r]``,
``is_valid_r``).  This module bridges the two: the fragment is compiled
once, and at each cell it executes against a tiny proxy object that
maps ``V[loc_r]`` reads to the dependency values and captures the
``V[loc]`` write.

This is what lets ``repro-run --spec file.spec`` solve problems defined
purely in the text format, with no Python code outside the fragment.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..errors import SpecError

#: Sentinel location tokens: the fragment's ``loc`` / ``loc_<r>`` names
#: are bound to these, so V-indexing dispatches without arithmetic.
_CURRENT = ("__current__",)


def _token(key) -> str:
    """The fragment-level spelling of a V-index key, for messages."""
    if key is _CURRENT:
        return "loc"
    if isinstance(key, str):
        return f"loc_{key}"
    return repr(key)


class _StateProxy:
    """Stands in for the flat state array inside one cell's execution."""

    __slots__ = ("deps", "result", "wrote")

    def __init__(self):
        self.deps: Mapping[str, Optional[float]] = {}
        self.result: float = 0.0
        self.wrote: bool = False

    def __getitem__(self, key):
        if key is _CURRENT:
            raise SpecError(
                "center_code_py read V[loc] before writing it; the center "
                "loop must only compute the current location"
            )
        try:
            value = self.deps[key]
        except (KeyError, TypeError):
            raise SpecError(
                f"center_code_py read V[{_token(key)}], which is not a "
                "declared template location"
            ) from None
        if value is None:
            raise SpecError(
                f"center_code_py read V[loc_{key}] while is_valid_{key} "
                "is False; guard the access"
            )
        return value

    def __setitem__(self, key, value):
        if key is not _CURRENT:
            raise SpecError(
                f"center_code_py assigned V[{_token(key)}]; the center "
                "loop may only assign V[loc] — writing a dependency "
                "location would race with its owner"
            )
        self.result = float(value)
        self.wrote = True


def kernel_from_center_code(spec) -> "callable":
    """Build ``kernel(point, deps, params)`` from ``spec.center_code_py``.

    The fragment sees: the loop variables and parameters as locals, the
    proxy ``V`` with ``loc``/``loc_<r>`` tokens, ``is_valid_<r>`` flags,
    and anything defined by ``spec.global_code_py`` / ``init_code_py``
    (executed once at build time).
    """
    if not spec.center_code_py.strip():
        raise SpecError(
            f"problem {spec.name!r} has no center_code_py to synthesize a "
            "kernel from"
        )
    module_env: Dict = {}
    if spec.global_code_py:
        exec(spec.global_code_py, module_env)  # noqa: S102 - user input
    if spec.init_code_py:
        exec(spec.init_code_py, module_env)  # noqa: S102 - user input

    template_names = list(spec.templates.names())
    code = compile(spec.center_code_py, f"<center:{spec.name}>", "exec")
    proxy = _StateProxy()

    def kernel(point, deps, params):
        local: Dict = dict(module_env)
        local.update(params)
        local.update(point)
        proxy.deps = deps
        proxy.wrote = False
        local["V"] = proxy
        local["loc"] = _CURRENT
        for name in template_names:
            local[f"loc_{name}"] = name
            local[f"is_valid_{name}"] = deps[name] is not None
        try:
            exec(code, local)  # noqa: S102 - user-supplied center loop
        except NameError as exc:
            # loc_<r> / is_valid_<r> are only bound for declared
            # templates, so a typo'd template name surfaces here as an
            # unbound name — report it in interface terms.
            missing = getattr(exc, "name", "") or ""
            if missing.startswith("loc_"):
                raise SpecError(
                    f"center_code_py read V[{missing}], but "
                    f"{missing[4:]!r} is not a declared template location"
                ) from None
            if missing.startswith("is_valid_"):
                raise SpecError(
                    f"center_code_py tested {missing}, but "
                    f"{missing[9:]!r} is not a declared template"
                ) from None
            raise
        if not proxy.wrote:
            raise SpecError(
                f"center_code_py of {spec.name!r} never assigned V[loc]"
            )
        return proxy.result

    return kernel


def ensure_kernel(spec):
    """The spec's kernel, synthesizing one from center_code_py if needed."""
    if spec.kernel is not None:
        return spec.kernel
    return kernel_from_center_code(spec)
