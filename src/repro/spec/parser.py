"""Parser for the textual problem-description file (paper Section IV-A).

The paper's generator reads a text file holding the center-loop code, the
loop-variable and parameter names, the iteration-space inequalities, the
template vectors, the loop ordering, the load-balancing dimensions and
the tile widths.  This module defines an equivalent concrete syntax:

.. code-block:: text

    problem: bandit2
    loop_vars: s1 f1 s2 f2        # doubles as the loop ordering
    params: N
    state: V
    lb_dims: s1 f1
    tile_widths: s1=8 f1=8 s2=8 f2=8

    constraints:
        s1 >= 0
        f1 >= 0
        s2 >= 0
        f2 >= 0
        s1 + f1 + s2 + f2 <= N

    templates:
        r1 = 1 0 0 0
        r2 = 0 1 0 0
        r3 = 0 0 1 0
        r4 = 0 0 0 1

    center_code_c: |
        double p1 = (s1 + 1.0) / (s1 + f1 + 2.0);
        ...

Scalar keys take the rest of the line; block keys (``constraints``,
``templates``) read following indented lines; literal-code keys use the
``key: |`` form with an indented body.  ``#`` starts a comment outside
code blocks.  Comments and blank lines are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..polyhedra import ConstraintSystem
from .problem import ProblemSpec

_SCALAR_KEYS = {
    "problem",
    "loop_vars",
    "params",
    "state",
    "lb_dims",
    "tile_widths",
    "objective",
}
_BLOCK_KEYS = {"constraints", "templates"}
_CODE_KEYS = {
    "center_code_c",
    "init_code_c",
    "global_code_c",
    "center_code_py",
    "init_code_py",
    "global_code_py",
}


def _strip_comment(line: str) -> str:
    if "#" in line:
        return line.split("#", 1)[0]
    return line


@dataclass
class SpecFields:
    """The raw fields of a parsed spec document, before validation.

    :func:`parse_spec_fields` fills one of these from text without
    constructing a :class:`ProblemSpec` — construction runs the spec's
    consistency validation, which *raises* on an illegal loop ordering
    or an undersized tile, so the static analyzer works on the fields
    directly in order to report those defects as diagnostics instead.
    :func:`build_spec` turns the fields into a validated spec.
    """

    name: str
    loop_vars: List[str]
    params: List[str]
    constraint_lines: List[str]
    templates: Dict[str, Tuple[int, ...]]
    tile_widths: Dict[str, int]
    lb_dims: Optional[List[str]] = None
    state_name: str = "V"
    objective: Optional[Dict[str, int]] = None
    codes: Dict[str, str] = field(default_factory=dict)


def parse_spec_fields(text: str) -> SpecFields:
    """Parse a spec document into raw :class:`SpecFields` (no validation
    beyond the concrete syntax)."""
    scalars: Dict[str, str] = {}
    blocks: Dict[str, List[str]] = {}
    codes: Dict[str, str] = {}

    lines = text.splitlines()
    i = 0
    while i < len(lines):
        raw = lines[i]
        line = _strip_comment(raw).rstrip()
        i += 1
        if not line.strip():
            continue
        if line[0] in " \t":
            raise ParseError(
                f"line {i}: unexpected indented line outside a block: {raw!r}"
            )
        if ":" not in line:
            raise ParseError(f"line {i}: expected 'key: value', got {raw!r}")
        key, _, rest = line.partition(":")
        key = key.strip()
        rest = rest.strip()
        if key in _SCALAR_KEYS:
            if not rest:
                raise ParseError(f"line {i}: key {key!r} needs a value")
            if key in scalars:
                raise ParseError(f"line {i}: duplicate key {key!r}")
            scalars[key] = rest
        elif key in _BLOCK_KEYS:
            if rest:
                raise ParseError(
                    f"line {i}: block key {key!r} takes no inline value"
                )
            body: List[str] = []
            while i < len(lines) and (
                not lines[i].strip() or lines[i][0] in " \t"
            ):
                entry = _strip_comment(lines[i]).strip()
                i += 1
                if entry:
                    body.append(entry)
            if key in blocks:
                raise ParseError(f"duplicate block {key!r}")
            blocks[key] = body
        elif key in _CODE_KEYS:
            if rest != "|":
                raise ParseError(
                    f"line {i}: code key {key!r} must use the 'key: |' form"
                )
            body_lines: List[str] = []
            while i < len(lines) and (
                not lines[i].strip() or lines[i][0] in " \t"
            ):
                body_lines.append(lines[i])
                i += 1
            codes[key] = _dedent_block(body_lines)
        else:
            raise ParseError(f"line {i}: unknown key {key!r}")

    for required in ("problem", "loop_vars", "tile_widths"):
        if required not in scalars:
            raise ParseError(f"missing required key {required!r}")
    if "constraints" not in blocks:
        raise ParseError("missing required block 'constraints'")
    if "templates" not in blocks:
        raise ParseError("missing required block 'templates'")

    loop_vars = scalars["loop_vars"].split()
    params = scalars.get("params", "").split()
    templates = _parse_templates(blocks["templates"])
    tile_widths = _parse_tile_widths(scalars["tile_widths"], loop_vars)
    lb_dims = scalars.get("lb_dims", "").split() or None
    objective = None
    if "objective" in scalars:
        objective = {}
        for tok in scalars["objective"].split():
            if "=" not in tok:
                raise ParseError(
                    f"objective token {tok!r} must look like 'var=value'"
                )
            var, _, val = tok.partition("=")
            try:
                objective[var.strip()] = int(val)
            except ValueError as exc:
                raise ParseError(f"bad objective value in {tok!r}") from exc

    return SpecFields(
        name=scalars["problem"],
        loop_vars=loop_vars,
        params=params,
        constraint_lines=blocks["constraints"],
        templates=templates,
        tile_widths=tile_widths,
        lb_dims=lb_dims,
        state_name=scalars.get("state", "V"),
        objective=objective,
        codes=codes,
    )


def build_spec(fields: SpecFields) -> ProblemSpec:
    """Build (and validate) a :class:`ProblemSpec` from parsed fields."""
    return ProblemSpec.create(
        name=fields.name,
        loop_vars=fields.loop_vars,
        params=fields.params,
        constraints=ConstraintSystem.parse(fields.constraint_lines),
        templates=fields.templates,
        tile_widths=fields.tile_widths,
        lb_dims=fields.lb_dims,
        state_name=fields.state_name,
        objective_point=fields.objective,
        center_code_c=fields.codes.get("center_code_c", ""),
        init_code_c=fields.codes.get("init_code_c", ""),
        global_code_c=fields.codes.get("global_code_c", ""),
        center_code_py=fields.codes.get("center_code_py", ""),
        init_code_py=fields.codes.get("init_code_py", ""),
        global_code_py=fields.codes.get("global_code_py", ""),
    )


def parse_spec_text(text: str) -> ProblemSpec:
    """Parse a problem-description document into a :class:`ProblemSpec`."""
    return build_spec(parse_spec_fields(text))


def parse_spec_file(path) -> ProblemSpec:
    """Parse a problem-description file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_spec_text(fh.read())


def _parse_templates(entries: List[str]) -> Dict[str, Tuple[int, ...]]:
    out: Dict[str, Tuple[int, ...]] = {}
    for entry in entries:
        if "=" not in entry:
            raise ParseError(
                f"template entry {entry!r} must look like 'name = c1 c2 ...'"
            )
        name, _, vec_text = entry.partition("=")
        name = name.strip()
        try:
            vec = tuple(int(tok) for tok in vec_text.split())
        except ValueError as exc:
            raise ParseError(f"bad template components in {entry!r}") from exc
        if name in out:
            raise ParseError(f"duplicate template name {name!r}")
        out[name] = vec
    return out


def _parse_tile_widths(text: str, loop_vars: List[str]) -> Dict[str, int]:
    # Accept either a single integer (applied to all dims) or name=value pairs.
    tokens = text.split()
    if len(tokens) == 1 and "=" not in tokens[0]:
        try:
            w = int(tokens[0])
        except ValueError as exc:
            raise ParseError(f"bad tile width {text!r}") from exc
        return {v: w for v in loop_vars}
    out: Dict[str, int] = {}
    for tok in tokens:
        if "=" not in tok:
            raise ParseError(f"tile width token {tok!r} must be 'var=width'")
        var, _, val = tok.partition("=")
        try:
            out[var.strip()] = int(val)
        except ValueError as exc:
            raise ParseError(f"bad tile width in {tok!r}") from exc
    return out


def _dedent_block(body_lines: List[str]) -> str:
    nonempty = [ln for ln in body_lines if ln.strip()]
    if not nonempty:
        return ""
    indent = min(len(ln) - len(ln.lstrip()) for ln in nonempty)
    stripped = [ln[indent:] if ln.strip() else "" for ln in body_lines]
    # Drop trailing blank lines.
    while stripped and not stripped[-1].strip():
        stripped.pop()
    return "\n".join(stripped) + ("\n" if stripped else "")


def format_spec(spec: ProblemSpec) -> str:
    """Render a :class:`ProblemSpec` back into the textual format.

    ``parse_spec_text(format_spec(s))`` reproduces *s* (up to the Python
    kernel, which has no textual form).
    """
    out: List[str] = [
        f"problem: {spec.name}",
        f"loop_vars: {' '.join(spec.loop_vars)}",
    ]
    if spec.params:
        out.append(f"params: {' '.join(spec.params)}")
    out.append(f"state: {spec.state_name}")
    out.append(f"lb_dims: {' '.join(spec.lb_dims)}")
    widths = " ".join(f"{v}={spec.tile_widths[v]}" for v in spec.loop_vars)
    out.append(f"tile_widths: {widths}")
    if spec.objective_point is not None:
        obj = " ".join(
            f"{v}={spec.objective_point[v]}" for v in spec.loop_vars
        )
        out.append(f"objective: {obj}")
    out.append("")
    out.append("constraints:")
    for c in spec.constraints:
        out.append(f"    {c.expr} {c.kind} 0")
    out.append("")
    out.append("templates:")
    for name, vec in spec.templates.items():
        out.append(f"    {name} = {' '.join(str(c) for c in vec)}")
    for key, code in (
        ("center_code_c", spec.center_code_c),
        ("init_code_c", spec.init_code_c),
        ("global_code_c", spec.global_code_c),
        ("center_code_py", spec.center_code_py),
        ("init_code_py", spec.init_code_py),
        ("global_code_py", spec.global_code_py),
    ):
        if code:
            out.append("")
            out.append(f"{key}: |")
            for ln in code.splitlines():
                out.append(f"    {ln}" if ln.strip() else "")
    return "\n".join(out) + "\n"
