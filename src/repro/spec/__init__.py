"""Problem specifications: the generator's user input (paper Section IV-A)."""

from .templates import ASCENDING, DESCENDING, TemplateSet
from .problem import Kernel, ProblemSpec, RESERVED_NAMES, VectorKernel
from .parser import (
    SpecFields,
    build_spec,
    format_spec,
    parse_spec_fields,
    parse_spec_file,
    parse_spec_text,
)
from .kernel_adapter import ensure_kernel, kernel_from_center_code

__all__ = [
    "TemplateSet",
    "ASCENDING",
    "DESCENDING",
    "ProblemSpec",
    "Kernel",
    "VectorKernel",
    "RESERVED_NAMES",
    "SpecFields",
    "parse_spec_fields",
    "build_spec",
    "parse_spec_text",
    "parse_spec_file",
    "format_spec",
    "kernel_from_center_code",
    "ensure_kernel",
]
