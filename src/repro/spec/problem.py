"""The user-facing problem specification (paper Section IV-A).

A :class:`ProblemSpec` carries exactly the inputs the paper's generator
reads from its text file:

* loop-variable names (which double as the loop ordering),
* input-parameter names,
* the iteration space as linear inequalities,
* named template vectors,
* the load-balancing dimensions in priority order,
* tile widths per dimension,
* and the center-loop code: a C fragment for the C backend plus an
  equivalent Python kernel for the in-process runtime.

The Python kernel has the signature ``kernel(point, deps, params)``:

* ``point`` — mapping of loop-variable name to its integer value,
* ``deps`` — mapping of template name to the dependency's value, or
  ``None`` when the dependency falls outside the iteration space (the
  ``is_valid_r*`` mechanism of Section IV-B),
* ``params`` — mapping of parameter name to value;

and returns the value to store at the current location.

A spec may additionally carry a *vector kernel* — the array-level twin of
the Python kernel used by the runtime's vectorized fast path
(:mod:`repro.runtime.fastpath`).  Its signature is
``vector_kernel(point, deps, valid, params)``:

* ``point`` — mapping of loop-variable name to an int array of global
  coordinates (one entry per cell of the current wavefront),
* ``deps`` — mapping of template name to a float array of dependency
  values; entries are garbage (NaN) wherever the dependency is invalid,
* ``valid`` — mapping of template name to the boolean validity mask
  (``is_valid_r*`` evaluated per cell; may be a scalar ``numpy.bool_``
  when the whole wavefront agrees),
* ``params`` — mapping of parameter name to value;

and returns the float array of computed values.  A vector kernel must be
*bit-identical* to the scalar kernel: apply the same floating-point
operations in the same order, masking invalid lanes with ``numpy.where``.
"""

from __future__ import annotations

import keyword
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import SpecError
from ..polyhedra import ConstraintSystem
from .templates import TemplateSet

Kernel = Callable[[Mapping[str, int], Mapping[str, Optional[float]], Mapping[str, int]], float]
#: Array-level kernel: (point arrays, dep arrays, validity masks, params)
#: -> computed values.  See the module docstring for the contract.
VectorKernel = Callable[[Mapping[str, Any], Mapping[str, Any], Mapping[str, Any], Mapping[str, int]], Any]

_NAME_RE = re.compile(r"^[A-Za-z_]\w*$")

#: Names the generator (and its generated C runtime) introduces; user
#: names must avoid them.
RESERVED_NAMES = frozenset(
    {
        "loc", "tile", "node", "omp", "mpi",
        # identifiers of the generated C program and runtime library
        "t", "buf", "n", "lo", "hi", "key", "d", "work", "slot", "total",
        "cum", "stride", "main", "argv", "argc",
    }
)


def _check_name(name: str, what: str) -> None:
    if not _NAME_RE.match(name):
        raise SpecError(f"{what} {name!r} is not a valid identifier")
    if keyword.iskeyword(name):
        raise SpecError(f"{what} {name!r} is a Python keyword")
    if name in RESERVED_NAMES:
        raise SpecError(f"{what} {name!r} is reserved by the generator")


@dataclass(frozen=True)
class ProblemSpec:
    """Complete description of one template-recurrence DP problem."""

    name: str
    loop_vars: Tuple[str, ...]
    params: Tuple[str, ...]
    constraints: ConstraintSystem
    templates: TemplateSet
    tile_widths: Mapping[str, int]
    lb_dims: Tuple[str, ...]
    state_name: str = "V"
    kernel: Optional[Kernel] = None
    vector_kernel: Optional[VectorKernel] = None
    center_code_c: str = ""
    init_code_c: str = ""
    global_code_c: str = ""
    center_code_py: str = ""
    init_code_py: str = ""
    global_code_py: str = ""
    objective_point: Optional[Mapping[str, int]] = None
    dtype: str = "float64"

    def __post_init__(self):
        self._validate()

    # -- construction helper ------------------------------------------------

    @staticmethod
    def create(
        name: str,
        loop_vars: Sequence[str],
        params: Sequence[str],
        constraints,
        templates: Mapping[str, Sequence[int]],
        tile_widths: Mapping[str, int] | int,
        lb_dims: Sequence[str] | None = None,
        **kwargs,
    ) -> "ProblemSpec":
        """Ergonomic constructor accepting plain dicts / constraint text."""
        lv = tuple(loop_vars)
        if isinstance(constraints, (list, tuple)):
            constraints = ConstraintSystem.parse(constraints)
        tset = TemplateSet.from_dict(lv, templates)
        if isinstance(tile_widths, int):
            tile_widths = {v: tile_widths for v in lv}
        if lb_dims is None:
            lb_dims = (lv[0],)
        return ProblemSpec(
            name=name,
            loop_vars=lv,
            params=tuple(params),
            constraints=constraints,
            templates=tset,
            tile_widths=dict(tile_widths),
            lb_dims=tuple(lb_dims),
            **kwargs,
        )

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        if not self.name:
            raise SpecError("problem name must be non-empty")
        if not self.loop_vars:
            raise SpecError("at least one loop variable is required")
        for v in self.loop_vars:
            _check_name(v, "loop variable")
        for p in self.params:
            _check_name(p, "parameter")
        _check_name(self.state_name, "state array name")
        all_names = list(self.loop_vars) + list(self.params)
        if len(set(all_names)) != len(all_names):
            raise SpecError(
                f"loop variables and parameters must be distinct: {all_names}"
            )
        if self.state_name in all_names:
            raise SpecError(
                f"state array name {self.state_name!r} collides with a variable"
            )
        unknown = self.constraints.variables() - set(all_names)
        if unknown:
            raise SpecError(
                f"constraints mention undeclared names: {sorted(unknown)}"
            )
        if tuple(self.templates.loop_vars) != self.loop_vars:
            raise SpecError("template set was built for different loop variables")
        for v in self.loop_vars:
            w = self.tile_widths.get(v)
            if w is None:
                raise SpecError(f"missing tile width for dimension {v!r}")
            if not isinstance(w, int) or w < 1:
                raise SpecError(f"tile width for {v!r} must be a positive int, got {w!r}")
        extra = set(self.tile_widths) - set(self.loop_vars)
        if extra:
            raise SpecError(f"tile widths given for unknown dimensions: {sorted(extra)}")
        reach = self.templates.max_reach()
        for v in self.loop_vars:
            if self.tile_widths[v] < reach[v]:
                raise SpecError(
                    f"tile width {self.tile_widths[v]} for {v!r} is smaller than "
                    f"the template reach {reach[v]}; tiles must be at least as "
                    "wide as the farthest dependency"
                )
        if not self.lb_dims:
            raise SpecError("at least one load-balancing dimension is required")
        for v in self.lb_dims:
            if v not in self.loop_vars:
                raise SpecError(f"load-balancing dimension {v!r} is not a loop variable")
        if len(set(self.lb_dims)) != len(self.lb_dims):
            raise SpecError(f"duplicate load-balancing dimensions: {self.lb_dims}")
        # Dependence legality: both the sequential scan and a linear
        # schedule must exist.
        self.templates.scan_directions()
        if not self.templates.has_linear_schedule():
            raise SpecError(
                "the template vectors admit no linear schedule; the "
                "recurrence is cyclic and cannot be evaluated"
            )
        if self.objective_point is not None:
            missing = set(self.loop_vars) - set(self.objective_point)
            if missing:
                raise SpecError(
                    f"objective point is missing coordinates: {sorted(missing)}"
                )

    # -- conveniences -------------------------------------------------------

    @property
    def dims(self) -> int:
        return len(self.loop_vars)

    def scan_directions(self) -> Dict[str, int]:
        return self.templates.scan_directions()

    def tile_width_vector(self) -> Tuple[int, ...]:
        return tuple(self.tile_widths[v] for v in self.loop_vars)

    def objective(self, params: Mapping[str, int]) -> Dict[str, int]:
        """Concrete objective point; defaults to the all-zeros corner."""
        if self.objective_point is None:
            return {v: 0 for v in self.loop_vars}
        return dict(self.objective_point)

    def describe(self) -> str:
        """A human-readable summary (used by the CLI)."""
        lines = [
            f"problem {self.name!r}: {self.dims}-dimensional",
            f"  loop order : {', '.join(self.loop_vars)}",
            f"  parameters : {', '.join(self.params) or '(none)'}",
            f"  state array: {self.state_name}",
            f"  constraints: {len(self.constraints)}",
        ]
        for c in self.constraints:
            lines.append(f"    {c}")
        lines.append(f"  templates  : {len(self.templates)}")
        for name, vec in self.templates.items():
            lines.append(f"    {name} = {vec}")
        lines.append(f"  tile widths: {self.tile_width_vector()}")
        lines.append(f"  lb dims    : {', '.join(self.lb_dims)}")
        return "\n".join(lines)
