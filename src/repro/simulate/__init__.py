"""Discrete-event cluster simulator: the testbed substitute (Section VI)."""

from .machine import PAPER_CLUSTER, MachineModel
from .events import EventQueue
from .hybrid import SimResult, simulate, simulate_program
from .metrics import (
    ScalingPoint,
    format_scaling_table,
    shared_memory_scaling,
    weak_scaling,
)
from .trace import (
    TileSpan,
    render_timeline,
    utilization_timeline,
    validate_trace,
)
from .calibrate import (
    CalibrationRun,
    calibrate_machine,
    calibrate_machine_in_process,
    fit_machine,
    run_generated_c,
    run_in_process,
)

__all__ = [
    "MachineModel",
    "PAPER_CLUSTER",
    "EventQueue",
    "SimResult",
    "simulate",
    "simulate_program",
    "ScalingPoint",
    "shared_memory_scaling",
    "weak_scaling",
    "format_scaling_table",
    "TileSpan",
    "validate_trace",
    "utilization_timeline",
    "render_timeline",
    "CalibrationRun",
    "calibrate_machine",
    "calibrate_machine_in_process",
    "fit_machine",
    "run_in_process",
    "run_generated_c",
]
