"""Calibrate the machine model against the real generated program.

The simulator's default constants approximate the paper's 2011 testbed.
When a C compiler is available, the cost model can instead be *measured*:
compile the generated program for a problem, run it single-threaded at a
couple of sizes, and fit

* ``sec_per_cell`` from the cells/second of the larger run, and
* ``tile_overhead_s`` from the per-tile residual between two runs with
  different tile counts.

The result is a :class:`~repro.simulate.machine.MachineModel` whose
single-core behaviour matches this host's compiled code, making the
simulated scaling curves host-grounded rather than purely synthetic.

Hosts without gcc can calibrate against the in-process runtime instead
(:func:`calibrate_machine_in_process`): the same two-run fit, but timing
``repro.runtime.execute``.  Repeated timing runs reuse the program's
cached :class:`~repro.runtime.executor.CompiledExecutor` and a prebuilt
tile graph, so only the steady-state execution loop is measured.
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..generator.cgen import emit_c_program
from ..generator.pipeline import GeneratedProgram
from .machine import MachineModel


@dataclass(frozen=True)
class CalibrationRun:
    """One measured execution of the compiled generated program."""

    params: Mapping[str, int]
    tiles: int
    cells: int
    seconds: float

    @property
    def sec_per_cell(self) -> float:
        return self.seconds / self.cells if self.cells else 0.0


def gcc_available() -> bool:
    return shutil.which("gcc") is not None


def run_generated_c(
    program: GeneratedProgram,
    params: Mapping[str, int],
    threads: int = 1,
    workdir: Optional[Path] = None,
    extra_cflags: Sequence[str] = (),
) -> CalibrationRun:
    """Compile (once per workdir) and run the generated C program."""
    if not gcc_available():
        raise SimulationError("calibration requires gcc")
    spec = program.spec
    own_dir = workdir is None
    workdir = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="repro-cal-"))
    cpath = workdir / f"{spec.name}.c"
    binpath = workdir / spec.name
    if not binpath.exists():
        cpath.write_text(emit_c_program(program))
        build = subprocess.run(
            [
                "gcc", "-O2", "-std=c99", "-fopenmp",
                *extra_cflags,
                str(cpath), "-o", str(binpath), "-lm",
            ],
            capture_output=True,
            text=True,
        )
        if build.returncode != 0:
            raise SimulationError(f"gcc failed:\n{build.stderr[-2000:]}")
    args = [str(params[p]) for p in spec.params]
    run = subprocess.run(
        [str(binpath), *args],
        capture_output=True,
        text=True,
        env={"OMP_NUM_THREADS": str(threads)},
    )
    if run.returncode != 0:
        raise SimulationError(f"generated program failed:\n{run.stderr[-2000:]}")
    header = next(
        (l for l in run.stdout.splitlines() if l.startswith("tiles")), None
    )
    if header is None:
        raise SimulationError(f"unexpected program output:\n{run.stdout}")
    toks = header.split()
    return CalibrationRun(
        params=dict(params),
        tiles=int(toks[1]),
        cells=int(toks[3]),
        seconds=float(toks[5]),
    )


def run_in_process(
    program: GeneratedProgram,
    params: Mapping[str, int],
    mode: str = "auto",
    repeats: int = 1,
) -> CalibrationRun:
    """Time the in-process runtime on one instance (no gcc required).

    The tile graph is prebuilt and the program's cached compiled
    executor does all one-time derivation before the clock starts; the
    fastest of *repeats* timed runs is reported.
    """
    from ..runtime import execute, tile_graph

    graph = tile_graph(program, params)
    result = execute(program, params, graph=graph, mode=mode)  # warm-up
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = execute(program, params, graph=graph, mode=mode)
        best = min(best, time.perf_counter() - t0)
    return CalibrationRun(
        params=dict(params),
        tiles=result.tiles_executed,
        cells=result.cells_computed,
        seconds=best,
    )


def fit_machine(
    small: CalibrationRun,
    large: CalibrationRun,
    base: Optional[MachineModel] = None,
) -> MachineModel:
    """Fit per-cell and per-tile costs from two measured runs.

    Solves the 2x2 system ``seconds = cells * spc + tiles * overhead``;
    degenerate fits (negative overhead from noise, singular systems)
    clamp the overhead at zero and refit the per-cell cost alone.
    """
    base = base or MachineModel()
    det = small.cells * large.tiles - large.cells * small.tiles
    spc: float
    overhead: float
    if det != 0:
        spc = (
            small.seconds * large.tiles - large.seconds * small.tiles
        ) / det
        overhead = (
            small.cells * large.seconds - large.cells * small.seconds
        ) / det
    else:
        spc = large.sec_per_cell
        overhead = 0.0
    if spc <= 0 or overhead < 0:
        spc = large.sec_per_cell
        overhead = 0.0
    return base.with_(sec_per_cell=spc, tile_overhead_s=overhead)


def calibrate_machine(
    program: GeneratedProgram,
    small_params: Mapping[str, int],
    large_params: Mapping[str, int],
    base: Optional[MachineModel] = None,
) -> Tuple[MachineModel, CalibrationRun, CalibrationRun]:
    """Fit the cost model from two single-thread runs of the compiled C.

    Returns the fitted model plus both measurements.
    """
    small = run_generated_c(program, small_params)
    large = run_generated_c(program, large_params)
    return fit_machine(small, large, base), small, large


def calibrate_machine_in_process(
    program: GeneratedProgram,
    small_params: Mapping[str, int],
    large_params: Mapping[str, int],
    base: Optional[MachineModel] = None,
    mode: str = "auto",
    repeats: int = 1,
) -> Tuple[MachineModel, CalibrationRun, CalibrationRun]:
    """Like :func:`calibrate_machine`, but timing the Python runtime.

    Grounds the simulator on hosts without a C toolchain.  With
    ``mode="auto"`` the vectorized fast path is measured when the spec
    supports it, which is the runtime users actually get.
    """
    small = run_in_process(program, small_params, mode=mode, repeats=repeats)
    large = run_in_process(program, large_params, mode=mode, repeats=repeats)
    return fit_machine(small, large, base), small, large
