"""Scaling-study helpers: the measurements Figures 6 and 7 plot.

* :func:`shared_memory_scaling` — fix the problem, sweep core counts on
  one node, report speedup vs one core (Figure 6).
* :func:`weak_scaling` — scale the problem with the node count so the
  locations per node stay roughly constant, normalize time by the actual
  location count as the paper does, and report efficiency relative to
  one node (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..generator.pipeline import GeneratedProgram
from ..runtime.graph import TileGraph, tile_graph
from .hybrid import SimResult, simulate_program
from .machine import MachineModel


@dataclass
class ScalingPoint:
    """One sweep point of a scaling study."""

    cores: int
    nodes: int
    params: Dict[str, int]
    total_cells: int
    makespan_s: float
    speedup: float
    efficiency: float
    result: SimResult


def shared_memory_scaling(
    program: GeneratedProgram,
    params: Mapping[str, int],
    core_counts: Sequence[int],
    machine: Optional[MachineModel] = None,
    priority_scheme: str = "lb-first",
) -> List[ScalingPoint]:
    """Figure 6: speedup vs cores on a single shared-memory node."""
    base = machine or MachineModel()
    graph = tile_graph(program, params)
    t1: Optional[float] = None
    out: List[ScalingPoint] = []
    for cores in core_counts:
        m = base.with_(nodes=1, cores_per_node=cores)
        res = simulate_program(
            program, params, m, priority_scheme=priority_scheme, graph=graph
        )
        if t1 is None:
            one = base.with_(nodes=1, cores_per_node=1)
            t1 = simulate_program(
                program, params, one, priority_scheme=priority_scheme, graph=graph
            ).makespan_s
        speedup = t1 / res.makespan_s
        out.append(
            ScalingPoint(
                cores=cores,
                nodes=1,
                params=dict(params),
                total_cells=res.total_cells,
                makespan_s=res.makespan_s,
                speedup=speedup,
                efficiency=speedup / cores,
                result=res,
            )
        )
    return out


def weak_scaling(
    program_factory: Callable[[int], Tuple[GeneratedProgram, Dict[str, int]]],
    node_counts: Sequence[int],
    machine: Optional[MachineModel] = None,
    lb_method: str = "dimension-cut",
    priority_scheme: str = "lb-first",
) -> List[ScalingPoint]:
    """Figure 7: weak scaling across MPI nodes.

    *program_factory(nodes)* returns the (program, params) whose total
    location count is roughly proportional to *nodes* — exactly scaling
    the work is impossible for simplex spaces, so, like the paper,
    efficiency is computed from time normalized by the actual number of
    locations:

        eff(P) = (cells_P / (P * T_P)) / (cells_1 / T_1)
    """
    base = machine or MachineModel()
    baseline_rate: Optional[float] = None
    out: List[ScalingPoint] = []
    for nodes in node_counts:
        program, params = program_factory(nodes)
        m = base.with_(nodes=nodes)
        res = simulate_program(
            program,
            params,
            m,
            lb_method=lb_method,
            priority_scheme=priority_scheme,
        )
        rate_per_node = res.total_cells / (nodes * res.makespan_s)
        if baseline_rate is None:
            baseline_rate = rate_per_node
        eff = rate_per_node / baseline_rate
        out.append(
            ScalingPoint(
                cores=nodes * m.cores_per_node,
                nodes=nodes,
                params=dict(params),
                total_cells=res.total_cells,
                makespan_s=res.makespan_s,
                speedup=eff * nodes,
                efficiency=eff,
                result=res,
            )
        )
    return out


def format_scaling_table(points: Sequence[ScalingPoint], label: str) -> str:
    """Fixed-width table of a scaling study (benchmark report output)."""
    lines = [
        f"== {label} ==",
        f"{'nodes':>5} {'cores':>6} {'cells':>12} {'time(s)':>10} "
        f"{'speedup':>8} {'eff':>6}",
    ]
    for p in points:
        lines.append(
            f"{p.nodes:>5} {p.cores:>6} {p.total_cells:>12} "
            f"{p.makespan_s:>10.4f} {p.speedup:>8.2f} {p.efficiency:>6.1%}"
        )
    return "\n".join(lines)
