"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, payload)``; the sequence number makes
ordering total and the simulation reproducible regardless of payload
types (tiles, edges) that are not mutually comparable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, Optional, Tuple


class EventQueue:
    """Time-ordered queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, time: float, payload: Any) -> None:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        heapq.heappush(self._heap, (time, next(self._seq), payload))

    def pop(self) -> Tuple[float, Any]:
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Tuple[float, Any]]:
        while self._heap:
            yield self.pop()
