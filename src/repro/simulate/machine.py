"""Machine model for the simulated cluster of shared-memory nodes.

The paper evaluates on 8 nodes x 24 cores with MPI between nodes and
OpenMP inside a node.  This model captures the cost structure that
shapes those measurements:

* per-cell compute cost (the recurrences are memory-bound flops),
* a fixed per-tile overhead (loop setup, allocation reuse),
* a serialized per-tile dequeue cost on each node's shared work queue
  (the OpenMP critical section the paper's Section VII-C discusses as a
  potential bottleneck),
* per-message latency plus bandwidth for MPI edges, and
* a finite number of concurrent send buffers per node (a user-tunable
  option in the generated code, Section VI-C).

Defaults approximate a 2011-era cluster (2.5 GF/core effective on this
kernel, QDR InfiniBand-like link).  Absolute times are synthetic; the
*shape* of the scaling curves comes from the real schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SimulationError


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated cluster."""

    nodes: int = 1
    cores_per_node: int = 24
    sec_per_cell: float = 2.0e-8          # ~50 M recurrence cells/s/core
    tile_overhead_s: float = 5.0e-6       # per-tile setup (alloc, bounds)
    queue_lock_s: float = 1.5e-6          # serialized dequeue per tile
    pack_sec_per_cell: float = 2.0e-9     # packing/unpacking per edge cell
    bytes_per_cell: int = 8               # double-precision state
    latency_s: float = 4.0e-6             # per MPI message
    bandwidth_bps: float = 2.5e9          # bytes/s per send channel
    send_buffers: int = 4                 # concurrent sends per node
    #: Work-queue sharing (paper Section VII-C future work): 1 = the
    #: paper's single shared queue per node; g > 1 = g independent
    #: queue locks for groups of closely connected cores, relieving
    #: dequeue contention on large core counts.
    queue_groups: int = 1

    def __post_init__(self):
        if self.nodes < 1:
            raise SimulationError(f"nodes must be >= 1, got {self.nodes}")
        if self.cores_per_node < 1:
            raise SimulationError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.send_buffers < 1:
            raise SimulationError(
                f"send_buffers must be >= 1, got {self.send_buffers}"
            )
        if self.queue_groups < 1:
            raise SimulationError(
                f"queue_groups must be >= 1, got {self.queue_groups}"
            )
        if self.queue_groups > self.cores_per_node:
            raise SimulationError(
                f"queue_groups ({self.queue_groups}) cannot exceed "
                f"cores_per_node ({self.cores_per_node})"
            )
        for fieldname in (
            "sec_per_cell",
            "tile_overhead_s",
            "queue_lock_s",
            "pack_sec_per_cell",
            "latency_s",
        ):
            if getattr(self, fieldname) < 0:
                raise SimulationError(f"{fieldname} must be >= 0")
        if self.bandwidth_bps <= 0:
            raise SimulationError("bandwidth_bps must be > 0")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def with_(self, **kwargs) -> "MachineModel":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)

    def tile_duration(self, work_cells: int, packed_cells: int = 0) -> float:
        """Compute time for one tile of *work_cells* recurrence cells."""
        return (
            self.tile_overhead_s
            + work_cells * self.sec_per_cell
            + packed_cells * self.pack_sec_per_cell
        )

    def message_duration(self, cells: int) -> float:
        """Wire time for one packed edge of *cells* state values."""
        return self.latency_s + (cells * self.bytes_per_cell) / self.bandwidth_bps


#: The paper's testbed: 8 nodes x 24 cores.
PAPER_CLUSTER = MachineModel(nodes=8, cores_per_node=24)
