"""Execution traces and utilization timelines for simulated runs.

``simulate(..., trace=True)`` records one :class:`TileSpan` per executed
tile; this module turns those spans into per-node utilization timelines
and an ASCII rendering — the tooling behind the idle-time analysis of
the FIG8 benchmark (which node waits on whom, and when).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import SimulationError

TileIndex = Tuple[int, ...]


@dataclass(frozen=True)
class TileSpan:
    """One tile's execution interval on one node."""

    tile: TileIndex
    node: int
    start_s: float
    finish_s: float

    @property
    def duration_s(self) -> float:
        return self.finish_s - self.start_s


def validate_trace(
    spans: Sequence[TileSpan], nodes: int, cores_per_node: int
) -> None:
    """Consistency checks: capacity respected, spans well-formed.

    Raises :class:`SimulationError` on violations; used by tests as the
    simulator's own auditor.
    """
    for s in spans:
        if s.finish_s < s.start_s:
            raise SimulationError(f"span of {s.tile} ends before it starts")
        if not 0 <= s.node < nodes:
            raise SimulationError(f"span of {s.tile} on unknown node {s.node}")
    # Capacity: at no event boundary may more than cores_per_node tiles
    # overlap on one node.
    for node in range(nodes):
        events: List[Tuple[float, int]] = []
        for s in spans:
            if s.node != node:
                continue
            events.append((s.start_s, 1))
            events.append((s.finish_s, -1))
        events.sort(key=lambda e: (e[0], e[1]))
        live = 0
        for _, delta in events:
            live += delta
            if live > cores_per_node:
                raise SimulationError(
                    f"node {node} ran {live} tiles concurrently with only "
                    f"{cores_per_node} cores"
                )


def utilization_timeline(
    spans: Sequence[TileSpan],
    nodes: int,
    cores_per_node: int,
    bins: int = 40,
    makespan_s: float | None = None,
) -> List[List[float]]:
    """Per-node busy fraction per time bin: ``timeline[node][bin]``."""
    if bins < 1:
        raise SimulationError(f"bins must be >= 1, got {bins}")
    if makespan_s is None:
        makespan_s = max((s.finish_s for s in spans), default=0.0)
    if makespan_s <= 0:
        return [[0.0] * bins for _ in range(nodes)]
    width = makespan_s / bins
    out = [[0.0] * bins for _ in range(nodes)]
    for s in spans:
        b0 = int(s.start_s / width)
        b1 = min(int(s.finish_s / width), bins - 1)
        for b in range(b0, b1 + 1):
            lo = max(s.start_s, b * width)
            hi = min(s.finish_s, (b + 1) * width)
            if hi > lo:
                out[s.node][b] += (hi - lo) / (width * cores_per_node)
    return out


_SHADES = " .:-=+*#%@"


def render_timeline(
    spans: Sequence[TileSpan],
    nodes: int,
    cores_per_node: int,
    bins: int = 60,
    makespan_s: float | None = None,
) -> str:
    """ASCII utilization chart: one row per node, dark = busy."""
    timeline = utilization_timeline(
        spans, nodes, cores_per_node, bins, makespan_s
    )
    lines = []
    for node, row in enumerate(timeline):
        cells = "".join(
            _SHADES[min(int(u * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
            for u in row
        )
        busy = sum(row) / len(row) if row else 0.0
        lines.append(f"node {node:>2} |{cells}| {busy:5.1%}")
    return "\n".join(lines)
