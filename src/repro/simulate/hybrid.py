"""Discrete-event simulation of the generated hybrid program (Section VI).

The simulator executes the *real* schedule of the generated program — the
same tile DAG, priority queue, load-balance assignment and packed-edge
communication the in-process runtime uses — against the cost model of
:class:`~repro.simulate.machine.MachineModel`.  Inside a node, tiles are
dispatched to cores through a serialized work queue (the OpenMP critical
section); between nodes, packed edges travel over a finite set of send
channels with latency + bandwidth costs (the MPI send buffers).

This is the substitution for the paper's 8x24-core testbed: wall-clock
numbers are synthetic, but who waits for whom — the thing that determines
scaling shape, pipeline critical paths and buffer starvation — is
computed exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..generator.pipeline import GeneratedProgram
from ..runtime.graph import TileGraph, TileIndex, tile_graph
from .events import EventQueue
from .machine import MachineModel

NodeId = int


@dataclass
class SimResult:
    """Measurements from one simulated run."""

    makespan_s: float
    serial_time_s: float
    busy_s_per_node: List[float]
    tiles_per_node: List[int]
    work_cells_per_node: List[int]
    node_finish_s: List[float]
    messages: int
    bytes_sent: int
    max_send_queue_wait_s: float
    total_cells: int
    machine: MachineModel
    #: Per-tile execution spans when simulate(..., trace=True).
    spans: Optional[list] = None

    @property
    def speedup(self) -> float:
        """Speedup over the same machine's single sequential core."""
        return self.serial_time_s / self.makespan_s if self.makespan_s else 0.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.machine.total_cores

    @property
    def idle_fraction(self) -> float:
        capacity = self.makespan_s * self.machine.total_cores
        busy = sum(self.busy_s_per_node)
        return 1.0 - busy / capacity if capacity else 0.0

    @property
    def cells_per_second(self) -> float:
        return self.total_cells / self.makespan_s if self.makespan_s else 0.0


def simulate(
    graph: TileGraph,
    machine: MachineModel,
    assignment: Optional[Mapping[TileIndex, NodeId]] = None,
    priority_scheme: str = "lb-first",
    trace: bool = False,
) -> SimResult:
    """Simulate the tiled execution of *graph* on *machine*.

    *assignment* maps each tile to its owning node (default: everything
    on node 0 — pure shared-memory execution).  *trace* additionally
    records one :class:`~repro.simulate.trace.TileSpan` per tile.
    """
    tile_tuples = graph.tile_tuples
    T = len(tile_tuples)
    if assignment is None:
        assign = [0] * T
    else:
        missing = [t for t in tile_tuples if t not in assignment]
        if missing:
            raise SimulationError(
                f"{len(missing)} tiles lack a node assignment (e.g. {missing[0]})"
            )
        assign = [assignment[t] for t in tile_tuples]
        bad = [r for r, n in enumerate(assign) if not 0 <= n < machine.nodes]
        if bad:
            raise SimulationError(
                f"tile {tile_tuples[bad[0]]} assigned to node "
                f"{assign[bad[0]]} outside 0..{machine.nodes - 1}"
            )

    # Ready queues and pending counters run on the graph's arrays: rows
    # instead of tuples, precomputed priority keys (identical ordering —
    # row number is the tile's lexicographic rank).
    prio = graph.priority_tuples(priority_scheme)
    cons_ptr = graph.cons_ptr.tolist()
    cons_rows = graph.cons_rows.tolist()
    cons_cells = graph.cons_cells.tolist()

    # Per-tile cost: compute cells plus pack/unpack traffic through the tile.
    edge_prod = np.repeat(np.arange(T), np.diff(graph.cons_ptr))
    packed_arr = np.zeros(T, dtype=np.int64)
    np.add.at(packed_arr, edge_prod, graph.cons_cells)
    np.add.at(packed_arr, graph.cons_rows, graph.cons_cells)
    work_list = graph.work_array.tolist()
    packed_list = packed_arr.tolist()
    durations = [
        machine.tile_duration(w, p) for w, p in zip(work_list, packed_list)
    ]

    serial_time = sum(machine.queue_lock_s + d for d in durations)

    # Node state.
    ready: List[List[Tuple[tuple, TileIndex]]] = [
        [] for _ in range(machine.nodes)
    ]
    core_free: List[List[float]] = [
        [0.0] * machine.cores_per_node for _ in range(machine.nodes)
    ]
    for h in core_free:
        heapq.heapify(h)
    # One dequeue lock per core group (Section VII-C: queue_groups == 1
    # is the paper's single shared queue; more groups relieve contention).
    lock_free: List[List[float]] = [
        [0.0] * machine.queue_groups for _ in range(machine.nodes)
    ]
    send_free: List[List[float]] = [
        [0.0] * machine.send_buffers for _ in range(machine.nodes)
    ]
    for h in send_free:
        heapq.heapify(h)

    busy: List[float] = [0.0] * machine.nodes
    tiles_done: List[int] = [0] * machine.nodes
    work_done: List[int] = [0] * machine.nodes
    node_finish: List[float] = [0.0] * machine.nodes
    messages = 0
    bytes_sent = 0
    max_queue_wait = 0.0

    pending = graph.dependency_count_array()
    events = EventQueue()
    spans: Optional[list] = [] if trace else None

    for r in graph.initial_rows().tolist():
        events.push(0.0, ("ready", r))

    finished = 0

    def dispatch(node: NodeId, now: float) -> None:
        nonlocal finished
        rq = ready[node]
        cf = core_free[node]
        while rq and cf and cf[0] <= now:
            heapq.heappop(cf)  # core taken
            _, row = heapq.heappop(rq)
            locks = lock_free[node]
            group = min(range(len(locks)), key=locks.__getitem__)
            start = max(now, locks[group])
            locks[group] = start + machine.queue_lock_s
            dur = durations[row]
            finish = start + machine.queue_lock_s + dur
            busy[node] += machine.queue_lock_s + dur
            if spans is not None:
                from .trace import TileSpan

                spans.append(TileSpan(tile_tuples[row], node, start, finish))
            events.push(finish, ("finish", row, node))

    while events:
        now, payload = events.pop()
        kind = payload[0]
        if kind == "ready":
            row = payload[1]
            node = assign[row]
            heapq.heappush(ready[node], (prio[row], row))
            dispatch(node, now)
        elif kind == "finish":
            row, node = payload[1], payload[2]
            finished += 1
            tiles_done[node] += 1
            work_done[node] += work_list[row]
            node_finish[node] = max(node_finish[node], now)
            heapq.heappush(core_free[node], now)
            for e in range(cons_ptr[row], cons_ptr[row + 1]):
                consumer = cons_rows[e]
                cnode = assign[consumer]
                cells = cons_cells[e]
                if cnode == node:
                    arrival = now
                else:
                    channel = heapq.heappop(send_free[node])
                    tx_start = max(now, channel)
                    max_queue_wait = max(max_queue_wait, tx_start - now)
                    done = tx_start + machine.message_duration(cells)
                    heapq.heappush(send_free[node], done)
                    arrival = done
                    messages += 1
                    bytes_sent += cells * machine.bytes_per_cell
                events.push(arrival, ("edge", consumer))
            dispatch(node, now)
        elif kind == "edge":
            consumer = payload[1]
            pending[consumer] -= 1
            if pending[consumer] == 0:
                node = assign[consumer]
                heapq.heappush(ready[node], (prio[consumer], consumer))
                dispatch(node, now)
        else:  # pragma: no cover
            raise SimulationError(f"unknown event {payload!r}")

    if finished != T:
        raise SimulationError(
            f"simulation deadlocked: {finished} of {T} tiles ran"
        )

    makespan = max(node_finish) if node_finish else 0.0
    return SimResult(
        makespan_s=makespan,
        serial_time_s=serial_time,
        busy_s_per_node=busy,
        tiles_per_node=tiles_done,
        work_cells_per_node=work_done,
        node_finish_s=node_finish,
        messages=messages,
        bytes_sent=bytes_sent,
        max_send_queue_wait_s=max_queue_wait,
        total_cells=graph.total_work(),
        machine=machine,
        spans=spans,
    )


def simulate_program(
    program: GeneratedProgram,
    params: Mapping[str, int],
    machine: MachineModel,
    lb_method: str = "dimension-cut",
    priority_scheme: str = "lb-first",
    graph: Optional[TileGraph] = None,
) -> SimResult:
    """Convenience: fetch the cached graph, load-balance, and simulate.

    The graph comes from the per-program cache (one build per parameter
    set), and with ``nodes > 1`` the load balancer is fed the slab work
    the graph already holds — per-slab sums of per-tile work — instead of
    recounting every slab with fresh compiled scans.
    """
    if graph is None:
        graph = tile_graph(program, params)
    if machine.nodes == 1:
        assignment = None
    else:
        balance = program.load_balance(
            params, machine.nodes, method=lb_method, slab_work=graph.slab_work()
        )
        slab_node = balance.slab_node
        assignment = {}
        for t, key in zip(graph.tile_tuples, graph.lb_key_rows().tolist()):
            try:
                assignment[t] = slab_node[tuple(key)]
            except KeyError:
                raise SimulationError(
                    f"tile {t} projects to unassigned lb slab {tuple(key)}"
                ) from None
    return simulate(
        graph, machine, assignment=assignment, priority_scheme=priority_scheme
    )
