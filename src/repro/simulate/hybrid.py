"""Discrete-event simulation of the generated hybrid program (Section VI).

The simulator executes the *real* schedule of the generated program:
pending counters, per-node priority-ordered ready queues and packed-edge
lifecycle all live in :class:`repro.runtime.scheduler.TileScheduler` —
the same engine the in-process executor and the SPMD harness drive — and
this module layers the cost model of
:class:`~repro.simulate.machine.MachineModel` on top as a pure *timing
policy*: the scheduler decides *what* transitions, the machine model
decides *when*.  Inside a node, tiles are dispatched to cores through a
serialized work queue (the OpenMP critical section); between nodes,
packed edges travel over a finite set of send channels with latency +
bandwidth costs (the MPI send buffers).

Executed and simulated schedules are therefore the same object by
construction — a simulated transition stream is a timed reordering of
the transitions the executor emits, not a re-implementation pinned
equal by tests.

This is the substitution for the paper's 8x24-core testbed: wall-clock
numbers are synthetic, but who waits for whom — the thing that determines
scaling shape, pipeline critical paths and buffer starvation — is
computed exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..generator.pipeline import GeneratedProgram
from ..runtime.graph import TileGraph, TileIndex, tile_graph
from ..runtime.scheduler import TileScheduler
from .events import EventQueue
from .machine import MachineModel

NodeId = int

#: Tile-to-node assignment: either a mapping keyed by tile index tuples
#: or a per-row integer sequence in graph row order.
Assignment = Union[Mapping[TileIndex, NodeId], Sequence[int], np.ndarray]


@dataclass
class SimResult:
    """Measurements from one simulated run."""

    makespan_s: float
    serial_time_s: float
    busy_s_per_node: List[float]
    tiles_per_node: List[int]
    work_cells_per_node: List[int]
    node_finish_s: List[float]
    messages: int
    bytes_sent: int
    max_send_queue_wait_s: float
    total_cells: int
    machine: MachineModel
    #: Per-tile execution spans when simulate(..., trace=True).
    spans: Optional[list] = None
    #: Per-node edge-memory snapshots (cells), same keys as the
    #: executor's ``ExecutionResult.memory``.
    memory_per_node: Optional[List[Dict[str, int]]] = None

    @property
    def speedup(self) -> float:
        """Speedup over the same machine's single sequential core."""
        return self.serial_time_s / self.makespan_s if self.makespan_s else 0.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.machine.total_cores

    @property
    def idle_fraction(self) -> float:
        capacity = self.makespan_s * self.machine.total_cores
        busy = sum(self.busy_s_per_node)
        return 1.0 - busy / capacity if capacity else 0.0

    @property
    def cells_per_second(self) -> float:
        return self.total_cells / self.makespan_s if self.makespan_s else 0.0

    @property
    def peak_edge_bytes_per_node(self) -> Optional[List[int]]:
        """Peak buffered edge bytes on each node (cells x bytes_per_cell)."""
        if self.memory_per_node is None:
            return None
        return [
            m["peak_cells"] * self.machine.bytes_per_cell
            for m in self.memory_per_node
        ]


def _assignment_rows(
    graph: TileGraph, machine: MachineModel, assignment: Optional[Assignment]
) -> List[int]:
    """Normalize an assignment to per-row node ids, validating range."""
    tile_tuples = graph.tile_tuples
    if assignment is None:
        return [0] * len(tile_tuples)
    if isinstance(assignment, Mapping):
        missing = [t for t in tile_tuples if t not in assignment]
        if missing:
            raise SimulationError(
                f"{len(missing)} tiles lack a node assignment (e.g. {missing[0]})"
            )
        assign = [int(assignment[t]) for t in tile_tuples]
    else:
        assign = [int(n) for n in np.asarray(assignment).tolist()]
        if len(assign) != len(tile_tuples):
            raise SimulationError(
                f"assignment covers {len(assign)} rows but the graph has "
                f"{len(tile_tuples)} tiles"
            )
    bad = [r for r, n in enumerate(assign) if not 0 <= n < machine.nodes]
    if bad:
        raise SimulationError(
            f"tile {tile_tuples[bad[0]]} assigned to node "
            f"{assign[bad[0]]} outside 0..{machine.nodes - 1}"
        )
    return assign


def simulate(
    graph: TileGraph,
    machine: MachineModel,
    assignment: Optional[Assignment] = None,
    priority_scheme: str = "lb-first",
    trace: bool = False,
    schedule: str = "dynamic",
) -> SimResult:
    """Simulate the tiled execution of *graph* on *machine*.

    *assignment* maps each tile to its owning node — a ``tile -> node``
    mapping or a per-row integer array (default: everything on node 0 —
    pure shared-memory execution).  *trace* additionally records one
    :class:`~repro.simulate.trace.TileSpan` per tile.  *schedule*
    selects the scheduler's ready-set policy (see
    :data:`~repro.runtime.scheduler.SCHEDULE_POLICIES`); under
    ``"static"`` the per-tile dequeue lock cost is dropped — the
    schedule is precomputed, so cores take their next tile without the
    shared ready-queue critical section (Jin et al., arXiv:1610.07236)
    — at the price of level-barrier slack the event loop then exposes.
    """
    tile_tuples = graph.tile_tuples
    T = len(tile_tuples)
    assign = _assignment_rows(graph, machine, assignment)

    # The scheduling core: per-node ready queues, pending counters and
    # edge accounting, shared with the executor and the SPMD harness.
    sched = TileScheduler(
        graph,
        ranks=machine.nodes,
        rank_of=assign,
        priority_scheme=priority_scheme,
        schedule=schedule,
    )
    queue_lock_s = 0.0 if schedule == "static" else machine.queue_lock_s

    # Per-tile cost: compute cells plus pack/unpack traffic through the tile.
    edge_prod = np.repeat(np.arange(T), np.diff(graph.cons_ptr))
    packed_arr = np.zeros(T, dtype=np.int64)
    np.add.at(packed_arr, edge_prod, graph.cons_cells)
    np.add.at(packed_arr, graph.cons_rows, graph.cons_cells)
    work_list = graph.work_array.tolist()
    packed_list = packed_arr.tolist()
    durations = [
        machine.tile_duration(w, p) for w, p in zip(work_list, packed_list)
    ]

    serial_time = sum(queue_lock_s + d for d in durations)

    # Node timing state (the machine model's domain: cores, the dequeue
    # lock, finite send channels).
    core_free: List[List[float]] = [
        [0.0] * machine.cores_per_node for _ in range(machine.nodes)
    ]
    for h in core_free:
        heapq.heapify(h)
    # One dequeue lock per core group (Section VII-C: queue_groups == 1
    # is the paper's single shared queue; more groups relieve contention).
    lock_free: List[List[float]] = [
        [0.0] * machine.queue_groups for _ in range(machine.nodes)
    ]
    send_free: List[List[float]] = [
        [0.0] * machine.send_buffers for _ in range(machine.nodes)
    ]
    for h in send_free:
        heapq.heapify(h)

    busy: List[float] = [0.0] * machine.nodes
    work_done: List[int] = [0] * machine.nodes
    node_finish: List[float] = [0.0] * machine.nodes
    max_queue_wait = 0.0

    events = EventQueue()
    spans: Optional[list] = [] if trace else None

    for r in graph.initial_rows().tolist():
        events.push(0.0, ("ready", r))

    def dispatch(node: NodeId, now: float) -> None:
        cf = core_free[node]
        while cf and cf[0] <= now and sched.has_ready(node):
            heapq.heappop(cf)  # core taken
            row = sched.start_tile(node)
            for _ in sched.consume_edges(row):
                pass  # release the incoming edge buffers
            locks = lock_free[node]
            group = min(range(len(locks)), key=locks.__getitem__)
            start = max(now, locks[group])
            locks[group] = start + queue_lock_s
            dur = durations[row]
            finish = start + queue_lock_s + dur
            busy[node] += queue_lock_s + dur
            if spans is not None:
                from .trace import TileSpan

                spans.append(TileSpan(tile_tuples[row], node, start, finish))
            events.push(finish, ("finish", row, node))

    while events:
        now, payload = events.pop()
        kind = payload[0]
        if kind == "ready":
            row = payload[1]
            sched.make_ready(row)
            dispatch(assign[row], now)
        elif kind == "finish":
            row, node = payload[1], payload[2]
            work_done[node] += work_list[row]
            node_finish[node] = max(node_finish[node], now)
            heapq.heappush(core_free[node], now)
            for consumer, _, cells, cnode in sched.outgoing(row):
                sched.send_edge(row, consumer, cells=cells)
                if cnode == node:
                    arrival = now
                else:
                    channel = heapq.heappop(send_free[node])
                    tx_start = max(now, channel)
                    max_queue_wait = max(max_queue_wait, tx_start - now)
                    done = tx_start + machine.message_duration(cells)
                    heapq.heappush(send_free[node], done)
                    arrival = done
                events.push(arrival, ("edge", consumer))
            sched.finish_tile(row)
            dispatch(node, now)
        elif kind == "edge":
            consumer = payload[1]
            if sched.deliver_edge(consumer):
                dispatch(assign[consumer], now)
        else:  # pragma: no cover
            raise SimulationError(f"unknown event {payload!r}")

    if sched.finished != T:
        raise SimulationError(
            f"simulation deadlocked: {sched.finished} of {T} tiles ran"
        )

    makespan = max(node_finish) if node_finish else 0.0
    return SimResult(
        makespan_s=makespan,
        serial_time_s=serial_time,
        busy_s_per_node=busy,
        tiles_per_node=list(sched.finished_per_rank),
        work_cells_per_node=work_done,
        node_finish_s=node_finish,
        messages=sched.cross_rank_messages,
        bytes_sent=sched.cross_rank_cells * machine.bytes_per_cell,
        max_send_queue_wait_s=max_queue_wait,
        total_cells=graph.total_work(),
        machine=machine,
        spans=spans,
        memory_per_node=sched.memory_per_rank(),
    )


def simulate_program(
    program: GeneratedProgram,
    params: Mapping[str, int],
    machine: MachineModel,
    lb_method: str = "dimension-cut",
    priority_scheme: str = "lb-first",
    graph: Optional[TileGraph] = None,
    schedule: str = "dynamic",
) -> SimResult:
    """Convenience: fetch the cached graph, load-balance, and simulate.

    The graph comes from the per-program cache (one build per parameter
    set), and with ``nodes > 1`` the load balancer is fed the slab work
    the graph already holds — per-slab sums of per-tile work — instead of
    recounting every slab with fresh compiled scans.  The rank
    assignment is the same one ``execute(..., ranks=machine.nodes)``
    partitions by, so SPMD cross-rank message counts and simulated
    ``messages`` agree for the same machine shape.
    """
    if graph is None:
        graph = tile_graph(program, params)
    if machine.nodes == 1:
        assignment: Optional[Assignment] = None
    else:
        from ..errors import RuntimeExecutionError
        from ..runtime.spmd import spmd_rank_assignment

        try:
            assignment = spmd_rank_assignment(
                program, params, graph, machine.nodes, lb_method=lb_method
            )
        except RuntimeExecutionError as exc:
            raise SimulationError(str(exc)) from None
    return simulate(
        graph, machine, assignment=assignment,
        priority_scheme=priority_scheme, schedule=schedule,
    )
