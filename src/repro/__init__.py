"""repro — automatic hybrid OpenMP + MPI program generation for
template-recurrence dynamic programming.

A production-quality Python reproduction of *"Automatic Hybrid OpenMP +
MPI Program Generation for Dynamic Programming Problems"* (VandenBerg &
Stout, IEEE CLUSTER 2011).

Quick tour::

    from repro import generate, execute
    from repro.problems import two_arm_spec

    spec = two_arm_spec(tile_width=8)       # the paper's Figure 1 problem
    program = generate(spec)                # Section IV pipeline
    result = execute(program, {"N": 40})    # tiled in-process run
    print(result.objective_value)           # V(0,0,0,0)

    from repro.generator.cgen import emit_c_program
    open("bandit2.c", "w").write(emit_c_program(program))
    # gcc -O2 -std=c99 -fopenmp bandit2.c -o bandit2 && ./bandit2 40

Subpackages:

* :mod:`repro.polyhedra` — exact affine/polyhedral algebra (Fourier–
  Motzkin, loop synthesis, lattice counting, Ehrhart quasi-polynomials);
* :mod:`repro.spec` — problem specifications and the text input format;
* :mod:`repro.generator` — the generation pipeline plus the C and Python
  backends;
* :mod:`repro.runtime` — the in-process tiled executor (numerical oracle
  twin of the generated code);
* :mod:`repro.simulate` — the discrete-event cluster simulator behind
  the scaling studies;
* :mod:`repro.problems` — bandits, MSA, LCS, edit distance, each with an
  independent reference solver.
"""

from .errors import (
    EmptyPolyhedronError,
    GenerationError,
    ParseError,
    PolyhedronError,
    ReproError,
    RuntimeExecutionError,
    SimulationError,
    SpecError,
)
from .spec import ProblemSpec, TemplateSet, format_spec, parse_spec_file, parse_spec_text
from .generator import GeneratedProgram, generate
from .runtime import ExecutionResult, TileGraph, execute, solve_reference
# NB: the simulate *function* stays namespaced (repro.simulate.simulate);
# re-exporting it here would shadow the repro.simulate submodule.
from .simulate import MachineModel, simulate_program

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SpecError",
    "ParseError",
    "PolyhedronError",
    "EmptyPolyhedronError",
    "GenerationError",
    "RuntimeExecutionError",
    "SimulationError",
    "ProblemSpec",
    "TemplateSet",
    "parse_spec_text",
    "parse_spec_file",
    "format_spec",
    "GeneratedProgram",
    "generate",
    "TileGraph",
    "ExecutionResult",
    "execute",
    "solve_reference",
    "MachineModel",
    "simulate_program",
    "__version__",
]
