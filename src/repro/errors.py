"""Exception hierarchy for the repro package.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch a single type.  Sub-classes partition failures by
subsystem so tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SpecError(ReproError):
    """The user's problem specification is malformed or inconsistent."""


class ParseError(SpecError):
    """The textual input file could not be parsed."""


class PolyhedronError(ReproError):
    """A polyhedral operation failed (e.g. eliminating an absent variable)."""


class EmptyPolyhedronError(PolyhedronError):
    """An operation required a non-empty polyhedron but got an empty one."""


class GenerationError(ReproError):
    """The code generator could not produce a program for the given spec."""


class RuntimeExecutionError(ReproError):
    """The tiled runtime detected an inconsistency while executing."""


class SimulationError(ReproError):
    """The cluster simulator was configured inconsistently."""


class AnalysisError(ReproError):
    """The static analyzer was invoked inconsistently.

    Raised for analyzer-internal misuse (unknown diagnostic code,
    unknown render format) — *findings* about the analyzed program are
    reported as :class:`repro.analysis.Diagnostic` values, never raised.
    """
