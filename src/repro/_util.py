"""Small shared helpers: exact integer division, gcd/lcm over iterables.

These are used pervasively by the polyhedral layer, where loop bounds are
expressed with *integer* floor/ceil division (the ``floord``/``ceild``
macros of the generated C code).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable


def floor_div(num: int, den: int) -> int:
    """Floor division that matches C's ``floord`` macro for positive *den*.

    Python's ``//`` already floors toward negative infinity, which is the
    semantics loop-bound generation requires.  *den* must be positive.
    """
    if den <= 0:
        raise ValueError(f"floor_div requires a positive denominator, got {den}")
    return num // den


def ceil_div(num: int, den: int) -> int:
    """Ceiling division for positive *den* (C's ``ceild`` macro)."""
    if den <= 0:
        raise ValueError(f"ceil_div requires a positive denominator, got {den}")
    return -((-num) // den)


def gcd_all(values: Iterable[int]) -> int:
    """gcd of an iterable of integers; 0 for an empty iterable."""
    g = 0
    for v in values:
        g = gcd(g, abs(v))
    return g


def lcm_all(values: Iterable[int]) -> int:
    """lcm of an iterable of positive integers; 1 for an empty iterable."""
    out = 1
    for v in values:
        v = abs(v)
        if v == 0:
            continue
        out = out * v // gcd(out, v)
    return out


def as_fraction(value) -> Fraction:
    """Coerce ints/Fractions (and exact float integers) to Fraction."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != int(value):
            raise TypeError(
                f"non-integral float {value!r} is not an exact coefficient; "
                "use fractions.Fraction explicitly"
            )
        return Fraction(int(value))
    raise TypeError(f"cannot interpret {value!r} as an exact rational")


def frozen_counter(items: Iterable) -> tuple:
    """Deterministic multiset fingerprint used for hashing/memo keys."""
    return tuple(sorted(items))
