#!/usr/bin/env python3
"""Exact multiple sequence alignment with generated tiled programs.

The paper's bioinformatics motivation (Section I): exact sum-of-pairs
MSA is d-dimensional dynamic programming, usually abandoned for
heuristics beyond 2 sequences; the generator makes the exact parallel
solve mechanical.  This example aligns three DNA fragments exactly,
compares the exact sum-of-pairs cost against the naive
pairwise-composition lower bound, shows LCS on the same data, and emits
the generated C program for the 3-sequence aligner.

Run:  python examples/sequence_alignment.py
"""

from pathlib import Path

from repro import execute, generate
from repro.generator.cgen import emit_c_program
from repro.problems import (
    lcs_reference,
    lcs_spec,
    msa_reference,
    msa_spec,
    random_sequence,
)

HERE = Path(__file__).resolve().parent


def main() -> None:
    seqs = [
        random_sequence(26, seed=101),
        random_sequence(24, seed=202),
        random_sequence(22, seed=303),
    ]
    for k, s in enumerate(seqs, 1):
        print(f"  seq{k} ({len(s)} nt): {s}")
    params = {f"L{k + 1}": len(s) for k, s in enumerate(seqs)}

    # Exact 3-way sum-of-pairs alignment (6 templates per cell: every
    # nonzero subset of sequences may advance).
    spec = msa_spec(seqs, tile_width=6)
    program = generate(spec)
    result = execute(program, params)
    exact = result.objective_value
    assert abs(exact - msa_reference(seqs)) < 1e-9
    print()
    print(f"exact 3-way sum-of-pairs cost : {exact:.1f}")
    print(f"tiles executed                : {result.tiles_executed} "
          f"({result.cells_computed} cells)")

    # Pairwise lower bound: the sum of the three optimal pairwise costs
    # can never exceed the sum-of-pairs cost of one joint alignment.
    pairwise = 0.0
    for a in range(3):
        for b in range(a + 1, 3):
            pair = msa_reference([seqs[a], seqs[b]])
            pairwise += pair
            print(f"optimal pairwise cost seq{a+1}/seq{b+1}: {pair:.1f}")
    print(f"pairwise lower bound          : {pairwise:.1f} "
          f"(exact joint cost {exact:.1f} >= bound, gap "
          f"{exact - pairwise:.1f})")
    assert exact >= pairwise - 1e-9

    # LCS of the same three sequences (the related problem the paper
    # cites for multi-strand DNA matching).
    lcs_program = generate(lcs_spec(seqs, tile_width=6))
    lcs_len = execute(lcs_program, params).objective_value
    assert lcs_len == lcs_reference(seqs)
    print(f"LCS of all three sequences    : {int(lcs_len)} nt")

    # Emit the generated parallel aligner.
    out = HERE / "msa3_generated.c"
    out.write_text(emit_c_program(program))
    print()
    print(f"wrote {out.name} — build: gcc -O2 -std=c99 -fopenmp "
          f"{out.name} -o msa3 && ./msa3 {params['L1']} {params['L2']} "
          f"{params['L3']}")


if __name__ == "__main__":
    main()
