#!/usr/bin/env python3
"""Miniature version of the paper's evaluation (Section VI).

Reproduces the two headline studies on the simulated cluster:

* Figure 6 — shared-memory scaling of the 2-arm bandit on one 24-core
  node (the paper reports speedup 22.35 on 24 cores);
* Figure 7 — weak scaling across 1..4 MPI nodes with the locations per
  node held roughly constant (the paper reports ~90 % at 8 nodes).

The full-size sweeps (all problems, 8 nodes) live in ``benchmarks/``;
this example keeps sizes small enough to finish in about a minute.

Run:  python examples/scaling_study.py
"""

from repro import generate
from repro.problems import two_arm_spec
from repro.simulate import (
    MachineModel,
    format_scaling_table,
    shared_memory_scaling,
    weak_scaling,
)


def main() -> None:
    spec = two_arm_spec(tile_width=10)
    program = generate(spec)

    print("Figure 6 (miniature): shared-memory scaling, 2-arm bandit N=120")
    points = shared_memory_scaling(
        program, {"N": 120}, core_counts=[1, 2, 4, 8, 16, 24]
    )
    print(format_scaling_table(points, "2-arm bandit, 1 node"))
    p24 = points[-1]
    print(f"-> speedup {p24.speedup:.2f} on 24 cores "
          f"(paper: 22.35; shape target: >= 22)")
    print()

    print("Figure 7 (miniature): weak scaling across nodes, 2-arm bandit")

    def factory(nodes: int):
        # locations scale ~N^4/24; hold locations/node constant.
        n = int(round(120 * nodes ** 0.25))
        return program, {"N": n}

    points = weak_scaling(factory, node_counts=[1, 2, 4],
                          machine=MachineModel(cores_per_node=24))
    print(format_scaling_table(points, "2-arm bandit, weak scaling"))
    print(f"-> efficiency {points[-1].efficiency:.1%} at "
          f"{points[-1].nodes} nodes (paper: ~90 % at 8 nodes)")


if __name__ == "__main__":
    main()
