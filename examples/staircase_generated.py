#!/usr/bin/env python3
"""
Auto-generated tiled dynamic-programming program: staircase
Produced by the repro program generator (VandenBerg & Stout,
CLUSTER 2011 reproduction).  Do not edit by hand.

Usage: python prog.py <M>
"""
import heapq
import sys
import time

import numpy as np

M = int(sys.argv[1])

D = 2
DELTAS = ((0, 1), (1, 0))
PADDED_CELLS = 25
NAN = float('nan')

# ---- tile work (local-space point count, Section IV-E) ----
def tile_work(t_x, t_y):
    if not ((0 + 1*t_y) >= 0 and (0 + 1*t_x) >= 0 and (0 + 1*M) >= 0 and (0 + 1*M + -4*t_y) >= 0 and (0 + 1*M + -4*t_x) >= 0 and (0 + 1*M + -4*t_x + -4*t_y) >= 0):
        return 0
    _total = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((3), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        _n = min((0 + M - i_x - 4*t_x - 4*t_y), (3)) - (max((0 - 4*t_y), (0))) + 1
        if _n > 0:
            _total += _n
    return _total

def pack_size_0(t_x, t_y):
    if not ((0 + 1*t_y) >= 0 and (0 + 1*t_x) >= 0 and (0 + 1*M) >= 0 and (0 + 1*M + -4*t_y) >= 0 and (0 + 1*M + -4*t_x) >= 0 and (0 + 1*M + -4*t_x + -4*t_y) >= 0):
        return 0
    _total = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((3), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        _n = min((0 + M - i_x - 4*t_x - 4*t_y), (3), (0)) - (max((0 - 4*t_y), (0))) + 1
        if _n > 0:
            _total += _n
    return _total

def pack_size_1(t_x, t_y):
    if not ((0 + 1*t_y) >= 0 and (0 + 1*t_x) >= 0 and (0 + 1*M) >= 0 and (0 + 1*M + -4*t_y) >= 0 and (0 + 1*M + -4*t_x) >= 0 and (0 + 1*M + -4*t_x + -4*t_y) >= 0):
        return 0
    _total = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((0), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        _n = min((0 + M - i_x - 4*t_x - 4*t_y), (3)) - (max((0 - 4*t_y), (0))) + 1
        if _n > 0:
            _total += _n
    return _total

PACK_SIZES = (pack_size_0, pack_size_1)

# ---- tile-space bounding box ----
def tile_box():
    lo = [0] * D
    hi = [0] * D
    lo[0] = (0)
    hi[0] = ((0 + M) // 4)
    lo[1] = (0)
    hi[1] = ((0 + M) // 4)
    return lo, hi

# ---- tile calculation code (Section IV-L, Figure 3) ----
OBJECTIVE = [0.0, False]
def execute_tile(t, V):
    t_x, t_y = t
    for i_x in range(min((3), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)), (max((0 - 4*t_x), (0))) - 1, -1):
        for i_y in range(min((0 + M - i_x - 4*t_x - 4*t_y), (3)), (max((0 - 4*t_y), (0))) - 1, -1):
            x = i_x + 4 * t_x
            y = i_y + 4 * t_y
            loc = 5 * (i_x + 0) + 1 * (i_y + 0)
            loc_right = loc + (5)
            loc_up = loc + (1)
            _chk0 = ((-1 + (1)*M + (-1)*x + (-1)*y) >= 0)
            is_valid_right = _chk0
            is_valid_up = _chk0
            # ---- user center-loop code ----
            _c = float((3 * x + 5 * y) % 7)
            _best = None
            if is_valid_right:
                _best = V[loc_right]
            if is_valid_up and (_best is None or V[loc_up] < _best):
                _best = V[loc_up]
            V[loc] = _c + (0.0 if _best is None else _best)
            if x == 0 and y == 0:
                OBJECTIVE[0] = V[loc]
                OBJECTIVE[1] = True

# ---- packing / unpacking functions (Section IV-I) ----
def pack_0(t, V, buf):
    t_x, t_y = t
    _n = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((3), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        for i_y in range(max((0 - 4*t_y), (0)), min((0 + M - i_x - 4*t_x - 4*t_y), (3), (0)) + 1):
            buf[_n] = V[5 * (i_x + 0) + 1 * (i_y + 0)]
            _n += 1
def unpack_0(t, buf, V):
    t_x, t_y = t
    _n = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((3), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        for i_y in range(max((0 - 4*t_y), (0)), min((0 + M - i_x - 4*t_x - 4*t_y), (3), (0)) + 1):
            V[5 * (i_x + 0) + 1 * (i_y + 4)] = buf[_n]
            _n += 1
def pack_1(t, V, buf):
    t_x, t_y = t
    _n = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((0), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        for i_y in range(max((0 - 4*t_y), (0)), min((0 + M - i_x - 4*t_x - 4*t_y), (3)) + 1):
            buf[_n] = V[5 * (i_x + 0) + 1 * (i_y + 0)]
            _n += 1
def unpack_1(t, buf, V):
    t_x, t_y = t
    _n = 0
    for i_x in range(max((0 - 4*t_x), (0)), min((0), (0 + M - 4*t_x), (0 + M - 4*t_x - 4*t_y)) + 1):
        for i_y in range(max((0 - 4*t_y), (0)), min((0 + M - i_x - 4*t_x - 4*t_y), (3)) + 1):
            V[5 * (i_x + 4) + 1 * (i_y + 0)] = buf[_n]
            _n += 1
PACKERS = (pack_0, pack_1)
UNPACKERS = (unpack_0, unpack_1)

# ---- tile priority (Section V-B, Figure 5) ----
# lb dims downstream-first; remaining dims column-major.
def priority(t):
    return (t[0], -t[1])

# ---- tile-space scan and initial tiles (Section IV-K) ----
def scan_tiles():
    for t_x in range((0), ((0 + M) // 4) + 1):
        for t_y in range((0), min(((0 + M) // 4), ((0 + M - 4*t_x) // 4)) + 1):
            if tile_work(t_x, t_y) > 0:
                yield (t_x, t_y)

# ==================================================================
# Pre-written runtime (memory management, queueing) — Section V.
# ==================================================================

def main():
    t0 = time.perf_counter()
    tiles = set(scan_tiles())
    if not tiles:
        print("tiles 0 cells 0 time 0.0")
        return
    producers = {}
    deps = {}
    for t in tiles:
        prods = []
        for delta in DELTAS:
            p = tuple(a + b for a, b in zip(t, delta))
            if p in tiles:
                prods.append(p)
        producers[t] = prods
        deps[t] = len(prods)

    heap = [(priority(t), t) for t in tiles if deps[t] == 0]
    heapq.heapify(heap)
    edges = {}
    tiles_done = 0
    cells_done = 0
    while heap:
        _, t = heapq.heappop(heap)
        V = np.full(PADDED_CELLS, NAN)
        for di, delta in enumerate(DELTAS):
            p = tuple(a + b for a, b in zip(t, delta))
            if p in tiles:
                UNPACKERS[di](p, edges.pop((p, t)), V)
        execute_tile(t, V)
        cells_done += tile_work(*t)
        tiles_done += 1
        for di, delta in enumerate(DELTAS):
            c = tuple(a - b for a, b in zip(t, delta))
            if c not in tiles:
                continue
            buf = np.empty(max(PACK_SIZES[di](*t), 1))
            PACKERS[di](t, V, buf)
            edges[(t, c)] = buf
            deps[c] -= 1
            if deps[c] == 0:
                heapq.heappush(heap, (priority(c), c))
    elapsed = time.perf_counter() - t0
    print(f"tiles {tiles_done} cells {cells_done} time {elapsed:.6f}")
    if OBJECTIVE[1]:
        print(f"objective {OBJECTIVE[0]:.12f}")


if __name__ == "__main__":
    main()
