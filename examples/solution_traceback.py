#!/usr/bin/env python3
"""Recovering solutions, not just values (paper Section VII-A).

The generated programs discard tile interiors once their edges are
packed, so normally only the objective *value* survives.  The paper's
future-work sketch — save the tile edges, recompute tiles on the fly
during a traceback — is implemented in
:class:`repro.runtime.SolutionRecovery`.  This example uses it twice:

* recover the actual optimal alignment (edit script) between two DNA
  fragments, and
* ask the 2-arm clinical-trial bandit which arm the optimal design
  pulls first, and how the decision flips as evidence accumulates.

Run:  python examples/solution_traceback.py
"""

from repro import generate
from repro.problems import (
    edit_distance_reference,
    edit_distance_spec,
    random_sequence,
    two_arm_spec,
)
from repro.runtime import SolutionRecovery


def recover_alignment(a: str, b: str):
    spec = edit_distance_spec(a, b, tile_width=6)
    recovery = SolutionRecovery(generate(spec), {"LA": len(a), "LB": len(b)})
    distance = recovery.value_at({"i": len(a), "j": len(b)})
    assert distance == edit_distance_reference(a, b)

    def policy(point, deps, value):
        i, j = point["i"], point["j"]
        if deps["diag"] is not None:
            cost = 0.0 if a[i - 1] == b[j - 1] else 1.0
            if value == deps["diag"] + cost:
                return "diag"
        if deps["up"] is not None and value == deps["up"] + 1.0:
            return "up"
        if deps["left"] is not None and value == deps["left"] + 1.0:
            return "left"
        return None

    path = recovery.traceback(policy, start={"i": len(a), "j": len(b)})
    # Render the alignment from the move sequence (walked end -> start).
    top, bottom = [], []
    for point, move in path[:-1]:
        i, j = point["i"], point["j"]
        if move == "diag":
            top.append(a[i - 1])
            bottom.append(b[j - 1])
        elif move == "up":
            top.append(a[i - 1])
            bottom.append("-")
        else:
            top.append(b[j - 1])
            bottom.append("-")
            top[-1], bottom[-1] = "-", b[j - 1]
    top.reverse()
    bottom.reverse()
    return distance, "".join(top), "".join(bottom), recovery


def main() -> None:
    a, b = random_sequence(32, seed=71), random_sequence(28, seed=72)
    distance, top, bottom, recovery = recover_alignment(a, b)
    print("Optimal alignment recovered from saved edges:")
    print(f"  {top}")
    print(
        "  "
        + "".join(
            "|" if x == y and x != "-" else " " for x, y in zip(top, bottom)
        )
    )
    print(f"  {bottom}")
    print(f"edit distance: {int(distance)}")
    total = (len(a) + 1) * (len(b) + 1)
    print(
        f"memory: {recovery.edge_memory_cells} edge cells kept vs "
        f"{total} cells in the full table "
        f"({recovery.edge_memory_cells / total:.0%})"
    )
    print()

    # Which arm does the optimal adaptive trial pull first?
    N = 20
    bandit = SolutionRecovery(generate(two_arm_spec(tile_width=5)), {"N": N})

    def first_pull(state):
        deps = bandit.dependencies_at(state)
        best_arm, best_v = None, None
        for arm in (1, 2):
            s, f = state[f"s{arm}"], state[f"f{arm}"]
            p = (s + 1.0) / (s + f + 2.0)
            sv, fv = deps[f"succ{arm}"], deps[f"fail{arm}"]
            if sv is None:
                continue
            v = p * (1.0 + sv) + (1.0 - p) * fv
            if best_v is None or v > best_v + 1e-12:
                best_v, best_arm = v, arm
        return best_arm

    print(f"2-arm bandit, N={N}: optimal next pull by observed evidence")
    print("  (s1, f1, s2, f2) -> arm")
    for state in [
        (0, 0, 0, 0),
        (1, 0, 0, 0),
        (0, 1, 0, 0),
        (0, 2, 1, 0),
        (2, 0, 0, 2),
        (1, 3, 2, 1),
    ]:
        s = dict(zip(("s1", "f1", "s2", "f2"), state))
        print(f"  {state} -> arm {first_pull(s)}")
    print()
    print("Arm 1 after failures loses to the fresher arm 2 — the")
    print("exploration/exploitation balance the DP computes exactly.")


if __name__ == "__main__":
    main()
