#!/usr/bin/env python3
"""Adaptive clinical trials with bandit dynamic programming.

The paper's motivating application (Section I): allocating patients
between treatment arms as outcomes arrive.  Solving the 2-arm Bernoulli
bandit DP gives the *optimal adaptive* policy's expected number of
successes; this example quantifies how much that adaptivity is worth
against the classical fixed 50/50 allocation, and shows the 6-D delayed
variant where outcomes lag behind enrollment.

Run:  python examples/clinical_trial.py
"""

import numpy as np

from repro import execute, generate
from repro.problems import (
    delayed_two_arm_reference,
    delayed_two_arm_spec,
    two_arm_spec,
)


def equal_allocation_value(N: int) -> float:
    """Expected successes of the non-adaptive 50/50 policy.

    Under uniform priors on both arms, every pull of a fresh arm succeeds
    with marginal probability 1/2 regardless of past outcomes on the
    *other* arm, and a fixed policy never uses feedback — so the value is
    N/2 exactly.  (This is the textbook baseline the adaptive design
    beats.)
    """
    return N / 2.0


def main() -> None:
    print("Adaptive vs fixed allocation, 2-arm Bernoulli bandit")
    print(f"{'N':>4} {'adaptive':>12} {'fixed':>10} {'gain':>8} {'gain %':>8}")
    program = generate(two_arm_spec(tile_width=6))
    for N in (8, 16, 24, 32, 40):
        adaptive = execute(program, {"N": N}).objective_value
        fixed = equal_allocation_value(N)
        gain = adaptive - fixed
        print(f"{N:>4} {adaptive:>12.4f} {fixed:>10.4f} "
              f"{gain:>8.4f} {100 * gain / fixed:>7.2f}%")
    print()
    print("The adaptive design treats the same number of patients but")
    print("achieves more expected successes — the ethical/efficiency win")
    print("the paper cites for adaptive trials.")
    print()

    # Delayed responses: 6-D state (pulls allocated vs outcomes observed).
    print("Response delay (6-D delayed 2-arm bandit):")
    delayed_program = generate(delayed_two_arm_spec(tile_width=3))
    print(f"{'N':>4} {'immediate':>12} {'delayed':>12} {'cost of delay':>14}")
    for N in (4, 6, 8):
        immediate = execute(program, {"N": N}).objective_value
        delayed = execute(delayed_program, {"N": N}).objective_value
        assert abs(delayed - delayed_two_arm_reference(N)) < 1e-9
        print(f"{N:>4} {immediate:>12.4f} {delayed:>12.4f} "
              f"{immediate - delayed:>14.4f}")
    print()
    print("Delay costs expected successes: decisions must be made before")
    print("earlier outcomes are known, exactly the effect the richer 6-D")
    print("state space captures.")


if __name__ == "__main__":
    main()
