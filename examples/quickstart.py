#!/usr/bin/env python3
"""Quickstart: the paper's running example end to end.

Builds the 2-arm Bernoulli bandit specification (Figure 1 of the paper),
runs the Section IV generation pipeline, solves an instance with the
in-process tiled runtime, checks the answer against an independent
solver, and emits both generated artifacts — the hybrid OpenMP + MPI C
program and the standalone Python program — next to this script.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import execute, generate, solve_reference
from repro.generator.cgen import emit_c_program
from repro.generator.pygen import emit_python_program
from repro.problems import two_arm_reference, two_arm_spec

HERE = Path(__file__).resolve().parent


def main() -> None:
    # 1. The user input (Section IV-A): loop variables, parameters,
    #    iteration-space inequalities, template vectors, tile widths,
    #    load-balancing dimensions and the center-loop code.
    spec = two_arm_spec(tile_width=6)
    print(spec.describe())
    print()

    # 2. The generation pipeline (Section IV-C): iteration spaces, tile
    #    dependencies, validity functions, mapping functions, pack/unpack
    #    plans.
    program = generate(spec)
    print(f"tile dependencies : {program.deltas}")
    print(f"validity checks   : {len(program.validity.checks)} distinct, "
          f"{program.validity.shared_check_count()} shared between templates")
    print(f"padded tile shape : {program.layout.padded_shape}")
    print()

    # 3. Solve an instance with the tiled runtime and cross-check it.
    N = 30
    tiled = execute(program, {"N": N})
    untiled = solve_reference(program, {"N": N})
    oracle = two_arm_reference(N)
    print(f"V(0) for N={N} trials:")
    print(f"  tiled runtime    : {tiled.objective_value:.12f}")
    print(f"  untiled scan     : {untiled.objective_value:.12f}")
    print(f"  numpy oracle     : {oracle:.12f}")
    assert abs(tiled.objective_value - oracle) < 1e-9
    assert abs(untiled.objective_value - oracle) < 1e-9
    print(f"  tiles executed   : {tiled.tiles_executed}, "
          f"peak edge buffer {tiled.memory['peak_cells']} cells")
    print()

    # 4. Emit the generated programs (the paper's actual output).
    c_path = HERE / "bandit2_generated.c"
    py_path = HERE / "bandit2_generated.py"
    c_path.write_text(emit_c_program(program))
    py_path.write_text(emit_python_program(program))
    print(f"wrote {c_path.name} — build: gcc -O2 -std=c99 -fopenmp "
          f"{c_path.name} -o bandit2 && ./bandit2 {N}")
    print(f"wrote {py_path.name} — run:   python {py_path.name} {N}")


if __name__ == "__main__":
    main()
