/*
 * Auto-generated hybrid OpenMP + MPI program: staircase
 * Produced by the repro program generator (VandenBerg & Stout,
 * CLUSTER 2011 reproduction).  Do not edit by hand.
 *
 * Build (single node): gcc -O2 -std=c99 -fopenmp prog.c -o prog
 * Build (cluster):     mpicc -O2 -std=c99 -fopenmp -DREPRO_USE_MPI prog.c -o prog
 * Run:                 ./prog <M>
 */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <time.h>
#ifdef _OPENMP
#include <omp.h>
#endif
#ifdef REPRO_USE_MPI
#include <mpi.h>
#endif

static inline long floord(long a, long b) {
    return (a < 0) ? -((-a + b - 1) / b) : a / b;
}
static inline long ceild(long a, long b) {
    return (a > 0) ? (a + b - 1) / b : -((-a) / b);
}
static inline long MAX2(long a, long b) { return a > b ? a : b; }
static inline long MIN2(long a, long b) { return a < b ? a : b; }

#define REPRO_D 2
#define REPRO_NDELTAS 2
#define REPRO_NPARAMS 1
#define REPRO_PADDED_CELLS 25

static const long repro_widths[REPRO_D] = {4, 4};
static const long repro_deltas[REPRO_NDELTAS][REPRO_D] = {{0, 1}, {1, 0}};
static const char *repro_param_names[] = {"M"};

static long M;
static void repro_read_params(char **argv) {
    M = atol(argv[1]);
}

static void repro_user_init(void) {
}

/* ---- tile work: local-space point count (Section IV-E) ---- */
static long repro_tile_work_impl(long t_x, long t_y) {
    if (!(((0 + (1)*t_y) >= 0) && ((0 + (1)*t_x) >= 0) && ((0 + (1)*M) >= 0) && ((0 + (1)*M + (-4)*t_y) >= 0) && ((0 + (1)*M + (-4)*t_x) >= 0) && ((0 + (1)*M + (-4)*t_x + (-4)*t_y) >= 0))) return 0;
    long _total = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((3), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        long _n = (MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3))) - (MAX2((0 - 4*t_y), (0))) + 1;
        if (_n > 0) _total += _n;
    }
    return _total;
}
static long repro_tile_work(const long *t) {
    return repro_tile_work_impl(t[0], t[1]);
}

/* ---- tile-space bounding box (for the slot encoding) ---- */
static int repro_tile_box(long *lo, long *hi) {
    lo[0] = (0);
    hi[0] = floord(0 + M, 4);
    if (lo[0] > hi[0]) return 0;
    lo[1] = (0);
    hi[1] = floord(0 + M, 4);
    if (lo[1] > hi[1]) return 0;
    return 1;
}

/* ---- tile calculation code (Section IV-L, Figure 3) ---- */
static double repro_objective_value = 0.0;
static int repro_objective_seen = 0;
static void repro_execute_tile(const long *t, double *V) {
    long t_x = t[0];
    long t_y = t[1];
    for (long i_x = MIN2(MIN2((3), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x >= MAX2((0 - 4*t_x), (0)); i_x--) {
        for (long i_y = MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3)); i_y >= MAX2((0 - 4*t_y), (0)); i_y--) {
            long x = i_x + 4 * t_x;
            long y = i_y + 4 * t_y;
            long loc = 5 * (i_x + 0) + 1 * (i_y + 0);
            long loc_right = loc + (5);
            long loc_up = loc + (1);
            int _chk0 = ((-1 + (1)*M + (-1)*x + (-1)*y) >= 0);
            int is_valid_right = _chk0;
            int is_valid_up = _chk0;
            (void)loc; (void)loc_right; (void)is_valid_right; (void)loc_up; (void)is_valid_up;
            /* ---- user center-loop code ---- */
            double c = (double)((3 * x + 5 * y) % 7);
            double best = 1e300;
            if (is_valid_right && V[loc_right] < best) best = V[loc_right];
            if (is_valid_up && V[loc_up] < best) best = V[loc_up];
            V[loc] = c + (best > 1e299 ? 0.0 : best);
            if (x == 0 && y == 0) {
                repro_objective_value = V[loc];
                repro_objective_seen = 1;
            }
        }
    }
}

/* ---- packing / unpacking functions (Section IV-I) ---- */
static long repro_pack_size_0(long t_x, long t_y) {
    if (!(((0 + (1)*t_y) >= 0) && ((0 + (1)*t_x) >= 0) && ((0 + (1)*M) >= 0) && ((0 + (1)*M + (-4)*t_y) >= 0) && ((0 + (1)*M + (-4)*t_x) >= 0) && ((0 + (1)*M + (-4)*t_x + (-4)*t_y) >= 0))) return 0;
    long _total = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((3), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        long _n = (MIN2(MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3)), (0))) - (MAX2((0 - 4*t_y), (0))) + 1;
        if (_n > 0) _total += _n;
    }
    return _total;
}
static long repro_pack_size_1(long t_x, long t_y) {
    if (!(((0 + (1)*t_y) >= 0) && ((0 + (1)*t_x) >= 0) && ((0 + (1)*M) >= 0) && ((0 + (1)*M + (-4)*t_y) >= 0) && ((0 + (1)*M + (-4)*t_x) >= 0) && ((0 + (1)*M + (-4)*t_x + (-4)*t_y) >= 0))) return 0;
    long _total = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((0), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        long _n = (MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3))) - (MAX2((0 - 4*t_y), (0))) + 1;
        if (_n > 0) _total += _n;
    }
    return _total;
}
static long repro_pack_size(int d, const long *t) {
    switch (d) {
        case 0: return repro_pack_size_0(t[0], t[1]);
        case 1: return repro_pack_size_1(t[0], t[1]);
    }
    return 0;
}

static void repro_pack_0(const long *t, const double *V, double *buf) {
    long t_x = t[0];
    long t_y = t[1];
    long n = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((3), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        for (long i_y = MAX2((0 - 4*t_y), (0)); i_y <= MIN2(MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3)), (0)); i_y++) {
            buf[n++] = V[5 * (i_x + 0) + 1 * (i_y + 0)];
        }
    }
    (void)n;
}
static void repro_unpack_0(const long *t, const double *buf, double *V) {
    long t_x = t[0];
    long t_y = t[1];
    long n = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((3), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        for (long i_y = MAX2((0 - 4*t_y), (0)); i_y <= MIN2(MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3)), (0)); i_y++) {
            V[5 * (i_x + 0) + 1 * (i_y + 4)] = buf[n++];
        }
    }
    (void)n;
}

static void repro_pack_1(const long *t, const double *V, double *buf) {
    long t_x = t[0];
    long t_y = t[1];
    long n = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((0), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        for (long i_y = MAX2((0 - 4*t_y), (0)); i_y <= MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3)); i_y++) {
            buf[n++] = V[5 * (i_x + 0) + 1 * (i_y + 0)];
        }
    }
    (void)n;
}
static void repro_unpack_1(const long *t, const double *buf, double *V) {
    long t_x = t[0];
    long t_y = t[1];
    long n = 0;
    for (long i_x = MAX2((0 - 4*t_x), (0)); i_x <= MIN2(MIN2((0), (0 + M - 4*t_x)), (0 + M - 4*t_x - 4*t_y)); i_x++) {
        for (long i_y = MAX2((0 - 4*t_y), (0)); i_y <= MIN2((0 + M - i_x - 4*t_x - 4*t_y), (3)); i_y++) {
            V[5 * (i_x + 4) + 1 * (i_y + 0)] = buf[n++];
        }
    }
    (void)n;
}

static void repro_pack(int d, const long *t, const double *V, double *buf) {
    switch (d) {
        case 0: repro_pack_0(t, V, buf); return;
        case 1: repro_pack_1(t, V, buf); return;
    }
}
static void repro_unpack(int d, const long *t, const double *buf, double *V) {
    switch (d) {
        case 0: repro_unpack_0(t, buf, V); return;
        case 1: repro_unpack_1(t, buf, V); return;
    }
}

/* ---- tile priority (Section V-B, Figure 5) ---- */
/* lb dims downstream-first (feed the neighbouring node early), */
/* remaining dims column-major along the scan direction.        */
static void repro_priority(const long *t, long *key) {
    key[0] = t[0];
    key[1] = -t[1];
}

/* ---- load balancing (Section IV-J) ---- */
#define REPRO_HAVE_EHRHART 1
/* Ehrhart polynomial: total work as a function of M (degree 2, period 1) */
static long repro_total_work_ehrhart(void) {
    if (1) {
        static const long long a[] = {2, 3, 1};
        long long acc = 0;
        for (int k = 2; k >= 0; k--) acc = acc * M + a[k];
        return (long)(acc / 2);
    }
    return 0;
}

static long repro_slab_work_impl(long t_x) {
    if (!(((0 + (1)*t_x) >= 0) && ((0 + (1)*M) >= 0) && ((0 + (1)*M + (-4)*t_x) >= 0))) return 0;
    long _total = 0;
    for (long x = MAX2((0), (0 + 4*t_x)); x <= MIN2((3 + 4*t_x), (0 + M)); x++) {
        long _n = ((0 + M - x)) - ((0)) + 1;
        if (_n > 0) _total += _n;
    }
    return _total;
}
static int repro_lb_box(long *lo, long *hi) {
    lo[0] = (0);
    hi[0] = floord(0 + M, 4);
    if (lo[0] > hi[0]) return 0;
    return 1;
}

#define REPRO_LBD 1
static long lb_lo[REPRO_LBD], lb_stride[REPRO_LBD];
static long lb_slots = 0;
static int *lb_assign;

static void repro_init_load_balance(int nnodes) {
    long lo[REPRO_LBD], hi[REPRO_LBD];
    if (!repro_lb_box(lo, hi)) { fprintf(stderr, "empty lb space\n"); exit(1); }
    long stride = 1;
    for (int k = REPRO_LBD - 1; k >= 0; k--) {
        lb_lo[k] = lo[k];
        lb_stride[k] = stride;
        stride *= (hi[k] - lo[k] + 1);
    }
    lb_slots = stride;
    lb_assign = (int *)malloc((size_t)lb_slots * sizeof(int));
    long *works = (long *)calloc((size_t)lb_slots, sizeof(long));
    long total = 0;
    /* first pass: per-slab work */
    for (long t_x = hi[0]; t_x >= lo[0]; t_x--) {
        long work = repro_slab_work_impl(t_x);
        works[lb_stride[0] * (t_x - lb_lo[0])] = work;
        total += work;
    }
    /* second pass: contiguous even cut along the walk order */
    long cum = 0;
    for (long t_x = hi[0]; t_x >= lo[0]; t_x--) {
        long slot = lb_stride[0] * (t_x - lb_lo[0]);
        long work = works[slot];
        long node = total > 0 ? ((2 * cum + work) * nnodes) / (2 * total) : 0;
        if (node >= nnodes) node = nnodes - 1;
        lb_assign[slot] = (int)node;
        cum += work;
    }
    free(works);
}

static int repro_node_of_tile(const long *t) {
    if (lb_slots == 0) return 0;
    long slot = lb_stride[0] * (t[0] - lb_lo[0]);
    if (slot < 0 || slot >= lb_slots) return 0;
    return lb_assign[slot];
}

/* ---- initial tile generation (Section IV-K) ---- */
static void repro_seed_candidate(const long *t);
static void repro_scan_initial_tiles(void) {
    long t[REPRO_D];
    if (((0 + (1)*M) >= 0) && ((3 + (-1)*M) >= 0)) {
         {
            for (long t_x = MAX2((0), ceild(-3 + M, 4)); t_x <= MIN2(floord(0 + M, 4), (0)); t_x++) {
                for (long t_y = MAX2((0), ceild(-3 + M, 4)); t_y <= MIN2(floord(0 + M, 4), floord(0 + M - 4*t_x, 4)); t_y++) {
                    t[0] = t_x;
                    t[1] = t_y;
                    repro_seed_candidate(t);
                }
            }
        }
    }
    if (((0 + (1)*M) >= 0)) {
         {
            for (long t_x = (0); t_x <= MIN2(floord(0 + M, 4), (0)); t_x++) {
                for (long t_y = MAX2(MAX2((0), ceild(-3 + M, 4)), ceild(-3 + M - 4*t_x, 4)); t_y <= MIN2(floord(0 + M, 4), floord(0 + M - 4*t_x, 4)); t_y++) {
                    t[0] = t_x;
                    t[1] = t_y;
                    repro_seed_candidate(t);
                }
            }
        }
    }
    if (((0 + (1)*M) >= 0)) {
         {
            for (long t_x = MAX2((0), ceild(-3 + M, 4)); t_x <= floord(0 + M, 4); t_x++) {
                for (long t_y = MAX2((0), ceild(-3 + M - 4*t_x, 4)); t_y <= MIN2(floord(0 + M, 4), floord(0 + M - 4*t_x, 4)); t_y++) {
                    t[0] = t_x;
                    t[1] = t_y;
                    repro_seed_candidate(t);
                }
            }
        }
    }
    if (((0 + (1)*M) >= 0)) {
         {
            for (long t_x = (0); t_x <= floord(0 + M, 4); t_x++) {
                for (long t_y = MAX2((0), ceild(-3 + M - 4*t_x, 4)); t_y <= MIN2(floord(0 + M, 4), floord(0 + M - 4*t_x, 4)); t_y++) {
                    t[0] = t_x;
                    t[1] = t_y;
                    repro_seed_candidate(t);
                }
            }
        }
    }
}


/* ================================================================== */
/* Pre-written runtime library (memory, queueing, OpenMP + MPI).      */
/* ================================================================== */
/* Standard includes are emitted at the top of the generated file. */

static long box_lo[REPRO_D], box_hi[REPRO_D], box_stride[REPRO_D];
static long n_slots = 0;

static long *slot_work;        /* local point count per slot (0 = invalid) */
static int  *slot_deps;        /* remaining producer edges per slot        */
static char *slot_seeded;      /* face-scan seed dedup                     */
static double **edge_store;    /* [slot * REPRO_NDELTAS + d] buffers       */

static long tiles_total = 0;   /* valid tiles owned by this rank           */
static long tiles_done = 0;
static long cells_done = 0;

static int repro_rank = 0, repro_nranks = 1;

static double repro_now(void) {
#ifdef _OPENMP
    return omp_get_wtime();
#else
    return (double)clock() / CLOCKS_PER_SEC;
#endif
}

static long tile_slot(const long *t) {
    long id = 0;
    for (int k = 0; k < REPRO_D; k++) {
        long v = t[k] - box_lo[k];
        if (v < 0 || v > box_hi[k] - box_lo[k]) return -1;
        id += v * box_stride[k];
    }
    return id;
}

/* ------------------------- priority heap -------------------------- */
/* Entries are (key[REPRO_D], tile[REPRO_D]); smaller key pops first.  */

static long *heap_keys;   /* heap_cap * REPRO_D */
static long *heap_tiles;
static long heap_len = 0, heap_cap = 0;

static int key_less(const long *a, const long *b) {
    for (int k = 0; k < REPRO_D; k++) {
        if (a[k] != b[k]) return a[k] < b[k];
    }
    return 0;
}

static void heap_swap(long i, long j) {
    long tmp[REPRO_D];
    memcpy(tmp, heap_keys + i * REPRO_D, sizeof tmp);
    memcpy(heap_keys + i * REPRO_D, heap_keys + j * REPRO_D, sizeof tmp);
    memcpy(heap_keys + j * REPRO_D, tmp, sizeof tmp);
    memcpy(tmp, heap_tiles + i * REPRO_D, sizeof tmp);
    memcpy(heap_tiles + i * REPRO_D, heap_tiles + j * REPRO_D, sizeof tmp);
    memcpy(heap_tiles + j * REPRO_D, tmp, sizeof tmp);
}

static void heap_push(const long *tile) {
    if (heap_len == heap_cap) {
        heap_cap = heap_cap ? heap_cap * 2 : 1024;
        heap_keys = (long *)realloc(heap_keys, (size_t)heap_cap * REPRO_D * sizeof(long));
        heap_tiles = (long *)realloc(heap_tiles, (size_t)heap_cap * REPRO_D * sizeof(long));
        if (!heap_keys || !heap_tiles) { fprintf(stderr, "heap OOM\n"); exit(2); }
    }
    repro_priority(tile, heap_keys + heap_len * REPRO_D);
    memcpy(heap_tiles + heap_len * REPRO_D, tile, REPRO_D * sizeof(long));
    long i = heap_len++;
    while (i > 0) {
        long p = (i - 1) / 2;
        if (!key_less(heap_keys + i * REPRO_D, heap_keys + p * REPRO_D)) break;
        heap_swap(i, p);
        i = p;
    }
}

static int heap_pop(long *tile_out) {
    if (heap_len == 0) return 0;
    memcpy(tile_out, heap_tiles, REPRO_D * sizeof(long));
    heap_len--;
    if (heap_len > 0) {
        memcpy(heap_keys, heap_keys + heap_len * REPRO_D, REPRO_D * sizeof(long));
        memcpy(heap_tiles, heap_tiles + heap_len * REPRO_D, REPRO_D * sizeof(long));
        long i = 0;
        for (;;) {
            long l = 2 * i + 1, r = 2 * i + 2, m = i;
            if (l < heap_len && key_less(heap_keys + l * REPRO_D, heap_keys + m * REPRO_D)) m = l;
            if (r < heap_len && key_less(heap_keys + r * REPRO_D, heap_keys + m * REPRO_D)) m = r;
            if (m == i) break;
            heap_swap(i, m);
            i = m;
        }
    }
    return 1;
}

/* --------------------- seeding and bookkeeping --------------------- */

static void repro_seed_candidate(const long *t) {
    /* Called by the generated face scans (Section IV-K): accept a tile
       iff it is valid and every tile dependency is unsatisfiable. */
    long slot = tile_slot(t);
    if (slot < 0 || slot_work[slot] == 0 || slot_seeded[slot]) return;
    for (int d = 0; d < REPRO_NDELTAS; d++) {
        long p[REPRO_D];
        for (int k = 0; k < REPRO_D; k++) p[k] = t[k] + repro_deltas[d][k];
        long ps = tile_slot(p);
        if (ps >= 0 && slot_work[ps] > 0) return; /* has a live producer */
    }
    slot_seeded[slot] = 1;
    if (repro_node_of_tile(t) == repro_rank) heap_push(t);
}

#ifdef REPRO_USE_MPI
/* Edge messages carry a header: consumer tile coords + delta index. */
#define REPRO_EDGE_TAG 7701
static void send_edge(int dest, const long *consumer, int d,
                      const double *buf, long cells) {
    long header[REPRO_D + 2];
    memcpy(header, consumer, REPRO_D * sizeof(long));
    header[REPRO_D] = d;
    header[REPRO_D + 1] = cells;
    MPI_Send(header, REPRO_D + 2, MPI_LONG, dest, REPRO_EDGE_TAG, MPI_COMM_WORLD);
    MPI_Send((void *)buf, (int)cells, MPI_DOUBLE, dest, REPRO_EDGE_TAG + 1,
             MPI_COMM_WORLD);
}
#endif

static void deliver_edge(const long *consumer, int d, double *buf);

#ifdef REPRO_USE_MPI
static void poll_edges(void) {
    int flag = 1;
    while (flag) {
        MPI_Status st;
        MPI_Iprobe(MPI_ANY_SOURCE, REPRO_EDGE_TAG, MPI_COMM_WORLD, &flag, &st);
        if (!flag) break;
        long header[REPRO_D + 2];
        MPI_Recv(header, REPRO_D + 2, MPI_LONG, st.MPI_SOURCE, REPRO_EDGE_TAG,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        long cells = header[REPRO_D + 1];
        double *buf = (double *)malloc((size_t)cells * sizeof(double));
        MPI_Recv(buf, (int)cells, MPI_DOUBLE, st.MPI_SOURCE, REPRO_EDGE_TAG + 1,
                 MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        deliver_edge(header, (int)header[REPRO_D], buf);
    }
}
#endif

/* Store an edge buffer and release the consumer when its last
   dependency arrives.  Caller must hold the queue lock (or be in the
   serial init phase). */
static void deliver_edge(const long *consumer, int d, double *buf) {
    long slot = tile_slot(consumer);
    if (slot < 0 || slot_work[slot] == 0) {
        fprintf(stderr, "edge delivered to invalid tile\n");
        exit(2);
    }
    edge_store[slot * REPRO_NDELTAS + d] = buf;
    if (--slot_deps[slot] == 0) heap_push(consumer);
}

/* ------------------------- the worker loop ------------------------ */

static void process_tile(const long *t, double *V) {
    long slot = tile_slot(t);
    /* Unpack incoming edges into the ghost margins. */
    for (int d = 0; d < REPRO_NDELTAS; d++) {
        long p[REPRO_D];
        for (int k = 0; k < REPRO_D; k++) p[k] = t[k] + repro_deltas[d][k];
        long ps = tile_slot(p);
        if (ps < 0 || slot_work[ps] == 0) continue;
        double *buf = edge_store[slot * REPRO_NDELTAS + d];
        if (!buf) { fprintf(stderr, "missing edge buffer\n"); exit(2); }
        repro_unpack(d, p, buf, V);
        free(buf);
        edge_store[slot * REPRO_NDELTAS + d] = NULL;
    }

    repro_execute_tile(t, V);

    /* Pack outgoing edges and hand them to the consumers. */
    for (int d = 0; d < REPRO_NDELTAS; d++) {
        long c[REPRO_D];
        for (int k = 0; k < REPRO_D; k++) c[k] = t[k] - repro_deltas[d][k];
        long cs = tile_slot(c);
        if (cs < 0 || slot_work[cs] == 0) continue;
        long cells = repro_pack_size(d, t);
        double *buf = (double *)malloc((size_t)(cells > 0 ? cells : 1) * sizeof(double));
        repro_pack(d, t, V, buf);
        int owner = repro_node_of_tile(c);
        if (owner == repro_rank) {
#ifdef _OPENMP
#pragma omp critical(repro_queue)
#endif
            deliver_edge(c, d, buf);
        } else {
#ifdef REPRO_USE_MPI
            send_edge(owner, c, d, buf, cells);
            free(buf);
#else
            fprintf(stderr, "cross-node edge without MPI\n");
            exit(2);
#endif
        }
    }

#ifdef _OPENMP
#pragma omp atomic
#endif
    tiles_done++;
#ifdef _OPENMP
#pragma omp atomic
#endif
    cells_done += slot_work[slot];
}

static void worker_loop(void) {
#ifdef _OPENMP
#pragma omp parallel
#endif
    {
        double *V = (double *)malloc((size_t)REPRO_PADDED_CELLS * sizeof(double));
        long t[REPRO_D];
        for (;;) {
            int got = 0;
            long done_snapshot;
#ifdef _OPENMP
#pragma omp critical(repro_queue)
#endif
            {
                got = heap_pop(t);
            }
            if (got) {
                process_tile(t, V);
                continue;
            }
#ifdef _OPENMP
#pragma omp atomic read
            done_snapshot = tiles_done;
#else
            done_snapshot = tiles_done;
#endif
            if (done_snapshot >= tiles_total) break;
#ifdef REPRO_USE_MPI
#ifdef _OPENMP
#pragma omp master
#endif
            {
#ifdef _OPENMP
#pragma omp critical(repro_queue)
#endif
                poll_edges();
            }
#endif
        }
        free(V);
    }
}

/* ----------------------------- setup ------------------------------ */

static void init_tables(void) {
    (void)repro_widths;
    long lo[REPRO_D], hi[REPRO_D];
    if (!repro_tile_box(lo, hi)) {
        fprintf(stderr, "empty problem\n");
        exit(1);
    }
    long stride = 1;
    for (int k = REPRO_D - 1; k >= 0; k--) {
        box_lo[k] = lo[k];
        box_hi[k] = hi[k];
        box_stride[k] = stride;
        stride *= (hi[k] - lo[k] + 1);
    }
    n_slots = stride;
    slot_work = (long *)calloc((size_t)n_slots, sizeof(long));
    slot_deps = (int *)calloc((size_t)n_slots, sizeof(int));
    slot_seeded = (char *)calloc((size_t)n_slots, 1);
    edge_store = (double **)calloc((size_t)n_slots * REPRO_NDELTAS, sizeof(double *));
    if (!slot_work || !slot_deps || !slot_seeded || !edge_store) {
        fprintf(stderr, "table OOM (%ld slots)\n", n_slots);
        exit(2);
    }

    /* Work per tile over the bounding box (0 marks invalid slots). */
    long t[REPRO_D];
    for (long s = 0; s < n_slots; s++) {
        long rem = s;
        for (int k = 0; k < REPRO_D; k++) {
            t[k] = box_lo[k] + rem / box_stride[k];
            rem %= box_stride[k];
        }
        slot_work[s] = repro_tile_work(t);
    }

    /* Dependency counts for owned tiles. */
    for (long s = 0; s < n_slots; s++) {
        if (slot_work[s] == 0) continue;
        long rem = s;
        for (int k = 0; k < REPRO_D; k++) {
            t[k] = box_lo[k] + rem / box_stride[k];
            rem %= box_stride[k];
        }
        if (repro_node_of_tile(t) != repro_rank) continue;
        tiles_total++;
        int deps = 0;
        for (int d = 0; d < REPRO_NDELTAS; d++) {
            long p[REPRO_D];
            for (int k = 0; k < REPRO_D; k++) p[k] = t[k] + repro_deltas[d][k];
            long ps = tile_slot(p);
            if (ps >= 0 && slot_work[ps] > 0) deps++;
        }
        slot_deps[s] = deps;
    }
}

int main(int argc, char **argv) {
#ifdef REPRO_USE_MPI
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &repro_rank);
    MPI_Comm_size(MPI_COMM_WORLD, &repro_nranks);
#endif
    if (argc < 1 + REPRO_NPARAMS) {
        fprintf(stderr, "usage: %s", argv[0]);
        for (int p = 0; p < REPRO_NPARAMS; p++)
            fprintf(stderr, " <%s>", repro_param_names[p]);
        fprintf(stderr, "\n");
        return 1;
    }
    repro_read_params(argv);
    repro_user_init();
    double tlb0 = repro_now();
    repro_init_load_balance(repro_nranks);
    double tlb1 = repro_now();
    init_tables();
    /* Initial tile generation (Section IV-K) is timed separately: the
       paper reports it at < 0.5% of total run time. */
    double ts0 = repro_now();
    repro_scan_initial_tiles();
    double ts1 = repro_now();
#ifdef REPRO_CHECK
    /* Self-check: the face-scan seeds (Section IV-K) must be exactly
       the owned tiles with zero live producers. */
    {
        long expected = 0, seeded = 0, t[REPRO_D];
        for (long s = 0; s < n_slots; s++) {
            if (slot_work[s] == 0) continue;
            long rem = s;
            for (int k = 0; k < REPRO_D; k++) {
                t[k] = box_lo[k] + rem / box_stride[k];
                rem %= box_stride[k];
            }
            if (slot_deps[s] == 0 &&
                repro_node_of_tile(t) == repro_rank) expected++;
            if (slot_seeded[s]) seeded++;
        }
        if (heap_len != expected) {
            fprintf(stderr,
                    "REPRO_CHECK: face scan queued %ld tiles, dependency "
                    "counting expects %ld (seeded candidates: %ld)\n",
                    heap_len, expected, seeded);
            exit(3);
        }
        if (repro_rank == 0)
            printf("check_initial ok %ld\n", expected);
    }
#endif

    double t0 = repro_now();
    worker_loop();
    double t1 = repro_now();

#ifdef REPRO_USE_MPI
    /* The objective lives on exactly one rank; reduce it to rank 0. */
    struct { double v; int seen; } local = { repro_objective_value,
                                             repro_objective_seen }, best;
    MPI_Allreduce(&local.v, &best.v, 1, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD);
    int seen_any = 0;
    MPI_Allreduce(&local.seen, &seen_any, 1, MPI_INT, MPI_MAX, MPI_COMM_WORLD);
    if (local.seen) best.v = local.v;
    repro_objective_value = best.v;
    repro_objective_seen = seen_any;
#endif
    if (repro_rank == 0) {
        printf("tiles %ld cells %ld time %.6f\n", tiles_done, cells_done, t1 - t0);
        printf("init_scan %.6f lb_time %.6f\n", ts1 - ts0, tlb1 - tlb0);
#ifdef REPRO_HAVE_EHRHART
        /* Cross-check: the embedded Ehrhart polynomial must count the
           same work the runtime actually executed (single rank only). */
        if (repro_nranks == 1)
            printf("ehrhart_total %ld\n", repro_total_work_ehrhart());
#endif
        if (repro_objective_seen)
            printf("objective %.12f\n", repro_objective_value);
    }
#ifdef REPRO_USE_MPI
    MPI_Finalize();
#endif
    return 0;
}
