#!/usr/bin/env python3
"""Defining a brand-new problem through the paper's text input format.

The generator's user interface (Section IV-A) is a text file: loop
variables, parameters, linear inequalities, template vectors, tile
widths, load-balancing dimensions and the center-loop code.  This
example writes such a file for a problem *not* in the built-in suite — a
2-D "minimum-cost staircase walk" on a triangular domain — parses it,
generates both backends, runs the emitted Python program in a
subprocess, and checks the answer against ten lines of brute force.

Run:  python examples/custom_problem.py
"""

import subprocess
import sys
from functools import lru_cache
from pathlib import Path

from repro import generate, parse_spec_text
from repro.generator.cgen import emit_c_program
from repro.generator.pygen import emit_python_program

HERE = Path(__file__).resolve().parent

# Cost of standing on (x, y); walk from anywhere on the diagonal
# x + y = M down to (0, 0), moving -x or -y, accumulating cell costs.
# f(x, y) = cost(x, y) + min over valid steps; f(0, 0) is the answer for
# the best single path ending at the origin... i.e. classic staircase DP
# with dependencies <1, 0> and <0, 1> (positive templates: descending
# scan, like the bandits).
SPEC_TEXT = """\
problem: staircase
loop_vars: x y
params: M
state: V
lb_dims: x
tile_widths: x=4 y=4

constraints:
    x >= 0
    y >= 0
    x + y <= M

templates:
    right = 1 0
    up = 0 1

center_code_c: |
    double c = (double)((3 * x + 5 * y) % 7);
    double best = 1e300;
    if (is_valid_right && V[loc_right] < best) best = V[loc_right];
    if (is_valid_up && V[loc_up] < best) best = V[loc_up];
    V[loc] = c + (best > 1e299 ? 0.0 : best);

center_code_py: |
    _c = float((3 * x + 5 * y) % 7)
    _best = None
    if is_valid_right:
        _best = V[loc_right]
    if is_valid_up and (_best is None or V[loc_up] < _best):
        _best = V[loc_up]
    V[loc] = _c + (0.0 if _best is None else _best)
"""


@lru_cache(maxsize=None)
def brute(x: int, y: int, M: int) -> float:
    """Independent reference for the staircase recurrence."""
    c = float((3 * x + 5 * y) % 7)
    options = []
    if x + 1 + y <= M:
        options.append(brute(x + 1, y, M))
    if x + y + 1 <= M:
        options.append(brute(x, y + 1, M))
    return c + (min(options) if options else 0.0)


def main() -> None:
    spec_path = HERE / "staircase.spec"
    spec_path.write_text(SPEC_TEXT)
    print(f"wrote {spec_path.name}")

    spec = parse_spec_text(SPEC_TEXT)
    program = generate(spec)
    print(program.describe())
    print()

    # Emit both backends.
    c_path = HERE / "staircase_generated.c"
    py_path = HERE / "staircase_generated.py"
    c_path.write_text(emit_c_program(program))
    py_path.write_text(emit_python_program(program))
    print(f"wrote {c_path.name} and {py_path.name}")

    # Run the generated Python program and check it.
    M = 23
    out = subprocess.run(
        [sys.executable, str(py_path), str(M)],
        capture_output=True,
        text=True,
        check=True,
    )
    print(out.stdout.strip())
    objective = next(
        float(line.split()[1])
        for line in out.stdout.splitlines()
        if line.startswith("objective")
    )
    expected = brute(0, 0, M)
    print(f"generated program: f(0,0) = {objective}")
    print(f"brute force      : f(0,0) = {expected}")
    assert objective == expected
    print("match.")


if __name__ == "__main__":
    main()
