#!/usr/bin/env python3
"""
Auto-generated tiled dynamic-programming program: bandit2
Produced by the repro program generator (VandenBerg & Stout,
CLUSTER 2011 reproduction).  Do not edit by hand.

Usage: python prog.py <N>
"""
import heapq
import sys
import time

import numpy as np

N = int(sys.argv[1])

D = 4
DELTAS = ((0, 0, 0, 1), (0, 0, 1, 0), (0, 1, 0, 0), (1, 0, 0, 0))
PADDED_CELLS = 2401
NAN = float('nan')

# ---- tile work (local-space point count, Section IV-E) ----
def tile_work(t_s1, t_f1, t_s2, t_f2):
    if not ((0 + 1*t_f2) >= 0 and (0 + 1*t_s2) >= 0 and (0 + 1*t_f1) >= 0 and (0 + 1*t_s1) >= 0 and (0 + 1*N) >= 0 and (0 + 1*N + -6*t_f2) >= 0 and (0 + 1*N + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0):
        return 0
    _total = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                _n = min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) - (max((0 - 6*t_f2), (0))) + 1
                if _n > 0:
                    _total += _n
    return _total

def pack_size_0(t_s1, t_f1, t_s2, t_f2):
    if not ((0 + 1*t_f2) >= 0 and (0 + 1*t_s2) >= 0 and (0 + 1*t_f1) >= 0 and (0 + 1*t_s1) >= 0 and (0 + 1*N) >= 0 and (0 + 1*N + -6*t_f2) >= 0 and (0 + 1*N + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0):
        return 0
    _total = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                _n = min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5), (0)) - (max((0 - 6*t_f2), (0))) + 1
                if _n > 0:
                    _total += _n
    return _total

def pack_size_1(t_s1, t_f1, t_s2, t_f2):
    if not ((0 + 1*t_f2) >= 0 and (0 + 1*t_s2) >= 0 and (0 + 1*t_f1) >= 0 and (0 + 1*t_s1) >= 0 and (0 + 1*N) >= 0 and (0 + 1*N + -6*t_f2) >= 0 and (0 + 1*N + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0):
        return 0
    _total = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((0), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                _n = min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) - (max((0 - 6*t_f2), (0))) + 1
                if _n > 0:
                    _total += _n
    return _total

def pack_size_2(t_s1, t_f1, t_s2, t_f2):
    if not ((0 + 1*t_f2) >= 0 and (0 + 1*t_s2) >= 0 and (0 + 1*t_f1) >= 0 and (0 + 1*t_s1) >= 0 and (0 + 1*N) >= 0 and (0 + 1*N + -6*t_f2) >= 0 and (0 + 1*N + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0):
        return 0
    _total = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((0), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                _n = min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) - (max((0 - 6*t_f2), (0))) + 1
                if _n > 0:
                    _total += _n
    return _total

def pack_size_3(t_s1, t_f1, t_s2, t_f2):
    if not ((0 + 1*t_f2) >= 0 and (0 + 1*t_s2) >= 0 and (0 + 1*t_f1) >= 0 and (0 + 1*t_s1) >= 0 and (0 + 1*N) >= 0 and (0 + 1*N + -6*t_f2) >= 0 and (0 + 1*N + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_s1 + -6*t_s2) >= 0 and (0 + 1*N + -6*t_f1 + -6*t_f2 + -6*t_s1 + -6*t_s2) >= 0):
        return 0
    _total = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((0), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                _n = min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) - (max((0 - 6*t_f2), (0))) + 1
                if _n > 0:
                    _total += _n
    return _total

PACK_SIZES = (pack_size_0, pack_size_1, pack_size_2, pack_size_3)

# ---- tile-space bounding box ----
def tile_box():
    lo = [0] * D
    hi = [0] * D
    lo[0] = (0)
    hi[0] = ((0 + N) // 6)
    lo[1] = (0)
    hi[1] = ((0 + N) // 6)
    lo[2] = (0)
    hi[2] = ((0 + N) // 6)
    lo[3] = (0)
    hi[3] = ((0 + N) // 6)
    return lo, hi

# ---- tile calculation code (Section IV-L, Figure 3) ----
OBJECTIVE = [0.0, False]
def execute_tile(t, V):
    t_s1, t_f1, t_s2, t_f2 = t
    for i_s1 in range(min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)), (max((0 - 6*t_s1), (0))) - 1, -1):
        for i_f1 in range(min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)), (max((0 - 6*t_f1), (0))) - 1, -1):
            for i_s2 in range(min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)), (max((0 - 6*t_s2), (0))) - 1, -1):
                for i_f2 in range(min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)), (max((0 - 6*t_f2), (0))) - 1, -1):
                    s1 = i_s1 + 6 * t_s1
                    f1 = i_f1 + 6 * t_f1
                    s2 = i_s2 + 6 * t_s2
                    f2 = i_f2 + 6 * t_f2
                    loc = 343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)
                    loc_succ1 = loc + (343)
                    loc_fail1 = loc + (49)
                    loc_succ2 = loc + (7)
                    loc_fail2 = loc + (1)
                    _chk0 = ((-1 + (1)*N + (-1)*f1 + (-1)*f2 + (-1)*s1 + (-1)*s2) >= 0)
                    is_valid_succ1 = _chk0
                    is_valid_fail1 = _chk0
                    is_valid_succ2 = _chk0
                    is_valid_fail2 = _chk0
                    # ---- user center-loop code ----
                    _best = -1.0
                    _p = (s1 + 1.0) / (s1 + f1 + 2.0)
                    _v = (_p * (1.0 + V[loc_succ1]) + (1.0 - _p) * V[loc_fail1]) if is_valid_succ1 else 0.0
                    if _v > _best:
                        _best = _v
                    _p = (s2 + 1.0) / (s2 + f2 + 2.0)
                    _v = (_p * (1.0 + V[loc_succ2]) + (1.0 - _p) * V[loc_fail2]) if is_valid_succ2 else 0.0
                    if _v > _best:
                        _best = _v
                    V[loc] = _best
                    if s1 == 0 and f1 == 0 and s2 == 0 and f2 == 0:
                        OBJECTIVE[0] = V[loc]
                        OBJECTIVE[1] = True

# ---- packing / unpacking functions (Section IV-I) ----
def pack_0(t, V, buf):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5), (0)) + 1):
                    buf[_n] = V[343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)]
                    _n += 1
def unpack_0(t, buf, V):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5), (0)) + 1):
                    V[343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 6)] = buf[_n]
                    _n += 1
def pack_1(t, V, buf):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((0), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) + 1):
                    buf[_n] = V[343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)]
                    _n += 1
def unpack_1(t, buf, V):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((0), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) + 1):
                    V[343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 6) + 1 * (i_f2 + 0)] = buf[_n]
                    _n += 1
def pack_2(t, V, buf):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((0), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) + 1):
                    buf[_n] = V[343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)]
                    _n += 1
def unpack_2(t, buf, V):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((5), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((0), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) + 1):
                    V[343 * (i_s1 + 0) + 49 * (i_f1 + 6) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)] = buf[_n]
                    _n += 1
def pack_3(t, V, buf):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((0), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) + 1):
                    buf[_n] = V[343 * (i_s1 + 0) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)]
                    _n += 1
def unpack_3(t, buf, V):
    t_s1, t_f1, t_s2, t_f2 = t
    _n = 0
    for i_s1 in range(max((0 - 6*t_s1), (0)), min((0), (0 + N - 6*t_s1), (0 + N - 6*t_f2 - 6*t_s1), (0 + N - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f2 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
        for i_f1 in range(max((0 - 6*t_f1), (0)), min((5), (0 + N - i_s1 - 6*t_f1 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1), (0 + N - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
            for i_s2 in range(max((0 - 6*t_s2), (0)), min((5), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_s1 - 6*t_s2), (0 + N - i_f1 - i_s1 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2)) + 1):
                for i_f2 in range(max((0 - 6*t_f2), (0)), min((0 + N - i_f1 - i_s1 - i_s2 - 6*t_f1 - 6*t_f2 - 6*t_s1 - 6*t_s2), (5)) + 1):
                    V[343 * (i_s1 + 6) + 49 * (i_f1 + 0) + 7 * (i_s2 + 0) + 1 * (i_f2 + 0)] = buf[_n]
                    _n += 1
PACKERS = (pack_0, pack_1, pack_2, pack_3)
UNPACKERS = (unpack_0, unpack_1, unpack_2, unpack_3)

# ---- tile priority (Section V-B, Figure 5) ----
# lb dims downstream-first; remaining dims column-major.
def priority(t):
    return (t[0], t[1], -t[2], -t[3])

# ---- tile-space scan and initial tiles (Section IV-K) ----
def scan_tiles():
    for t_s1 in range((0), ((0 + N) // 6) + 1):
        for t_f1 in range((0), min(((0 + N) // 6), ((0 + N - 6*t_s1) // 6)) + 1):
            for t_s2 in range((0), min(((0 + N) // 6), ((0 + N - 6*t_s1) // 6), ((0 + N - 6*t_f1) // 6), ((0 + N - 6*t_f1 - 6*t_s1) // 6)) + 1):
                for t_f2 in range((0), min(((0 + N) // 6), ((0 + N - 6*t_s1) // 6), ((0 + N - 6*t_f1) // 6), ((0 + N - 6*t_f1 - 6*t_s1) // 6), ((0 + N - 6*t_s2) // 6), ((0 + N - 6*t_s1 - 6*t_s2) // 6), ((0 + N - 6*t_f1 - 6*t_s2) // 6), ((0 + N - 6*t_f1 - 6*t_s1 - 6*t_s2) // 6)) + 1):
                    if tile_work(t_s1, t_f1, t_s2, t_f2) > 0:
                        yield (t_s1, t_f1, t_s2, t_f2)

# ==================================================================
# Pre-written runtime (memory management, queueing) — Section V.
# ==================================================================

def main():
    t0 = time.perf_counter()
    tiles = set(scan_tiles())
    if not tiles:
        print("tiles 0 cells 0 time 0.0")
        return
    producers = {}
    deps = {}
    for t in tiles:
        prods = []
        for delta in DELTAS:
            p = tuple(a + b for a, b in zip(t, delta))
            if p in tiles:
                prods.append(p)
        producers[t] = prods
        deps[t] = len(prods)

    heap = [(priority(t), t) for t in tiles if deps[t] == 0]
    heapq.heapify(heap)
    edges = {}
    tiles_done = 0
    cells_done = 0
    while heap:
        _, t = heapq.heappop(heap)
        V = np.full(PADDED_CELLS, NAN)
        for di, delta in enumerate(DELTAS):
            p = tuple(a + b for a, b in zip(t, delta))
            if p in tiles:
                UNPACKERS[di](p, edges.pop((p, t)), V)
        execute_tile(t, V)
        cells_done += tile_work(*t)
        tiles_done += 1
        for di, delta in enumerate(DELTAS):
            c = tuple(a - b for a, b in zip(t, delta))
            if c not in tiles:
                continue
            buf = np.empty(max(PACK_SIZES[di](*t), 1))
            PACKERS[di](t, V, buf)
            edges[(t, c)] = buf
            deps[c] -= 1
            if deps[c] == 0:
                heapq.heappush(heap, (priority(c), c))
    elapsed = time.perf_counter() - t0
    print(f"tiles {tiles_done} cells {cells_done} time {elapsed:.6f}")
    if OBJECTIVE[1]:
        print(f"objective {OBJECTIVE[0]:.12f}")


if __name__ == "__main__":
    main()
