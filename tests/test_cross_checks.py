"""Cross-cutting consistency checks between subsystems.

Each test here ties two independently-tested components together:
formatter/parser idempotence, Ehrhart vs the load balancer, recovery vs
the forward pass on ascending-scan problems, hyperplane balancing on
ascending dimensions, and the generated counters vs the graph builder.
"""

import pytest

from repro import execute, generate, parse_spec_text
from repro.generator import (
    balance_hyperplane,
    compute_slab_work,
    total_work_polynomial,
)
from repro.problems import (
    lcs_reference,
    lcs_spec,
    msa_reference,
    msa_spec,
    three_arm_spec,
)
from repro.runtime import SolutionRecovery, TileGraph
from repro.spec import format_spec


class TestFormatterIdempotence:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: three_arm_spec(tile_width=4),
            lambda: lcs_spec(["ACGT", "GATT"], tile_width=3),
            lambda: msa_spec(["ACG", "TTA", "CAG"], tile_width=3),
        ],
        ids=["bandit3", "lcs2", "msa3"],
    )
    def test_format_parse_format_fixpoint(self, builder):
        spec = builder()
        once = format_spec(spec)
        twice = format_spec(parse_spec_text(once))
        assert once == twice


class TestEhrhartAgreesWithBalancer:
    def test_total_work_polynomial_equals_slab_sum(self, bandit2_program):
        qp = total_work_polynomial(bandit2_program.spec)
        for n in (5, 9, 14):
            works = compute_slab_work(bandit2_program.spaces, {"N": n})
            assert qp(n) == sum(works.values())

    def test_total_work_polynomial_equals_graph_work(self, bandit2_program):
        qp = total_work_polynomial(bandit2_program.spec)
        for n in (4, 8):
            graph = TileGraph.build(bandit2_program, {"N": n})
            assert qp(n) == graph.total_work()


class TestRecoveryOnAscendingProblems:
    def test_msa3_values_recoverable(self, msa3_program, lcs3_strings):
        params = {f"L{k+1}": len(s) for k, s in enumerate(lcs3_strings)}
        rec = SolutionRecovery(msa3_program, params)
        point = {
            v: params[f"L{k+1}"]
            for k, v in enumerate(msa3_program.spec.loop_vars)
        }
        assert rec.value_at(point) == pytest.approx(
            msa_reference(lcs3_strings), abs=1e-9
        )

    def test_lcs3_origin_is_zero(self, lcs3_program):
        params = {"L1": 8, "L2": 9, "L3": 10}
        rec = SolutionRecovery(lcs3_program, params)
        assert rec.value_at({"x1": 0, "x2": 0, "x3": 0}) == 0.0


class TestHyperplaneOnAscendingDims:
    def test_levels_ascend_with_scan(self):
        # LCS dims ascend; the wavefront functional must follow.
        spec = lcs_spec(["ACGTACGT", "GATTACAA"], tile_width=3,
                        lb_dims=("x1", "x2"))
        program = generate(spec)
        params = {"L1": 8, "L2": 8}
        lb = balance_hyperplane(program.spaces, params, 3)
        levels = [s[0] + s[1] for s in lb.slab_order]
        assert levels == sorted(levels)
        # node 0 owns the first-executed (origin-corner) slabs
        first = lb.slab_order[0]
        assert lb.slab_node[first] == 0
        assert first == (0, 0)


class TestGraphVsCounters:
    def test_edge_totals_symmetric(self, bandit2_w4_program):
        graph = TileGraph.build(bandit2_w4_program, {"N": 13})
        outgoing = {}
        incoming = {}
        for (p, c), cells in graph.edge_cells.items():
            outgoing[p] = outgoing.get(p, 0) + cells
            incoming[c] = incoming.get(c, 0) + cells
        assert sum(outgoing.values()) == sum(incoming.values())

    def test_interior_edges_full_size(self, bandit2_w4_program):
        graph = TileGraph.build(bandit2_w4_program, {"N": 30})
        # Edge from the origin tile to any neighbour is a full face.
        origin = (0, 0, 0, 0)
        for consumer in graph.consumers[origin]:
            pass  # origin produces nothing below it (descending scan)
        # instead inspect an interior producer at (1,1,1,1)
        producer = (1, 1, 1, 1)
        for consumer in graph.consumers[producer]:
            cells = graph.edge_cells[(producer, consumer)]
            assert cells == 4 ** 3


class TestSpecFileKernelEndToEnd:
    def test_lcs_via_text_format(self):
        # Round-trip a built-in problem through the text format and run
        # it with the synthesized kernel: full-stack consistency.
        from repro.spec import ensure_kernel

        original = lcs_spec(["ACGTAC", "GATTAC"], tile_width=3)
        reparsed = parse_spec_text(format_spec(original))
        kernel = ensure_kernel(reparsed)
        res = execute(generate(reparsed), {"L1": 6, "L2": 6}, kernel=kernel)
        assert res.objective_value == lcs_reference(["ACGTAC", "GATTAC"])
