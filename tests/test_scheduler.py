"""The rank-aware scheduler core and the multi-rank SPMD harness.

One engine (:class:`repro.runtime.scheduler.TileScheduler`) owns the
pending/ready/edge state machine; the executor, the SPMD harness and
the simulator are drivers.  These tests pin the properties that make
that single-core design trustworthy:

* rank-count invariance — ``execute(..., ranks=P)`` is bit-identical to
  ``ranks=1`` for every P, for objective values and every recorded cell
  (the end-to-end numerical validation of load balance + packing +
  priority);
* determinism — two runs at the same rank count produce byte-identical
  transition-event traces;
* per-rank edge-memory accounting — rank peaks sum-bound the aggregate
  peak;
* protocol parity — SPMD cross-rank message counts equal the
  simulator's ``messages`` for the same machine shape.
"""

from __future__ import annotations

import inspect

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeExecutionError
from repro.runtime import (
    TRACE_SCHEMA_VERSION,
    TileGraph,
    TileScheduler,
    compiled_executor,
    decode_events,
    encode_events,
    execute,
    run_spmd,
    spmd_rank_assignment,
    tile_graph,
)
from repro.simulate import MachineModel, simulate, simulate_program


@pytest.fixture(scope="module")
def graph(bandit2_program):
    return TileGraph.build(bandit2_program, {"N": 7})


class TestTileScheduler:
    def test_seed_makes_initial_tiles_ready(self, graph):
        sched = TileScheduler(graph)
        sched.seed()
        ready = set()
        while sched.has_ready(0):
            ready.add(sched.start_tile(0))
        assert ready == set(graph.initial_rows().tolist())

    def test_start_tile_respects_priority(self, graph):
        sched = TileScheduler(graph, priority_scheme="column-major")
        sched.seed()
        prio = sched.prio
        popped = []
        while sched.has_ready(0):
            popped.append(sched.start_tile(0))
        assert popped == sorted(popped, key=lambda r: (prio[r], r))

    def test_idle_rank_returns_none(self, graph):
        sched = TileScheduler(graph, ranks=2)
        assert sched.start_tile(1) is None

    def test_over_delivery_raises(self, graph):
        sched = TileScheduler(graph)
        sched.seed()
        row = sched.start_tile(0)
        consumer, _, cells, _ = sched.outgoing(row)[0]
        nprod = len(graph.producer_edges(consumer))
        sched.send_edge(row, consumer, cells=cells)
        for _ in range(nprod):
            sched.deliver_edge(consumer)
        with pytest.raises(RuntimeExecutionError):
            sched.deliver_edge(consumer)

    def test_verify_drained_detects_deadlock(self, graph):
        sched = TileScheduler(graph)
        sched.seed()
        sched.finish_tile(sched.start_tile(0))
        with pytest.raises(RuntimeExecutionError, match="deadlocked"):
            sched.verify_drained()

    def test_rank_assignment_validated(self, graph):
        T = len(graph.tile_tuples)
        with pytest.raises(RuntimeExecutionError):
            TileScheduler(graph, ranks=2, rank_of=[5] * T)
        with pytest.raises(RuntimeExecutionError):
            TileScheduler(graph, ranks=2, rank_of=[0] * (T - 1))
        with pytest.raises(RuntimeExecutionError):
            TileScheduler(graph, ranks=0)

    def test_event_trace_shape(self, bandit2_program):
        # Pinned to the per-tile engine: wavefront mode never packs
        # interior edges, so its trace has no edge_sent transitions.
        res = execute(
            bandit2_program, {"N": 6}, record_events=True, mode="vector"
        )
        graph = tile_graph(bandit2_program, {"N": 6})
        T = len(graph.tile_tuples)
        kinds = [e.kind for e in res.events]
        assert kinds.count("tile_ready") == T
        assert kinds.count("tile_start") == T
        assert kinds.count("tile_done") == T
        assert kinds.count("edge_sent") == graph.num_edges()
        # Sequence numbers are the deterministic total order.
        assert [e.seq for e in res.events] == list(range(len(res.events)))
        # Every tile starts after it became ready, finishes after it started.
        ready_at = {e.tile: e.seq for e in res.events if e.kind == "tile_ready"}
        start_at = {e.tile: e.seq for e in res.events if e.kind == "tile_start"}
        done_at = {e.tile: e.seq for e in res.events if e.kind == "tile_done"}
        for tile in start_at:
            assert ready_at[tile] < start_at[tile] < done_at[tile]

    def test_events_off_by_default(self, bandit2_program):
        assert execute(bandit2_program, {"N": 6}).events is None


class TestRankInvariance:
    """execute(..., ranks=P) is bit-identical to ranks=1 for all P."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=1, max_value=9),
        ranks=st.integers(min_value=1, max_value=4),
    )
    def test_bandit2_objective_and_values(self, bandit2_program, n, ranks):
        base = execute(bandit2_program, {"N": n}, record_values=True)
        spmd = execute(
            bandit2_program, {"N": n}, ranks=ranks, record_values=True
        )
        assert spmd.objective_value == base.objective_value
        assert spmd.values == base.values
        assert spmd.cells_computed == base.cells_computed

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        la=st.integers(min_value=1, max_value=9),
        lb=st.integers(min_value=1, max_value=9),
        ranks=st.integers(min_value=1, max_value=4),
    )
    def test_edit_distance_objective_and_values(
        self, edit_program, la, lb, ranks
    ):
        params = {"LA": la, "LB": lb}
        base = execute(edit_program, params, record_values=True)
        spmd = execute(edit_program, params, ranks=ranks, record_values=True)
        assert spmd.objective_value == base.objective_value
        assert spmd.values == base.values

    @pytest.mark.parametrize("ranks", [2, 3, 4])
    def test_value_at_matches(self, bandit2_program, ranks):
        base = execute(bandit2_program, {"N": 6}, record_values=True)
        spmd = execute(
            bandit2_program, {"N": 6}, ranks=ranks, record_values=True
        )
        loop_vars = bandit2_program.spec.loop_vars
        for key in base.values:
            point = dict(zip(loop_vars, key))
            assert spmd.value_at(point, loop_vars) == base.value_at(
                point, loop_vars
            )

    @pytest.mark.parametrize("fixture,params", [
        ("bandit3_program", {"N": 5}),
        ("lcs3_program", {"L1": 8, "L2": 9, "L3": 10}),
        ("msa3_program", {"L1": 8, "L2": 9, "L3": 10}),
    ])
    def test_other_problems_at_three_ranks(self, request, fixture, params):
        program = request.getfixturevalue(fixture)
        base = execute(program, params)
        spmd = execute(program, params, ranks=3)
        assert spmd.objective_value == base.objective_value

    def test_interpreter_mode_matches_too(self, bandit2_program):
        base = execute(bandit2_program, {"N": 7}, mode="interpret")
        spmd = execute(bandit2_program, {"N": 7}, ranks=3, mode="interpret")
        assert spmd.mode == "interpret"
        assert spmd.objective_value == base.objective_value

    def test_arbitrary_assignment_still_identical(self, bandit2_program):
        # A pathological round-robin partition (messages flow in every
        # direction) must still be numerically invisible.
        params = {"N": 7}
        graph = tile_graph(bandit2_program, params)
        T = len(graph.tile_tuples)
        rank_of = [r % 3 for r in range(T)]
        base = execute(bandit2_program, params, record_values=True)
        spmd = run_spmd(
            bandit2_program, params, ranks=3, rank_of=rank_of,
            record_values=True,
        )
        assert spmd.objective_value == base.objective_value
        assert spmd.values == base.values

    def test_tile_order_is_topological(self, bandit2_program):
        params = {"N": 7}
        res = execute(bandit2_program, params, ranks=3)
        tile_graph(bandit2_program, params).validate_schedule(res.tile_order)

    def test_tiles_per_rank_totals(self, bandit2_program):
        res = execute(bandit2_program, {"N": 7}, ranks=3)
        assert sum(res.tiles_per_rank) == res.tiles_executed
        assert res.ranks == 3


class TestDeterminism:
    """Two runs at the same rank count: byte-identical event traces."""

    @pytest.mark.parametrize("ranks", [1, 2, 3])
    def test_execute_trace_reproducible(self, bandit2_program, ranks):
        runs = [
            execute(
                bandit2_program, {"N": 7}, ranks=ranks, record_events=True
            )
            for _ in range(2)
        ]
        a, b = (encode_events(r.events) for r in runs)
        assert a == b
        assert runs[0].tile_order == runs[1].tile_order

    def test_trace_differs_across_rank_counts(self, bandit2_program):
        # Sanity: the trace is rank-aware, not a constant.
        one = execute(bandit2_program, {"N": 7}, ranks=1, record_events=True)
        two = execute(bandit2_program, {"N": 7}, ranks=2, record_events=True)
        assert encode_events(one.events) != encode_events(two.events)


class TestPerRankMemory:
    def test_single_rank_per_rank_equals_aggregate(self, bandit2_program):
        res = execute(bandit2_program, {"N": 7})
        assert res.memory_per_rank == [res.memory]
        assert res.peak_edge_cells_per_rank == [res.memory["peak_cells"]]

    @pytest.mark.parametrize("ranks", [2, 3, 4])
    def test_rank_peaks_sum_bound_single_rank_peak(
        self, bandit2_program, ranks
    ):
        single = execute(bandit2_program, {"N": 8}, mode="vector")
        spmd = execute(bandit2_program, {"N": 8}, ranks=ranks, mode="vector")
        assert sum(spmd.peak_edge_cells_per_rank) >= single.memory[
            "peak_cells"
        ]
        # And within the SPMD run, rank peaks sum-bound its own aggregate
        # peak (each rank's live cells are bounded by its own peak at the
        # aggregate's peak instant).
        assert sum(spmd.peak_edge_cells_per_rank) >= spmd.memory["peak_cells"]

    def test_aggregate_conserved_across_ranks(self, bandit2_program):
        # Per-tile engine: every edge is packed; wavefront mode would
        # pack only cross-rank edges and the totals would differ.
        single = execute(bandit2_program, {"N": 8}, mode="vector")
        spmd = execute(bandit2_program, {"N": 8}, ranks=3, mode="vector")
        # Every edge is packed exactly once whatever the partition.
        assert (
            spmd.memory["total_packed_cells"]
            == single.memory["total_packed_cells"]
        )
        assert spmd.memory["total_edges"] == single.memory["total_edges"]
        assert spmd.memory["live_cells"] == 0
        assert sum(m["total_edges"] for m in spmd.memory_per_rank) == (
            spmd.memory["total_edges"]
        )


class TestSimulatorParity:
    """The simulator drives the same core; protocols must agree."""

    @pytest.mark.parametrize("nodes", [2, 4])
    def test_cross_rank_messages_match_simulator(
        self, bandit2_w4_program, nodes
    ):
        params = {"N": 15}
        spmd = execute(bandit2_w4_program, params, ranks=nodes)
        sim = simulate_program(
            bandit2_w4_program,
            params,
            MachineModel(nodes=nodes, cores_per_node=4),
        )
        assert sim.messages == spmd.cross_rank_messages
        assert sim.bytes_sent == (
            spmd.cross_rank_cells * sim.machine.bytes_per_cell
        )

    def test_simulator_reports_per_node_memory(self, bandit2_w4_program):
        params = {"N": 15}
        machine = MachineModel(nodes=2, cores_per_node=4)
        sim = simulate_program(bandit2_w4_program, params, machine)
        assert len(sim.memory_per_node) == 2
        assert sim.peak_edge_bytes_per_node == [
            m["peak_cells"] * machine.bytes_per_cell
            for m in sim.memory_per_node
        ]
        # All edges consumed by the end of the run.
        assert all(m["live_cells"] == 0 for m in sim.memory_per_node)

    def test_simulator_row_assignment_equals_mapping(self, bandit2_w4_program):
        params = {"N": 15}
        graph = tile_graph(bandit2_w4_program, params)
        machine = MachineModel(nodes=2, cores_per_node=4)
        rows = spmd_rank_assignment(bandit2_w4_program, params, graph, 2)
        mapping = {
            t: int(n) for t, n in zip(graph.tile_tuples, rows.tolist())
        }
        by_rows = simulate(graph, machine, assignment=rows)
        by_map = simulate(graph, machine, assignment=mapping)
        assert by_rows.makespan_s == by_map.makespan_s
        assert by_rows.messages == by_map.messages


class TestPublicCheckAPI:
    def test_validity_checks_exposed(self, bandit2_program):
        ce = compiled_executor(bandit2_program)
        check_fns, per_template = ce.validity_checks
        assert set(per_template) == set(
            bandit2_program.spec.templates.names()
        )
        env = dict({"N": 5})
        env.update(
            {v: 0 for v in bandit2_program.spec.loop_vars}
        )
        for name, ids in per_template.items():
            for idx in ids:
                assert check_fns[idx](env) in (True, False)

    def test_recovery_uses_no_private_executor_api(self):
        import repro.runtime.recover as recover

        source = inspect.getsource(recover)
        assert "_compile_checks" not in source
        assert "compile_scanner" not in source


def _drive(sched, ranks, skip_consume=None):
    """Round-robin the ranks through the full state machine."""
    progressed = True
    while progressed:
        progressed = False
        for rank in range(ranks):
            while sched.has_ready(rank):
                row = sched.start_tile(rank)
                if row != skip_consume:
                    list(sched.consume_edges(row))
                for consumer, _d, cells, _r in sched.outgoing(row):
                    sched.send_edge(row, consumer, cells=cells)
                    sched.deliver_edge(consumer)
                sched.finish_tile(row)
                progressed = True


class TestVerifyRankDrained:
    @pytest.fixture()
    def rank_of(self, bandit2_program, graph):
        return spmd_rank_assignment(bandit2_program, {"N": 7}, graph, 2)

    def test_drained_run_passes(self, graph, rank_of):
        sched = TileScheduler(graph, ranks=2, rank_of=rank_of)
        sched.seed()
        _drive(sched, 2)
        sched.verify_drained()
        sched.verify_rank_drained(0)
        sched.verify_rank_drained(1)

    def test_unrun_rank_is_local_deadlock(self, graph, rank_of):
        sched = TileScheduler(graph, ranks=2, rank_of=rank_of)
        sched.seed()
        with pytest.raises(
            RuntimeExecutionError, match="rank-local schedule deadlocked"
        ):
            sched.verify_rank_drained(0)

    def test_unconsumed_edges_named_per_rank(self, graph, rank_of):
        # Finish every tile but skip one consumer's unpack: only the
        # rank holding the leaked buffers fails its local check.
        skip = int(graph.cons_rows[0])
        sched = TileScheduler(graph, ranks=2, rank_of=rank_of)
        sched.seed()
        _drive(sched, 2, skip_consume=skip)
        leaky = int(rank_of[skip])
        with pytest.raises(RuntimeExecutionError, match="still live"):
            sched.verify_rank_drained(leaky)
        sched.verify_rank_drained(1 - leaky)
        with pytest.raises(
            RuntimeExecutionError, match="packed but never consumed"
        ):
            sched.verify_drained()


class TestTraceCodec:
    def test_schema_version_is_pinned(self):
        assert TRACE_SCHEMA_VERSION == 1

    def test_roundtrip_is_byte_identical(self, bandit2_program):
        res = execute(
            bandit2_program, {"N": 6}, record_events=True, mode="interpret"
        )
        blob = encode_events(res.events)
        assert decode_events(blob) == list(res.events)
        assert encode_events(decode_events(blob)) == blob

    def test_empty_trace_roundtrips(self):
        assert decode_events(encode_events([])) == []

    def test_malformed_line_is_named(self):
        blob = b"0 tile_ready (0, 0) r0\nnot a trace line"
        with pytest.raises(RuntimeExecutionError, match="line 2"):
            decode_events(blob)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="line 1"):
            decode_events(b"0 tile_burned (0, 0) r0")

    def test_dest_tail_only_on_sends(self):
        line = b"0 tile_ready (0, 0) r0 -> (0, 1) r1 cells=3"
        with pytest.raises(RuntimeExecutionError, match="edge_sent"):
            decode_events(line)
