"""Fourier–Motzkin elimination: correctness against brute projection.

The defining property: over a bounded box, an integer point of the
projected system must be the shadow of some *rational* point — and for
every integer point of the original system, its projection satisfies the
eliminated system exactly.  We check the second (soundness) property
exhaustively and by hypothesis, and exactness on totally-unimodular-ish
systems where integer shadows coincide.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolyhedronError
from repro.polyhedra import (
    Constraint,
    ConstraintSystem,
    LinExpr,
    eliminate,
    project,
    remove_redundant_lp,
)


def points_in_box(system, names, lo=-8, hi=8):
    for combo in itertools.product(range(lo, hi + 1), repeat=len(names)):
        env = dict(zip(names, combo))
        if system.satisfied(env):
            yield env


class TestBasicElimination:
    def test_transitivity_example(self):
        # x1 <= x2, x2 <= x3  --eliminate x2-->  x1 <= x3 (paper's example)
        s = ConstraintSystem.parse(["x1 <= x2", "x2 <= x3"])
        out = eliminate(s, "x2")
        assert out.satisfied({"x1": 1, "x3": 2})
        assert not out.satisfied({"x1": 3, "x3": 2})

    def test_eliminate_missing_variable_is_noop(self):
        s = ConstraintSystem.parse(["x >= 0"])
        assert eliminate(s, "zz") == s

    def test_simplex_projection(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= 5"])
        out = eliminate(s, "y")
        # Projection of the triangle onto x is [0, 5].
        assert out.satisfied({"x": 0})
        assert out.satisfied({"x": 5})
        assert not out.satisfied({"x": 6})
        assert not out.satisfied({"x": -1})

    def test_contradiction_detected(self):
        s = ConstraintSystem.parse(["x >= 3", "x <= 1"])
        out = eliminate(s, "x")
        assert out.is_trivially_empty()

    def test_equality_substitution(self):
        s = ConstraintSystem.parse(["x = y + 2", "x <= 5", "y >= 0"])
        out = eliminate(s, "x")
        assert out.satisfied({"y": 3})
        assert not out.satisfied({"y": 4})

    def test_equality_with_nonunit_coefficient(self):
        # 2x == y, 0 <= y <= 6 -> y even in [0,6]; rational projection
        # keeps 0 <= y <= 6 at least.
        s = ConstraintSystem.parse(["2*x = y", "y >= 0", "y <= 6", "x >= 0"])
        out = eliminate(s, "x")
        for y in range(0, 7):
            assert out.satisfied({"y": y})

    def test_unknown_prune_level(self):
        with pytest.raises(PolyhedronError):
            eliminate(ConstraintSystem(), "x", prune="bogus")

    def test_multi_eliminate_order_independent_result_set(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "z >= 0", "x + 2*y + z <= 7"]
        )
        a = eliminate(s, ["y", "z"])
        b = eliminate(s, ["z", "y"])
        for x in range(-2, 10):
            assert a.satisfied({"x": x}) == b.satisfied({"x": x})


class TestSoundness:
    """Every point of the original maps onto the projection."""

    @pytest.mark.parametrize(
        "lines, names, drop",
        [
            (["x >= 0", "y >= 0", "x + y <= 6"], ["x", "y"], "y"),
            (["x >= 0", "y >= 1", "2*x + 3*y <= 12"], ["x", "y"], "x"),
            (
                ["x >= 0", "y >= 0", "z >= 0", "x + y + z <= 5", "z <= x"],
                ["x", "y", "z"],
                "z",
            ),
        ],
    )
    def test_shadow_contains_all_projections(self, lines, names, drop):
        s = ConstraintSystem.parse(lines)
        out = eliminate(s, drop)
        kept = [n for n in names if n != drop]
        for env in points_in_box(s, names):
            proj = {k: env[k] for k in kept}
            assert out.satisfied(proj)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.fixed_dictionaries(
                    {"x": st.integers(-3, 3), "y": st.integers(-3, 3)}
                ),
                st.integers(-8, 8),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_random_systems_sound(self, raw):
        constraints = [
            Constraint(LinExpr({k: v for k, v in d.items() if v}, c))
            for d, c in raw
        ]
        s = ConstraintSystem(constraints)
        out = eliminate(s, "y")
        for env in points_in_box(s, ["x", "y"], -6, 6):
            assert out.satisfied({"x": env["x"]})


class TestExactnessOnUnitSystems:
    """With +-1 coefficients the integer shadow equals the projection."""

    def test_triangle_exact(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= 6"])
        out = eliminate(s, "y")
        shadow = {env["x"] for env in points_in_box(s, ["x", "y"])}
        for x in range(-8, 9):
            assert out.satisfied({"x": x}) == (x in shadow)


class TestRedundancyRemoval:
    def test_dominated_constant_pruned(self):
        s = ConstraintSystem.parse(["x >= 0", "x >= -5"])
        out = eliminate(s, [], prune="syntactic")
        # eliminate with no vars still prunes nothing; call project instead
        from repro.polyhedra.fourier_motzkin import _prune_dominated

        pruned = _prune_dominated(s)
        assert len(pruned) == 1
        # keeps the tighter bound x >= 0
        assert not pruned.satisfied({"x": -1})

    def test_lp_removes_implied(self):
        # x <= 10 is implied by x <= 4.
        s = ConstraintSystem.parse(["x >= 0", "x <= 4", "x <= 10"])
        out = remove_redundant_lp(s)
        assert len(out) == 2
        for x in range(-2, 12):
            assert out.satisfied({"x": x}) == s.satisfied({"x": x})

    def test_lp_removes_diagonal_dominated(self):
        # x + y <= 10 implied by x + y <= 5.
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "x + y <= 5", "x + y <= 10"]
        )
        out = remove_redundant_lp(s)
        assert len(out) == 3

    def test_lp_keeps_binding_constraints(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= 5"])
        out = remove_redundant_lp(s)
        assert set(out.constraints) == set(s.constraints)

    def test_prune_levels_agree_semantically(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "z >= 0", "x + y + z <= 7", "x + y <= 9"]
        )
        for prune in ("none", "syntactic", "lp"):
            out = eliminate(s, "z", prune=prune)
            for x in range(-1, 10):
                for y in range(-1, 10):
                    expected = x >= 0 and y >= 0 and x + y <= 7
                    assert out.satisfied({"x": x, "y": y}) == expected

    def test_lp_blowup_control(self):
        # Redundancy pruning keeps the constraint count from squaring.
        lines = ["x >= 0", "y >= 0", "z >= 0", "w >= 0", "x + y + z + w <= 9"]
        s = ConstraintSystem.parse(lines)
        out_none = eliminate(s, ["z", "w"], prune="none")
        out_lp = eliminate(s, ["z", "w"], prune="lp")
        assert len(out_lp) <= len(out_none)
        assert len(out_lp) <= 4


class TestProject:
    def test_project_keeps_named(self):
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "z >= 0", "x + y + z <= 5"]
        )
        out = project(s, ["x"])
        assert out.satisfied({"x": 0})
        assert out.satisfied({"x": 5})
        assert not out.satisfied({"x": 6})

    def test_project_with_parameter(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "x + y <= N"])
        out = project(s, ["x", "N"])
        assert out.satisfied({"x": 3, "N": 3})
        assert not out.satisfied({"x": 4, "N": 3})
