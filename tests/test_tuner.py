"""Simulator-driven schedule/width tuning (`runtime/tuner.py`).

The tuner's contract: the untuned default (current widths, dynamic
policy) is always in the sweep and wins ties, so the predicted
makespan never regresses; decisions round-trip through the on-disk
registry keyed by structural signature + params + machine; infeasible
width candidates (cyclic tile graphs) are skipped, not fatal; and
`execute(schedule="auto", tile_widths=...)` applies the decision
without changing the numerics.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import RuntimeExecutionError
from repro.generator import generate
from repro.problems import random_hmm, viterbi_spec
from repro.runtime import execute
from repro.runtime.tuner import (
    TuningDecision,
    candidate_tile_widths,
    default_tuning_machine,
    heuristic_tile_widths,
    normalize_tile_widths,
    retile_program,
    structural_signature,
    tune,
    tuning_cache_key,
)


@pytest.fixture(scope="module")
def viterbi_program():
    prior, trans, emit, obs = random_hmm(4, 6, 40, seed=9)
    return generate(viterbi_spec(prior, trans, emit, obs, tile_width_t=4))


class TestWidthHeuristics:
    def test_normalize_int_and_partial(self, bandit2_program):
        spec = bandit2_program.spec
        full = normalize_tile_widths(spec, 8)
        assert full == {v: 8 for v in spec.loop_vars}
        first = spec.loop_vars[0]
        partial = normalize_tile_widths(spec, {first: 9})
        assert partial[first] == 9
        for v in spec.loop_vars[1:]:
            assert partial[v] == spec.tile_widths[v]
        with pytest.raises(RuntimeExecutionError, match="unknown loop var"):
            normalize_tile_widths(spec, {"nope": 4})

    def test_heuristic_respects_reach_and_extent(self, bandit2_program):
        spec = bandit2_program.spec
        widths = heuristic_tile_widths(spec, {"N": 30})
        reach = spec.templates.max_reach()
        for v, w in widths.items():
            assert w >= max(1, reach.get(v, 1))
            assert w >= 1
        assert sorted(widths) == sorted(spec.loop_vars)

    def test_candidates_lead_with_current(self, bandit2_program):
        spec = bandit2_program.spec
        current = {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
        cands = candidate_tile_widths(spec, {"N": 30})
        assert cands[0] == current
        keys = [tuple(sorted(c.items())) for c in cands]
        assert len(keys) == len(set(keys))  # deduped
        quick = candidate_tile_widths(spec, {"N": 30}, quick=True)
        assert len(quick) <= 2

    def test_retile_is_memoized_and_identity(self, bandit2_program):
        spec = bandit2_program.spec
        current = {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
        assert retile_program(bandit2_program, current) is bandit2_program
        a = retile_program(bandit2_program, 5)
        b = retile_program(bandit2_program, 5)
        assert a is b
        assert all(w == 5 for w in a.spec.tile_widths.values())


class TestCacheKey:
    def test_signature_excludes_tile_widths(self, bandit2_program):
        retiled = retile_program(bandit2_program, 5)
        assert structural_signature(bandit2_program.spec) == (
            structural_signature(retiled.spec)
        )

    def test_key_varies_with_params_and_machine(self, bandit2_program):
        spec = bandit2_program.spec
        m = default_tuning_machine()
        k1 = tuning_cache_key(spec, {"N": 10}, m)
        k2 = tuning_cache_key(spec, {"N": 11}, m)
        assert k1 != k2
        from repro.simulate import MachineModel

        k3 = tuning_cache_key(
            spec, {"N": 10}, MachineModel(nodes=2, cores_per_node=4)
        )
        assert k3 != k1


class TestTune:
    def test_never_regresses_and_caches(self, bandit2_program, tmp_path):
        cache = tmp_path / "tuning.json"
        decision = tune(
            bandit2_program, {"N": 12}, quick=True, cache_path=cache
        )
        assert isinstance(decision, TuningDecision)
        assert decision.schedule in ("dynamic", "static")
        assert decision.predicted_makespan_s <= decision.default_makespan_s
        assert decision.candidates >= 2
        assert not decision.cache_hit
        # Round-trip: the second call is a pure registry read.
        again = tune(
            bandit2_program, {"N": 12}, quick=True, cache_path=cache
        )
        assert again.cache_hit
        assert again.schedule == decision.schedule
        assert again.tile_widths == decision.tile_widths
        assert again.predicted_makespan_s == decision.predicted_makespan_s
        # And the file is the documented envelope.
        doc = json.loads(cache.read_text())
        assert doc["schema_version"] == 1
        assert decision.cache_key in doc["decisions"]

    def test_no_cache_mode_never_writes(self, bandit2_program, tmp_path):
        cache = tmp_path / "tuning.json"
        tune(
            bandit2_program, {"N": 10}, quick=True,
            use_cache=False, cache_path=cache,
        )
        assert not cache.exists()

    def test_infeasible_candidates_skipped(self, viterbi_program, tmp_path):
        # The heuristic wants to split viterbi's s_state dimension; the
        # bidirectional +-3 templates make every such tiling cyclic.
        # The sweep must skip those candidates and still decide.
        decision = tune(
            viterbi_program,
            {"T": 40},
            cache_path=tmp_path / "t.json",
        )
        assert decision.predicted_makespan_s <= decision.default_makespan_s
        # The chosen tiling actually executes.
        prog = retile_program(viterbi_program, decision.tile_widths)
        res = execute(prog, {"T": 40}, schedule=decision.schedule)
        assert res.objective_value is not None

    def test_pinned_candidates(self, bandit2_program, tmp_path):
        spec = bandit2_program.spec
        current = {v: int(spec.tile_widths[v]) for v in spec.loop_vars}
        decision = tune(
            bandit2_program,
            {"N": 10},
            cache_path=tmp_path / "t.json",
            tile_width_candidates=[current],
        )
        assert decision.tile_widths == current


class TestExecuteIntegration:
    def test_auto_matches_dynamic(
        self, bandit2_program, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        base = execute(bandit2_program, {"N": 10}, record_values=True)
        auto = execute(
            bandit2_program, {"N": 10}, record_values=True, schedule="auto"
        )
        assert auto.objective_value == base.objective_value
        assert auto.values == base.values
        assert auto.schedule in ("dynamic", "static")

    def test_tile_widths_override_retiles(self, bandit2_program):
        res = execute(bandit2_program, {"N": 10}, tile_widths=5)
        assert res.tile_widths == {
            v: 5 for v in bandit2_program.spec.loop_vars
        }
        base = execute(bandit2_program, {"N": 10})
        assert res.objective_value == base.objective_value

    def test_graph_and_widths_conflict(self, bandit2_program):
        from repro.runtime import tile_graph

        graph = tile_graph(bandit2_program, {"N": 10})
        with pytest.raises(RuntimeExecutionError, match="prebuilt graph"):
            execute(
                bandit2_program, {"N": 10}, graph=graph, tile_widths=5
            )

    def test_auto_pins_widths_with_prebuilt_graph(
        self, bandit2_program, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        from repro.runtime import tile_graph

        graph = tile_graph(bandit2_program, {"N": 10})
        res = execute(
            bandit2_program, {"N": 10}, graph=graph, schedule="auto"
        )
        assert res.tile_widths == dict(bandit2_program.spec.tile_widths)
