"""The static concurrency-protocol audit (RPR05x) catches seeded defects.

Each test injects one concrete protocol bug — overlapping slab slots, a
dropped descriptor, an undersized ghost arena, a cyclic channel wait, a
corrupted pending counter — and asserts the expected stable code shows
up in both the text and JSON renderings, while the unmutated layouts of
every bundled problem stay clean across rank counts.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    audit_pending_counters,
    audit_protocol,
    check_concurrency,
    render_json,
    render_text,
)
from repro.runtime import (
    TileGraph,
    arena_capacities,
    cross_edge_slots,
    spmd_rank_assignment,
    tile_graph,
)


def codes(diags):
    return {d.code for d in diags}


def assert_code_in_renderings(diags, code):
    assert code in codes(diags)
    text = render_text(diags)
    assert code in text
    doc = json.loads(render_json(diags))
    assert any(d["code"] == code for d in doc["diagnostics"])
    assert doc["clean"] is False


@pytest.fixture(scope="module")
def graph(bandit2_program):
    return tile_graph(bandit2_program, {"N": 9})


@pytest.fixture(scope="module")
def rank_of(bandit2_program, graph):
    return spmd_rank_assignment(bandit2_program, {"N": 9}, graph, 2)


class TestCleanLayouts:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_bundled_assignments_are_clean(
        self, bandit2_program, graph, ranks
    ):
        assignment = spmd_rank_assignment(
            bandit2_program, {"N": 9}, graph, ranks
        )
        assert audit_protocol(graph, assignment, ranks) == []

    def test_pending_counters_clean(self, graph):
        assert audit_pending_counters(graph) == []

    @pytest.mark.parametrize(
        "fixture",
        ["bandit2_program", "edit_program", "lcs3_program", "delayed_program"],
    )
    def test_check_concurrency_clean(self, request, fixture):
        program = request.getfixturevalue(fixture)
        diags = check_concurrency(program)
        assert not diags, render_text(diags)


class TestSeededDefects:
    def test_overlapping_slots_are_rpr051(self, graph, rank_of):
        # Shift a slot back onto its channel neighbour: two producers
        # now pack into intersecting cell ranges of one slab.
        channel_cells, slots = cross_edge_slots(graph, rank_of)
        by_channel = {}
        for edge, (s, d, off, cap) in sorted(slots.items()):
            by_channel.setdefault((s, d), []).append((off, cap, edge))
        entries = next(
            v for v in by_channel.values() if len(v) >= 2
        )
        entries.sort()
        (o1, c1, e1), (_, c2, e2) = entries[0], entries[1]
        slots = dict(slots)
        slots[e2] = (slots[e2][0], slots[e2][1], o1 + c1 - 1, c2)
        diags = audit_protocol(
            graph, rank_of, 2, channel_cells=channel_cells, slots=slots
        )
        assert_code_in_renderings(diags, "RPR051")

    def test_undersized_slot_is_rpr051(self, graph, rank_of):
        channel_cells, slots = cross_edge_slots(graph, rank_of)
        edge = sorted(slots)[0]
        s, d, off, cap = slots[edge]
        slots = dict(slots)
        slots[edge] = (s, d, off, cap - 1)
        diags = audit_protocol(
            graph, rank_of, 2, channel_cells=channel_cells, slots=slots
        )
        assert_code_in_renderings(diags, "RPR051")

    def test_dropped_descriptor_is_rpr053(self, graph, rank_of):
        # Remove one cross-rank edge's slot: its descriptor would be
        # dropped and the consumer starves waiting for the message.
        channel_cells, slots = cross_edge_slots(graph, rank_of)
        slots = dict(slots)
        del slots[sorted(slots)[0]]
        diags = audit_protocol(
            graph, rank_of, 2, channel_cells=channel_cells, slots=slots
        )
        assert_code_in_renderings(diags, "RPR053")

    def test_spurious_slot_is_rpr053(self, graph, rank_of):
        # Invent a slot for a same-rank (non-cross) edge: its descriptor
        # would underflow the consumer's pending counter.
        channel_cells, slots = cross_edge_slots(graph, rank_of)
        rank_list = [int(r) for r in rank_of]
        T = len(graph.tile_tuples)
        same = next(
            (p, c)
            for c in range(T)
            for p, _ in (graph.producer_edges(c))
            if rank_list[p] == rank_list[c]
        )
        slots = dict(slots)
        slots[same] = (0, 1, 0, 1)
        diags = audit_protocol(
            graph, rank_of, 2, channel_cells=channel_cells, slots=slots
        )
        assert_code_in_renderings(diags, "RPR053")

    def test_misrouted_slot_is_rpr053(self, graph, rank_of):
        channel_cells, slots = cross_edge_slots(graph, rank_of)
        edge = sorted(slots)[0]
        s, d, off, cap = slots[edge]
        slots = dict(slots)
        slots[edge] = (d, s, off, cap)  # swapped channel direction
        diags = audit_protocol(
            graph, rank_of, 2, channel_cells=channel_cells, slots=slots
        )
        assert_code_in_renderings(diags, "RPR053")

    def test_undersized_arena_is_rpr052(self, graph, rank_of):
        caps = arena_capacities(graph, np.asarray(rank_of), 2, "wavefront")
        caps[0] -= 1
        diags = audit_protocol(graph, rank_of, 2, arena_caps=caps)
        assert_code_in_renderings(diags, "RPR052")

    def test_channel_cycle_is_rpr050(self, graph):
        # Row-parity stripes interleave ranks along each wavefront
        # level, so one level carries cross-rank sends in both
        # directions: a rendezvous send on either channel deadlocks it.
        parity = np.asarray(
            [t[0] % 2 for t in graph.tile_tuples], dtype=np.int64
        )
        diags = audit_protocol(graph, parity, 2)
        assert_code_in_renderings(diags, "RPR050")
        assert any("channel-wait cycle" in d.message for d in diags)

    def test_monotone_cut_has_no_cycle(self, graph, rank_of):
        diags = audit_protocol(graph, rank_of, 2)
        assert "RPR050" not in codes(diags)

    def test_duplicated_delivery_is_rpr054(self, graph):
        # Duplicate one edge in the consumer view only: the pending
        # counter (producer view) counts it once but it delivers twice.
        e = 0
        corrupted = TileGraph(
            program=graph.program,
            params=graph.params,
            tile_array=graph.tile_array,
            work_array=graph.work_array,
            prod_ptr=graph.prod_ptr,
            prod_rows=graph.prod_rows,
            prod_delta=graph.prod_delta,
            cons_ptr=np.concatenate(
                [graph.cons_ptr[:1], graph.cons_ptr[1:] + 1]
            ),
            cons_rows=np.insert(graph.cons_rows, e, graph.cons_rows[e]),
            cons_delta=np.insert(graph.cons_delta, e, graph.cons_delta[e]),
            cons_cells=np.insert(graph.cons_cells, e, graph.cons_cells[e]),
        )
        diags = audit_pending_counters(corrupted)
        assert_code_in_renderings(diags, "RPR054")
        assert any("underflow" in d.message for d in diags)

    def test_unsent_pending_edge_is_rpr054(self, graph):
        # Drop one edge from the consumer view only: the counter waits
        # for a delivery that never happens.
        corrupted = TileGraph(
            program=graph.program,
            params=graph.params,
            tile_array=graph.tile_array,
            work_array=graph.work_array,
            prod_ptr=graph.prod_ptr,
            prod_rows=graph.prod_rows,
            prod_delta=graph.prod_delta,
            cons_ptr=np.concatenate(
                [graph.cons_ptr[:1], graph.cons_ptr[1:] - 1]
            ),
            cons_rows=graph.cons_rows[1:],
            cons_delta=graph.cons_delta[1:],
            cons_cells=graph.cons_cells[1:],
        )
        diags = audit_pending_counters(corrupted)
        assert_code_in_renderings(diags, "RPR054")
        assert any("never drains" in d.message for d in diags)
