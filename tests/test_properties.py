"""Property-based tests over randomly generated problem specifications.

Hypothesis builds small random template-recurrence problems (random
box/halfspace iteration spaces, random positive templates, random tile
widths), and the core invariants are checked end to end:

* tiles partition the iteration space,
* the tiled executor equals the untiled reference scan cell-for-cell,
* tile-width choice never changes any value,
* graph work equals the exact lattice count.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generator import generate
from repro.runtime import TileGraph, execute, solve_reference
from repro.spec import ProblemSpec

# Random 2-D problems: iteration space {x,y >= 0, a*x + b*y <= N},
# templates drawn from positive unit/diagonal vectors.
template_pool = st.lists(
    st.sampled_from([(1, 0), (0, 1), (1, 1), (2, 0), (0, 2), (2, 1)]),
    min_size=1,
    max_size=4,
    unique=True,
)


def build_spec(templates, widths, coeffs):
    a, b = coeffs
    tset = {f"r{i}": list(v) for i, v in enumerate(templates)}

    def kernel(point, deps, params):
        # A deterministic, order-insensitive recurrence: value depends
        # only on the dependency values and the coordinates.
        total = 1.0 + 0.5 * point["x"] + 0.25 * point["y"]
        for name in sorted(deps):
            v = deps[name]
            if v is not None:
                total += 0.125 * v
        return total

    return ProblemSpec.create(
        name="random2d",
        loop_vars=["x", "y"],
        params=["N"],
        constraints=["x >= 0", "y >= 0", f"{a}*x + {b}*y <= N"],
        templates=tset,
        tile_widths={"x": widths[0], "y": widths[1]},
        lb_dims=("x",),
        kernel=kernel,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    templates=template_pool,
    widths=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    coeffs=st.tuples(st.integers(1, 3), st.integers(1, 3)),
    n=st.integers(0, 14),
)
def test_tiled_equals_untiled_on_random_problems(templates, widths, coeffs, n):
    spec = build_spec(templates, widths, coeffs)
    program = generate(spec)
    tiled = execute(program, {"N": n}, record_values=True)
    untiled = solve_reference(program, {"N": n}, record_values=True)
    assert tiled.values == untiled.values


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    templates=template_pool,
    coeffs=st.tuples(st.integers(1, 2), st.integers(1, 2)),
    n=st.integers(0, 12),
    w1=st.integers(2, 6),
    w2=st.integers(2, 6),
)
def test_tile_width_never_changes_values(templates, coeffs, n, w1, w2):
    spec_a = build_spec(templates, (w1, w1), coeffs)
    spec_b = build_spec(templates, (w2, w2), coeffs)
    a = execute(generate(spec_a), {"N": n}, record_values=True)
    b = execute(generate(spec_b), {"N": n}, record_values=True)
    assert a.values == b.values


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    templates=template_pool,
    widths=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    coeffs=st.tuples(st.integers(1, 3), st.integers(1, 3)),
    n=st.integers(0, 16),
)
def test_tiles_partition_points(templates, widths, coeffs, n):
    spec = build_spec(templates, widths, coeffs)
    program = generate(spec)
    spaces = program.spaces
    params = {"N": n}
    valid = set(spaces.tiles(params))
    a, b = coeffs
    points = [
        (x, y)
        for x in range(n + 1)
        for y in range(n + 1)
        if a * x + b * y <= n
    ]
    per_tile = {}
    for x, y in points:
        tile = spaces.point_to_tile({"x": x, "y": y})
        assert tile in valid
        per_tile[tile] = per_tile.get(tile, 0) + 1
    assert set(per_tile) == valid
    for tile, count in per_tile.items():
        assert spaces.tile_point_count(tile, params) == count


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    templates=template_pool,
    widths=st.tuples(st.integers(2, 4), st.integers(2, 4)),
    n=st.integers(0, 12),
)
def test_graph_work_equals_lattice_count(templates, widths, n):
    spec = build_spec(templates, widths, (1, 1))
    program = generate(spec)
    graph = TileGraph.build(program, {"N": n})
    assert graph.total_work() == (n + 1) * (n + 2) // 2
    graph.validate_acyclic()
