"""Ehrhart quasi-polynomial reconstruction (the Barvinok substitute)."""

import pytest

from repro.errors import PolyhedronError
from repro.polyhedra import (
    ConstraintSystem,
    count_points,
    ehrhart_univariate,
    simplex_count,
)


class TestSimplexPolynomials:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_matches_binomial(self, dim):
        names = [f"x{i}" for i in range(dim)]
        lines = [f"{n} >= 0" for n in names] + [" + ".join(names) + " <= N"]
        s = ConstraintSystem.parse(lines)
        qp = ehrhart_univariate(s, names, "N")
        assert qp.degree == dim
        for n in range(0, 15):
            assert qp(n) == simplex_count(dim, n)

    def test_box_polynomial(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= N", "y >= 0", "y <= N"])
        qp = ehrhart_univariate(s, ["x", "y"], "N")
        for n in range(0, 10):
            assert qp(n) == (n + 1) ** 2


class TestQuasiPolynomials:
    def test_halved_interval_needs_period_2(self):
        # points with 0 <= 2x <= N: count = floor(N/2) + 1, period 2.
        s = ConstraintSystem.parse(["x >= 0", "2*x <= N"])
        with pytest.raises(PolyhedronError):
            ehrhart_univariate(s, ["x"], "N", period=1)
        qp = ehrhart_univariate(s, ["x"], "N", period=2)
        for n in range(0, 20):
            assert qp(n) == n // 2 + 1

    def test_period_3(self):
        s = ConstraintSystem.parse(["x >= 0", "3*x <= N"])
        qp = ehrhart_univariate(s, ["x"], "N", period=3)
        for n in range(0, 21):
            assert qp(n) == n // 3 + 1

    def test_overlarge_period_still_exact(self):
        # A period that is a multiple of the true one must also verify.
        s = ConstraintSystem.parse(["x >= 0", "2*x <= N"])
        qp = ehrhart_univariate(s, ["x"], "N", period=4)
        for n in range(0, 16):
            assert qp(n) == n // 2 + 1


class TestValidation:
    def test_invalid_period(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= N"])
        with pytest.raises(PolyhedronError):
            ehrhart_univariate(s, ["x"], "N", period=0)

    def test_valid_from_enforced(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= N"])
        qp = ehrhart_univariate(s, ["x"], "N", start=3)
        with pytest.raises(PolyhedronError):
            qp(2)
        assert qp(3) == 4

    def test_extra_params_fixed(self):
        s = ConstraintSystem.parse(["x >= 0", "x <= N", "x <= M"])
        qp = ehrhart_univariate(s, ["x"], "N", extra_params={"M": 3}, start=4)
        # For N >= 4 the binding bound is M=3: always 4 points.
        for n in range(4, 10):
            assert qp(n) == 4

    def test_agrees_with_direct_count(self):
        # Vertices fall at thirds and halves -> the true period divides 6.
        s = ConstraintSystem.parse(
            ["x >= 0", "y >= 0", "2*x + y <= N", "y <= x + 2"]
        )
        qp = ehrhart_univariate(s, ["x", "y"], "N", period=6)
        for n in range(0, 20):
            assert qp(n) == count_points(s, ["x", "y"], {"N": n})
