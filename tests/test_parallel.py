"""The process SPMD backend against its oracle, the inline harness.

The inline harness (tests/test_scheduler.py pins it against ``ranks=1``)
is the deterministic reference; here every observable of a
``backend="process"`` run — objective value, full value dict, cross-rank
message and cell counts, per-rank tile counts, retained edges — is
pinned identical to the inline backend across problems, rank counts and
engine modes.  Failure injection checks the other half of the contract:
a worker that dies or raises mid-run must surface as a fast
:class:`RuntimeExecutionError` naming the rank, never a hang, and no
``/dev/shm`` segment may survive any exit path.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeExecutionError
from repro.runtime import execute, run_spmd, run_spmd_process, tile_graph
from repro.simulate import MachineModel, simulate_program

SHM_DIR = "/dev/shm"


def _shm_entries():
    """Names currently present in the shared-memory filesystem."""
    try:
        return set(os.listdir(SHM_DIR))
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm platform
        return set()


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    leaked = _shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _assert_same_run(proc, inline):
    assert proc.backend == "process"
    assert proc.objective_value == inline.objective_value
    assert proc.cells_computed == inline.cells_computed
    assert proc.tiles_executed == inline.tiles_executed
    assert proc.cross_rank_messages == inline.cross_rank_messages
    assert proc.cross_rank_cells == inline.cross_rank_cells
    assert proc.tiles_per_rank == inline.tiles_per_rank
    if inline.values is not None:
        assert proc.values == inline.values


class TestProcessParity:
    """process == inline == ranks=1, cell for cell and message for message."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=1, max_value=9),
        ranks=st.sampled_from([1, 2, 4]),
    )
    def test_bandit2_sweep(self, bandit2_program, n, ranks):
        single = execute(bandit2_program, {"N": n}, record_values=True)
        inline = execute(
            bandit2_program, {"N": n}, ranks=ranks, record_values=True
        )
        proc = execute(
            bandit2_program, {"N": n}, ranks=ranks, record_values=True,
            backend="process",
        )
        _assert_same_run(proc, inline)
        assert proc.objective_value == single.objective_value
        assert proc.values == single.values

    @pytest.mark.parametrize("fixture,params", [
        ("edit_program", {"LA": 14, "LB": 11}),
        ("lcs3_program", {"L1": 8, "L2": 9, "L3": 10}),
        ("msa3_program", {"L1": 8, "L2": 9, "L3": 10}),
        ("bandit3_program", {"N": 5}),
        ("delayed_program", {"N": 6}),
    ])
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_bundled_problems(self, request, fixture, params, ranks):
        program = request.getfixturevalue(fixture)
        single = execute(program, params, record_values=True)
        inline = execute(
            program, params, ranks=ranks, record_values=True
        )
        proc = execute(
            program, params, ranks=ranks, record_values=True,
            backend="process",
        )
        _assert_same_run(proc, inline)
        assert proc.objective_value == single.objective_value
        assert proc.values == single.values

    @pytest.mark.parametrize("mode", ["interpret", "vector", "wavefront"])
    def test_every_engine_mode(self, bandit2_program, mode):
        inline = execute(
            bandit2_program, {"N": 8}, ranks=3, mode=mode,
            record_values=True,
        )
        proc = execute(
            bandit2_program, {"N": 8}, ranks=3, mode=mode,
            record_values=True, backend="process",
        )
        assert proc.mode == mode
        _assert_same_run(proc, inline)

    def test_messages_match_simulator(self, bandit2_w4_program):
        # The same partition drives the simulator, the inline harness
        # and the workers: all three must count the same cut edges.
        params = {"N": 15}
        proc = execute(
            bandit2_w4_program, params, ranks=4, backend="process"
        )
        sim = simulate_program(
            bandit2_w4_program, params,
            MachineModel(nodes=4, cores_per_node=4),
        )
        assert sim.messages == proc.cross_rank_messages
        assert sim.bytes_sent == (
            proc.cross_rank_cells * sim.machine.bytes_per_cell
        )

    def test_pathological_round_robin(self, bandit2_program):
        # Round-robin scatters edges in every direction between ranks;
        # the shared-memory protocol must still deliver each exactly
        # once.
        params = {"N": 7}
        graph = tile_graph(bandit2_program, params)
        rank_of = np.arange(len(graph.tile_tuples), dtype=np.int64) % 3
        inline = run_spmd(
            bandit2_program, params, ranks=3, rank_of=rank_of,
            record_values=True,
        )
        proc = run_spmd(
            bandit2_program, params, ranks=3, rank_of=rank_of,
            record_values=True, backend="process",
        )
        _assert_same_run(proc, inline)

    def test_keep_edges_parity(self, bandit2_program):
        inline = execute(
            bandit2_program, {"N": 7}, ranks=2, mode="vector",
            keep_edges=True,
        )
        proc = execute(
            bandit2_program, {"N": 7}, ranks=2, mode="vector",
            keep_edges=True, backend="process",
        )
        assert set(proc.edges) == set(inline.edges)
        for key, buf in inline.edges.items():
            assert np.array_equal(proc.edges[key], buf)

    def test_event_trace_is_complete(self, bandit2_program):
        # No global interleaving exists across workers, so the trace is
        # compared as a multiset per tile, resequenced 0..n-1.
        inline = execute(
            bandit2_program, {"N": 7}, ranks=2, record_events=True
        )
        proc = execute(
            bandit2_program, {"N": 7}, ranks=2, record_events=True,
            backend="process",
        )
        assert [e.seq for e in proc.events] == list(range(len(proc.events)))
        assert sorted((e.kind, e.tile) for e in proc.events) == sorted(
            (e.kind, e.tile) for e in inline.events
        )

    def test_memory_totals_conserved(self, bandit2_program):
        # Per-tile engine packs every edge exactly once whatever the
        # transport; peaks may differ (cross edges are charged at recv
        # in a worker, at send inline) but totals cannot.
        inline = execute(bandit2_program, {"N": 8}, ranks=3, mode="vector")
        proc = execute(
            bandit2_program, {"N": 8}, ranks=3, mode="vector",
            backend="process",
        )
        assert proc.memory["total_edges"] == inline.memory["total_edges"]
        assert proc.memory["total_packed_cells"] == (
            inline.memory["total_packed_cells"]
        )
        assert proc.memory["live_cells"] == 0
        assert proc.memory["live_edges"] == 0
        assert len(proc.memory_per_rank) == 3

    def test_unknown_backend_rejected(self, bandit2_program):
        with pytest.raises(RuntimeExecutionError, match="unknown SPMD"):
            execute(bandit2_program, {"N": 5}, backend="threads")

    def test_single_rank_process_run(self, bandit2_program):
        # ranks=1 is a degenerate but legal process run: one worker, no
        # channels, everything still crosses the fork boundary.
        base = execute(bandit2_program, {"N": 6}, record_values=True)
        proc = execute(
            bandit2_program, {"N": 6}, ranks=1, backend="process",
            record_values=True,
        )
        assert proc.backend == "process"
        assert proc.objective_value == base.objective_value
        assert proc.values == base.values


def _rank1_killer(point, deps, params):
    """A kernel that SIGKILLs its own process on rank 1."""
    if os.environ.get("REPRO_SPMD_RANK") == "1":
        os.kill(os.getpid(), signal.SIGKILL)
    vals = [v for v in deps.values() if v is not None]
    return max(vals) + 1 if vals else 0.0


def _rank1_raiser(point, deps, params):
    """A kernel that raises on rank 1."""
    if os.environ.get("REPRO_SPMD_RANK") == "1":
        raise ValueError("injected kernel fault")
    vals = [v for v in deps.values() if v is not None]
    return max(vals) + 1 if vals else 0.0


class TestWorkerFailure:
    """Dead or broken workers surface fast, named, and leak-free."""

    def _round_robin(self, program, params, ranks):
        graph = tile_graph(program, params)
        return np.arange(len(graph.tile_tuples), dtype=np.int64) % ranks

    def test_killed_worker_raises_fast(self, bandit2_program):
        # SIGKILL mid-run: the parent must detect the dead rank through
        # its sentinel, not wait on a result that can never arrive.
        params = {"N": 12}
        rank_of = self._round_robin(bandit2_program, params, 2)
        start = time.monotonic()
        with pytest.raises(RuntimeExecutionError, match=r"rank 1 died"):
            run_spmd(
                bandit2_program, params, ranks=2, kernel=_rank1_killer,
                mode="interpret", rank_of=rank_of, backend="process",
            )
        assert time.monotonic() - start < 30.0

    def test_worker_exception_names_rank_and_cause(self, bandit2_program):
        params = {"N": 12}
        rank_of = self._round_robin(bandit2_program, params, 2)
        with pytest.raises(RuntimeExecutionError) as exc_info:
            run_spmd(
                bandit2_program, params, ranks=2, kernel=_rank1_raiser,
                mode="interpret", rank_of=rank_of, backend="process",
            )
        message = str(exc_info.value)
        assert "rank 1" in message
        assert "injected kernel fault" in message

    def test_keyboard_interrupt_cleans_up(self, bandit2_program, monkeypatch):
        # Simulate ^C while the parent waits for results: the finally
        # block must still terminate workers and unlink every segment
        # (the autouse fixture asserts /dev/shm afterwards).
        import repro.runtime.parallel as parallel

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel, "_collect_results", interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_spmd_process(bandit2_program, {"N": 10}, ranks=2)

    def test_starved_worker_times_out(self, bandit2_program):
        # A worker whose inbound edges never arrive must abort itself
        # instead of spinning forever: kill rank 1 and give rank 0 tiles
        # that depend on it.  Rank 0's starvation is masked by the
        # parent seeing rank 1's death first — either way the run fails
        # fast with a named rank.
        params = {"N": 12}
        rank_of = self._round_robin(bandit2_program, params, 2)
        with pytest.raises(RuntimeExecutionError, match="rank 1"):
            run_spmd_process(
                bandit2_program, params, ranks=2, kernel=_rank1_killer,
                mode="interpret", rank_of=rank_of, timeout=20.0,
            )
