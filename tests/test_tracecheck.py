"""The dynamic trace sanitizer (RPR06x) on real and corrupted traces.

Clean executions — every backend, several rank counts — sanitize clean.
Each seeded defect then mutates one recorded clean trace in a concrete
way (drop a send, move it past the producer's release, duplicate it,
invert a channel's ready order, truncate a rank, corrupt the bytes) and
asserts the expected stable code in both the text and JSON renderings.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis import (
    check_trace,
    default_params,
    racecheck_execution,
    render_json,
    render_text,
)
from repro.runtime import (
    decode_events,
    encode_events,
    run_spmd,
    spmd_rank_assignment,
    tile_graph,
)

PARAMS = {"N": 9}


def codes(diags):
    return {d.code for d in diags}


def assert_code_in_renderings(diags, code):
    assert code in codes(diags)
    assert code in render_text(diags)
    doc = json.loads(render_json(diags))
    assert any(d["code"] == code for d in doc["diagnostics"])
    assert doc["clean"] is False


@pytest.fixture(scope="module")
def graph(bandit2_program):
    return tile_graph(bandit2_program, PARAMS)


@pytest.fixture(scope="module")
def rank_of(bandit2_program, graph):
    return spmd_rank_assignment(bandit2_program, PARAMS, graph, 2)


@pytest.fixture(scope="module")
def clean_trace(bandit2_program, graph, rank_of):
    """A clean 2-rank inline run with per-tile (full) packing."""
    result = run_spmd(
        bandit2_program,
        PARAMS,
        ranks=2,
        rank_of=np.asarray(rank_of),
        mode="interpret",
        record_events=True,
        graph=graph,
    )
    return list(result.events)


def mutated(events):
    return [dataclasses.replace(e) for e in events]


def find(events, kind, tile=None):
    for i, e in enumerate(events):
        if e.kind == kind and (tile is None or e.tile == tile):
            return i
    raise AssertionError(f"no {kind} event for {tile}")


class TestCleanRuns:
    def test_clean_trace_sanitizes_clean(self, graph, rank_of, clean_trace):
        assert check_trace(graph, rank_of, clean_trace) == []

    def test_bytes_roundtrip(self, graph, rank_of, clean_trace):
        blob = encode_events(clean_trace)
        assert decode_events(blob) == clean_trace
        assert check_trace(graph, rank_of, blob) == []

    @pytest.mark.parametrize("ranks,backend", [
        (1, "inline"),
        (2, "inline"),
        (4, "inline"),
        (2, "process"),
        (4, "process"),
    ])
    def test_racecheck_execution_clean(self, bandit2_program, ranks, backend):
        diags = racecheck_execution(
            bandit2_program, PARAMS, ranks=ranks, backend=backend
        )
        assert not diags, render_text(diags)

    def test_racecheck_execution_edit_process(self, edit_program):
        diags = racecheck_execution(
            edit_program,
            default_params(edit_program.spec),
            ranks=2,
            backend="process",
        )
        assert not diags, render_text(diags)


class TestSeededRaces:
    def test_dropped_send_is_rpr060(self, graph, rank_of, clean_trace):
        # Lose one cross-rank delivery: its consumer still starts, now
        # reading ghost cells nothing ever wrote.
        events = mutated(clean_trace)
        victim = next(
            i for i, e in enumerate(events)
            if e.kind == "edge_sent" and e.dest_rank != e.rank
        )
        del events[victim]
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR060")
        assert any("never sent" in d.message for d in diags)

    def test_start_before_ready_is_rpr060(self, graph, rank_of, clean_trace):
        events = mutated(clean_trace)
        tile = events[find(events, "tile_start")].tile
        i = find(events, "tile_ready", tile)
        j = find(events, "tile_start", tile)
        events[i], events[j] = events[j], events[i]
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR060")

    def test_early_release_is_rpr061(self, graph, rank_of, clean_trace):
        # Move a producer's tile_done ahead of its sends: the pack now
        # reads a state array that was already released.
        events = mutated(clean_trace)
        send = next(
            i for i, e in enumerate(events) if e.kind == "edge_sent"
        )
        done = find(events, "tile_done", events[send].tile)
        assert done > send
        events.insert(send, events.pop(done))
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR061")
        assert any("use-after-release" in d.message for d in diags)

    def test_duplicate_send_is_rpr061(self, graph, rank_of, clean_trace):
        events = mutated(clean_trace)
        send = next(
            i for i, e in enumerate(events) if e.kind == "edge_sent"
        )
        events.insert(send, events[send])
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR061")

    def test_phantom_edge_is_rpr061(self, graph, rank_of, clean_trace):
        # Pack an edge the tile graph does not contain (self-loop).
        events = mutated(clean_trace)
        send = next(e for e in events if e.kind == "edge_sent")
        events.append(
            dataclasses.replace(
                send, dest=send.tile, dest_rank=send.rank, cells=1
            )
        )
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR061")
        assert any("phantom edge" in d.message for d in diags)


class TestSeededFifoInversion:
    @pytest.fixture(scope="class")
    def checkerboard(self, graph):
        # Every tile's producers sit on the opposite parity, so every
        # consumer qualifies for the per-channel FIFO check.
        return [sum(t) % 2 for t in graph.tile_tuples]

    @pytest.fixture(scope="class")
    def board_trace(self, bandit2_program, graph, checkerboard):
        result = run_spmd(
            bandit2_program,
            PARAMS,
            ranks=2,
            rank_of=np.asarray(checkerboard, dtype=np.int64),
            mode="interpret",
            record_events=True,
            graph=graph,
        )
        return list(result.events)

    def test_checkerboard_run_is_clean(self, graph, checkerboard, board_trace):
        assert check_trace(graph, checkerboard, board_trace) == []

    def test_swapped_ready_order_is_rpr062(
        self, graph, checkerboard, board_trace
    ):
        # Swap the ready transitions of two consumers fed by the same
        # channel: delivery completion order no longer matches.
        events = mutated(board_trace)
        readies = [
            i for i, e in enumerate(events)
            if e.kind == "tile_ready"
            and e.rank == 1
            and graph.producer_edges(graph.row_of(e.tile))
        ]
        assert len(readies) >= 2
        i, j = readies[0], readies[1]
        events[i], events[j] = events[j], events[i]
        diags = check_trace(graph, checkerboard, events)
        assert_code_in_renderings(diags, "RPR062")
        assert any("FIFO inversion" in d.message for d in diags)


class TestTruncatedTraces:
    def test_dead_rank_is_rpr063_warning(self, graph, rank_of, clean_trace):
        # Drop everything rank 1 recorded (a killed worker): the prefix
        # classifies as truncated-but-race-free, not as a race.
        events = [e for e in clean_trace if e.rank != 1]
        diags = check_trace(graph, rank_of, events, dead_ranks=(1,))
        assert codes(diags) == {"RPR063"}
        assert all(d.severity == "warning" for d in diags)
        assert any("r1" in d.message for d in diags)
        assert any("race-free" in d.message for d in diags)

    def test_truncation_with_completion_claim_is_rpr060(
        self, graph, rank_of, clean_trace
    ):
        events = [e for e in clean_trace if e.rank != 1]
        diags = check_trace(
            graph, rank_of, events, dead_ranks=(1,), expect_complete=True
        )
        assert_code_in_renderings(diags, "RPR060")
        assert any("claims completion" in d.message for d in diags)

    def test_truncated_racy_prefix_keeps_errors(
        self, graph, rank_of, clean_trace
    ):
        # A truncated trace whose surviving prefix also has a race gets
        # both the errors and the "violates happens-before" verdict.
        events = [
            dataclasses.replace(e) for e in clean_trace if e.rank != 1
        ]
        victim = next(
            i for i, e in enumerate(events) if e.kind == "edge_sent"
            and e.dest_rank == e.rank
        )
        del events[victim]
        diags = check_trace(graph, rank_of, events, dead_ranks=(1,))
        assert "RPR060" in codes(diags)
        assert any(
            "violates happens-before" in d.message
            for d in diags if d.code == "RPR063"
        )


class TestMalformedTraces:
    def test_garbage_bytes_are_rpr064(self, graph, rank_of):
        diags = check_trace(graph, rank_of, b"0 tile_exploded (0, 0) r0\n")
        assert_code_in_renderings(diags, "RPR064")

    def test_unknown_tile_is_rpr064(self, graph, rank_of, clean_trace):
        events = mutated(clean_trace)
        events[0] = dataclasses.replace(events[0], tile=(99, 99))
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR064")
        # Malformation suppresses the downstream ordering judgements.
        assert codes(diags) == {"RPR064"}

    def test_wrong_rank_claim_is_rpr064(self, graph, rank_of, clean_trace):
        events = mutated(clean_trace)
        events[0] = dataclasses.replace(events[0], rank=events[0].rank ^ 1)
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR064")
        assert any("claims rank" in d.message for d in diags)

    def test_duplicate_lifecycle_is_rpr064(self, graph, rank_of, clean_trace):
        events = mutated(clean_trace)
        i = find(events, "tile_start")
        events.append(events[i])
        diags = check_trace(graph, rank_of, events)
        assert_code_in_renderings(diags, "RPR064")

    def test_short_rank_assignment_is_rpr064(self, graph, clean_trace):
        diags = check_trace(graph, [0, 1], clean_trace)
        assert_code_in_renderings(diags, "RPR064")
