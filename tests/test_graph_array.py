"""The array-native tile graph against the dict-based reference oracle.

The CSR/SoA builder (:meth:`TileGraph.build`) must agree field for field
with the legacy per-tile dict builder
(:func:`repro.runtime.graph.build_tile_graph_dicts`) on every bundled
problem and on randomly-parameterized small instances — and the executor
and simulator must produce bit-identical schedules whichever builder fed
them.  The compile memo and per-program graph cache are covered at the
bottom.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generator import generate
from repro.generator.loadbalance import compute_slab_work
from repro.problems import (
    edit_distance_spec,
    random_sequence,
    two_arm_spec,
)
from repro.runtime import (
    TileGraph,
    build_tile_graph_dicts,
    execute,
    tile_graph,
)
from repro.simulate import MachineModel, simulate, simulate_program

CASES = [
    ("bandit2_program", {"N": 7}),
    ("bandit3_program", {"N": 5}),
    ("delayed_program", {"N": 6}),
    ("edit_program", {"LA": 14, "LB": 11}),
    ("lcs3_program", {"L1": 8, "L2": 9, "L3": 10}),
    ("msa3_program", {"L1": 8, "L2": 9, "L3": 10}),
]


def assert_graph_matches_oracle(program, params):
    graph = TileGraph.build(program, params)
    tiles, producers, consumers, work, edge_cells = build_tile_graph_dicts(
        program, params
    )
    assert graph.tiles == tiles
    assert graph.producers == producers
    assert graph.consumers == consumers
    assert graph.work == work
    assert graph.edge_cells == edge_cells


class TestOracleEquality:
    @pytest.mark.parametrize("fixture,params", CASES)
    def test_bundled_problem(self, request, fixture, params):
        program = request.getfixturevalue(fixture)
        assert_graph_matches_oracle(program, params)

    def test_row_order_is_lexicographic(self, bandit2_program):
        graph = TileGraph.build(bandit2_program, {"N": 7})
        tt = graph.tile_tuples
        assert tt == sorted(tt)

    def test_from_dicts_roundtrip(self, bandit2_program):
        params = {"N": 7}
        built = TileGraph.build(bandit2_program, params)
        tiles, producers, _, work, edge_cells = build_tile_graph_dicts(
            bandit2_program, params
        )
        redone = TileGraph.from_dicts(
            bandit2_program, params, tiles, producers, work, edge_cells
        )
        for name in (
            "tile_array",
            "work_array",
            "prod_ptr",
            "prod_rows",
            "prod_delta",
            "cons_ptr",
            "cons_rows",
            "cons_delta",
            "cons_cells",
        ):
            assert np.array_equal(
                getattr(built, name), getattr(redone, name)
            ), name


@functools.lru_cache(maxsize=None)
def _two_arm(width: int):
    return generate(two_arm_spec(tile_width=width))


@functools.lru_cache(maxsize=None)
def _edit(width: int):
    a = random_sequence(9, seed=5)
    b = random_sequence(7, seed=6)
    return generate(edit_distance_spec(a, b, tile_width=width))


class TestOracleEqualityRandom:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        width=st.integers(min_value=2, max_value=4),
        n=st.integers(min_value=1, max_value=9),
    )
    def test_two_arm_random(self, width, n):
        assert_graph_matches_oracle(_two_arm(width), {"N": n})

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        width=st.integers(min_value=2, max_value=4),
        la=st.integers(min_value=1, max_value=9),
        lb=st.integers(min_value=1, max_value=7),
    )
    def test_edit_distance_random(self, width, la, lb):
        assert_graph_matches_oracle(_edit(width), {"LA": la, "LB": lb})


class TestPinnedSchedules:
    """Array-built and dict-built graphs drive identical executions."""

    @pytest.fixture(scope="class")
    def pair(self, bandit2_program):
        params = {"N": 7}
        built = TileGraph.build(bandit2_program, params)
        tiles, producers, _, work, edge_cells = build_tile_graph_dicts(
            bandit2_program, params
        )
        legacy = TileGraph.from_dicts(
            bandit2_program, params, tiles, producers, work, edge_cells
        )
        return bandit2_program, params, built, legacy

    def test_executor_schedule_identical(self, pair):
        program, params, built, legacy = pair
        res_a = execute(program, params, graph=built)
        res_d = execute(program, params, graph=legacy)
        assert res_a.tile_order == res_d.tile_order
        assert res_a.objective_value == res_d.objective_value

    @pytest.mark.parametrize("scheme", ["column-major", "lb-first"])
    def test_simulator_trace_identical(self, pair, scheme):
        program, params, built, legacy = pair
        machine = MachineModel(nodes=1, cores_per_node=4)
        res_a = simulate(
            built, machine, priority_scheme=scheme, trace=True
        )
        res_d = simulate(
            legacy, machine, priority_scheme=scheme, trace=True
        )
        assert res_a.makespan_s == res_d.makespan_s
        assert [s.tile for s in res_a.spans] == [
            s.tile for s in res_d.spans
        ]

    def test_multinode_simulation_identical(self, pair):
        program, params, built, legacy = pair
        machine = MachineModel(nodes=2, cores_per_node=2)
        res_a = simulate_program(program, params, machine, graph=built)
        res_d = simulate_program(program, params, machine, graph=legacy)
        assert res_a.makespan_s == res_d.makespan_s
        assert res_a.tiles_per_node == res_d.tiles_per_node
        assert res_a.messages == res_d.messages


class TestSlabWork:
    @pytest.mark.parametrize(
        "fixture,params",
        [("bandit2_program", {"N": 7}), ("lcs3_program", {"L1": 8, "L2": 9, "L3": 10})],
    )
    def test_graph_slab_work_matches_compiled_scan(
        self, request, fixture, params
    ):
        program = request.getfixturevalue(fixture)
        graph = TileGraph.build(program, params)
        assert graph.slab_work() == compute_slab_work(
            program.spaces, params
        )

    def test_load_balance_agrees(self, bandit2_program):
        params = {"N": 7}
        graph = TileGraph.build(bandit2_program, params)
        from_graph = bandit2_program.load_balance(
            params, 2, slab_work=graph.slab_work()
        )
        from_scan = bandit2_program.load_balance(params, 2)
        assert from_graph.slab_node == from_scan.slab_node


class TestCompileMemo:
    def test_structurally_equal_nests_compile_once(self):
        from repro.polyhedra.compile import (
            COMPILE_STATS,
            clear_compile_memo,
            compile_counter,
            compile_scanner,
            reset_compile_stats,
        )

        p1 = generate(two_arm_spec(tile_width=5))
        p2 = generate(two_arm_spec(tile_width=5))
        assert p1.spaces.local_nest is not p2.spaces.local_nest
        clear_compile_memo()
        reset_compile_stats()
        c1 = compile_counter(p1.spaces.local_nest)
        c2 = compile_counter(p2.spaces.local_nest)
        assert c1 is c2
        assert COMPILE_STATS["counter_compiles"] == 1
        assert COMPILE_STATS["counter_memo_hits"] == 1
        s1 = compile_scanner(p1.spaces.tile_nest)
        s2 = compile_scanner(p2.spaces.tile_nest)
        assert s1 is s2
        assert COMPILE_STATS["scanner_compiles"] == 1
        assert COMPILE_STATS["scanner_memo_hits"] == 1


class TestGraphCache:
    def test_same_params_same_object(self, bandit2_program):
        g1 = tile_graph(bandit2_program, {"N": 6})
        g2 = tile_graph(bandit2_program, {"N": 6})
        g3 = tile_graph(bandit2_program, {"N": 4})
        assert g1 is g2
        assert g3 is not g1

    def test_execute_and_simulate_share_one_build(
        self, monkeypatch, bandit2_w4_program
    ):
        program = bandit2_w4_program
        if hasattr(program, "_tile_graph_cache"):
            program._tile_graph_cache.clear()
        calls = []
        real_build = TileGraph.build

        def counting_build(prog, params):
            calls.append(dict(params))
            return real_build(prog, params)

        monkeypatch.setattr(TileGraph, "build", staticmethod(counting_build))
        params = {"N": 8}
        execute(program, params)
        execute(program, params)
        simulate_program(
            program, params, MachineModel(nodes=2, cores_per_node=2)
        )
        assert calls == [params]
