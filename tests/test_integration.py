"""Cross-backend integration: spec file -> all four execution paths.

The strongest end-to-end statement in the project: starting from the
textual problem description, the in-process tiled runtime, the untiled
scan, the emitted standalone Python program, and the compiled generated
C program must all report the same objective.
"""

import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import pytest

from repro import execute, generate, parse_spec_file, solve_reference
from repro.generator.cgen import emit_c_program
from repro.generator.pygen import emit_python_program

SPEC_PATH = Path(__file__).resolve().parent.parent / "examples" / "staircase.spec"

M = 19


@lru_cache(maxsize=None)
def brute(x: int, y: int, m: int) -> float:
    c = float((3 * x + 5 * y) % 7)
    options = []
    if x + 1 + y <= m:
        options.append(brute(x + 1, y, m))
    if x + y + 1 <= m:
        options.append(brute(x, y + 1, m))
    return c + (min(options) if options else 0.0)


@pytest.fixture(scope="module")
def program():
    spec = parse_spec_file(SPEC_PATH)
    return generate(spec)


@pytest.fixture(scope="module")
def python_kernel():
    def kernel(point, deps, params):
        c = float((3 * point["x"] + 5 * point["y"]) % 7)
        best = None
        for name in ("right", "up"):
            v = deps[name]
            if v is not None and (best is None or v < best):
                best = v
        return c + (best if best is not None else 0.0)

    return kernel


def test_spec_file_parses(program):
    assert program.spec.name == "staircase"
    assert program.spec.loop_vars == ("x", "y")
    assert program.spec.center_code_c
    assert program.spec.center_code_py


def test_in_process_matches_brute_force(program, python_kernel):
    res = execute(program, {"M": M}, kernel=python_kernel)
    assert res.objective_value == brute(0, 0, M)


def test_untiled_scan_matches(program, python_kernel):
    res = solve_reference(program, {"M": M}, kernel=python_kernel)
    assert res.objective_value == brute(0, 0, M)


def test_emitted_python_program_matches(program, tmp_path):
    path = tmp_path / "staircase.py"
    path.write_text(emit_python_program(program))
    out = subprocess.run(
        [sys.executable, str(path), str(M)],
        capture_output=True,
        text=True,
        check=True,
    )
    objective = float(
        next(
            l for l in out.stdout.splitlines() if l.startswith("objective")
        ).split()[1]
    )
    assert objective == brute(0, 0, M)


@pytest.mark.slow
def test_compiled_c_program_matches(program, tmp_path, gcc_available):
    if not gcc_available:
        pytest.skip("gcc not available")
    cpath = tmp_path / "staircase.c"
    binpath = tmp_path / "staircase"
    cpath.write_text(emit_c_program(program))
    build = subprocess.run(
        ["gcc", "-O2", "-std=c99", "-fopenmp", str(cpath), "-o", str(binpath), "-lm"],
        capture_output=True,
        text=True,
    )
    assert build.returncode == 0, build.stderr
    out = subprocess.run(
        [str(binpath), str(M)],
        capture_output=True,
        text=True,
        env={"OMP_NUM_THREADS": "3"},
    )
    assert out.returncode == 0, out.stderr
    objective = float(
        next(
            l for l in out.stdout.splitlines() if l.startswith("objective")
        ).split()[1]
    )
    assert objective == brute(0, 0, M)


def test_cli_generates_from_the_same_file(tmp_path, capsys):
    from repro.cli import main_generate

    out = tmp_path / "staircase.c"
    rc = main_generate([str(SPEC_PATH), "-o", str(out)])
    assert rc == 0
    assert "staircase" in out.read_text()
