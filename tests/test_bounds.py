"""Loop-bound synthesis: nests must scan exactly the integer points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolyhedronError
from repro.polyhedra import (
    ConstraintSystem,
    count_box_filtered,
    enumerate_box_filtered,
    synthesize_loop_nest,
)
from repro.polyhedra.bounds import bounds_for_variable


SIMPLEX = ConstraintSystem.parse(["x >= 0", "y >= 0", "z >= 0", "x + y + z <= N"])


class TestSynthesis:
    def test_scans_simplex_exactly(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        got = {(p["x"], p["y"], p["z"]) for p in nest.iterate({"N": 4})}
        box = {"x": (-1, 5), "y": (-1, 5), "z": (-1, 5)}
        want = set(
            enumerate_box_filtered(SIMPLEX, ["x", "y", "z"], box, {"N": 4})
        )
        assert got == want

    def test_count_matches_enumeration(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        for n in range(0, 7):
            assert nest.count({"N": n}) == sum(1 for _ in nest.iterate({"N": n}))

    def test_lex_order(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        pts = [(p["x"], p["y"], p["z"]) for p in nest.iterate({"N": 3})]
        assert pts == sorted(pts)

    def test_descending_direction(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        pts = [
            (p["x"], p["y"], p["z"])
            for p in nest.iterate({"N": 3}, directions={"x": -1, "y": -1, "z": -1})
        ]
        assert pts == sorted(pts, reverse=True)
        assert set(pts) == {
            (p["x"], p["y"], p["z"]) for p in nest.iterate({"N": 3})
        }

    def test_mixed_directions_visit_same_set(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        base = {(p["x"], p["y"], p["z"]) for p in nest.iterate({"N": 3})}
        mixed = {
            (p["x"], p["y"], p["z"])
            for p in nest.iterate({"N": 3}, directions={"y": -1})
        }
        assert mixed == base

    def test_empty_for_negative_parameter(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        assert nest.count({"N": -1}) == 0
        assert nest.is_empty({"N": -1})
        assert not nest.is_empty({"N": 0})

    def test_first_point(self):
        nest = synthesize_loop_nest(SIMPLEX, ["x", "y", "z"])
        assert nest.first_point({"N": 2}) == {"N": 2, "x": 0, "y": 0, "z": 0}

    def test_unbounded_rejected(self):
        s = ConstraintSystem.parse(["x >= 0"])
        with pytest.raises(PolyhedronError):
            synthesize_loop_nest(s, ["x"])

    def test_unbounded_rejected_strict(self):
        s = ConstraintSystem.parse(["x >= 0", "y >= 0", "y <= 4"])
        with pytest.raises(PolyhedronError):
            synthesize_loop_nest(s, ["x", "y"])

    def test_missing_variable_rejected(self):
        with pytest.raises(PolyhedronError):
            synthesize_loop_nest(SIMPLEX, ["x", "y", "w"])

    def test_strided_coefficients(self):
        # 3 <= 2x <= 9  ->  x in {2, 3, 4}
        s = ConstraintSystem.parse(["2*x >= 3", "2*x <= 9"])
        nest = synthesize_loop_nest(s, ["x"])
        assert [p["x"] for p in nest.iterate({})] == [2, 3, 4]

    def test_equality_forces_single_value(self):
        s = ConstraintSystem.parse(["x + y = 4", "x >= 0", "x <= 4", "y >= 0"])
        nest = synthesize_loop_nest(s, ["x", "y"])
        pts = [(p["x"], p["y"]) for p in nest.iterate({})]
        assert pts == [(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)]

    def test_infeasible_equality_yields_empty_range(self):
        # 2y == 1 has no integer solutions anywhere.
        s = ConstraintSystem.parse(["x >= 0", "x <= 3", "2*y = 1", "y >= -5", "y <= 5"])
        nest = synthesize_loop_nest(s, ["x", "y"])
        assert nest.count({}) == 0


class TestBoundsForVariable:
    def test_ceil_floor_bounds(self):
        s = ConstraintSystem.parse(["3*x >= 2", "2*x <= 11"])
        b = bounds_for_variable(s, "x")
        assert b.lower({}) == 1   # ceil(2/3)
        assert b.upper({}) == 5   # floor(11/2)
        assert list(b.range({})) == [1, 2, 3, 4, 5]

    def test_multiple_lower_bounds_max(self):
        s = ConstraintSystem.parse(["x >= 2", "x >= y", "x <= 9"])
        b = bounds_for_variable(s, "x")
        assert b.lower({"y": 5}) == 5
        assert b.lower({"y": 0}) == 2

    def test_unbounded_flags(self):
        s = ConstraintSystem.parse(["x >= 0"])
        b = bounds_for_variable(s, "x")
        assert not b.is_bounded()
        with pytest.raises(PolyhedronError):
            b.upper({})


@settings(max_examples=40, deadline=None)
@given(
    st.integers(0, 8),
    st.integers(1, 3),
    st.integers(1, 3),
)
def test_weighted_simplex_against_oracle(n, a, b):
    s = ConstraintSystem.parse(["x >= 0", "y >= 0", f"{a}*x + {b}*y <= N"])
    nest = synthesize_loop_nest(s, ["x", "y"])
    got = {(p["x"], p["y"]) for p in nest.iterate({"N": n})}
    box = {"x": (-1, n + 1), "y": (-1, n + 1)}
    want = set(enumerate_box_filtered(s, ["x", "y"], box, {"N": n}))
    assert got == want
    assert nest.count({"N": n}) == len(want)
