"""C expression/loop emission: semantics checked against the Python IR."""

import pytest

from repro.generator.cgen.emitter import CWriter
from repro.generator.cgen.nestc import (
    MACROS,
    context_to_c,
    expr_to_c,
    lower_to_c,
    upper_to_c,
)
from repro.polyhedra import ConstraintSystem, synthesize_loop_nest
from repro.polyhedra.bounds import bounds_for_variable


def c_eval(expr: str, env: dict) -> int:
    """Evaluate an emitted C integer expression with Python semantics.

    The emitted grammar uses only ceild/floord/MAX2/MIN2, *, +, -,
    parentheses and identifiers, which Python can evaluate given
    equivalent helpers — exactly how the compiled-Python backend works.
    """
    helpers = {
        "ceild": lambda a, b: -((-a) // b),
        "floord": lambda a, b: a // b,
        "MAX2": max,
        "MIN2": min,
    }
    return eval(expr, {**helpers, **env})  # noqa: S307 - test helper


SYSTEM = ConstraintSystem.parse(
    ["3*x >= 2*N - 1", "2*x <= M + 7", "x >= 0"]
)


class TestExprEmission:
    def test_bounds_match_python(self):
        b = bounds_for_variable(SYSTEM, "x")
        lo_c = lower_to_c(b)
        hi_c = upper_to_c(b)
        for n in range(-3, 9):
            for m in range(-3, 9):
                env = {"N": n, "M": m}
                assert c_eval(lo_c, env) == b.lower(env)
                assert c_eval(hi_c, env) == b.upper(env)

    def test_single_bound_no_wrapper(self):
        s = ConstraintSystem.parse(["x >= 1", "x <= 5"])
        b = bounds_for_variable(s, "x")
        assert "MAX2" not in lower_to_c(b)
        assert "MIN2" not in upper_to_c(b)

    def test_multiple_bounds_nested(self):
        s = ConstraintSystem.parse(["x >= 1", "x >= y", "x >= z", "x <= 9"])
        b = bounds_for_variable(s, "x")
        lo = lower_to_c(b)
        assert lo.count("MAX2") == 2
        assert c_eval(lo, {"y": 4, "z": 7}) == 7

    def test_context_condition(self):
        nest = synthesize_loop_nest(
            ConstraintSystem.parse(["x >= 0", "x <= N"]), ["x"]
        )
        cond = context_to_c(nest)
        assert c_eval(cond, {"N": 3})
        assert not c_eval(cond, {"N": -1})

    def test_macros_are_functions_not_macros(self):
        # Regression: macro MAX2/MIN2 duplicated arguments exponentially
        # and OOM-killed gcc on 6-D programs.
        assert "static inline long MAX2" in MACROS
        assert "#define MAX2" not in MACROS


class TestCWriter:
    def test_indentation(self):
        w = CWriter()
        w.open("if (x)")
        w.line("y = 1;")
        w.close()
        assert w.text() == "if (x) {\n    y = 1;\n}\n"

    def test_raw_reindents(self):
        w = CWriter()
        w.open("void f(void)")
        w.raw("a;\nb;")
        w.close()
        assert "    a;" in w.text()
        assert "    b;" in w.text()

    def test_blank_lines(self):
        w = CWriter()
        w.line("a;").blank().line("b;")
        assert w.text() == "a;\n\nb;\n"
