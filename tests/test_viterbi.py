"""Viterbi decoding: mixed-sign templates through the full pipeline."""

import numpy as np
import pytest

from repro.generator import build_layout, generate, tile_dependency_map
from repro.problems import (
    random_hmm,
    viterbi_lattice_reference,
    viterbi_reference,
    viterbi_spec,
)
from repro.runtime import execute, solve_reference
from repro.spec import ASCENDING


@pytest.fixture(scope="module")
def hmm():
    return random_hmm(n_states=4, n_symbols=5, length=20, seed=7)


@pytest.fixture(scope="module")
def program(hmm):
    return generate(viterbi_spec(*hmm, tile_width_t=4))


class TestSpecStructure:
    def test_template_count(self, program):
        # 2K - 1 offsets for K = 4 states.
        assert len(program.spec.templates) == 7

    def test_time_dimension_ascends(self, program):
        directions = program.spec.scan_directions()
        assert directions["t_step"] == ASCENDING

    def test_ghost_margins_both_sides_of_state(self, program):
        layout = program.layout
        s_idx = program.spec.loop_vars.index("s_state")
        assert layout.ghost_lo[s_idx] == 3
        assert layout.ghost_hi[s_idx] == 3

    def test_state_dim_single_tile(self, program, hmm):
        # width K covers all states: only time-direction deltas lead to
        # valid tiles.
        tiles = set(program.spaces.tiles({"T": 20}))
        assert all(t[1] == 0 for t in tiles)

    def test_mixed_sign_deltas_derived(self, program):
        deltas = set(program.deltas)
        assert (-1, 0) in deltas
        assert (-1, -1) in deltas
        assert (-1, 1) in deltas


class TestNumerics:
    def test_full_lattice_matches_oracle(self, hmm, program):
        prior, trans, emit, obs = hmm
        res = execute(program, {"T": len(obs) - 1}, record_values=True)
        lattice = viterbi_lattice_reference(prior, trans, emit, obs)
        assert len(res.values) == lattice.size
        for (t, s), v in res.values.items():
            assert v == pytest.approx(lattice[t, s], abs=1e-9)

    def test_best_logprob(self, hmm, program):
        prior, trans, emit, obs = hmm
        best, path = viterbi_reference(prior, trans, emit, obs)
        res = execute(program, {"T": len(obs) - 1}, record_values=True)
        col = max(res.values[(len(obs) - 1, s)] for s in range(4))
        assert col == pytest.approx(best, abs=1e-9)
        assert len(path) == len(obs)

    def test_tiled_equals_untiled(self, hmm, program):
        tiled = execute(program, {"T": 12}, record_values=True)
        untiled = solve_reference(program, {"T": 12}, record_values=True)
        assert tiled.values == untiled.values

    def test_prefix_decoding(self, hmm, program):
        # Running with a smaller T decodes the observation prefix.
        prior, trans, emit, obs = hmm
        res = execute(program, {"T": 9}, record_values=True)
        lattice = viterbi_lattice_reference(prior, trans, emit, obs[:10])
        for s in range(4):
            assert res.values[(9, s)] == pytest.approx(
                lattice[9, s], abs=1e-9
            )

    def test_path_is_consistent(self, hmm):
        prior, trans, emit, obs = hmm
        best, path = viterbi_reference(prior, trans, emit, obs)
        # Recompute the path's log-prob directly; must equal `best`.
        logp = prior[path[0]] + emit[path[0], obs[0]]
        for t in range(1, len(obs)):
            logp += trans[path[t - 1], path[t]] + emit[path[t], obs[t]]
        assert logp == pytest.approx(best, abs=1e-9)


class TestScaling:
    def test_larger_state_space(self):
        hmm = random_hmm(n_states=6, n_symbols=4, length=12, seed=11)
        program = generate(viterbi_spec(*hmm, tile_width_t=3))
        assert len(program.spec.templates) == 11
        res = execute(program, {"T": 12}, record_values=True)
        lattice = viterbi_lattice_reference(*hmm)
        for (t, s), v in res.values.items():
            assert v == pytest.approx(lattice[t, s], abs=1e-9)

    def test_two_states(self):
        hmm = random_hmm(n_states=2, n_symbols=3, length=15, seed=13)
        program = generate(viterbi_spec(*hmm, tile_width_t=5))
        best, _ = viterbi_reference(*hmm)
        res = execute(program, {"T": 15}, record_values=True)
        col = max(res.values[(15, s)] for s in range(2))
        assert col == pytest.approx(best, abs=1e-9)
