"""Edge-buffer memory accounting and the Figure 4 orderings.

The paper's analysis for a 2-D n x n tiling: column-major order buffers
about n + 1 edges at peak while level-set order buffers 2(n - 1); in d
dimensions level-set approaches d times the column-major peak.  We
reproduce the 2-D law exactly with the real scheduler.
"""

import pytest

from repro.errors import RuntimeExecutionError
from repro.generator import generate
from repro.runtime import EdgeMemoryTracker, execute
from repro.spec import ProblemSpec


def square_grid_spec(side_tiles: int, w: int = 2) -> ProblemSpec:
    """An n x n tile grid: box iteration space, unit positive templates."""
    n = side_tiles * w - 1
    return ProblemSpec.create(
        name="grid2d",
        loop_vars=["x", "y"],
        params=["M"],
        constraints=["x >= 0", "y >= 0", "x <= M", "y <= M"],
        templates={"rx": [1, 0], "ry": [0, 1]},
        tile_widths=w,
        lb_dims=("x",),
        kernel=lambda point, deps, params: 1.0
        + max(deps["rx"] or 0.0, deps["ry"] or 0.0),
    )


class TestTracker:
    def test_basic_accounting(self):
        t = EdgeMemoryTracker()
        t.add_edge("a", 10)
        t.add_edge("b", 5)
        assert t.live_cells == 15
        assert t.peak_cells == 15
        t.remove_edge("a")
        assert t.live_cells == 5
        assert t.peak_cells == 15
        t.add_edge("c", 20)
        assert t.peak_cells == 25
        snap = t.snapshot()
        assert snap["total_edges"] == 3
        assert snap["total_packed_cells"] == 35

    def test_double_add_rejected(self):
        t = EdgeMemoryTracker()
        t.add_edge("a", 1)
        with pytest.raises(
            RuntimeExecutionError, match="edge a buffered twice"
        ):
            t.add_edge("a", 1)

    def test_remove_unknown_rejected(self):
        with pytest.raises(
            RuntimeExecutionError,
            match="edge zz consumed twice or never buffered",
        ):
            EdgeMemoryTracker().remove_edge("zz")

    def test_violation_names_rank(self):
        t = EdgeMemoryTracker(rank=3)
        with pytest.raises(RuntimeExecutionError, match="on rank 3"):
            t.remove_edge(((0, 0), (0, 1)))


class TestLiveEdgeKeys:
    def test_insertion_order_and_removal(self):
        t = EdgeMemoryTracker()
        t.add_edge("a", 3)
        t.add_edge("b", 2)
        t.add_edge("c", 1)
        assert t.live_edge_keys() == ("a", "b", "c")
        t.remove_edge("b")
        assert t.live_edge_keys() == ("a", "c")
        t.remove_edge("a")
        t.remove_edge("c")
        assert t.live_edge_keys() == ()


class TestMergeSnapshots:
    def test_fields_sum_exactly(self):
        a = EdgeMemoryTracker()
        a.add_edge("x", 10)
        a.add_edge("y", 4)
        a.remove_edge("x")
        b = EdgeMemoryTracker()
        b.add_edge("z", 7)
        merged = EdgeMemoryTracker.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        assert merged == {
            "live_cells": 11,
            "live_edges": 2,
            "peak_cells": 21,
            "peak_edges": 3,
            "total_packed_cells": 21,
            "total_edges": 3,
        }

    def test_empty_sequence_is_zero(self):
        merged = EdgeMemoryTracker.merge_snapshots([])
        assert set(merged) == {
            "live_cells", "live_edges", "peak_cells", "peak_edges",
            "total_packed_cells", "total_edges",
        }
        assert all(v == 0 for v in merged.values())

    def test_missing_keys_default_to_zero(self):
        merged = EdgeMemoryTracker.merge_snapshots(
            [{"live_cells": 5}, {"peak_edges": 2}]
        )
        assert merged["live_cells"] == 5
        assert merged["peak_edges"] == 2
        assert merged["total_edges"] == 0

    def test_summed_peaks_bound_any_interleaving(self):
        # The merged peak is an upper bound: per-rank peaks need not
        # coincide in time, so replaying both ranks' edges through one
        # tracker can never exceed the field-wise sum.
        a = EdgeMemoryTracker()
        b = EdgeMemoryTracker()
        union = EdgeMemoryTracker()
        script = [
            (a, "add", "a1", 8), (b, "add", "b1", 3),
            (a, "remove", "a1", 0), (b, "add", "b2", 5),
            (a, "add", "a2", 2), (b, "remove", "b1", 0),
        ]
        for tracker, op, edge, cells in script:
            if op == "add":
                tracker.add_edge(edge, cells)
                union.add_edge(edge, cells)
            else:
                tracker.remove_edge(edge)
                union.remove_edge(edge)
        merged = EdgeMemoryTracker.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        assert merged["peak_cells"] >= union.peak_cells
        assert merged["peak_edges"] >= union.peak_edges
        assert merged["total_packed_cells"] == union.total_packed_cells


class TestFigure4:
    """Peak buffered edges: column-major n+1 vs level-set 2(n-1)."""

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_column_major_peak(self, n):
        spec = square_grid_spec(n)
        program = generate(spec)
        res = execute(
            program, {"M": n * 2 - 1}, priority_scheme="column-major"
        )
        assert res.memory["peak_edges"] == n + 1

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_level_set_peak(self, n):
        spec = square_grid_spec(n)
        program = generate(spec)
        res = execute(program, {"M": n * 2 - 1}, priority_scheme="level-set")
        assert res.memory["peak_edges"] == 2 * (n - 1)

    @pytest.mark.parametrize("n", [5, 6])
    def test_level_set_buffers_more(self, n):
        spec = square_grid_spec(n)
        program = generate(spec)
        cm = execute(program, {"M": n * 2 - 1}, priority_scheme="column-major")
        ls = execute(program, {"M": n * 2 - 1}, priority_scheme="level-set")
        assert ls.memory["peak_cells"] > cm.memory["peak_cells"]

    def test_all_edges_eventually_freed(self):
        spec = square_grid_spec(5)
        program = generate(spec)
        for scheme in ("column-major", "level-set", "lb-first", "lb-last"):
            res = execute(program, {"M": 9}, priority_scheme=scheme)
            assert res.memory["live_cells"] == 0
            assert res.memory["live_edges"] == 0

    def test_total_packed_is_schedule_independent(self):
        spec = square_grid_spec(5)
        program = generate(spec)
        totals = {
            scheme: execute(program, {"M": 9}, priority_scheme=scheme).memory[
                "total_packed_cells"
            ]
            for scheme in ("column-major", "level-set", "lb-first")
        }
        assert len(set(totals.values())) == 1
