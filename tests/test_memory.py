"""Edge-buffer memory accounting and the Figure 4 orderings.

The paper's analysis for a 2-D n x n tiling: column-major order buffers
about n + 1 edges at peak while level-set order buffers 2(n - 1); in d
dimensions level-set approaches d times the column-major peak.  We
reproduce the 2-D law exactly with the real scheduler.
"""

import pytest

from repro.errors import RuntimeExecutionError
from repro.generator import generate
from repro.runtime import EdgeMemoryTracker, execute
from repro.spec import ProblemSpec


def square_grid_spec(side_tiles: int, w: int = 2) -> ProblemSpec:
    """An n x n tile grid: box iteration space, unit positive templates."""
    n = side_tiles * w - 1
    return ProblemSpec.create(
        name="grid2d",
        loop_vars=["x", "y"],
        params=["M"],
        constraints=["x >= 0", "y >= 0", "x <= M", "y <= M"],
        templates={"rx": [1, 0], "ry": [0, 1]},
        tile_widths=w,
        lb_dims=("x",),
        kernel=lambda point, deps, params: 1.0
        + max(deps["rx"] or 0.0, deps["ry"] or 0.0),
    )


class TestTracker:
    def test_basic_accounting(self):
        t = EdgeMemoryTracker()
        t.add_edge("a", 10)
        t.add_edge("b", 5)
        assert t.live_cells == 15
        assert t.peak_cells == 15
        t.remove_edge("a")
        assert t.live_cells == 5
        assert t.peak_cells == 15
        t.add_edge("c", 20)
        assert t.peak_cells == 25
        snap = t.snapshot()
        assert snap["total_edges"] == 3
        assert snap["total_packed_cells"] == 35

    def test_double_add_rejected(self):
        t = EdgeMemoryTracker()
        t.add_edge("a", 1)
        with pytest.raises(
            RuntimeExecutionError, match="edge a buffered twice"
        ):
            t.add_edge("a", 1)

    def test_remove_unknown_rejected(self):
        with pytest.raises(
            RuntimeExecutionError,
            match="edge zz consumed twice or never buffered",
        ):
            EdgeMemoryTracker().remove_edge("zz")

    def test_violation_names_rank(self):
        t = EdgeMemoryTracker(rank=3)
        with pytest.raises(RuntimeExecutionError, match="on rank 3"):
            t.remove_edge(((0, 0), (0, 1)))


class TestFigure4:
    """Peak buffered edges: column-major n+1 vs level-set 2(n-1)."""

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_column_major_peak(self, n):
        spec = square_grid_spec(n)
        program = generate(spec)
        res = execute(
            program, {"M": n * 2 - 1}, priority_scheme="column-major"
        )
        assert res.memory["peak_edges"] == n + 1

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_level_set_peak(self, n):
        spec = square_grid_spec(n)
        program = generate(spec)
        res = execute(program, {"M": n * 2 - 1}, priority_scheme="level-set")
        assert res.memory["peak_edges"] == 2 * (n - 1)

    @pytest.mark.parametrize("n", [5, 6])
    def test_level_set_buffers_more(self, n):
        spec = square_grid_spec(n)
        program = generate(spec)
        cm = execute(program, {"M": n * 2 - 1}, priority_scheme="column-major")
        ls = execute(program, {"M": n * 2 - 1}, priority_scheme="level-set")
        assert ls.memory["peak_cells"] > cm.memory["peak_cells"]

    def test_all_edges_eventually_freed(self):
        spec = square_grid_spec(5)
        program = generate(spec)
        for scheme in ("column-major", "level-set", "lb-first", "lb-last"):
            res = execute(program, {"M": 9}, priority_scheme=scheme)
            assert res.memory["live_cells"] == 0
            assert res.memory["live_edges"] == 0

    def test_total_packed_is_schedule_independent(self):
        spec = square_grid_spec(5)
        program = generate(spec)
        totals = {
            scheme: execute(program, {"M": 9}, priority_scheme=scheme).memory[
                "total_packed_cells"
            ]
            for scheme in ("column-major", "level-set", "lb-first")
        }
        assert len(set(totals.values())) == 1
