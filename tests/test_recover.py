"""Solution recovery (Section VII-A): saved edges + tile recomputation."""

import pytest

from repro.errors import RuntimeExecutionError
from repro.problems import (
    edit_distance_reference,
    two_arm_reference,
)
from repro.runtime import SolutionRecovery, execute


@pytest.fixture(scope="module")
def bandit_recovery(bandit2_program):
    return SolutionRecovery(bandit2_program, {"N": 7})


class TestPointQueries:
    def test_objective_matches_forward_pass(self, bandit_recovery):
        assert bandit_recovery.value_at(
            {"s1": 0, "f1": 0, "s2": 0, "f2": 0}
        ) == pytest.approx(two_arm_reference(7), abs=1e-12)

    def test_every_point_matches_recorded_values(
        self, bandit2_program, bandit_recovery
    ):
        full = execute(bandit2_program, {"N": 7}, record_values=True)
        loop_vars = bandit2_program.spec.loop_vars
        for key, value in full.values.items():
            point = dict(zip(loop_vars, key))
            assert bandit_recovery.value_at(point) == pytest.approx(
                value, abs=1e-12
            )

    def test_outside_point_rejected(self, bandit_recovery):
        with pytest.raises(RuntimeExecutionError):
            bandit_recovery.value_at({"s1": 8, "f1": 0, "s2": 0, "f2": 0})

    def test_invalid_tile_rejected(self, bandit_recovery):
        with pytest.raises(RuntimeExecutionError):
            bandit_recovery.tile_values((9, 9, 9, 9))

    def test_dependencies_at(self, bandit_recovery):
        deps = bandit_recovery.dependencies_at(
            {"s1": 0, "f1": 0, "s2": 0, "f2": 0}
        )
        assert set(deps) == {"succ1", "fail1", "succ2", "fail2"}
        assert all(v is not None for v in deps.values())
        boundary = bandit_recovery.dependencies_at(
            {"s1": 7, "f1": 0, "s2": 0, "f2": 0}
        )
        assert all(v is None for v in boundary.values())

    def test_edge_memory_far_below_full_space(self, bandit2_program):
        rec = SolutionRecovery(bandit2_program, {"N": 9})
        total = bandit2_program.spaces.total_points({"N": 9})
        assert 0 < rec.edge_memory_cells < total


class TestTraceback:
    def test_optimal_bandit_policy_walk(self, bandit_recovery):
        """Walk the optimal allocation assuming every pull succeeds."""

        def policy(point, deps, value):
            # choose the arm the optimal policy would pull, then follow
            # the success branch.
            best_name, best_v = None, None
            for arm in (1, 2):
                s, f = point[f"s{arm}"], point[f"f{arm}"]
                p = (s + 1.0) / (s + f + 2.0)
                sv, fv = deps[f"succ{arm}"], deps[f"fail{arm}"]
                if sv is None:
                    continue
                v = p * (1.0 + sv) + (1.0 - p) * fv
                if best_v is None or v > best_v:
                    best_v, best_name = v, f"succ{arm}"
            return best_name

        path = bandit_recovery.traceback(policy)
        # N pulls then stop at the exhausted state.
        assert len(path) == 8
        assert path[-1][1] is None
        final = path[-1][0]
        assert sum(final.values()) == 7

    def test_edit_distance_alignment_recovery(self, edit_program, edit_strings):
        a, b = edit_strings
        rec = SolutionRecovery(
            edit_program, {"LA": len(a), "LB": len(b)}
        )
        assert rec.value_at(
            {"i": len(a), "j": len(b)}
        ) == edit_distance_reference(a, b)

        def policy(point, deps, value):
            i, j = point["i"], point["j"]
            if deps["diag"] is not None:
                cost = 0.0 if a[i - 1] == b[j - 1] else 1.0
                if value == deps["diag"] + cost:
                    return "diag"
            if deps["up"] is not None and value == deps["up"] + 1.0:
                return "up"
            if deps["left"] is not None and value == deps["left"] + 1.0:
                return "left"
            return None

        path = rec.traceback(
            policy, start={"i": len(a), "j": len(b)}
        )
        # The walk must end at the origin, and the edit operations it
        # took must sum to the edit distance.
        assert path[-1][0] == {"i": 0, "j": 0}
        ops = 0
        for point, choice in path[:-1]:
            if choice in ("up", "left"):
                ops += 1
            elif choice == "diag":
                i, j = point["i"], point["j"]
                ops += 0 if a[i - 1] == b[j - 1] else 1
        assert ops == edit_distance_reference(a, b)

    def test_runaway_policy_detected(self, bandit_recovery):
        # A policy that never stops but keeps moving along valid
        # templates will hit the boundary where all deps are None -- so
        # force a loop via max_steps on a policy that stalls.
        def policy(point, deps, value):
            return next(
                (n for n, v in deps.items() if v is not None), None
            )

        path = bandit_recovery.traceback(policy)
        assert path[-1][1] is None

    def test_cache_is_bounded(self, bandit2_program):
        rec = SolutionRecovery(bandit2_program, {"N": 7}, cache_tiles=2)
        for tile in list(rec.graph.tiles)[:5]:
            rec.tile_values(tile)
        assert len(rec._cache) <= 2


class TestViterbiPathRecovery:
    def test_best_path_logprob_reconstructed(self):
        """Recover the Viterbi path itself via saved-edge tracebacks."""
        from repro.generator import generate
        from repro.problems import random_hmm, viterbi_reference, viterbi_spec

        prior, trans, emit, obs = random_hmm(3, 4, 14, seed=21)
        program = generate(viterbi_spec(prior, trans, emit, obs, tile_width_t=4))
        T = len(obs) - 1
        rec = SolutionRecovery(program, {"T": T})

        # Best final state by querying the last column.
        finals = {s: rec.value_at({"t_step": T, "s_state": s}) for s in range(3)}
        best_state = max(finals, key=finals.get)
        best_ref, path_ref = viterbi_reference(prior, trans, emit, obs)
        assert finals[best_state] == pytest.approx(best_ref, abs=1e-9)
        assert best_state == path_ref[-1]

        # Walk backwards: at each step choose the predecessor state that
        # explains the current delta value.
        def policy(point, deps, value):
            t, s = point["t_step"], point["s_state"]
            if t == 0:
                return None
            e = emit[s, obs[t]]
            for off in range(-2, 3):
                sp = s + off
                if not 0 <= sp < 3:
                    continue
                name = f"from_{'m' if off < 0 else 'p'}{abs(off)}"
                v = deps.get(name)
                if v is None:
                    continue
                if abs(value - (e + trans[sp, s] + v)) < 1e-9:
                    return name
            raise AssertionError(f"no predecessor explains {point}")

        path = rec.traceback(
            policy, start={"t_step": T, "s_state": best_state}
        )
        states = [p["s_state"] for p, _ in path][::-1]
        # The recovered path must have the optimal log-probability (may
        # differ from path_ref on exact ties, so compare scores).
        logp = prior[states[0]] + emit[states[0], obs[0]]
        for t in range(1, len(obs)):
            logp += trans[states[t - 1], states[t]] + emit[states[t], obs[t]]
        assert logp == pytest.approx(best_ref, abs=1e-9)
