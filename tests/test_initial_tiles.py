"""Initial-tile generation (Section IV-K): face scan vs exhaustive oracle."""

import pytest

from repro.errors import GenerationError
from repro.generator import (
    build_iteration_spaces,
    initial_tiles,
    initial_tiles_exhaustive,
    initial_tiles_face_scan,
)
from repro.problems import (
    delayed_two_arm_spec,
    edit_distance_spec,
    lcs_spec,
    msa_spec,
    three_arm_spec,
    two_arm_spec,
)

CASES = [
    (two_arm_spec(tile_width=3), {"N": 7}),
    (two_arm_spec(tile_width=4), {"N": 11}),
    (three_arm_spec(tile_width=3), {"N": 5}),
    (delayed_two_arm_spec(tile_width=3), {"N": 5}),
    (edit_distance_spec("ACGTACC", "GATTA", tile_width=3), {"LA": 7, "LB": 5}),
    (lcs_spec(["ACGTA", "GATT"], tile_width=3), {"L1": 5, "L2": 4}),
    (
        msa_spec(["ACGT", "GAT", "TTAC"], tile_width=3),
        {"L1": 4, "L2": 3, "L3": 4},
    ),
]
IDS = ["bandit2-w3", "bandit2-w4", "bandit3", "delayed", "edit", "lcs2", "msa3"]


@pytest.mark.parametrize("spec, params", CASES, ids=IDS)
def test_face_scan_matches_exhaustive(spec, params):
    spaces = build_iteration_spaces(spec)
    fast = initial_tiles_face_scan(spaces, params)
    slow = initial_tiles_exhaustive(spaces, params)
    assert fast == slow
    assert fast, "every non-empty problem has at least one initial tile"


@pytest.mark.parametrize("spec, params", CASES[:3], ids=IDS[:3])
def test_initial_tiles_match_graph_seeds(spec, params):
    """The runtime's zero-dependency tiles are exactly the IV-K set."""
    from repro.generator import generate
    from repro.runtime import TileGraph

    program = generate(spec)
    graph = TileGraph.build(program, params)
    assert graph.initial_tiles() == initial_tiles(program.spaces, params)


class TestSpecificShapes:
    def test_bandit_initial_tiles_touch_diagonal(self):
        spec = two_arm_spec(tile_width=3)
        spaces = build_iteration_spaces(spec)
        params = {"N": 7}
        for tile in initial_tiles(spaces, params, method="face-scan"):
            # tile box upper corner must cross the budget plane
            hi = sum((t + 1) * 3 - 1 for t in tile)
            assert hi >= params["N"] - 3, f"{tile} is interior"

    def test_edit_distance_single_initial_corner(self):
        # Negative templates: dependencies point to smaller indices, so
        # the unique initial tile is the origin corner.
        spec = edit_distance_spec("ACGTACC", "GATTA", tile_width=3)
        spaces = build_iteration_spaces(spec)
        out = initial_tiles(spaces, {"LA": 7, "LB": 5})
        assert out == {(0, 0)}

    def test_method_dispatch(self):
        spec = two_arm_spec(tile_width=3)
        spaces = build_iteration_spaces(spec)
        params = {"N": 5}
        assert initial_tiles(spaces, params, "face-scan") == initial_tiles(
            spaces, params, "exhaustive"
        )
        with pytest.raises(GenerationError):
            initial_tiles(spaces, params, "bogus")

    def test_parameter_growth_scales_face_count(self):
        spec = two_arm_spec(tile_width=3)
        spaces = build_iteration_spaces(spec)
        small = len(initial_tiles(spaces, {"N": 5}))
        large = len(initial_tiles(spaces, {"N": 17}))
        assert large > small
